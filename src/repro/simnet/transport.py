"""The simulated wire between clients and services.

Every "remote" call in this reproduction goes through
:meth:`Transport.call`, which enforces the same boundary a real HTTP
transport would:

* the request and response payloads are round-tripped through JSON, so
  only serializable data crosses and the caller never shares mutable
  state with the service;
* connectivity is checked against a :class:`ConnectivityModel`;
* network latency is sampled per direction and, together with the
  service's compute latency, charged to the simulation clock;
* a caller-supplied timeout aborts calls whose total latency exceeds it,
  raising :class:`ServiceTimeoutError` after charging the timeout (the
  client really did wait that long).
"""

from __future__ import annotations

import json
from collections.abc import Callable, Generator, Mapping
from dataclasses import dataclass, field

from repro.obs import names
from repro.simnet.connectivity import AlwaysOnline, ConnectivityModel
from repro.simnet.errors import (
    ConnectivityError,
    RemoteServiceError,
    ServiceTimeoutError,
)
from repro.simnet.latency import ConstantLatency, LatencyDistribution
from repro.util.clock import Clock, ManualClock, acharge
from repro.util.errors import SerializationError
from repro.util.rng import SeededRng

ServerFn = Callable[[dict], tuple[dict, float]]
"""A service entry point: payload -> (response payload, compute latency)."""


def wire_size(payload: object) -> int:
    """Bytes the payload occupies on the simulated wire (JSON-encoded)."""
    try:
        return len(json.dumps(payload, separators=(",", ":")).encode())
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"payload is not JSON-serializable: {exc}") from exc


def _roundtrip(payload: object, direction: str) -> dict:
    """JSON round-trip a payload to enforce the serialization boundary."""
    try:
        encoded = json.dumps(payload, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"{direction} payload is not JSON-serializable: {exc}") from exc
    return json.loads(encoded)


@dataclass
class TransportStats:
    """Running totals of everything that crossed this transport."""

    calls: int = 0
    successes: int = 0
    timeouts: int = 0
    offline_failures: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    total_latency: float = 0.0
    per_endpoint_calls: dict[str, int] = field(default_factory=dict)
    # Batched calls: one wire round trip carrying several requests.
    batch_calls: int = 0
    batched_items: int = 0

    def record_call(self, endpoint: str, batch_size: int | None = None) -> None:
        """Count one wire call (carrying ``batch_size`` items if batched)."""
        self.calls += 1
        self.per_endpoint_calls[endpoint] = self.per_endpoint_calls.get(endpoint, 0) + 1
        if batch_size is not None:
            self.batch_calls += 1
            self.batched_items += batch_size


@dataclass
class TransportResult:
    """Outcome of one successful transport call."""

    payload: dict
    latency: float
    bytes_sent: int
    bytes_received: int


class Transport:
    """Simulated client-side network stack.

    One transport is typically shared by all services a client talks to,
    so its :class:`TransportStats` give the application-wide picture of
    network usage that benchmark F1 reports.
    """

    def __init__(
        self,
        clock: Clock | None = None,
        rng: SeededRng | None = None,
        connectivity: ConnectivityModel | None = None,
        network_latency: LatencyDistribution | None = None,
    ) -> None:
        self.clock = clock if clock is not None else ManualClock()
        self.rng = rng if rng is not None else SeededRng(0)
        self.connectivity = connectivity if connectivity is not None else AlwaysOnline()
        self.network_latency = (
            network_latency if network_latency is not None else ConstantLatency(0.0)
        )
        self.stats = TransportStats()
        # Chaos injection hook (install_injector); None = unfaulted.
        self.injector = None
        # Observability hooks (bind_obs); None = uninstrumented.
        self._tracer = None
        self._metric_calls = None
        self._metric_bytes_sent = None
        self._metric_bytes_received = None
        self._metric_timeouts = None
        self._metric_offline = None

    def bind_obs(self, obs) -> None:
        """Attach a :class:`repro.obs.Observability` bundle.

        Every call then produces a ``transport.call`` span (category
        ``transport``, so the attribution analyzer can bill wire time to
        the right service) and byte/call/timeout counters.  First binder
        wins: a transport shared by several clients reports to the
        observability of whichever client claimed it first.
        """
        if obs is None or not obs.enabled or self._tracer is not None:
            return
        self._tracer = obs.tracer
        metrics = obs.metrics
        self._metric_calls = metrics.counter(
            names.TRANSPORT_CALLS_TOTAL, "Calls that entered the simulated wire.")
        self._metric_bytes_sent = metrics.counter(
            names.TRANSPORT_BYTES_SENT_TOTAL, "Request bytes crossing the wire.")
        self._metric_bytes_received = metrics.counter(
            names.TRANSPORT_BYTES_RECEIVED_TOTAL, "Response bytes crossing the wire.")
        self._metric_timeouts = metrics.counter(
            names.TRANSPORT_TIMEOUTS_TOTAL, "Calls aborted by the caller's timeout.")
        self._metric_offline = metrics.counter(
            names.TRANSPORT_OFFLINE_FAILURES_TOTAL, "Calls rejected while offline.")

    def install_injector(self, injector) -> None:
        """Arm a :class:`repro.chaos.inject.ChaosInjector` on this wire.

        The injector is consulted on every call for partitions, error
        bursts, latency shaping and payload corruption.  Pass ``None``
        to disarm.  Unlike :meth:`bind_obs` this is last-writer-wins:
        chaos scenarios re-arm transports between phases.
        """
        self.injector = injector

    def is_online(self) -> bool:
        """Whether the network is currently reachable."""
        return self.connectivity.is_online(self.clock.now())

    def call(
        self,
        endpoint: str,
        server_fn: ServerFn,
        request: Mapping[str, object],
        timeout: float | None = None,
        latency_params: Mapping[str, float] | None = None,
        batch_size: int | None = None,
    ) -> TransportResult:
        """Deliver ``request`` to ``server_fn`` across the simulated wire.

        ``latency_params`` flow to the network latency distribution
        (some distributions are size-dependent).  ``batch_size`` marks a
        batched endpoint call: the wire semantics are identical (one
        round trip, one timeout), but the call is counted in the batch
        stats and its span carries the batch size.  Raises
        :class:`ConnectivityError` when offline,
        :class:`ServiceTimeoutError` when the sampled total latency
        exceeds ``timeout``, and lets service-level exceptions propagate
        after charging the latency spent before the failure.
        """
        tracer = self._tracer
        if tracer is None:
            return self._call(endpoint, server_fn, request, timeout,
                              latency_params, batch_size)
        span = self._start_span(tracer, endpoint, batch_size)
        try:
            result = self._call(endpoint, server_fn, request, timeout,
                                latency_params, batch_size)
        except Exception as error:
            tracer.end_span(span, error)
            raise
        self._finish_span(tracer, span, result)
        return result

    async def acall(
        self,
        endpoint: str,
        server_fn: ServerFn,
        request: Mapping[str, object],
        timeout: float | None = None,
        latency_params: Mapping[str, float] | None = None,
        batch_size: int | None = None,
    ) -> TransportResult:
        """Event-loop counterpart of :meth:`call`.

        Identical wire semantics (same plan, same errors, same stats
        and spans); the difference is purely *how* latency is spent —
        each charge point becomes an ``await``
        (:func:`repro.util.clock.acharge`), so under a scaled
        :class:`~repro.util.clock.RealClock` thousands of calls can be
        in flight on one event loop, and under a virtual clock the call
        completes instantly exactly like the sync path.

        Cancellation: cancelling the awaiting task between charge
        points abandons the call mid-wire — the charges spent so far
        remain charged (the simulated bytes really crossed) but no
        success or failure is recorded for the aborted remainder.
        """
        tracer = self._tracer
        if tracer is None:
            return await self._acall(endpoint, server_fn, request, timeout,
                                     latency_params, batch_size)
        span = self._start_span(tracer, endpoint, batch_size)
        try:
            result = await self._acall(endpoint, server_fn, request, timeout,
                                       latency_params, batch_size)
        except Exception as error:
            tracer.end_span(span, error)
            raise
        self._finish_span(tracer, span, result)
        return result

    def _start_span(self, tracer, endpoint: str, batch_size: int | None):
        attributes = {"endpoint": endpoint, "obs.category": "transport"}
        if batch_size is not None:
            attributes["batch_size"] = batch_size
        return tracer.start_span(names.SPAN_TRANSPORT_CALL, attributes)

    @staticmethod
    def _finish_span(tracer, span, result: TransportResult) -> None:
        span.attributes["latency"] = result.latency
        span.attributes["bytes_sent"] = result.bytes_sent
        span.attributes["bytes_received"] = result.bytes_received
        tracer.end_span(span)

    def _call(
        self,
        endpoint: str,
        server_fn: ServerFn,
        request: Mapping[str, object],
        timeout: float | None,
        latency_params: Mapping[str, float] | None,
        batch_size: int | None = None,
    ) -> TransportResult:
        """Drive the shared charge plan synchronously (thread path)."""
        plan = self._call_plan(endpoint, server_fn, request, timeout,
                               latency_params, batch_size)
        while True:
            try:
                charge = next(plan)
            except StopIteration as done:
                return done.value
            self.clock.charge(charge)

    async def _acall(
        self,
        endpoint: str,
        server_fn: ServerFn,
        request: Mapping[str, object],
        timeout: float | None,
        latency_params: Mapping[str, float] | None,
        batch_size: int | None = None,
    ) -> TransportResult:
        """Drive the shared charge plan from the event loop."""
        plan = self._call_plan(endpoint, server_fn, request, timeout,
                               latency_params, batch_size)
        while True:
            try:
                charge = next(plan)
            except StopIteration as done:
                return done.value
            await acharge(self.clock, charge)

    def _call_plan(
        self,
        endpoint: str,
        server_fn: ServerFn,
        request: Mapping[str, object],
        timeout: float | None,
        latency_params: Mapping[str, float] | None,
        batch_size: int | None = None,
    ) -> Generator[float, None, TransportResult]:
        """One wire call as a generator of latency charges.

        Yields each amount of simulated latency to spend; the sync
        driver charges it to the clock (blocking under a scaled real
        clock), the async driver awaits it.  Exceptions raised between
        yields propagate to whichever driver is iterating, after the
        charges already yielded have been spent — both paths therefore
        share one copy of the connectivity/injection/timeout logic and
        cannot drift apart.
        """
        self.stats.record_call(endpoint, batch_size)
        if self._metric_calls is not None:
            self._metric_calls.inc(endpoint=endpoint)
        params = dict(latency_params or {})
        injector = self.injector
        now = self.clock.now()

        offline = not self.is_online()
        if not offline and injector is not None:
            offline = injector.offline(endpoint, now)
        if offline:
            self.stats.offline_failures += 1
            if self._metric_offline is not None:
                self._metric_offline.inc()
            raise ConnectivityError(endpoint)

        request_payload = _roundtrip(dict(request), "request")
        sent = wire_size(request_payload)
        outbound = self.network_latency.sample(self.rng, params)

        if injector is not None:
            status = injector.error_status(endpoint, now)
            if status is not None:
                # The request crossed the wire; the injected failure
                # came back as the response, like a real 5xx/429.
                yield outbound
                self.stats.bytes_sent += sent
                if self._metric_bytes_sent is not None:
                    self._metric_bytes_sent.inc(sent)
                raise RemoteServiceError(endpoint, "injected error burst",
                                         status=status)

        try:
            response_payload, compute_latency = server_fn(request_payload)
        except Exception:
            # The request crossed the wire and the service failed while
            # working on it; the client still paid the outbound trip and
            # the wait for the error response.
            yield outbound
            self.stats.bytes_sent += sent
            if self._metric_bytes_sent is not None:
                self._metric_bytes_sent.inc(sent)
            raise

        inbound = self.network_latency.sample(self.rng, params)
        total = outbound + compute_latency + inbound
        if injector is not None:
            total = injector.shape_latency(endpoint, now, total)

        if timeout is not None and total > timeout:
            yield timeout
            self.stats.timeouts += 1
            self.stats.bytes_sent += sent
            if self._metric_timeouts is not None:
                self._metric_timeouts.inc()
                self._metric_bytes_sent.inc(sent)
            raise ServiceTimeoutError(endpoint, timeout)

        if injector is not None:
            response_payload = injector.corrupt(endpoint, now, response_payload)
        response_payload = _roundtrip(response_payload, "response")
        received = wire_size(response_payload)

        yield total
        self.stats.successes += 1
        self.stats.bytes_sent += sent
        self.stats.bytes_received += received
        self.stats.total_latency += total
        if self._metric_bytes_sent is not None:
            self._metric_bytes_sent.inc(sent)
            self._metric_bytes_received.inc(received)
        return TransportResult(
            payload=response_payload,
            latency=total,
            bytes_sent=sent,
            bytes_received=received,
        )
