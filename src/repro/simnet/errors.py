"""Errors raised at the simulated network boundary."""

from repro.util.errors import ReproError


class NetworkError(ReproError):
    """Base class for transport-level failures."""


class ServiceTimeoutError(NetworkError):
    """The remote side did not answer within the caller's timeout."""

    def __init__(self, endpoint: str, timeout: float) -> None:
        super().__init__(f"call to {endpoint!r} timed out after {timeout:.3f}s")
        self.endpoint = endpoint
        self.timeout = timeout


class ConnectivityError(NetworkError):
    """The client is offline (or the route to the endpoint is down)."""

    def __init__(self, endpoint: str) -> None:
        super().__init__(f"no connectivity to {endpoint!r}")
        self.endpoint = endpoint


class RemoteServiceError(NetworkError):
    """The remote service answered with an error (HTTP 5xx analogue)."""

    def __init__(self, endpoint: str, message: str, status: int = 500) -> None:
        super().__init__(f"{endpoint!r} returned {status}: {message}")
        self.endpoint = endpoint
        self.status = status
