"""Simulated network substrate.

Stands in for the HTTP transport the paper's SDK uses to reach cloud
services.  Provides seeded latency distributions, a connectivity model
with offline periods, timeouts, and a JSON-serializing request/response
boundary, so every "remote" call in this reproduction crosses a
realistic network edge.
"""

from repro.simnet.errors import (
    NetworkError,
    ServiceTimeoutError,
    ConnectivityError,
    RemoteServiceError,
)
from repro.simnet.latency import (
    LatencyDistribution,
    ConstantLatency,
    UniformLatency,
    LogNormalLatency,
    SizeDependentLatency,
    CompositeLatency,
)
from repro.simnet.connectivity import ConnectivityModel, AlwaysOnline, ScriptedConnectivity
from repro.simnet.transport import Transport, TransportStats, wire_size

__all__ = [
    "NetworkError",
    "ServiceTimeoutError",
    "ConnectivityError",
    "RemoteServiceError",
    "LatencyDistribution",
    "ConstantLatency",
    "UniformLatency",
    "LogNormalLatency",
    "SizeDependentLatency",
    "CompositeLatency",
    "ConnectivityModel",
    "AlwaysOnline",
    "ScriptedConnectivity",
    "Transport",
    "TransportStats",
    "wire_size",
]
