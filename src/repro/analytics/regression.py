"""Regression models (numpy-backed).

Two consumers: the Rich SDK predicts a service's latency from its
latency parameters (fit once on the monitoring history, then predict
per request), and the PKB's Figure-5 pipeline regresses over ingested
numeric data and stores the fitted slope/intercept/r² as RDF
statements for the inference engine to reason over.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


class LinearRegression:
    """Ordinary least squares y = intercept + slope * x."""

    def __init__(self, xs: Sequence[float], ys: Sequence[float]) -> None:
        if len(xs) != len(ys):
            raise ValueError(f"length mismatch: {len(xs)} vs {len(ys)}")
        if len(xs) < 2:
            raise ValueError("regression needs at least two points")
        x_array = np.asarray(xs, dtype=float)
        y_array = np.asarray(ys, dtype=float)
        x_mean = x_array.mean()
        y_mean = y_array.mean()
        x_spread = float(((x_array - x_mean) ** 2).sum())
        if x_spread == 0.0:
            # Degenerate: all x identical — predict the mean everywhere.
            self.slope = 0.0
            self.intercept = float(y_mean)
        else:
            self.slope = float(((x_array - x_mean) * (y_array - y_mean)).sum() / x_spread)
            self.intercept = float(y_mean - self.slope * x_mean)
        residuals = y_array - (self.intercept + self.slope * x_array)
        total = float(((y_array - y_mean) ** 2).sum())
        self.residual_sum_squares = float((residuals**2).sum())
        self.r_squared = 1.0 if total == 0.0 else 1.0 - self.residual_sum_squares / total
        self.n = len(xs)

    def predict(self, x: float) -> float:
        return self.intercept + self.slope * x

    def predict_many(self, xs: Sequence[float]) -> list[float]:
        return [self.predict(x) for x in xs]

    def residual_stddev(self) -> float:
        """Standard error of the residuals (0 for a perfect fit)."""
        degrees = max(self.n - 2, 1)
        return float(np.sqrt(self.residual_sum_squares / degrees))


class PolynomialRegression:
    """Least-squares polynomial fit of a chosen degree."""

    def __init__(self, xs: Sequence[float], ys: Sequence[float], degree: int = 2) -> None:
        if degree < 1:
            raise ValueError(f"degree must be >= 1, got {degree}")
        if len(xs) != len(ys):
            raise ValueError(f"length mismatch: {len(xs)} vs {len(ys)}")
        if len(xs) <= degree:
            raise ValueError(f"need more than {degree} points for degree {degree}")
        self.degree = degree
        self.coefficients = [
            float(value) for value in np.polyfit(np.asarray(xs, float),
                                                 np.asarray(ys, float), degree)
        ]
        predictions = np.polyval(self.coefficients, np.asarray(xs, float))
        y_array = np.asarray(ys, dtype=float)
        total = float(((y_array - y_array.mean()) ** 2).sum())
        residual = float(((y_array - predictions) ** 2).sum())
        self.r_squared = 1.0 if total == 0.0 else 1.0 - residual / total

    def predict(self, x: float) -> float:
        return float(np.polyval(self.coefficients, x))


class MultipleLinearRegression:
    """OLS over several features: y = intercept + coefficients · x."""

    def __init__(self, rows: Sequence[Sequence[float]], ys: Sequence[float]) -> None:
        if len(rows) != len(ys):
            raise ValueError(f"length mismatch: {len(rows)} vs {len(ys)}")
        if not rows:
            raise ValueError("regression needs data")
        widths = {len(row) for row in rows}
        if len(widths) != 1:
            raise ValueError("all feature rows must have the same width")
        self.n_features = widths.pop()
        if self.n_features == 0:
            raise ValueError("need at least one feature")
        if len(rows) <= self.n_features:
            raise ValueError("need more rows than features")
        design = np.column_stack([np.ones(len(rows)), np.asarray(rows, dtype=float)])
        y_array = np.asarray(ys, dtype=float)
        solution, *_ = np.linalg.lstsq(design, y_array, rcond=None)
        self.intercept = float(solution[0])
        self.coefficients = [float(value) for value in solution[1:]]
        predictions = design @ solution
        total = float(((y_array - y_array.mean()) ** 2).sum())
        residual = float(((y_array - predictions) ** 2).sum())
        self.r_squared = 1.0 if total == 0.0 else 1.0 - residual / total

    def predict(self, features: Sequence[float]) -> float:
        if len(features) != self.n_features:
            raise ValueError(
                f"expected {self.n_features} features, got {len(features)}"
            )
        return self.intercept + float(
            np.dot(self.coefficients, np.asarray(features, dtype=float))
        )
