"""Statistical and mathematical analysis (the Apache Commons Math stand-in).

Used in two places: the Rich SDK's latency prediction (regression of
observed latency on latency parameters) and the personalized knowledge
base's "statistical and mathematical analysis on numerical data ...
regression analysis can be used to predict new data values".
"""

from repro.analytics.stats import (
    DescriptiveStats,
    describe,
    mean,
    median,
    stddev,
    percentile,
    correlation,
)
from repro.analytics.histogram import Histogram
from repro.analytics.regression import (
    LinearRegression,
    PolynomialRegression,
    MultipleLinearRegression,
)
from repro.analytics.timeseries import moving_average, linear_forecast, detect_trend

__all__ = [
    "DescriptiveStats",
    "describe",
    "mean",
    "median",
    "stddev",
    "percentile",
    "correlation",
    "Histogram",
    "LinearRegression",
    "PolynomialRegression",
    "MultipleLinearRegression",
    "moving_average",
    "linear_forecast",
    "detect_trend",
]
