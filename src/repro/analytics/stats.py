"""Descriptive statistics over numeric sequences."""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises ValueError on empty input."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def median(values: Sequence[float]) -> float:
    """Median (average of the middle two for even lengths)."""
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    midpoint = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[midpoint])
    return (ordered[midpoint - 1] + ordered[midpoint]) / 2


def variance(values: Sequence[float], sample: bool = True) -> float:
    """Sample (default) or population variance."""
    if len(values) < (2 if sample else 1):
        raise ValueError("variance needs at least two values (one for population)")
    center = mean(values)
    total = sum((value - center) ** 2 for value in values)
    return total / (len(values) - 1 if sample else len(values))


def stddev(values: Sequence[float], sample: bool = True) -> float:
    """Sample (default) or population standard deviation."""
    return math.sqrt(variance(values, sample=sample))


def percentile(values: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile; ``fraction`` in [0, 1]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    ordered = sorted(values)
    position = fraction * (len(ordered) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    if lower == upper:
        return float(ordered[lower])
    weight = position - lower
    # a + w*(b-a) rather than a*(1-w) + b*w: exact when a == b, so the
    # result never escapes [min, max] by a rounding ulp.
    return ordered[lower] + weight * (ordered[upper] - ordered[lower])


def correlation(first: Sequence[float], second: Sequence[float]) -> float:
    """Pearson correlation coefficient; 0.0 when either side is constant."""
    if len(first) != len(second):
        raise ValueError(f"length mismatch: {len(first)} vs {len(second)}")
    if len(first) < 2:
        raise ValueError("correlation needs at least two points")
    mean_first = mean(first)
    mean_second = mean(second)
    numerator = sum(
        (x - mean_first) * (y - mean_second) for x, y in zip(first, second)
    )
    denom_first = math.sqrt(sum((x - mean_first) ** 2 for x in first))
    denom_second = math.sqrt(sum((y - mean_second) ** 2 for y in second))
    if denom_first == 0.0 or denom_second == 0.0:
        return 0.0
    return numerator / (denom_first * denom_second)


@dataclass(frozen=True)
class DescriptiveStats:
    """The summary bundle ``describe`` computes in one pass."""

    count: int
    mean: float
    median: float
    stddev: float
    minimum: float
    maximum: float
    p50: float
    p90: float
    p95: float
    p99: float

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "median": self.median,
            "stddev": self.stddev,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.p50,
            "p90": self.p90,
            "p95": self.p95,
            "p99": self.p99,
        }


def describe(values: Sequence[float]) -> DescriptiveStats:
    """Full descriptive summary of a numeric sequence."""
    if not values:
        raise ValueError("describe of empty sequence")
    return DescriptiveStats(
        count=len(values),
        mean=mean(values),
        median=median(values),
        stddev=stddev(values) if len(values) > 1 else 0.0,
        minimum=float(min(values)),
        maximum=float(max(values)),
        p50=percentile(values, 0.50),
        p90=percentile(values, 0.90),
        p95=percentile(values, 0.95),
        p99=percentile(values, 0.99),
    )
