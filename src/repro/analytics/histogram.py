"""Fixed-bin histograms.

The Rich SDK "maintains histories of latencies allowing users to
compare latency distributions"; histograms are the comparison tool.
"""

from __future__ import annotations

from collections.abc import Sequence


class Histogram:
    """Equal-width bins over [low, high] with under/overflow counters."""

    def __init__(self, low: float, high: float, bins: int = 20) -> None:
        if high <= low:
            raise ValueError(f"need high > low, got [{low}, {high}]")
        if bins <= 0:
            raise ValueError(f"bins must be positive, got {bins}")
        self.low = low
        self.high = high
        self.bins = bins
        self.counts = [0] * bins
        self.underflow = 0
        self.overflow = 0
        self.total = 0

    @classmethod
    def from_values(cls, values: Sequence[float], bins: int = 20) -> "Histogram":
        """A histogram spanning exactly the observed range."""
        if not values:
            raise ValueError("cannot build a histogram from no values")
        low = float(min(values))
        high = float(max(values))
        if high == low:
            high = low + 1.0
        histogram = cls(low, high, bins)
        for value in values:
            histogram.add(value)
        return histogram

    def add(self, value: float) -> None:
        self.total += 1
        if value < self.low:
            self.underflow += 1
            return
        if value > self.high:
            self.overflow += 1
            return
        width = (self.high - self.low) / self.bins
        index = min(int((value - self.low) / width), self.bins - 1)
        self.counts[index] += 1

    def bin_edges(self) -> list[float]:
        """The ``bins + 1`` edges of the bins."""
        width = (self.high - self.low) / self.bins
        return [self.low + index * width for index in range(self.bins + 1)]

    def densities(self) -> list[float]:
        """Counts normalized to fractions of the total (0.0 when empty)."""
        if self.total == 0:
            return [0.0] * self.bins
        return [count / self.total for count in self.counts]

    def render(self, width: int = 40) -> str:
        """ASCII rendering, one row per bin — handy in benchmark output."""
        edges = self.bin_edges()
        peak = max(self.counts) or 1
        lines = []
        for index, count in enumerate(self.counts):
            bar = "#" * int(round(count / peak * width))
            lines.append(f"[{edges[index]:10.4f}, {edges[index + 1]:10.4f}) "
                         f"{count:6d} {bar}")
        return "\n".join(lines)
