"""Time-series helpers for the PKB's predictive analytics."""

from __future__ import annotations

from collections.abc import Sequence

from repro.analytics.regression import LinearRegression


def moving_average(values: Sequence[float], window: int) -> list[float]:
    """Trailing moving average; the first ``window - 1`` points average
    whatever prefix exists so the output has the input's length."""
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    averaged = []
    running = 0.0
    for index, value in enumerate(values):
        running += value
        if index >= window:
            running -= values[index - window]
        span = min(index + 1, window)
        averaged.append(running / span)
    return averaged


def linear_forecast(values: Sequence[float], horizon: int) -> list[float]:
    """Extrapolate ``horizon`` future points from a linear trend fit."""
    if horizon < 0:
        raise ValueError(f"horizon must be non-negative, got {horizon}")
    model = LinearRegression(range(len(values)), values)
    start = len(values)
    return [model.predict(start + step) for step in range(horizon)]


def detect_trend(values: Sequence[float], threshold: float = 0.0) -> str:
    """Classify a series as 'rising', 'falling' or 'flat' by fitted slope.

    ``threshold`` is the absolute slope below which the series counts
    as flat (useful for noisy data).
    """
    model = LinearRegression(range(len(values)), values)
    if model.slope > threshold:
        return "rising"
    if model.slope < -threshold:
        return "falling"
    return "flat"


def exponential_smoothing(values: Sequence[float], alpha: float) -> list[float]:
    """Simple exponential smoothing: s_t = α·x_t + (1−α)·s_{t−1}."""
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    if not values:
        return []
    smoothed = [float(values[0])]
    for value in values[1:]:
        smoothed.append(alpha * value + (1 - alpha) * smoothed[-1])
    return smoothed


def holt_forecast(values: Sequence[float], horizon: int,
                  alpha: float = 0.5, beta: float = 0.3) -> list[float]:
    """Holt's linear-trend forecast (double exponential smoothing).

    Maintains a level and a trend component; the h-step-ahead forecast
    is ``level + h * trend``.  Better than a single global regression
    when the trend itself drifts over the series.
    """
    if not 0.0 < alpha <= 1.0 or not 0.0 < beta <= 1.0:
        raise ValueError("alpha and beta must be in (0, 1]")
    if horizon < 0:
        raise ValueError(f"horizon must be non-negative, got {horizon}")
    if len(values) < 2:
        raise ValueError("Holt forecasting needs at least two points")
    level = float(values[0])
    trend = float(values[1]) - float(values[0])
    for value in values[1:]:
        previous_level = level
        level = alpha * value + (1 - alpha) * (level + trend)
        trend = beta * (level - previous_level) + (1 - beta) * trend
    return [level + (step + 1) * trend for step in range(horizon)]
