"""End-to-end deadlines on the simulation clock.

A caller that gives the SDK one second has given *the whole call chain*
one second — retries, failover hops, queue waits and hedges included.
:class:`Deadline` is the value the Rich SDK threads through
``invoke``/``invoke_async``, retry, failover, hedging, batching,
admission control and the KB pipeline so every layer can answer the
same two questions: "how much budget is left?" and "is it already
spent?".

A deadline is an *absolute* point on the clock (not a duration), so it
naturally survives being passed down through layers that each consume
some of the budget.  It deliberately does **not** derive from
:class:`repro.simnet.errors.NetworkError`: running out of budget is the
caller's condition, not a transient service failure, so retry policies
never retry it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.clock import Clock
from repro.util.errors import ReproError


class DeadlineExceededError(ReproError):
    """The caller's end-to-end budget was spent before the work finished.

    Raised by any layer that checks a :class:`Deadline` and finds it
    expired.  The gateway maps this to a 504 envelope.  Not a
    :class:`~repro.simnet.errors.NetworkError` on purpose — retrying an
    exhausted budget only digs the hole deeper.
    """

    def __init__(self, context: str, expires_at: float, now: float) -> None:
        super().__init__(
            f"deadline exceeded in {context}: expired at t={expires_at:.6f}s, "
            f"now t={now:.6f}s")
        self.context = context
        self.expires_at = expires_at
        self.now = now


@dataclass(frozen=True)
class Deadline:
    """An absolute expiry time on a :class:`~repro.util.clock.Clock`.

    Construct with :meth:`after` ("this call has 2.5 simulated seconds")
    and pass the same object down the stack; each layer calls
    :meth:`remaining`, :meth:`check` or :meth:`clamp` against the shared
    clock, so budget consumed anywhere is visible everywhere.
    """

    clock: Clock
    expires_at: float

    @classmethod
    def after(cls, clock: Clock, budget: float) -> "Deadline":
        """A deadline ``budget`` seconds from now on ``clock``."""
        if budget < 0:
            raise ValueError(f"budget must be non-negative, got {budget}")
        return cls(clock=clock, expires_at=clock.now() + budget)

    def remaining(self) -> float:
        """Seconds of budget left (never negative)."""
        return max(0.0, self.expires_at - self.clock.now())

    def expired(self) -> bool:
        """Whether the budget is already spent."""
        return self.clock.now() >= self.expires_at

    def check(self, context: str = "call") -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent."""
        now = self.clock.now()
        if now >= self.expires_at:
            raise DeadlineExceededError(context, self.expires_at, now)

    def clamp(self, timeout: float | None) -> float:
        """The tighter of ``timeout`` and the remaining budget.

        This is how a per-call timeout becomes deadline-aware: a wire
        call may never wait longer than the budget that is left.
        """
        remaining = self.remaining()
        if timeout is None:
            return remaining
        return min(timeout, remaining)
