"""Exception hierarchy for the :mod:`repro` library.

Every exception raised by library code derives from :class:`ReproError`
so applications can catch one base class.  Subpackages define their own
more specific subclasses (e.g. :class:`repro.simnet.errors.NetworkError`)
rooted here.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid settings."""


class SerializationError(ReproError):
    """A value could not be serialized or deserialized at a boundary."""


class NotFoundError(ReproError, KeyError):
    """A requested object (key, entity, table, document) does not exist."""

    def __str__(self) -> str:  # KeyError quotes its args; keep a message
        return Exception.__str__(self)
