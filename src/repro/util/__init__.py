"""Low-level utilities shared by every other subpackage.

This package deliberately has no dependencies on the rest of :mod:`repro`
so that anything may import it without creating cycles.
"""

from repro.util.clock import Clock, ManualClock, RealClock, SYSTEM_CLOCK
from repro.util.errors import (
    ReproError,
    ConfigurationError,
    SerializationError,
)
from repro.util.rng import SeededRng, derive_seed

__all__ = [
    "Clock",
    "ManualClock",
    "RealClock",
    "SYSTEM_CLOCK",
    "ReproError",
    "ConfigurationError",
    "SerializationError",
    "SeededRng",
    "derive_seed",
]
