"""Clock abstraction used to charge simulated service latency.

The simulated services in :mod:`repro.services` do not sleep for the
latencies they model; they *charge* latency to a :class:`Clock`.  Two
implementations are provided:

* :class:`ManualClock` — virtual time.  ``advance()`` moves time forward
  instantly, so a test or benchmark can execute thousands of "slow"
  service calls in microseconds while still observing realistic latency
  numbers in the collected metrics.

* :class:`RealClock` — wall-clock time with an optional ``time_scale``.
  A charged latency of 0.2 s with ``time_scale=0.001`` really sleeps
  0.2 ms.  This is what the threaded asynchronous invocation paths use,
  because virtual time cannot be shared safely between racing threads.
"""

from __future__ import annotations

import asyncio
import threading
import time
from abc import ABC, abstractmethod


class Clock(ABC):
    """Source of the current time plus a way to spend simulated latency."""

    @abstractmethod
    def now(self) -> float:
        """Return the current time in (possibly virtual) seconds."""

    @abstractmethod
    def charge(self, seconds: float) -> None:
        """Account for ``seconds`` of latency passing."""

    def elapsed_since(self, start: float) -> float:
        """Seconds elapsed between ``start`` and :meth:`now`."""
        return self.now() - start


class ManualClock(Clock):
    """Virtual clock advanced explicitly or by charged latency.

    Thread-safe: concurrent ``charge`` calls each advance the clock, which
    models serialized execution.  For genuinely parallel virtual time use
    :meth:`charge_parallel` with the maximum of the latencies involved.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> None:
        """Move time forward by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time: {seconds}")
        with self._lock:
            self._now += seconds

    def charge(self, seconds: float) -> None:
        self.advance(seconds)

    def charge_parallel(self, latencies: list[float]) -> None:
        """Charge a batch of latencies that conceptually ran in parallel."""
        if latencies:
            self.advance(max(latencies))


class RealClock(Clock):
    """Wall-clock time; charged latency becomes a (scaled) real sleep.

    ``time_scale`` maps simulated seconds to real seconds.  ``now`` always
    reports *simulated* seconds so metric collection sees the same units
    regardless of which clock is in use.
    """

    def __init__(self, time_scale: float = 1.0) -> None:
        if time_scale <= 0:
            raise ValueError(f"time_scale must be positive, got {time_scale}")
        self.time_scale = time_scale
        self._origin = time.monotonic()

    def now(self) -> float:
        return (time.monotonic() - self._origin) / self.time_scale

    def charge(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds * self.time_scale)


SYSTEM_CLOCK = RealClock()
"""A shared unscaled wall clock, the default for components that need one."""


async def acharge(clock: Clock, seconds: float) -> None:
    """Charge ``seconds`` of simulated latency without blocking the loop.

    The event-loop counterpart of :meth:`Clock.charge`, used by the
    async invocation core (:mod:`repro.core.aio`):

    * under a virtual :class:`ManualClock`, charging is an instant
      bookkeeping advance — identical to the sync path, so virtual-time
      runs stay deterministic and bit-for-bit comparable;
    * under a scaled :class:`RealClock`, the (scaled) wait becomes an
      ``await asyncio.sleep`` instead of a thread-blocking
      ``time.sleep``, which is what lets thousands of in-flight calls
      share one event loop.

    Cancellation: an ``asyncio.CancelledError`` raised while sleeping
    aborts the charge; under a real clock :meth:`Clock.now` is derived
    from wall time, so the partial wait is still observed.
    """
    time_scale = getattr(clock, "time_scale", None)
    if time_scale is None:
        # Virtual clock: charge() only advances a counter; it never
        # sleeps, so calling it from a coroutine cannot stall the loop.
        clock.charge(seconds)  # repro: ignore[RA007] — instant on a virtual clock
        return
    if seconds > 0:
        await asyncio.sleep(seconds * time_scale)
