"""Deterministic random number generation.

All stochastic behaviour in the library (latency noise, failure
injection, corpus generation, workload generation) flows from
:class:`SeededRng` instances so that every test and benchmark is
reproducible.  ``derive_seed`` produces stable child seeds from a parent
seed plus a label, letting independent components share one master seed
without correlating their streams.
"""

from __future__ import annotations

import hashlib
import random
from collections.abc import Sequence
from typing import TypeVar

T = TypeVar("T")


def derive_seed(parent_seed: int, label: str) -> int:
    """Derive a stable 63-bit child seed from ``parent_seed`` and ``label``."""
    digest = hashlib.sha256(f"{parent_seed}:{label}".encode()).digest()
    return int.from_bytes(digest[:8], "big") & (2**63 - 1)


class SeededRng:
    """Thin deterministic wrapper around :class:`random.Random`.

    Adds the handful of distributions the simulation needs (lognormal
    latency noise, Zipf-like popularity, Bernoulli trials) with explicit,
    validated parameters.
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._random = random.Random(seed)

    def child(self, label: str) -> "SeededRng":
        """Return an independent generator derived from this one's seed."""
        return SeededRng(derive_seed(self.seed, label))

    # -- basic draws -----------------------------------------------------

    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range [low, high]."""
        return self._random.randint(low, high)

    def random(self) -> float:
        return self._random.random()

    def bernoulli(self, probability: float) -> bool:
        """Return True with the given probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        return self._random.random() < probability

    def gauss(self, mean: float, stddev: float) -> float:
        return self._random.gauss(mean, stddev)

    def lognormal(self, mean: float, sigma: float) -> float:
        """Lognormal draw — the canonical shape of network latency noise."""
        return self._random.lognormvariate(mean, sigma)

    def exponential(self, rate: float) -> float:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        return self._random.expovariate(rate)

    # -- collections -----------------------------------------------------

    def choice(self, items: Sequence[T]) -> T:
        return self._random.choice(items)

    def sample(self, items: Sequence[T], count: int) -> list[T]:
        return self._random.sample(items, count)

    def shuffled(self, items: Sequence[T]) -> list[T]:
        copied = list(items)
        self._random.shuffle(copied)
        return copied

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        return self._random.choices(items, weights=weights, k=1)[0]

    def zipf_index(self, size: int, exponent: float = 1.0) -> int:
        """Draw an index in [0, size) with Zipf-like popularity skew.

        Index 0 is the most popular item.  Used for cache-workload
        generation where a few keys dominate the request stream.
        """
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        weights = [1.0 / (rank + 1) ** exponent for rank in range(size)]
        return self._random.choices(range(size), weights=weights, k=1)[0]
