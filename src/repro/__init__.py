"""repro — reproduction of "Supporting Data Analytics Applications
Which Utilize Cognitive Services" (Iyengar, ICDCS 2017).

Two systems, as in the paper:

* :mod:`repro.core` — the **Rich SDK**: service monitoring, latency
  prediction, ranking (Equations 1 and 2), retry and ranked failover,
  redundant multi-service invocation, client-side caching, quota and
  budget tracking, synchronous / asynchronous (ListenableFuture)
  invocation, and the NLU support layer (web search → fetch → store →
  analyze → aggregate).

* :mod:`repro.kb` — the **Personalized Knowledge Base** built on the
  SDK: KV / relational / RDF / CSV storage with format conversion,
  entity disambiguation, reasoning (transitive, RDFS, user rules),
  statistical analysis whose results feed inference, local spell
  checking, client-side encryption and compression, and offline
  operation with resynchronization.

Everything remote is simulated locally (:mod:`repro.services` behind
:mod:`repro.simnet`) with seeded latency / failure / cost / quality
models; see DESIGN.md for the substitution table.

Quickstart::

    from repro import build_world, RichClient

    world = build_world()
    with RichClient(world.registry) as client:
        result = client.invoke(
            "lexica-prime", "analyze",
            {"text": "IBM announced excellent results."},
        )
        print(result.value["sentiment"])
"""

from repro.core.invoker import RichClient
from repro.core.ranking import Weights
from repro.core.websearch import WebSearchAnalyzer
from repro.kb.knowledge_base import PersonalKnowledgeBase
from repro.obs import Observability
from repro.services.catalog import World, build_world

__version__ = "1.0.0"

__all__ = [
    "RichClient",
    "Weights",
    "WebSearchAnalyzer",
    "PersonalKnowledgeBase",
    "Observability",
    "World",
    "build_world",
    "__version__",
]
