"""Simulated natural language understanding services.

Each provider is a *real* NLU engine — gazetteer NER with alias
disambiguation, TF-based keyword extraction, taxonomy concept tagging,
lexicon sentiment with negation handling, and entity-targeted
sentiment — wrapped as a :class:`SimulatedService`.  Providers differ
in three measurable ways, mirroring the real Watson/Google/Microsoft
spread the paper targets:

* **alias recall** — weaker providers recognize fewer surface forms
  (deterministically, per provider seed), so they miss entities;
* **lexicon coverage** — weaker providers use restricted sentiment
  lexicons, so their polarity calls are noisier;
* **heuristic NER** — the cheapest provider also reports capitalized
  word sequences it cannot disambiguate, hurting precision.

Because the synthetic corpus carries gold annotations, these quality
differences are measurable, which gives the Rich SDK's quality signal
``q`` (Equations 1 and 2) real content.
"""

from __future__ import annotations

import hashlib
import re
from collections import Counter, defaultdict
from collections.abc import Callable

from repro.data.gazetteer import Gazetteer
from repro.data.lexicon import SentimentLexicon
from repro.data.taxonomy import ConceptTaxonomy
from repro.services.base import ServiceRequest, SimulatedService
from repro.simnet.errors import RemoteServiceError
from repro.simnet.latency import LatencyDistribution
from repro.simnet.transport import Transport
from repro.textproc.html import strip_html
from repro.textproc.stopwords import remove_stopwords
from repro.textproc.tokenizer import split_sentences, tokenize, word_tokens

ALL_FEATURES = ("entities", "keywords", "concepts", "sentiment", "entity_sentiment")

_CAPITALIZED_RUN_RE = re.compile(r"\b([A-Z][a-z]+(?:\s+[A-Z][a-z]+){0,2})\b")


def _stable_fraction(seed: int, token: str) -> float:
    """Deterministic pseudo-uniform value in [0, 1) keyed by (seed, token)."""
    digest = hashlib.sha256(f"{seed}:{token}".encode()).digest()
    return int.from_bytes(digest[:4], "big") / 2**32


class NluEngine:
    """The actual language-understanding implementation.

    Separated from the service wrapper so the personalized knowledge
    base can also run one *locally* (the paper's local-processing
    fallback while disconnected).
    """

    def __init__(
        self,
        gazetteer: Gazetteer,
        taxonomy: ConceptTaxonomy,
        lexicon: SentimentLexicon,
        alias_recall: float = 1.0,
        heuristic_ner: bool = False,
        seed: int = 0,
    ) -> None:
        if not 0.0 < alias_recall <= 1.0:
            raise ValueError(f"alias_recall must be in (0, 1], got {alias_recall}")
        self.gazetteer = gazetteer
        self.taxonomy = taxonomy
        self.lexicon = lexicon
        self.alias_recall = alias_recall
        self.heuristic_ner = heuristic_ner
        self.seed = seed
        self._known_surfaces = self._build_surface_table()
        # Longest-first so greedy matching prefers "United States of America"
        # over "United States".  Short surface forms ("US", "IN", "CA")
        # must match case-sensitively or they would swallow ordinary
        # words like the preposition "in".
        self._surface_patterns = []
        for surface in sorted(self._known_surfaces, key=lambda s: (-len(s), s)):
            flags = 0 if len(surface) <= 3 else re.IGNORECASE
            pattern = re.compile(r"\b" + re.escape(surface) + r"\b", flags)
            self._surface_patterns.append((surface, pattern))

    def _build_surface_table(self) -> dict[str, str]:
        """Surface form (original casing) -> entity id, thinned by recall."""
        table: dict[str, str] = {}
        for entity in self.gazetteer:
            # Canonical names are always known; aliases are dropped
            # deterministically for weaker providers.
            table[entity.name] = entity.entity_id
            for alias in entity.aliases:
                if _stable_fraction(self.seed, f"{entity.entity_id}:{alias}") < self.alias_recall:
                    table[alias] = entity.entity_id
        return table

    # -- features ----------------------------------------------------------

    def extract_entities(self, text: str) -> list[dict]:
        """Gazetteer NER with greedy longest-first matching."""
        mentions: dict[str, list[str]] = defaultdict(list)
        consumed = [False] * len(text)
        for surface, pattern in self._surface_patterns:
            for match in pattern.finditer(text):
                span = range(match.start(), match.end())
                if any(consumed[index] for index in span):
                    continue
                for index in span:
                    consumed[index] = True
                entity_id = self._known_surfaces[surface]
                mentions[entity_id].append(match.group(0))

        results = []
        for entity_id, surfaces in mentions.items():
            entity = self.gazetteer.get(entity_id)
            results.append(
                {
                    "id": entity_id,
                    "name": entity.name,
                    "type": entity.entity_type,
                    "count": len(surfaces),
                    "mentions": surfaces,
                    "links": entity.links,
                    "disambiguated": True,
                }
            )

        if self.heuristic_ner:
            results.extend(self._heuristic_entities(text, consumed))
        results.sort(key=lambda item: (-item["count"], item["id"]))
        return results

    def _heuristic_entities(self, text: str, consumed: list[bool]) -> list[dict]:
        """Capitalized runs the gazetteer does not know — possible false positives."""
        found: Counter[str] = Counter()
        for match in _CAPITALIZED_RUN_RE.finditer(text):
            if any(consumed[index] for index in range(match.start(), match.end())):
                continue
            candidate = match.group(1)
            first_word = candidate.split()[0].lower()
            if first_word in {"the", "a", "an", "this", "that", "these", "those"}:
                continue
            found[candidate] += 1
        return [
            {
                "id": f"unk:{surface.lower().replace(' ', '_')}",
                "name": surface,
                "type": "Unknown",
                "count": count,
                "mentions": [surface] * count,
                "links": {},
                "disambiguated": False,
            }
            for surface, count in found.items()
        ]

    def extract_keywords(self, text: str, limit: int = 10) -> list[dict]:
        """Frequent content words; relevance normalized to the top word.

        Keywords are *not* disambiguated (the paper is explicit about
        this asymmetry with entities).
        """
        tokens = remove_stopwords(word_tokens(text))
        counts = Counter(token for token in tokens if len(token) > 2)
        if not counts:
            return []
        top = counts.most_common(limit)
        peak = top[0][1]
        return [
            {"text": token, "relevance": round(count / peak, 4), "count": count}
            for token, count in top
        ]

    def extract_concepts(self, text: str, limit: int = 5) -> list[dict]:
        """Taxonomy concepts triggered by the document's tokens."""
        tokens = word_tokens(text)
        hits: Counter[str] = Counter()
        for token in tokens:
            for concept in self.taxonomy.concepts_for_token(token):
                hits[concept] += 1
        if not hits:
            return []
        top = hits.most_common(limit)
        peak = top[0][1]
        return [
            {
                "concept": concept,
                "path": "/" + "/".join(self.taxonomy.path(concept)),
                "relevance": round(count / peak, 4),
            }
            for concept, count in top
        ]

    def document_sentiment(self, text: str) -> dict:
        """Whole-document polarity in [-1, 1] with a discrete label."""
        sentences = split_sentences(text)
        total = 0.0
        for sentence in sentences:
            total += self.lexicon.score_tokens(tokenize(sentence))
        # Normalize by document length: an identical rant twice as long
        # should not look twice as polarized.
        scale = max(1.0, len(sentences) ** 0.5) * 4.0
        score = max(-1.0, min(1.0, total / scale))
        if score > 0.05:
            label = "positive"
        elif score < -0.05:
            label = "negative"
        else:
            label = "neutral"
        return {"score": round(score, 4), "label": label}

    def entity_sentiment(self, text: str) -> dict[str, dict]:
        """Per-entity polarity: average sentiment of sentences mentioning it.

        Mirrors the Watson feature §2.2 highlights — sentiment for
        individual entities rather than whole documents.
        """
        sentences = split_sentences(text)
        totals: dict[str, float] = defaultdict(float)
        counts: dict[str, int] = defaultdict(int)
        for sentence in sentences:
            entities_here = self.extract_entities(sentence)
            if not entities_here:
                continue
            sentence_score = self.lexicon.score_tokens(tokenize(sentence))
            for entity in entities_here:
                if not entity["disambiguated"]:
                    continue
                totals[entity["id"]] += sentence_score
                counts[entity["id"]] += 1
        results: dict[str, dict] = {}
        for entity_id, total in totals.items():
            mean = total / counts[entity_id]
            score = max(-1.0, min(1.0, mean / 4.0))
            if score > 0.05:
                label = "positive"
            elif score < -0.05:
                label = "negative"
            else:
                label = "neutral"
            results[entity_id] = {"score": round(score, 4), "label": label,
                                  "mentions": counts[entity_id]}
        return results

    def disambiguate(self, phrase: str) -> dict | None:
        """Resolve a phrase to a unique entity with its link bundle.

        Reproduces the paper's example: ``"US"`` resolves to the United
        States with DBpedia/YAGO/Wikidata URLs.  Falls back to scanning
        the phrase for a known surface form (so whole sentences like
        "The US is a country" also resolve).
        """
        entity = self.gazetteer.resolve(phrase)
        if entity is None:
            found = self.extract_entities(phrase)
            disambiguated = [item for item in found if item["disambiguated"]]
            if not disambiguated:
                return None
            best = disambiguated[0]
            entity = self.gazetteer.get(best["id"])
        return {
            "id": entity.entity_id,
            "name": entity.name,
            "type": entity.entity_type,
            "links": entity.links,
        }

    def analyze(self, text: str, features: tuple[str, ...] = ALL_FEATURES) -> dict:
        """Run the requested features over one document."""
        unknown = set(features) - set(ALL_FEATURES)
        if unknown:
            raise ValueError(f"unknown NLU features: {sorted(unknown)}")
        result: dict[str, object] = {"language": "en", "text_length": len(text)}
        if "entities" in features:
            result["entities"] = self.extract_entities(text)
        if "keywords" in features:
            result["keywords"] = self.extract_keywords(text)
        if "concepts" in features:
            result["concepts"] = self.extract_concepts(text)
        if "sentiment" in features:
            result["sentiment"] = self.document_sentiment(text)
        if "entity_sentiment" in features:
            result["entity_sentiment"] = self.entity_sentiment(text)
        return result


class NluService(SimulatedService):
    """A remote NLU endpoint wrapping an :class:`NluEngine`.

    Operations (one document per request, as the paper notes real NLU
    APIs require):

    * ``analyze`` — ``{"text": ..., "features": [...]}``
    * ``analyze_url`` — ``{"url": ..., "features": [...]}`` (only when
      constructed with a ``web_fetcher``)
    * ``disambiguate`` — ``{"phrase": ...}``
    """

    def __init__(
        self,
        name: str,
        transport: Transport,
        engine: NluEngine,
        web_fetcher: Callable[[str], str | None] | None = None,
        latency: LatencyDistribution | None = None,
        **service_kwargs,
    ) -> None:
        super().__init__(name, "nlu", transport, latency=latency, **service_kwargs)
        self.engine = engine
        self.web_fetcher = web_fetcher

    def latency_params(self, request: ServiceRequest) -> dict[str, float]:
        text = request.payload.get("text", "")
        return {"size": float(len(text)) if isinstance(text, str) else 0.0}

    def _handle(self, request: ServiceRequest) -> object:
        payload = request.payload
        if request.operation == "analyze":
            text = payload.get("text")
            if not isinstance(text, str) or not text.strip():
                raise RemoteServiceError(self.name, "analyze requires non-empty 'text'",
                                         status=400)
            features = tuple(payload.get("features") or ALL_FEATURES)
            return self.engine.analyze(text, features)
        if request.operation == "analyze_url":
            if self.web_fetcher is None:
                raise RemoteServiceError(self.name, "this service cannot fetch URLs",
                                         status=400)
            url = payload.get("url")
            html = self.web_fetcher(str(url))
            if html is None:
                raise RemoteServiceError(self.name, f"could not fetch {url!r}", status=404)
            features = tuple(payload.get("features") or ALL_FEATURES)
            result = self.engine.analyze(strip_html(html), features)
            result["retrieved_url"] = url
            return result
        if request.operation == "disambiguate":
            phrase = payload.get("phrase")
            if not isinstance(phrase, str) or not phrase.strip():
                raise RemoteServiceError(self.name, "disambiguate requires 'phrase'",
                                         status=400)
            resolved = self.engine.disambiguate(phrase)
            return {"resolved": resolved}
        raise RemoteServiceError(self.name, f"unknown operation {request.operation!r}",
                                 status=400)
