"""Simulated speech recognition services.

Speech recognition is one of the cognitive services the paper names
alongside NLU ("natural language processing, speech recognition, and
video recognition").  No audio exists offline, so an "utterance" is
simulated as a word sequence passed through a noisy channel: each word
survives, is corrupted character-wise, is dropped, or gains an inserted
neighbour, all seeded.  An ASR provider then decodes the corrupted
stream back to text using a dictionary language model (the shared
Norvig corrector): providers with better language models and lower
channel loss achieve measurably lower word error rate (WER), giving the
Rich SDK's ranking and multi-service combination real material — e.g.
ROVER-style voting across providers beats each one alone.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.services.base import ServiceRequest, SimulatedService
from repro.services.spellcheck import SpellChecker
from repro.simnet.errors import RemoteServiceError
from repro.simnet.latency import LatencyDistribution
from repro.simnet.transport import Transport
from repro.textproc.tokenizer import word_tokens
from repro.util.rng import SeededRng

_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


@dataclass
class Utterance:
    """A simulated audio clip: the corrupted signal plus gold text."""

    utterance_id: str
    signal_words: list[str]
    gold_words: list[str]


def _corrupt_word(rng: SeededRng, word: str, char_error: float) -> str:
    characters = list(word)
    for index in range(len(characters)):
        if rng.bernoulli(char_error):
            characters[index] = rng.choice(_ALPHABET)
    return "".join(characters)


def generate_utterances(
    texts: list[str],
    seed: int = 9,
    char_error: float = 0.12,
    drop_rate: float = 0.03,
) -> list[Utterance]:
    """Turn clean sentences into noisy 'audio' with gold transcripts."""
    rng = SeededRng(seed)
    utterances = []
    for index, text in enumerate(texts):
        gold = word_tokens(text)
        signal: list[str] = []
        clip_rng = rng.child(f"utt-{index}")
        for word in gold:
            if clip_rng.bernoulli(drop_rate):
                continue  # the word was inaudible
            signal.append(_corrupt_word(clip_rng, word, char_error))
        utterances.append(Utterance(f"utt-{index:04d}", signal, gold))
    return utterances


def word_error_rate(hypothesis: list[str], reference: list[str]) -> float:
    """WER: word-level edit distance / reference length."""
    if not reference:
        return 0.0 if not hypothesis else 1.0
    previous = list(range(len(hypothesis) + 1))
    for row, ref_word in enumerate(reference, start=1):
        current = [row]
        for column, hyp_word in enumerate(hypothesis, start=1):
            cost = 0 if ref_word == hyp_word else 1
            current.append(min(previous[column] + 1,
                               current[column - 1] + 1,
                               previous[column - 1] + cost))
        previous = current
    return previous[-1] / len(reference)


class SpeechRecognitionService(SimulatedService):
    """A remote ASR endpoint.

    Operation ``transcribe`` — ``{"signal": ["wrd", "sequnce", ...]}`` →
    ``{"transcript": "...", "words": [...]}``.

    ``acuity`` is the probability of hearing each signal word at all
    (below it the word is lost before decoding); the provider's
    dictionary corrector then repairs the surviving words.  Weaker
    providers have lower acuity and a thinner language model.
    """

    def __init__(
        self,
        name: str,
        transport: Transport,
        language_model: SpellChecker,
        acuity: float = 1.0,
        seed: int = 0,
        latency: LatencyDistribution | None = None,
        **service_kwargs,
    ) -> None:
        if not 0.0 < acuity <= 1.0:
            raise ValueError(f"acuity must be in (0, 1], got {acuity}")
        super().__init__(name, "speech", transport, latency=latency, **service_kwargs)
        self.language_model = language_model
        self.acuity = acuity
        self._decode_rng = SeededRng(seed)

    def latency_params(self, request: ServiceRequest) -> dict[str, float]:
        signal = request.payload.get("signal", [])
        return {"size": float(len(signal)) if isinstance(signal, list) else 0.0}

    def _handle(self, request: ServiceRequest) -> object:
        if request.operation != "transcribe":
            raise RemoteServiceError(self.name, f"unknown operation "
                                     f"{request.operation!r}", status=400)
        signal = request.payload.get("signal")
        if not isinstance(signal, list) or not all(
            isinstance(word, str) for word in signal
        ):
            raise RemoteServiceError(self.name,
                                     "transcribe requires 'signal': [words]",
                                     status=400)
        decoded: list[str] = []
        for word in signal:
            if not self._decode_rng.bernoulli(self.acuity):
                continue  # below this provider's acuity threshold
            decoded.append(self.language_model.correct_word(word.lower()))
        return {"transcript": " ".join(decoded), "words": decoded}


def _align_to_backbone(backbone: list[str], other: list[str]) -> list[str | None]:
    """Edit-distance alignment of ``other`` onto the backbone's slots.

    Returns, per backbone position, the word of ``other`` aligned there
    (None where ``other`` has a deletion).  Insertions in ``other`` are
    dropped — ROVER's word transition network does the same when the
    backbone lacks a slot for them.
    """
    rows = len(backbone) + 1
    columns = len(other) + 1
    distance = [[0] * columns for _ in range(rows)]
    for row in range(rows):
        distance[row][0] = row
    for column in range(columns):
        distance[0][column] = column
    for row in range(1, rows):
        for column in range(1, columns):
            cost = 0 if backbone[row - 1] == other[column - 1] else 1
            distance[row][column] = min(
                distance[row - 1][column] + 1,        # deletion in other
                distance[row][column - 1] + 1,        # insertion in other
                distance[row - 1][column - 1] + cost,  # match/substitution
            )
    aligned: list[str | None] = [None] * len(backbone)
    row, column = len(backbone), len(other)
    while row > 0 and column > 0:
        cost = 0 if backbone[row - 1] == other[column - 1] else 1
        if distance[row][column] == distance[row - 1][column - 1] + cost:
            aligned[row - 1] = other[column - 1]
            row -= 1
            column -= 1
        elif distance[row][column] == distance[row - 1][column] + 1:
            row -= 1  # other deleted this backbone word
        else:
            column -= 1  # other inserted a word; skip it
    return aligned


def rover_vote(hypotheses: list[list[str]]) -> list[str]:
    """ROVER-style combination of several ASR hypotheses.

    The longest hypothesis is the backbone; every other hypothesis is
    edit-aligned onto it, then each slot takes a majority vote (the
    backbone's own word breaks ties).  Robust to dropped words, unlike
    naive positional voting.
    """
    if not hypotheses:
        return []
    backbone = max(hypotheses, key=len)
    per_slot: list[dict[str, int]] = [
        {word: 1} for word in backbone
    ]
    for hypothesis in hypotheses:
        if hypothesis is backbone:
            continue
        for slot, word in enumerate(_align_to_backbone(backbone, hypothesis)):
            if word is not None:
                per_slot[slot][word] = per_slot[slot].get(word, 0) + 1
    voted = []
    for slot, candidates in enumerate(per_slot):
        backbone_word = backbone[slot]
        best = max(
            sorted(candidates),
            key=lambda word: (candidates[word], word == backbone_word),
        )
        voted.append(best)
    return voted
