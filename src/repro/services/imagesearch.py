"""Simulated image search.

"Search engines can identify images matching a query; these images can
be passed to an image analysis service and/or stored locally" (§2.2).
This service is the image-search half of that sentence: a tag-indexed
catalogue of synthetic images (see :mod:`repro.services.vision`) that
answers keyword queries with image descriptors — which the Rich SDK
then feeds to the visual recognition providers.

Tags are noisy on purpose: most images carry their gold label as a tag,
but a seeded fraction carry wrong or missing tags, so search results
contain genuinely off-topic images and downstream classification has
real work to do.
"""

from __future__ import annotations

from repro.services.base import ServiceRequest, SimulatedService
from repro.services.vision import SyntheticImage, generate_images
from repro.simnet.errors import RemoteServiceError
from repro.simnet.latency import LatencyDistribution
from repro.simnet.transport import Transport
from repro.util.rng import SeededRng


class ImageSearchService(SimulatedService):
    """Tag-based image search over a synthetic image collection.

    Operations:

    * ``search_images`` — ``{"query": "cat", "limit": 10}`` → images
      whose tags contain the query term;
    * ``get_image`` — ``{"image_id": ...}`` → one image's descriptor.
    """

    def __init__(
        self,
        name: str,
        transport: Transport,
        images: list[SyntheticImage] | None = None,
        mistag_rate: float = 0.15,
        seed: int = 11,
        latency: LatencyDistribution | None = None,
        **service_kwargs,
    ) -> None:
        super().__init__(name, "imagesearch", transport, latency=latency,
                         **service_kwargs)
        self.images = images if images is not None else generate_images(
            count=200, seed=seed)
        rng = SeededRng(seed).child("tags")
        labels = sorted({image.gold_label for image in self.images})
        self._tags: dict[str, list[str]] = {}
        for image in self.images:
            if rng.bernoulli(mistag_rate):
                # Mistagged: the uploader labelled it as something else.
                tags = [rng.choice([label for label in labels
                                    if label != image.gold_label])]
            else:
                tags = [image.gold_label]
            if rng.bernoulli(0.3):
                tags.append(rng.choice(labels))  # a second, noisy tag
            self._tags[image.image_id] = tags
        self._by_id = {image.image_id: image for image in self.images}

    def tags_of(self, image_id: str) -> list[str]:
        return list(self._tags[image_id])

    def _handle(self, request: ServiceRequest) -> object:
        payload = request.payload
        if request.operation == "search_images":
            query = str(payload.get("query", "")).strip().lower()
            if not query:
                raise RemoteServiceError(self.name,
                                         "search_images requires 'query'",
                                         status=400)
            limit = int(payload.get("limit", 10))
            hits = []
            for image in self.images:
                if query in (tag.lower() for tag in self._tags[image.image_id]):
                    hits.append({
                        "image_id": image.image_id,
                        "descriptor": image.descriptor,
                        "tags": self._tags[image.image_id],
                    })
                    if len(hits) >= limit:
                        break
            return {"query": query, "results": hits}
        if request.operation == "get_image":
            image_id = str(payload.get("image_id", ""))
            image = self._by_id.get(image_id)
            if image is None:
                raise RemoteServiceError(self.name,
                                         f"no such image {image_id!r}",
                                         status=404)
            return {"image_id": image_id, "descriptor": image.descriptor,
                    "tags": self._tags[image_id]}
        raise RemoteServiceError(self.name, f"unknown operation "
                                 f"{request.operation!r}", status=400)
