"""Simulated external data sources.

* :class:`KnowledgeService` — DBpedia/Wikidata/YAGO-style fact lookup
  over the shared gazetteer.  Each instance has partial coverage and its
  own property-naming convention, reproducing the §3 pain point that
  "data sets might use different conventions for naming" and making the
  PKB's disambiguation layer necessary rather than decorative.
* :class:`StockDataService` — seeded synthetic daily price series per
  company (geometric-ish random walk with drift), so the PKB's
  regression/prediction pipeline has numeric data to chew on.
* :class:`GeoDataService` — coordinates and monthly climate normals for
  cities and countries (deterministic sinusoid + noise).
"""

from __future__ import annotations

import hashlib
import math

from repro.data.gazetteer import Gazetteer
from repro.services.base import ServiceRequest, SimulatedService
from repro.simnet.errors import RemoteServiceError
from repro.simnet.latency import LatencyDistribution
from repro.simnet.transport import Transport
from repro.util.rng import SeededRng


def _covered(seed: int, key: str, coverage: float) -> bool:
    digest = hashlib.sha256(f"{seed}:{key}".encode()).digest()
    return int.from_bytes(digest[:4], "big") / 2**32 < coverage


_NAMING_STYLES = {
    # DBpedia-style camelCase properties, canonical names kept as-is.
    "camel": lambda prop: prop.split("_")[0] + "".join(
        part.capitalize() for part in prop.split("_")[1:]
    ),
    # YAGO-style: angle-bracket-free but underscored and prefixed.
    "underscore": lambda prop: "has_" + prop,
    # Wikidata-style opaque property codes derived from the name.
    "pcode": lambda prop: "P" + str(
        int.from_bytes(hashlib.sha256(prop.encode()).digest()[:2], "big") % 900 + 100
    ),
}


class KnowledgeService(SimulatedService):
    """A public knowledge base endpoint with partial coverage.

    Operations:

    * ``lookup`` — ``{"entity": <surface form or entity id>}`` →
      this source's record (its own property names and resource URI);
    * ``entities_of_type`` — ``{"type": ...}`` → all covered entities of
      a type;
    * ``property_names`` — the source's property-name mapping, so
      clients can learn the convention.
    """

    def __init__(
        self,
        name: str,
        transport: Transport,
        gazetteer: Gazetteer,
        coverage: float = 1.0,
        naming_style: str = "camel",
        uri_prefix: str = "http://dbpedia.org/resource/",
        seed: int = 0,
        latency: LatencyDistribution | None = None,
        **service_kwargs,
    ) -> None:
        if naming_style not in _NAMING_STYLES:
            raise ValueError(f"unknown naming style {naming_style!r}")
        super().__init__(name, "knowledge", transport, latency=latency, **service_kwargs)
        self.gazetteer = gazetteer
        self.coverage = coverage
        self.naming_style = naming_style
        self.uri_prefix = uri_prefix
        self.seed = seed
        self._rename = _NAMING_STYLES[naming_style]

    def covers(self, entity_id: str) -> bool:
        """Whether this source has a record for the entity."""
        return _covered(self.seed, entity_id, self.coverage)

    def _record_for(self, entity_id: str) -> dict | None:
        entity = self.gazetteer.get(entity_id)
        if entity is None or not self.covers(entity_id):
            return None
        facts = {self._rename(prop): value for prop, value in entity.properties.items()}
        return {
            "uri": self.uri_prefix + entity.name.replace(" ", "_"),
            "label": entity.name,
            "type": self._rename("entity_type"),
            "type_value": entity.entity_type,
            "facts": facts,
            "source": self.name,
        }

    def _handle(self, request: ServiceRequest) -> object:
        payload = request.payload
        if request.operation == "lookup":
            key = str(payload.get("entity", ""))
            entity = self.gazetteer.get(key) or self.gazetteer.resolve(key)
            if entity is None:
                raise RemoteServiceError(self.name, f"unknown entity {key!r}", status=404)
            record = self._record_for(entity.entity_id)
            if record is None:
                raise RemoteServiceError(self.name, f"{key!r} not in this knowledge base",
                                         status=404)
            return record
        if request.operation == "entities_of_type":
            wanted = str(payload.get("type", ""))
            records = [
                self._record_for(entity.entity_id)
                for entity in self.gazetteer.entities_of_type(wanted)
                if self.covers(entity.entity_id)
            ]
            return {"type": wanted, "records": [record for record in records if record]}
        if request.operation == "property_names":
            sample_props = {"population_millions", "capital", "sector", "founded"}
            return {prop: self._rename(prop) for prop in sorted(sample_props)}
        raise RemoteServiceError(self.name, f"unknown operation {request.operation!r}",
                                 status=400)


class StockDataService(SimulatedService):
    """Synthetic daily stock prices for the gazetteer's companies.

    The series is a seeded random walk with a per-company drift, so
    linear regression over it recovers a meaningful trend (benchmark F5
    relies on this).  Operations:

    * ``quote`` — ``{"symbol": ...}`` → latest price;
    * ``history`` — ``{"symbol": ..., "days": N}`` → the last N closes.
    """

    def __init__(self, name: str, transport: Transport, gazetteer: Gazetteer,
                 seed: int = 17, series_length: int = 365,
                 latency: LatencyDistribution | None = None, **service_kwargs) -> None:
        super().__init__(name, "marketdata", transport, latency=latency, **service_kwargs)
        self.gazetteer = gazetteer
        self._series: dict[str, list[float]] = {}
        for entity in gazetteer.entities_of_type("Company"):
            symbol = self.symbol_for(entity.name)
            rng = SeededRng(seed).child(f"stock:{symbol}")
            base = 20.0 + rng.uniform(0, 180.0)
            drift = rng.uniform(-0.08, 0.15)
            prices = [base]
            for _ in range(series_length - 1):
                shock = rng.gauss(drift, 1.2)
                prices.append(max(1.0, prices[-1] + shock))
            self._series[symbol] = [round(price, 2) for price in prices]

    @staticmethod
    def symbol_for(company_name: str) -> str:
        """Deterministic ticker symbol for a company name."""
        consonants = [char for char in company_name.upper() if char.isalpha()]
        return "".join(consonants[:4]) if consonants else "XXXX"

    @property
    def symbols(self) -> list[str]:
        return sorted(self._series)

    def _handle(self, request: ServiceRequest) -> object:
        payload = request.payload
        symbol = str(payload.get("symbol", ""))
        if symbol not in self._series:
            raise RemoteServiceError(self.name, f"unknown symbol {symbol!r}", status=404)
        series = self._series[symbol]
        if request.operation == "quote":
            return {"symbol": symbol, "price": series[-1], "day": len(series) - 1}
        if request.operation == "history":
            days = int(payload.get("days", 30))
            if days <= 0:
                raise RemoteServiceError(self.name, "days must be positive", status=400)
            window = series[-days:]
            start_day = len(series) - len(window)
            return {
                "symbol": symbol,
                "days": [start_day + offset for offset in range(len(window))],
                "closes": window,
            }
        raise RemoteServiceError(self.name, f"unknown operation {request.operation!r}",
                                 status=400)


class GeoDataService(SimulatedService):
    """Coordinates and monthly climate normals for places.

    Operations:

    * ``locate`` — ``{"place": ...}`` → deterministic lat/lon;
    * ``climate`` — ``{"place": ...}`` → 12 monthly mean temperatures
      (sinusoidal seasonal cycle + seeded noise).
    """

    def __init__(self, name: str, transport: Transport, gazetteer: Gazetteer,
                 seed: int = 23, latency: LatencyDistribution | None = None,
                 **service_kwargs) -> None:
        super().__init__(name, "geodata", transport, latency=latency, **service_kwargs)
        self.gazetteer = gazetteer
        self.seed = seed

    def _place(self, surface: str):
        entity = self.gazetteer.get(surface) or self.gazetteer.resolve(surface)
        if entity is None or entity.entity_type not in ("City", "Country"):
            return None
        return entity

    def _handle(self, request: ServiceRequest) -> object:
        payload = request.payload
        place = self._place(str(payload.get("place", "")))
        if place is None:
            raise RemoteServiceError(
                self.name, f"unknown place {payload.get('place')!r}", status=404
            )
        rng = SeededRng(self.seed).child(f"geo:{place.entity_id}")
        latitude = round(rng.uniform(-60, 70), 4)
        longitude = round(rng.uniform(-180, 180), 4)
        if request.operation == "locate":
            return {"place": place.name, "latitude": latitude, "longitude": longitude}
        if request.operation == "climate":
            amplitude = abs(latitude) / 90.0 * 18.0
            mean_temp = 27.0 - abs(latitude) * 0.35
            months = []
            for month in range(12):
                seasonal = amplitude * math.cos((month - 6) / 12.0 * 2 * math.pi)
                months.append(round(mean_temp + seasonal + rng.gauss(0, 0.8), 2))
            return {"place": place.name, "monthly_mean_temperature": months}
        raise RemoteServiceError(self.name, f"unknown operation {request.operation!r}",
                                 status=400)
