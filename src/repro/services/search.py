"""Simulated web search engines and the simulated web itself.

* :class:`WebService` serves the synthetic corpus as "the web": it
  fetches HTML documents by URL, which is what the Rich SDK does with
  the URLs a search returns (Figure 3).
* :class:`SearchEngineService` is a BM25 engine over a (per-engine,
  deterministic) subset of the corpus.  Engines differ in coverage,
  ranking parameters, latency and cost — like Google vs. Bing vs.
  Yahoo! — and support the paper's "restrict to news stories" option.
"""

from __future__ import annotations

import hashlib

from repro.data.corpus import SyntheticCorpus
from repro.services.base import ServiceRequest, SimulatedService
from repro.simnet.errors import RemoteServiceError
from repro.simnet.latency import LatencyDistribution
from repro.simnet.transport import Transport
from repro.textproc.tfidf import TfidfIndex


def _covered(seed: int, doc_id: str, coverage: float) -> bool:
    digest = hashlib.sha256(f"{seed}:{doc_id}".encode()).digest()
    return int.from_bytes(digest[:4], "big") / 2**32 < coverage


class WebService(SimulatedService):
    """The simulated web: fetches a page's HTML by URL.

    Operation ``fetch`` — ``{"url": ...}`` → ``{"url", "html", "timestamp"}``.
    Unknown URLs yield a 404-style :class:`RemoteServiceError`.
    """

    def __init__(self, name: str, transport: Transport, corpus: SyntheticCorpus,
                 latency: LatencyDistribution | None = None, **service_kwargs) -> None:
        super().__init__(name, "web", transport, latency=latency, **service_kwargs)
        self.corpus = corpus

    def fetcher(self):
        """A plain ``url -> html | None`` callable for other services.

        NLU services constructed with this fetcher can implement
        ``analyze_url`` without a circular service dependency.
        """
        def fetch(url: str) -> str | None:
            document = self.corpus.by_url(url)
            return document.html if document is not None else None

        return fetch

    def _handle(self, request: ServiceRequest) -> object:
        if request.operation != "fetch":
            raise RemoteServiceError(self.name, f"unknown operation {request.operation!r}",
                                     status=400)
        url = str(request.payload.get("url", ""))
        document = self.corpus.by_url(url)
        if document is None:
            raise RemoteServiceError(self.name, f"no such page: {url!r}", status=404)
        return {"url": url, "html": document.html, "timestamp": document.timestamp}


class SearchEngineService(SimulatedService):
    """A BM25 search engine over its own crawl of the simulated web.

    Operation ``search`` — ``{"query": ..., "limit": 10, "news_only":
    false}`` → ranked results with url, title, snippet and score.

    ``coverage`` controls which fraction of the corpus this engine has
    crawled (deterministic per engine seed), so different engines
    genuinely return different result sets — the reason the Rich SDK
    lets applications aggregate over several engines.
    """

    def __init__(
        self,
        name: str,
        transport: Transport,
        corpus: SyntheticCorpus,
        coverage: float = 1.0,
        k1: float = 1.5,
        b: float = 0.75,
        seed: int = 0,
        latency: LatencyDistribution | None = None,
        **service_kwargs,
    ) -> None:
        if not 0.0 < coverage <= 1.0:
            raise ValueError(f"coverage must be in (0, 1], got {coverage}")
        super().__init__(name, "search", transport, latency=latency, **service_kwargs)
        self.corpus = corpus
        self.coverage = coverage
        self.k1 = k1
        self.b = b
        self.seed = seed
        self._index = TfidfIndex()
        self._crawled: dict[str, str] = {}  # doc_id -> url
        for document in corpus:
            if _covered(seed, document.doc_id, coverage):
                self._index.add_document(document.doc_id, document.title + "\n" + document.text)
                self._crawled[document.doc_id] = document.url

    @property
    def crawl_size(self) -> int:
        """Number of pages in this engine's index."""
        return len(self._crawled)

    def latency_params(self, request: ServiceRequest) -> dict[str, float]:
        query = request.payload.get("query", "")
        return {"size": float(len(query)) if isinstance(query, str) else 0.0}

    def _snippet(self, doc_id: str, max_chars: int = 160) -> str:
        text = self.corpus.by_id(doc_id).text
        body = text.split("\n", 1)[-1]
        return body[:max_chars].rstrip() + ("..." if len(body) > max_chars else "")

    def _handle(self, request: ServiceRequest) -> object:
        if request.operation != "search":
            raise RemoteServiceError(self.name, f"unknown operation {request.operation!r}",
                                     status=400)
        payload = request.payload
        query = payload.get("query")
        if not isinstance(query, str) or not query.strip():
            raise RemoteServiceError(self.name, "search requires a non-empty 'query'",
                                     status=400)
        limit = int(payload.get("limit", 10))
        news_only = bool(payload.get("news_only", False))

        scored = self._index.bm25_scores(query, k1=self.k1, b=self.b)
        results = []
        for rank, (doc_id, score) in enumerate(scored):
            document = self.corpus.by_id(doc_id)
            if news_only and document.doc_type != "news":
                continue
            results.append(
                {
                    "rank": len(results) + 1,
                    "url": document.url,
                    "title": document.title,
                    "snippet": self._snippet(doc_id),
                    "score": round(score, 4),
                    "doc_type": document.doc_type,
                }
            )
            if len(results) >= limit:
                break
        return {
            "query": query,
            "engine": self.name,
            "news_only": news_only,
            "total_candidates": len(scored),
            "results": results,
        }
