"""Remote spell-checking service.

Section 3 claims the PKB's *local* spell checker is "generally faster
as it avoids the overheads of remote communication" and that some
online checkers "cost money".  This service is the remote, metered
counterpart: same Norvig-style algorithm (shared with
:mod:`repro.kb.spellcheck`), but behind network latency and a per-call
fee, so benchmark A3 can measure the local-vs-remote gap the paper
asserts.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.services.base import PerCallCost, ServiceRequest, SimulatedService
from repro.simnet.errors import RemoteServiceError
from repro.simnet.latency import LatencyDistribution, LogNormalLatency
from repro.simnet.transport import Transport
from repro.textproc.distance import damerau_levenshtein
from repro.textproc.tokenizer import word_tokens

_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


class SpellChecker:
    """Norvig-style corrector over a known-word dictionary.

    Candidates within edit distance 1 are generated directly; distance-2
    candidates come from a bounded dictionary scan.  Ties break by word
    frequency, then alphabetically.
    """

    def __init__(self, dictionary_counts: dict[str, int]) -> None:
        if not dictionary_counts:
            raise ValueError("spell checker needs a non-empty dictionary")
        self.counts = {word.lower(): count for word, count in dictionary_counts.items()}

    @classmethod
    def from_texts(cls, texts: Iterable[str],
                   extra_words: Iterable[str] = ()) -> "SpellChecker":
        """Build the dictionary from a text corpus plus extra known words."""
        counts: dict[str, int] = {}
        for text in texts:
            for token in word_tokens(text):
                counts[token] = counts.get(token, 0) + 1
        for word in extra_words:
            counts.setdefault(word.lower(), 1)
        return cls(counts)

    def is_known(self, word: str) -> bool:
        return word.lower() in self.counts

    def _edits1(self, word: str) -> set[str]:
        splits = [(word[:index], word[index:]) for index in range(len(word) + 1)]
        deletes = {left + right[1:] for left, right in splits if right}
        transposes = {left + right[1] + right[0] + right[2:]
                      for left, right in splits if len(right) > 1}
        replaces = {left + char + right[1:]
                    for left, right in splits if right for char in _ALPHABET}
        inserts = {left + char + right for left, right in splits for char in _ALPHABET}
        return deletes | transposes | replaces | inserts

    def suggestions(self, word: str, limit: int = 5) -> list[str]:
        """Correction candidates for ``word``, best first."""
        lowered = word.lower()
        if self.is_known(lowered):
            return [lowered]
        known_edit1 = {edit for edit in self._edits1(lowered) if edit in self.counts}
        if known_edit1:
            ranked = sorted(known_edit1, key=lambda w: (-self.counts[w], w))
            return ranked[:limit]
        # Distance-2 fallback: scan the dictionary with an early-exit metric.
        candidates = [
            dict_word for dict_word in self.counts
            if abs(len(dict_word) - len(lowered)) <= 2
            and damerau_levenshtein(dict_word, lowered) <= 2
        ]
        ranked = sorted(candidates, key=lambda w: (-self.counts[w], w))
        return ranked[:limit]

    def correct_word(self, word: str) -> str:
        """The single best correction (the word itself when known)."""
        ranked = self.suggestions(word, limit=1)
        return ranked[0] if ranked else word.lower()

    def correct_text(self, text: str) -> dict:
        """Correct every unknown word in ``text``.

        Returns the corrected token sequence and the list of
        (original, correction) replacements made.
        """
        tokens = word_tokens(text, lowercase=True)
        corrected: list[str] = []
        replacements: list[tuple[str, str]] = []
        for token in tokens:
            fixed = self.correct_word(token)
            corrected.append(fixed)
            if fixed != token:
                replacements.append((token, fixed))
        return {"tokens": corrected, "replacements": replacements}


class SpellcheckService(SimulatedService):
    """The remote, metered wrapper around :class:`SpellChecker`.

    Operations: ``suggest`` — ``{"word": ...}``; ``correct`` —
    ``{"text": ...}``.
    """

    def __init__(self, name: str, transport: Transport, checker: SpellChecker,
                 latency: LatencyDistribution | None = None,
                 fee_per_call: float = 0.0002, **service_kwargs) -> None:
        if latency is None:
            latency = LogNormalLatency(median=0.08, sigma=0.3)
        service_kwargs.setdefault("cost_model", PerCallCost(fee_per_call))
        super().__init__(name, "spellcheck", transport, latency=latency, **service_kwargs)
        self.checker = checker

    def _handle(self, request: ServiceRequest) -> object:
        payload = request.payload
        if request.operation == "suggest":
            word = str(payload.get("word", ""))
            if not word:
                raise RemoteServiceError(self.name, "suggest requires 'word'", status=400)
            return {"word": word, "suggestions": self.checker.suggestions(word)}
        if request.operation == "correct":
            text = str(payload.get("text", ""))
            result = self.checker.correct_text(text)
            return {"corrected": " ".join(result["tokens"]),
                    "replacements": [list(pair) for pair in result["replacements"]]}
        raise RemoteServiceError(self.name, f"unknown operation {request.operation!r}",
                                 status=400)
