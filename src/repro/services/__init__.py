"""Simulated remote services.

Every external dependency of the paper's Rich SDK — cognitive services,
search engines, knowledge-base endpoints, data feeds, storage services —
is implemented here as a :class:`~repro.services.base.SimulatedService`:
a real local implementation behind the simulated network boundary, with
configurable latency, failure, cost and quota models.
"""

from repro.services.base import (
    ServiceRequest,
    ServiceResponse,
    SimulatedService,
    ServiceRegistry,
    CostModel,
    FreeCost,
    PerCallCost,
    SizeBasedCost,
    FailureModel,
    NeverFails,
    RandomFailures,
    ScriptedFailures,
    OutageWindows,
    Quota,
    QuotaExceededError,
)

__all__ = [
    "ServiceRequest",
    "ServiceResponse",
    "SimulatedService",
    "ServiceRegistry",
    "CostModel",
    "FreeCost",
    "PerCallCost",
    "SizeBasedCost",
    "FailureModel",
    "NeverFails",
    "RandomFailures",
    "ScriptedFailures",
    "OutageWindows",
    "Quota",
    "QuotaExceededError",
]
