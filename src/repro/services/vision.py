"""Simulated visual recognition services.

The paper's SDK treats image analysis exactly like text analysis:
search engines find images for a query, each image goes to a visual
recognition service, and results are aggregated.  Real image data is
not available offline, so images are simulated as labelled feature
descriptors: each class has a prototype vector, and an "image" is its
class prototype plus seeded noise.  A recognition provider classifies
by nearest prototype — but sees only its own (per-provider) subset of
descriptor dimensions, so providers differ in accuracy the same
measurable way the NLU providers do.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.services.base import ServiceRequest, SimulatedService
from repro.simnet.errors import RemoteServiceError
from repro.simnet.latency import LatencyDistribution
from repro.simnet.transport import Transport
from repro.util.rng import SeededRng

DEFAULT_LABELS = (
    "cat", "dog", "car", "airplane", "building", "tree", "mountain",
    "beach", "food", "person",
)

DESCRIPTOR_DIMS = 16


def class_prototypes(labels: tuple[str, ...] = DEFAULT_LABELS,
                     seed: int = 5) -> dict[str, list[float]]:
    """Deterministic prototype descriptor per class label."""
    prototypes: dict[str, list[float]] = {}
    for label in labels:
        rng = SeededRng(seed).child(f"proto:{label}")
        prototypes[label] = [rng.uniform(-1, 1) for _ in range(DESCRIPTOR_DIMS)]
    return prototypes


@dataclass
class SyntheticImage:
    """A simulated image: an id, a descriptor and its gold label."""

    image_id: str
    descriptor: list[float]
    gold_label: str


def generate_images(count: int = 100, noise: float = 0.35, seed: int = 11,
                    labels: tuple[str, ...] = DEFAULT_LABELS) -> list[SyntheticImage]:
    """Generate ``count`` labelled images as noisy prototype copies."""
    prototypes = class_prototypes(labels)
    rng = SeededRng(seed)
    images = []
    for index in range(count):
        label = rng.choice(labels)
        prototype = prototypes[label]
        descriptor = [value + rng.gauss(0, noise) for value in prototype]
        images.append(SyntheticImage(f"img-{index:04d}", descriptor, label))
    return images


def _distance(first: list[float], second: list[float], dims: list[int]) -> float:
    return math.sqrt(sum((first[dim] - second[dim]) ** 2 for dim in dims))


class VisualRecognitionService(SimulatedService):
    """Nearest-prototype image classifier with per-provider acuity.

    ``visible_dims`` controls how many of the descriptor's dimensions
    the provider can see; fewer dimensions means lower accuracy.
    Operation ``classify`` — ``{"descriptor": [floats]}`` → ranked
    ``[{"label", "confidence"}]``.
    """

    def __init__(self, name: str, transport: Transport,
                 visible_dims: int = DESCRIPTOR_DIMS, seed: int = 5,
                 labels: tuple[str, ...] = DEFAULT_LABELS,
                 latency: LatencyDistribution | None = None, **service_kwargs) -> None:
        if not 1 <= visible_dims <= DESCRIPTOR_DIMS:
            raise ValueError(f"visible_dims must be in [1, {DESCRIPTOR_DIMS}]")
        super().__init__(name, "vision", transport, latency=latency, **service_kwargs)
        self.prototypes = class_prototypes(labels, seed=seed)
        rng = SeededRng(seed).child(f"dims:{name}")
        self.dims = sorted(rng.sample(range(DESCRIPTOR_DIMS), visible_dims))

    def _handle(self, request: ServiceRequest) -> object:
        if request.operation != "classify":
            raise RemoteServiceError(self.name, f"unknown operation {request.operation!r}",
                                     status=400)
        descriptor = request.payload.get("descriptor")
        if not isinstance(descriptor, list) or len(descriptor) != DESCRIPTOR_DIMS:
            raise RemoteServiceError(
                self.name, f"classify requires a {DESCRIPTOR_DIMS}-dim 'descriptor'",
                status=400,
            )
        distances = {
            label: _distance(descriptor, prototype, self.dims)
            for label, prototype in self.prototypes.items()
        }
        # Convert distances to confidences with a softmax over -distance.
        peak = min(distances.values())
        weights = {label: math.exp(-(dist - peak) * 2.0) for label, dist in distances.items()}
        total = sum(weights.values())
        ranked = sorted(weights.items(), key=lambda item: (-item[1], item[0]))
        return {
            "classes": [
                {"label": label, "confidence": round(weight / total, 4)}
                for label, weight in ranked[:5]
            ]
        }
