"""Base framework for simulated remote services.

A :class:`SimulatedService` pairs a real local implementation (the
``_handle`` method of a subclass) with the models that make it behave
like a cloud endpoint:

* a latency model (:mod:`repro.simnet.latency`), parameterized by the
  request's *latency parameters* — the paper's term for features like
  argument size that latency depends on;
* a failure model (random failures, scripted failures, outage windows);
* a monetary cost model — the ``c`` in the paper's ranking Equations 1
  and 2;
* an optional quota, reproducing the per-day invocation limits that
  §2.2 gives as a reason to cache analysis results.

All invocations cross the :class:`repro.simnet.Transport` boundary, so
payloads are serialized and connectivity/timeout semantics apply.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.simnet.errors import RemoteServiceError
from repro.simnet.latency import ConstantLatency, LatencyDistribution
from repro.simnet.transport import Transport, wire_size
from repro.util.rng import SeededRng


@dataclass(frozen=True)
class ServiceRequest:
    """One request to a service: an operation name plus a JSON payload."""

    operation: str
    payload: Mapping[str, object] = field(default_factory=dict)


@dataclass
class ServiceResponse:
    """A successful service result with its observed latency and billed cost."""

    value: object
    latency: float
    cost: float
    service_name: str
    operation: str


# ---------------------------------------------------------------------------
# Cost models
# ---------------------------------------------------------------------------

class CostModel(ABC):
    """Maps a request to the monetary cost of serving it."""

    @abstractmethod
    def cost(self, request: ServiceRequest) -> float:
        """Monetary cost (arbitrary currency units) of one invocation."""


class FreeCost(CostModel):
    """A service that costs nothing to call."""

    def cost(self, request: ServiceRequest) -> float:
        return 0.0


class PerCallCost(CostModel):
    """A flat fee per invocation."""

    def __init__(self, fee: float) -> None:
        if fee < 0:
            raise ValueError(f"fee must be non-negative, got {fee}")
        self.fee = fee

    def cost(self, request: ServiceRequest) -> float:
        return self.fee


class SizeBasedCost(CostModel):
    """A flat fee plus a per-byte charge on the request payload.

    Models cloud stores that bill by the amount of data shipped — the
    reason §3 gives for compressing *before* upload.
    """

    def __init__(self, fee: float, per_kilobyte: float) -> None:
        if fee < 0 or per_kilobyte < 0:
            raise ValueError("fee and per_kilobyte must be non-negative")
        self.fee = fee
        self.per_kilobyte = per_kilobyte

    def cost(self, request: ServiceRequest) -> float:
        kilobytes = wire_size(dict(request.payload)) / 1024.0
        return self.fee + self.per_kilobyte * kilobytes


# ---------------------------------------------------------------------------
# Failure models
# ---------------------------------------------------------------------------

class FailureModel(ABC):
    """Decides whether a given invocation fails server-side."""

    @abstractmethod
    def should_fail(self, call_index: int, now: float, rng: SeededRng) -> bool:
        """True when the ``call_index``-th call, issued at ``now``, fails."""


class NeverFails(FailureModel):
    def should_fail(self, call_index: int, now: float, rng: SeededRng) -> bool:
        return False


class RandomFailures(FailureModel):
    """Each call independently fails with a fixed probability."""

    def __init__(self, probability: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        self.probability = probability

    def should_fail(self, call_index: int, now: float, rng: SeededRng) -> bool:
        return rng.bernoulli(self.probability)


class ScriptedFailures(FailureModel):
    """Fails exactly the calls whose (0-based) indexes are listed.

    ``ScriptedFailures({0, 1})`` makes the first two calls fail and all
    later ones succeed — ideal for testing retry logic deterministically.
    """

    def __init__(self, failing_calls: set[int]) -> None:
        self.failing_calls = set(failing_calls)

    def should_fail(self, call_index: int, now: float, rng: SeededRng) -> bool:
        return call_index in self.failing_calls


class OutageWindows(FailureModel):
    """Fails every call issued inside any of the given time windows."""

    def __init__(self, windows: list[tuple[float, float]]) -> None:
        for start, end in windows:
            if end < start:
                raise ValueError(f"invalid outage window ({start}, {end})")
        self.windows = list(windows)

    def should_fail(self, call_index: int, now: float, rng: SeededRng) -> bool:
        return any(start <= now < end for start, end in self.windows)


# ---------------------------------------------------------------------------
# Quotas
# ---------------------------------------------------------------------------

class QuotaExceededError(RemoteServiceError):
    """The client exhausted its invocation quota for the current window."""

    def __init__(self, endpoint: str, limit: int, window: float) -> None:
        super().__init__(endpoint, f"quota of {limit} calls per {window:.0f}s exceeded",
                         status=429)
        self.limit = limit
        self.window = window


class Quota:
    """A fixed number of invocations per rolling time window."""

    def __init__(self, limit: int, window: float = 86_400.0) -> None:
        if limit <= 0:
            raise ValueError(f"limit must be positive, got {limit}")
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.limit = limit
        self.window = window
        self._timestamps: list[float] = []

    def remaining(self, now: float) -> int:
        """Invocations still allowed at time ``now``."""
        self._expire(now)
        return self.limit - len(self._timestamps)

    def consume(self, now: float) -> bool:
        """Record one invocation; returns False when over quota."""
        self._expire(now)
        if len(self._timestamps) >= self.limit:
            return False
        self._timestamps.append(now)
        return True

    def _expire(self, now: float) -> None:
        cutoff = now - self.window
        self._timestamps = [stamp for stamp in self._timestamps if stamp > cutoff]


# ---------------------------------------------------------------------------
# The service base class
# ---------------------------------------------------------------------------

@dataclass
class ServiceStats:
    """Server-side counters, independent of any one client's view."""

    calls: int = 0
    failures: int = 0
    quota_rejections: int = 0
    revenue: float = 0.0


class SimulatedService(ABC):
    """A locally-implemented service behind the simulated network.

    Subclasses implement :meth:`_handle` (the actual functionality) and
    may override :meth:`latency_params` to expose request features the
    latency model depends on.

    ``kind`` groups services with similar functionality — the unit over
    which the Rich SDK ranks and fails over (e.g. three services of kind
    ``"nlu"``).

    Services that can serve several requests in one round trip declare
    it by setting :attr:`batch_max_size` (the catalog does this for the
    providers whose real-world counterparts expose batch endpoints);
    :meth:`invoke_batch` then packs up to that many payloads into a
    single transport call.
    """

    #: Max items accepted per batched transport call; None = the service
    #: has no batch endpoint.  Set per instance by the catalog.
    batch_max_size: int | None = None

    def __init__(
        self,
        name: str,
        kind: str,
        transport: Transport,
        latency: LatencyDistribution | None = None,
        failures: FailureModel | None = None,
        cost_model: CostModel | None = None,
        quota: Quota | None = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.transport = transport
        self.latency = latency if latency is not None else ConstantLatency(0.01)
        self.failures = failures if failures is not None else NeverFails()
        self.cost_model = cost_model if cost_model is not None else FreeCost()
        self.quota = quota
        self.stats = ServiceStats()
        self._rng = transport.rng.child(f"service:{name}")
        self._call_index = 0

    # -- subclass API ----------------------------------------------------

    @abstractmethod
    def _handle(self, request: ServiceRequest) -> object:
        """Serve one request and return a JSON-serializable result."""

    def latency_params(self, request: ServiceRequest) -> dict[str, float]:
        """Features of the request that latency may depend on.

        The default exposes the request payload's wire size under
        ``"size"`` — the paper's canonical latency parameter.
        """
        return {"size": float(wire_size(dict(request.payload)))}

    # -- client entry point ----------------------------------------------

    def invoke(
        self,
        operation: str,
        payload: Mapping[str, object] | None = None,
        timeout: float | None = None,
    ) -> ServiceResponse:
        """Invoke the service across the simulated network.

        Raises :class:`repro.simnet.ConnectivityError`,
        :class:`repro.simnet.ServiceTimeoutError`,
        :class:`QuotaExceededError` or
        :class:`repro.simnet.RemoteServiceError` on the corresponding
        failure; otherwise returns a :class:`ServiceResponse` carrying
        the observed latency and billed cost.
        """
        server_fn, wire_request, params = self._prepare_invoke(operation, payload)
        result = self.transport.call(
            endpoint=self.name,
            server_fn=server_fn,
            request=wire_request,
            timeout=timeout,
            latency_params=params,
        )
        return self._parse_invoke(result, operation)

    async def ainvoke(
        self,
        operation: str,
        payload: Mapping[str, object] | None = None,
        timeout: float | None = None,
    ) -> ServiceResponse:
        """Event-loop counterpart of :meth:`invoke`.

        Same request/response semantics and the same exceptions; latency
        is awaited on the event loop (:meth:`Transport.acall`) instead
        of blocking a thread.  Cancelling the awaiting task abandons the
        call mid-wire: server-side effects that already happened (quota
        consumed, handler run) are not undone, matching a real network
        where cancellation only stops the client from waiting.
        """
        server_fn, wire_request, params = self._prepare_invoke(operation, payload)
        result = await self.transport.acall(
            endpoint=self.name,
            server_fn=server_fn,
            request=wire_request,
            timeout=timeout,
            latency_params=params,
        )
        return self._parse_invoke(result, operation)

    def _prepare_invoke(self, operation, payload):
        """Build the (server_fn, wire request, latency params) triple."""
        request = ServiceRequest(operation, dict(payload or {}))
        params = self.latency_params(request)

        def server_fn(request_payload: dict) -> tuple[dict, float]:
            return self._serve(request, params)

        wire_request = {"operation": operation, "payload": dict(request.payload)}
        return server_fn, wire_request, params

    def _parse_invoke(self, result, operation: str) -> ServiceResponse:
        """Turn a transport result into a :class:`ServiceResponse`."""
        if "value" not in result.payload or "cost" not in result.payload:
            # A garbled wire payload (e.g. chaos corruption) is a
            # transient transport-side failure, so surface it as a
            # retryable 502 rather than a KeyError.
            raise RemoteServiceError(self.name, "malformed response payload",
                                     status=502)
        return ServiceResponse(
            value=result.payload["value"],
            latency=result.latency,
            cost=float(result.payload["cost"]),
            service_name=self.name,
            operation=operation,
        )

    @property
    def supports_batching(self) -> bool:
        """Whether this service declares a batch endpoint in the catalog."""
        return self.batch_max_size is not None

    def invoke_batch(
        self,
        operation: str,
        payloads: Sequence[Mapping[str, object]],
        timeout: float | None = None,
    ) -> list[ServiceResponse | RemoteServiceError]:
        """Invoke up to :attr:`batch_max_size` requests in ONE round trip.

        The whole batch crosses the transport as a single call (one
        connectivity check, one timeout, one latency charge), modelling
        a vectorized inference endpoint: the batch's compute latency is
        the *maximum* of the per-item samples rather than their sum,
        which is where micro-batching wins its throughput.  Per-item
        failures are isolated — each item comes back as either a
        :class:`ServiceResponse` or a :class:`RemoteServiceError`
        (quota rejections carry status 429), in input order.  Raises
        ``ValueError`` when the service declares no batch support or
        the batch exceeds ``batch_max_size``; transport-level errors
        (offline, timeout) still raise for the batch as a whole because
        the one wire call failed for every item.
        """
        prepared = self._prepare_batch(operation, payloads)
        if prepared is None:
            return []
        server_fn, wire_request, params, size = prepared
        result = self.transport.call(
            endpoint=self.name,
            server_fn=server_fn,
            request=wire_request,
            timeout=timeout,
            latency_params=params,
            batch_size=size,
        )
        return self._parse_batch(result, operation)

    async def ainvoke_batch(
        self,
        operation: str,
        payloads: Sequence[Mapping[str, object]],
        timeout: float | None = None,
    ) -> list[ServiceResponse | RemoteServiceError]:
        """Event-loop counterpart of :meth:`invoke_batch`.

        One awaited round trip for the whole batch, with the same
        per-item isolation and error semantics as the sync path.
        Cancellation mid-wire abandons every item of the batch at once
        (they share the single transport call); server-side effects for
        items already served are not undone.
        """
        prepared = self._prepare_batch(operation, payloads)
        if prepared is None:
            return []
        server_fn, wire_request, params, size = prepared
        result = await self.transport.acall(
            endpoint=self.name,
            server_fn=server_fn,
            request=wire_request,
            timeout=timeout,
            latency_params=params,
            batch_size=size,
        )
        return self._parse_batch(result, operation)

    def _prepare_batch(self, operation, payloads):
        """Validate a batch; None for an empty one, else the call parts."""
        if not self.supports_batching:
            raise ValueError(f"service {self.name!r} has no batch endpoint")
        payloads = [dict(payload) for payload in payloads]
        if not payloads:
            return None
        if len(payloads) > self.batch_max_size:
            raise ValueError(
                f"batch of {len(payloads)} exceeds {self.name!r}'s "
                f"batch_max_size={self.batch_max_size}")
        requests = [ServiceRequest(operation, payload) for payload in payloads]
        params = self.latency_params(requests[0])
        params["batch"] = float(len(requests))

        def server_fn(request_payload: dict) -> tuple[dict, float]:
            return self._serve_batch(requests)

        wire_request = {"operation": operation, "batch": payloads}
        return server_fn, wire_request, params, len(requests)

    def _parse_batch(self, result, operation: str) -> list[ServiceResponse | RemoteServiceError]:
        """Unpack a batched transport result into per-item outcomes."""
        if "results" not in result.payload:
            raise RemoteServiceError(self.name, "malformed batch payload",
                                     status=502)
        outcomes: list[ServiceResponse | RemoteServiceError] = []
        for item in result.payload["results"]:
            if "error" in item:
                outcomes.append(RemoteServiceError(
                    self.name, str(item["error"]),
                    status=int(item.get("status", 500))))
            else:
                outcomes.append(ServiceResponse(
                    value=item["value"],
                    latency=result.latency,
                    cost=float(item["cost"]),
                    service_name=self.name,
                    operation=operation,
                ))
        return outcomes

    # -- server side -----------------------------------------------------

    def _serve_batch(self, requests: Sequence[ServiceRequest]) -> tuple[dict, float]:
        """Serve a batch server-side: per-item isolation, max-of latency.

        Each item runs through the same quota/failure/handler path as a
        single call (consuming quota and advancing the failure model's
        call index per item); a failing item becomes an ``error`` entry
        instead of poisoning its batch-mates.  Compute latency is the
        max of the per-item samples — the vectorized-execution model.
        """
        now = self.transport.clock.now()
        samples: list[float] = []
        results: list[dict] = []
        for request in requests:
            call_index = self._call_index
            self._call_index += 1
            self.stats.calls += 1
            samples.append(self.latency.sample(
                self._rng, self.latency_params(request)))
            if self.quota is not None and not self.quota.consume(now):
                self.stats.quota_rejections += 1
                results.append({
                    "error": f"quota of {self.quota.limit} calls per "
                             f"{self.quota.window:.0f}s exceeded",
                    "status": 429,
                })
                continue
            if self.failures.should_fail(call_index, now, self._rng):
                self.stats.failures += 1
                results.append({"error": "internal service failure",
                                "status": 500})
                continue
            try:
                value = self._handle(request)
            except Exception as error:  # noqa: BLE001 — isolated per item
                results.append({"error": str(error), "status": 500})
                continue
            cost = self.cost_model.cost(request)
            self.stats.revenue += cost
            results.append({"value": value, "cost": cost})
        return {"results": results}, max(samples) if samples else 0.0

    def _serve(self, request: ServiceRequest, params: dict[str, float]) -> tuple[dict, float]:
        call_index = self._call_index
        self._call_index += 1
        self.stats.calls += 1
        now = self.transport.clock.now()
        compute_latency = self.latency.sample(self._rng, params)

        if self.quota is not None and not self.quota.consume(now):
            self.stats.quota_rejections += 1
            raise QuotaExceededError(self.name, self.quota.limit, self.quota.window)

        if self.failures.should_fail(call_index, now, self._rng):
            self.stats.failures += 1
            raise RemoteServiceError(self.name, "internal service failure")

        value = self._handle(request)
        cost = self.cost_model.cost(request)
        self.stats.revenue += cost
        return {"value": value, "cost": cost}, compute_latency


class ServiceRegistry:
    """Directory of services, indexed by name and by kind.

    ``services_of_kind`` is what the SDK's ranking, failover and
    multi-invocation features iterate over: "multiple services providing
    similar functionality".
    """

    def __init__(self, services: list[SimulatedService] | None = None) -> None:
        self._by_name: dict[str, SimulatedService] = {}
        for service in services or []:
            self.register(service)

    def register(self, service: SimulatedService) -> None:
        if service.name in self._by_name:
            raise ValueError(f"duplicate service name {service.name!r}")
        self._by_name[service.name] = service

    def __len__(self) -> int:
        return len(self._by_name)

    def __iter__(self):
        return iter(self._by_name.values())

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def get(self, name: str) -> SimulatedService:
        if name not in self._by_name:
            from repro.util.errors import NotFoundError

            raise NotFoundError(f"no service named {name!r}")
        return self._by_name[name]

    def services_of_kind(self, kind: str) -> list[SimulatedService]:
        return [service for service in self if service.kind == kind]

    def kinds(self) -> set[str]:
        return {service.kind for service in self}
