"""Assembles the full simulated world the examples, tests and benchmarks run in.

``build_world`` wires together: one transport (shared clock, seeded
RNG, connectivity model), the synthetic corpus, and a registry holding
every service the paper's application scenarios need — three NLU
providers, three search engines, the web itself, three knowledge bases,
three cloud stores with different size/latency trade-offs, market and
geo data feeds, a metered spell checker and three visual recognition
providers.  Every profile difference (latency, cost, quality, coverage)
is deliberate: it is the raw material for the Rich SDK's monitoring,
ranking and selection machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.corpus import SyntheticCorpus, generate_corpus
from repro.data.gazetteer import Gazetteer, default_gazetteer
from repro.data.lexicon import default_sentiment_lexicon
from repro.data.taxonomy import ConceptTaxonomy, default_taxonomy
from repro.services.base import PerCallCost, ServiceRegistry, SizeBasedCost
from repro.services.datasources import GeoDataService, KnowledgeService, StockDataService
from repro.services.imagesearch import ImageSearchService
from repro.services.nlu import NluEngine, NluService
from repro.services.search import SearchEngineService, WebService
from repro.services.speech import SpeechRecognitionService
from repro.services.spellcheck import SpellChecker, SpellcheckService
from repro.services.storage import CloudStoreService
from repro.services.transform import TransformService
from repro.services.vision import VisualRecognitionService
from repro.simnet.connectivity import ConnectivityModel
from repro.simnet.latency import LogNormalLatency, SizeDependentLatency
from repro.simnet.transport import Transport
from repro.util.clock import Clock, ManualClock
from repro.util.rng import SeededRng


@dataclass
class World:
    """Everything a scenario needs, fully wired."""

    transport: Transport
    gazetteer: Gazetteer
    taxonomy: ConceptTaxonomy
    corpus: SyntheticCorpus
    registry: ServiceRegistry
    web: WebService

    @property
    def clock(self) -> Clock:
        return self.transport.clock

    def service(self, name: str):
        return self.registry.get(name)

    def services_of_kind(self, kind: str):
        return self.registry.services_of_kind(kind)


def build_world(
    seed: int = 42,
    corpus_size: int = 120,
    clock: Clock | None = None,
    connectivity: ConnectivityModel | None = None,
) -> World:
    """Construct the default world; fully deterministic for a given seed."""
    clock = clock if clock is not None else ManualClock()
    rng = SeededRng(seed)
    transport = Transport(clock=clock, rng=rng, connectivity=connectivity)

    gazetteer = default_gazetteer()
    taxonomy = default_taxonomy()
    lexicon = default_sentiment_lexicon()
    corpus = generate_corpus(size=corpus_size, seed=seed, gazetteer=gazetteer)

    registry = ServiceRegistry()

    web = WebService("worldwide-web", transport, corpus,
                     latency=SizeDependentLatency(base=0.06, slope=2e-6))
    registry.register(web)
    fetcher = web.fetcher()

    # --- NLU providers: premium / mid-tier / budget -----------------------
    registry.register(NluService(
        "lexica-prime", transport,
        NluEngine(gazetteer, taxonomy, lexicon, alias_recall=0.98, seed=1),
        web_fetcher=fetcher,
        latency=LogNormalLatency(median=0.18, sigma=0.30),
        cost_model=PerCallCost(0.0030),
    ))
    registry.register(NluService(
        "glotta", transport,
        NluEngine(gazetteer, taxonomy, lexicon.restricted(0.75), alias_recall=0.85, seed=2),
        web_fetcher=fetcher,
        latency=LogNormalLatency(median=0.10, sigma=0.30),
        cost_model=PerCallCost(0.0015),
    ))
    registry.register(NluService(
        "wordsmith-lite", transport,
        NluEngine(gazetteer, taxonomy, lexicon.restricted(0.50), alias_recall=0.70,
                  heuristic_ner=True, seed=3),
        web_fetcher=None,  # the budget provider cannot fetch URLs itself
        latency=LogNormalLatency(median=0.05, sigma=0.40),
        cost_model=PerCallCost(0.0005),
    ))

    # --- Search engines ----------------------------------------------------
    registry.register(SearchEngineService(
        "goggle", transport, corpus, coverage=0.95, k1=1.5, b=0.75, seed=101,
        latency=LogNormalLatency(median=0.12, sigma=0.25),
    ))
    registry.register(SearchEngineService(
        "bung", transport, corpus, coverage=0.80, k1=1.2, b=0.60, seed=102,
        latency=LogNormalLatency(median=0.09, sigma=0.25),
    ))
    registry.register(SearchEngineService(
        "yahu", transport, corpus, coverage=0.65, k1=2.0, b=0.80, seed=103,
        latency=LogNormalLatency(median=0.07, sigma=0.30),
    ))

    # --- Public knowledge bases ---------------------------------------------
    registry.register(KnowledgeService(
        "dbpedia-sim", transport, gazetteer, coverage=0.90, naming_style="camel",
        uri_prefix="http://dbpedia.org/resource/", seed=201,
        latency=LogNormalLatency(median=0.14, sigma=0.30),
    ))
    registry.register(KnowledgeService(
        "wikidata-sim", transport, gazetteer, coverage=0.95, naming_style="pcode",
        uri_prefix="http://www.wikidata.org/entity/", seed=202,
        latency=LogNormalLatency(median=0.11, sigma=0.30),
    ))
    registry.register(KnowledgeService(
        "yago-sim", transport, gazetteer, coverage=0.75, naming_style="underscore",
        uri_prefix="http://yago-knowledge.org/resource/", seed=203,
        latency=LogNormalLatency(median=0.09, sigma=0.30),
    ))

    # --- Cloud stores: the paper's s1 / s2 size crossover --------------------
    registry.register(CloudStoreService(
        "store-small-fast", transport,
        latency=SizeDependentLatency(base=0.02, slope=2e-5),
        cost_model=SizeBasedCost(fee=0.0001, per_kilobyte=0.00008),
    ))
    registry.register(CloudStoreService(
        "store-bulk", transport,
        latency=SizeDependentLatency(base=0.25, slope=1e-6),
        cost_model=SizeBasedCost(fee=0.0004, per_kilobyte=0.00001),
    ))
    registry.register(CloudStoreService(
        "store-standard", transport,
        latency=SizeDependentLatency(base=0.08, slope=8e-6),
        cost_model=SizeBasedCost(fee=0.0002, per_kilobyte=0.00004),
    ))

    # --- Data feeds ----------------------------------------------------------
    registry.register(StockDataService(
        "tickerfeed", transport, gazetteer, seed=17,
        latency=LogNormalLatency(median=0.06, sigma=0.25),
        cost_model=PerCallCost(0.0002),
    ))
    registry.register(GeoDataService(
        "geosphere", transport, gazetteer, seed=23,
        latency=LogNormalLatency(median=0.07, sigma=0.25),
    ))

    # --- Spell check (remote, metered) ---------------------------------------
    checker = SpellChecker.from_texts(
        (document.text for document in corpus),
        extra_words=(surface for entity in gazetteer for surface in entity.all_surface_forms()),
    )
    registry.register(SpellcheckService(
        "orthografix", transport, checker,
        latency=LogNormalLatency(median=0.08, sigma=0.30),
        fee_per_call=0.0002,
    ))

    # --- Speech recognition: premium / budget ---------------------------------
    # Both share the corpus-derived language model; they differ in
    # acuity (how much of the signal they hear) and the premium one has
    # the full dictionary while the budget one decodes with a thinner
    # model built from a fifth of the corpus.
    thin_checker = SpellChecker.from_texts(
        (document.text for document in corpus.documents[: max(1, len(corpus) // 5)]),
        extra_words=(surface for entity in gazetteer
                     for surface in entity.all_surface_forms()),
    )
    registry.register(SpeechRecognitionService(
        "dictaphone-pro", transport, checker, acuity=0.99, seed=301,
        latency=LogNormalLatency(median=0.22, sigma=0.30),
        cost_model=PerCallCost(0.0035),
    ))
    registry.register(SpeechRecognitionService(
        "mumblecorder", transport, thin_checker, acuity=0.92, seed=302,
        latency=LogNormalLatency(median=0.09, sigma=0.35),
        cost_model=PerCallCost(0.0010),
    ))

    # --- Image search -----------------------------------------------------------
    registry.register(ImageSearchService(
        "pixfinder", transport, mistag_rate=0.15, seed=401,
        latency=LogNormalLatency(median=0.10, sigma=0.25),
    ))

    # --- Data transformation -------------------------------------------------------
    registry.register(TransformService(
        "shapeshift", transport,
        latency=LogNormalLatency(median=0.07, sigma=0.25),
        cost_model=PerCallCost(0.0003),
    ))

    # --- Visual recognition ---------------------------------------------------
    registry.register(VisualRecognitionService(
        "visionary", transport, visible_dims=16, seed=5,
        latency=LogNormalLatency(median=0.20, sigma=0.30),
        cost_model=PerCallCost(0.0040),
    ))
    registry.register(VisualRecognitionService(
        "peek", transport, visible_dims=8, seed=5,
        latency=LogNormalLatency(median=0.11, sigma=0.30),
        cost_model=PerCallCost(0.0020),
    ))
    registry.register(VisualRecognitionService(
        "glance", transport, visible_dims=4, seed=5,
        latency=LogNormalLatency(median=0.06, sigma=0.35),
        cost_model=PerCallCost(0.0008),
    ))

    # --- Batch capability flags ------------------------------------------------
    # The inference-style providers expose batch endpoints (real NLU /
    # vision / spellcheck APIs accept document arrays and amortize the
    # model invocation); stores and feeds stay strictly per-call.  The
    # Rich SDK's MicroBatcher and invoke_many only batch against
    # services flagged here.
    for batchable, batch_size in (
        ("lexica-prime", 16), ("glotta", 16), ("wordsmith-lite", 32),
        ("visionary", 8), ("peek", 8), ("glance", 16),
        ("orthografix", 32),
    ):
        registry.get(batchable).batch_max_size = batch_size

    return World(
        transport=transport,
        gazetteer=gazetteer,
        taxonomy=taxonomy,
        corpus=corpus,
        registry=registry,
        web=web,
    )
