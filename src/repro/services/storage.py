"""Simulated cloud storage services.

Remote key-value stores with size-dependent latency — the substrate for
the paper's running example: storage service *s1* has the lowest
latency for small objects while *s2* wins for large objects, and the
Rich SDK should learn the crossover from observed (size, latency)
pairs and route accordingly.

Operations: ``put`` / ``get`` / ``delete`` / ``exists`` / ``keys``.
Values must be JSON-serializable (the PKB's secure client encrypts and
compresses to strings before calling ``put``).
"""

from __future__ import annotations

from repro.services.base import ServiceRequest, SimulatedService
from repro.simnet.errors import RemoteServiceError
from repro.simnet.latency import LatencyDistribution, SizeDependentLatency
from repro.simnet.transport import Transport, wire_size


class CloudStoreService(SimulatedService):
    """A remote KV store behind the simulated network."""

    def __init__(self, name: str, transport: Transport,
                 latency: LatencyDistribution | None = None, **service_kwargs) -> None:
        if latency is None:
            latency = SizeDependentLatency(base=0.05, slope=0.00002)
        super().__init__(name, "storage", transport, latency=latency, **service_kwargs)
        self._data: dict[str, object] = {}

    @property
    def object_count(self) -> int:
        return len(self._data)

    def latency_params(self, request: ServiceRequest) -> dict[str, float]:
        # Charge by the size of the value being moved: the stored value
        # for puts, the fetched value for gets.
        if request.operation == "put":
            return {"size": float(wire_size(request.payload.get("value")))}
        if request.operation == "get":
            key = str(request.payload.get("key", ""))
            if key in self._data:
                return {"size": float(wire_size(self._data[key]))}
        return {"size": 0.0}

    def _handle(self, request: ServiceRequest) -> object:
        payload = request.payload
        operation = request.operation
        if operation == "put":
            key = payload.get("key")
            if not isinstance(key, str) or not key:
                raise RemoteServiceError(self.name, "put requires a non-empty 'key'",
                                         status=400)
            self._data[key] = payload.get("value")
            return {"stored": key, "bytes": wire_size(payload.get("value"))}
        if operation == "get":
            key = str(payload.get("key", ""))
            if key not in self._data:
                raise RemoteServiceError(self.name, f"no such key {key!r}", status=404)
            return {"key": key, "value": self._data[key]}
        if operation == "delete":
            key = str(payload.get("key", ""))
            existed = key in self._data
            self._data.pop(key, None)
            return {"deleted": existed}
        if operation == "exists":
            return {"exists": str(payload.get("key", "")) in self._data}
        if operation == "keys":
            prefix = str(payload.get("prefix", ""))
            return {"keys": sorted(key for key in self._data if key.startswith(prefix))}
        raise RemoteServiceError(self.name, f"unknown operation {operation!r}", status=400)
