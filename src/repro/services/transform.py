"""Simulated data transformation and extraction services.

The introduction lists "services which provide data transformations
from one format to another as well as data extraction" among the web
services applications build on.  This endpoint offers the remote
counterparts of the PKB's local converters — useful both as another
service kind for the SDK to manage and as the remote-vs-local ablation
target (the PKB can do all of this locally for free).

Operations:

* ``csv_to_records`` — CSV text → list of typed row objects;
* ``records_to_csv`` — the reverse;
* ``html_to_text`` — strip markup (remote counterpart of
  :func:`repro.textproc.html.strip_html`);
* ``extract_numbers`` — pull all numeric values out of free text;
* ``extract_dates`` — pull ISO-format dates (YYYY-MM-DD) out of text.
"""

from __future__ import annotations

import re

from repro.services.base import ServiceRequest, SimulatedService
from repro.simnet.errors import RemoteServiceError
from repro.simnet.latency import LatencyDistribution
from repro.simnet.transport import Transport
from repro.stores.csvio import read_csv_text, write_csv_text
from repro.textproc.html import strip_html

_NUMBER_RE = re.compile(r"-?\d+(?:\.\d+)?")
_DATE_RE = re.compile(r"\b(\d{4})-(\d{2})-(\d{2})\b")


class TransformService(SimulatedService):
    """Remote format conversion and extraction."""

    def __init__(self, name: str, transport: Transport,
                 latency: LatencyDistribution | None = None,
                 **service_kwargs) -> None:
        super().__init__(name, "transform", transport, latency=latency,
                         **service_kwargs)

    def _handle(self, request: ServiceRequest) -> object:
        payload = request.payload
        operation = request.operation
        if operation == "csv_to_records":
            text = payload.get("csv")
            if not isinstance(text, str):
                raise RemoteServiceError(self.name, "csv_to_records requires 'csv'",
                                         status=400)
            header, rows = read_csv_text(text)
            return {"records": [dict(zip(header, row)) for row in rows],
                    "columns": header}
        if operation == "records_to_csv":
            records = payload.get("records")
            if not isinstance(records, list) or not records:
                raise RemoteServiceError(
                    self.name, "records_to_csv requires non-empty 'records'",
                    status=400)
            header = sorted({key for record in records for key in record})
            rows = [[record.get(column) for column in header]
                    for record in records]
            return {"csv": write_csv_text(header, rows)}
        if operation == "html_to_text":
            html = payload.get("html")
            if not isinstance(html, str):
                raise RemoteServiceError(self.name, "html_to_text requires 'html'",
                                         status=400)
            return {"text": strip_html(html)}
        if operation == "extract_numbers":
            text = str(payload.get("text", ""))
            numbers = []
            for match in _NUMBER_RE.finditer(text):
                token = match.group(0)
                numbers.append(float(token) if "." in token else int(token))
            return {"numbers": numbers}
        if operation == "extract_dates":
            text = str(payload.get("text", ""))
            dates = []
            for match in _DATE_RE.finditer(text):
                year, month, day = (int(part) for part in match.groups())
                if 1 <= month <= 12 and 1 <= day <= 31:
                    dates.append(match.group(0))
            return {"dates": dates}
        raise RemoteServiceError(self.name, f"unknown operation {operation!r}",
                                 status=400)
