"""Command-line interface: ``python -m repro <command>``.

Gives the simulated world a front door for quick exploration:

* ``services`` — list every registered service with its kind, latency
  model and cost;
* ``analyze "<text>"`` — run one NLU analysis and print the result;
* ``search "<query>"`` — query a search engine, print ranked hits;
* ``rank <kind>`` — warm the monitor on a sample workload and print
  the SDK's ranking of that kind;
* ``demo`` — a 30-second tour (invoke, cache, rank, failover).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import RichClient, Weights, build_world


def _build(args) -> tuple:
    world = build_world(seed=args.seed, corpus_size=args.corpus_size)
    return world, RichClient(world.registry)


def cmd_services(args) -> int:
    world, client = _build(args)
    print(f"{'name':<18} {'kind':<12} {'latency model':<24} cost model")
    for service in sorted(world.registry, key=lambda s: (s.kind, s.name)):
        latency = type(service.latency).__name__
        cost = type(service.cost_model).__name__
        print(f"{service.name:<18} {service.kind:<12} {latency:<24} {cost}")
    client.close()
    return 0


def cmd_analyze(args) -> int:
    world, client = _build(args)
    result = client.invoke(args.service, "analyze", {"text": args.text})
    print(json.dumps(result.value, indent=2))
    print(f"\n[latency {result.latency * 1000:.1f} ms, cost ${result.cost:.4f}, "
          f"service {result.service}]", file=sys.stderr)
    client.close()
    return 0


def cmd_search(args) -> int:
    world, client = _build(args)
    result = client.invoke(args.engine, "search",
                           {"query": args.query, "limit": args.limit})
    for hit in result.value["results"]:
        print(f"{hit['rank']:>3}. [{hit['score']:6.2f}] {hit['title']}")
        print(f"     {hit['url']}")
    if not result.value["results"]:
        print("(no results)")
    client.close()
    return 0


def cmd_rank(args) -> int:
    world, client = _build(args)
    candidates = world.services_of_kind(args.kind)
    if not candidates:
        print(f"no services of kind {args.kind!r}", file=sys.stderr)
        client.close()
        return 1
    # Warm the monitor with a few calls per candidate where possible.
    sample_text = world.corpus.documents[0].text
    warm_ops = {"nlu": ("analyze", {"text": sample_text}),
                "search": ("search", {"query": "results"}),
                "storage": ("put", {"key": "probe", "value": "x" * 2000})}
    operation = warm_ops.get(args.kind)
    if operation is not None:
        for service in candidates:
            for _ in range(args.warmup):
                client.invoke(service.name, operation[0], operation[1],
                              use_cache=False)
    weights = Weights(response_time=args.latency_weight,
                      cost=args.cost_weight, quality=args.quality_weight)
    print(f"{'rank':<5} {'service':<20} score")
    for position, (name, score) in enumerate(
        client.rank_services(args.kind, weights=weights), start=1
    ):
        print(f"{position:<5} {name:<20} {score:.4f}")
    client.close()
    return 0


def cmd_demo(args) -> int:
    world, client = _build(args)
    text = "IBM announced excellent results while Initech struggled."
    print("1) invoke lexica-prime/analyze ...")
    first = client.invoke("lexica-prime", "analyze", {"text": text})
    print(f"   entities={[e['name'] for e in first.value['entities']]} "
          f"sentiment={first.value['sentiment']['label']} "
          f"({first.latency * 1000:.0f} ms)")
    print("2) the same request again (cache) ...")
    second = client.invoke("lexica-prime", "analyze", {"text": text})
    print(f"   cached={second.cached} latency={second.latency * 1000:.0f} ms")
    print("3) ranking the NLU providers ...")
    for doc in world.corpus.documents[:5]:
        for provider in ("lexica-prime", "glotta", "wordsmith-lite"):
            client.invoke(provider, "analyze", {"text": doc.text},
                          use_cache=False)
    ranked = client.rank_services(
        "nlu", weights=Weights(response_time=1, cost=100, quality=0))
    print("   " + " > ".join(name for name, _ in ranked))
    print("4) failover when the top pick goes down ...")
    from repro.services.base import ScriptedFailures

    world.service(ranked[0][0]).failures = ScriptedFailures(set(range(10)))
    served = client.invoke_with_failover("nlu", "analyze",
                                         {"text": "Globex thrives."},
                                         use_cache=False)
    print(f"   served by {served.service} after {len(served.attempts)} attempts")
    print(f"\nsimulated time: {client.clock.now():.2f}s, "
          f"spend: ${client.quota.total_cost():.4f}")
    client.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Explore the simulated cognitive-services world.")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--corpus-size", type=int, default=60)
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("services", help="list registered services")

    analyze = commands.add_parser("analyze", help="run one NLU analysis")
    analyze.add_argument("text")
    analyze.add_argument("--service", default="lexica-prime")

    search = commands.add_parser("search", help="query a search engine")
    search.add_argument("query")
    search.add_argument("--engine", default="goggle")
    search.add_argument("--limit", type=int, default=5)

    rank = commands.add_parser("rank", help="rank services of a kind")
    rank.add_argument("kind")
    rank.add_argument("--warmup", type=int, default=3)
    rank.add_argument("--latency-weight", type=float, default=1.0)
    rank.add_argument("--cost-weight", type=float, default=1.0)
    rank.add_argument("--quality-weight", type=float, default=1.0)

    commands.add_parser("demo", help="a 30-second tour of the SDK")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "services": cmd_services,
        "analyze": cmd_analyze,
        "search": cmd_search,
        "rank": cmd_rank,
        "demo": cmd_demo,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
