"""Format converters: CSV ↔ relational table ↔ RDF statements.

"The ability to convert data between different formats is a key
property of our personalized knowledge base" — these functions are that
property.  A relational row becomes a bundle of RDF statements with a
row URI as subject and one predicate per column; the reverse direction
pivots (subject, predicate, object) triples back into rows.
"""

from __future__ import annotations

from repro.stores.csvio import read_csv_text, write_csv_text
from repro.stores.rdf.graph import Graph, RDF, REPRO, Triple
from repro.stores.relational import Column, Table

_PYTHON_TO_COLUMN = {int: "int", float: "float", str: "str", bool: "bool"}


def _infer_column_type(values: list[object]) -> str:
    present = [value for value in values if value is not None]
    if not present:
        return "any"
    kinds = {_PYTHON_TO_COLUMN.get(type(value), "any") for value in present}
    if kinds == {"int"}:
        return "int"
    if kinds <= {"int", "float"}:
        return "float"
    if len(kinds) == 1:
        return kinds.pop()
    return "any"


def rows_to_table(name: str, header: list[str], rows: list[list[object]]) -> Table:
    """Build a typed table from raw (header, rows) data, inferring types."""
    columns = []
    for index, column_name in enumerate(header):
        values = [row[index] if index < len(row) else None for row in rows]
        columns.append(Column(column_name, _infer_column_type(values)))
    table = Table(name, columns)
    for row in rows:
        padded = list(row) + [None] * (len(header) - len(row))
        table.insert(dict(zip(header, padded)))
    return table


def csv_text_to_table(name: str, csv_text: str) -> Table:
    """Parse CSV text straight into a typed table."""
    header, rows = read_csv_text(csv_text)
    return rows_to_table(name, header, rows)


def table_to_csv_text(table: Table) -> str:
    """Render a table as CSV (header + rows in insertion order)."""
    header = table.column_names
    rows = [[row[name] for name in header] for row in table.rows]
    return write_csv_text(header, rows)


def table_to_triples(
    table: Table,
    subject_column: str | None = None,
    predicate_prefix: str = "repro:",
) -> list[Triple]:
    """Convert every row to RDF statements.

    The subject is ``repro:<table>/<key>`` where the key comes from
    ``subject_column`` (or the row index).  Each non-null column value
    becomes one statement; every row also gets an ``rdf:type`` linking
    it back to its table, so the reverse conversion can find it.
    """
    triples: list[Triple] = []
    table_type = REPRO(f"table/{table.name}")
    for index, row in enumerate(table.rows):
        if subject_column is not None:
            key = row[subject_column]
            if key is None:
                raise ValueError(f"row {index} has NULL in subject column {subject_column!r}")
        else:
            key = index
        subject = f"{predicate_prefix}{table.name}/{key}"
        triples.append(Triple(subject, RDF.type, table_type))
        for column in table.columns:
            value = row[column.name]
            if value is None:
                continue
            triples.append(Triple(subject, f"{predicate_prefix}{column.name}", value))
    return triples


def triples_to_rows(graph: Graph, table_name: str,
                    predicate_prefix: str = "repro:") -> tuple[list[str], list[list[object]]]:
    """Pivot a table's statements back into (header, rows).

    Finds all subjects typed as the table, collects their predicates as
    columns (sorted for determinism), and emits one row per subject.
    Multi-valued predicates keep one deterministic value (the smallest
    by string order) — relational rows cannot hold sets.
    """
    table_type = REPRO(f"table/{table_name}")
    subjects = sorted(graph.subjects(RDF.type, table_type))
    columns: set[str] = set()
    per_subject: dict[str, dict[str, object]] = {}
    for subject in subjects:
        record: dict[str, object] = {}
        for triple in graph.match(subject, None, None):
            if triple.predicate == RDF.type:
                continue
            if not triple.predicate.startswith(predicate_prefix):
                continue
            column = triple.predicate[len(predicate_prefix):]
            columns.add(column)
            if column in record:
                record[column] = min(record[column], triple.object, key=str)
            else:
                record[column] = triple.object
        per_subject[subject] = record
    header = sorted(columns)
    rows = [[per_subject[subject].get(column) for column in header] for subject in subjects]
    return header, rows
