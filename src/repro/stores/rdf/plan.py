"""Cost-based planning for basic-graph-pattern queries.

``query.select`` used to join patterns in exactly the order the user
wrote them — worst case, a pattern matching half the graph runs first
and every later join multiplies it.  The planner reorders patterns
greedily by estimated cardinality (exact index counts for concrete
positions, average fan-out discounts for join variables bound by
earlier steps — see :meth:`Graph.estimate_cardinality`) and pushes
each filter down to the earliest step after which every variable it
references is bound.

The resulting :class:`QueryPlan` is inspectable: ``plan.explain()``
returns a stable, JSON-friendly dict (asserted verbatim in tests) and
``plan.describe()`` a human-readable rendering::

    plan = build_plan(graph, patterns, filters)
    plan.explain()["steps"][0]["pattern"]   # most selective pattern

Filter variables are discovered from an explicit ``variables``
attribute on the callable when present, else from the ``?var`` string
constants in its compiled code (a sound over-approximation: a filter
is only pushed down when the detected set is non-empty and fully
bound).  Filters whose variables cannot be determined run after the
join, exactly where the naive engine ran them.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from types import CodeType

from repro.stores.rdf.graph import Graph
from repro.stores.rdf.query import Binding, Pattern, _match_pattern, is_variable
from repro.stores.rdf.stats import BOUND


def filter_variables(predicate: Callable[[Binding], bool]) -> frozenset[str] | None:
    """The ``?variables`` a filter references, or None when unknowable.

    Honors an explicit ``variables`` attribute first (see
    :func:`bound_filter`); otherwise scans the callable's code constants
    (recursively, for nested lambdas / genexprs) for ``?``-prefixed
    strings.  Returns None — "do not push down" — when nothing can be
    detected, e.g. for filters built from closures.
    """
    declared = getattr(predicate, "variables", None)
    if declared is not None:
        return frozenset(declared)
    code = getattr(predicate, "__code__", None)
    if code is None:
        return None
    names: set[str] = set()
    stack: list[object] = [code]
    while stack:
        current = stack.pop()
        consts = current.co_consts if isinstance(current, CodeType) else current
        for const in consts:
            if isinstance(const, str) and const.startswith("?"):
                names.add(const)
            elif isinstance(const, (CodeType, tuple, frozenset)):
                stack.append(const)
    return frozenset(names) if names else None


def bound_filter(
    variables: Sequence[str], predicate: Callable[[Binding], bool]
) -> Callable[[Binding], bool]:
    """Tag a filter with the variables it reads, enabling pushdown.

    Use when the filter closes over variable names instead of naming
    them literally — the planner cannot see through closures.
    """
    predicate.variables = frozenset(variables)  # type: ignore[attr-defined]
    return predicate


@dataclass(frozen=True)
class PlanStep:
    """One join step: a pattern plus the filters applied right after it."""

    pattern: Pattern
    source_index: int
    estimated_rows: float
    bound_before: tuple[str, ...]
    filter_indexes: tuple[int, ...]


class QueryPlan:
    """An ordered join plan over basic graph patterns."""

    def __init__(self, steps: Sequence[PlanStep],
                 residual_filters: tuple[int, ...]) -> None:
        self.steps = list(steps)
        self.residual_filters = residual_filters

    def pattern_order(self) -> list[int]:
        """Original pattern indexes in execution order."""
        return [step.source_index for step in self.steps]

    def explain(self) -> dict:
        """A stable, JSON-friendly description of the plan."""
        return {
            "strategy": "greedy-selectivity",
            "steps": [
                {
                    "pattern": list(step.pattern),
                    "source_index": step.source_index,
                    "estimated_rows": round(step.estimated_rows, 3),
                    "bound_before": list(step.bound_before),
                    "filters_pushed": list(step.filter_indexes),
                }
                for step in self.steps
            ],
            "residual_filters": list(self.residual_filters),
        }

    def describe(self) -> str:
        """Human-readable plan rendering, one line per step."""
        lines = []
        for position, step in enumerate(self.steps, start=1):
            pushed = (
                f" | filters {list(step.filter_indexes)}"
                if step.filter_indexes
                else ""
            )
            lines.append(
                f"{position}. {step.pattern!r}"
                f"  ~{step.estimated_rows:g} rows{pushed}"
            )
        if self.residual_filters:
            lines.append(f"residual filters: {list(self.residual_filters)}")
        return "\n".join(lines)


def _estimate(graph: Graph, pattern: Pattern, bound: set[str]) -> float:
    components = tuple(
        (BOUND if component in bound else None)
        if is_variable(component)
        else component
        for component in pattern
    )
    return graph.estimate_cardinality(*components)


def build_plan(
    graph: Graph,
    patterns: Sequence[Pattern],
    filters: Sequence[Callable[[Binding], bool]] = (),
) -> QueryPlan:
    """Order patterns by estimated selectivity and assign filters.

    Greedy: at each step pick the remaining pattern with the lowest
    estimated cardinality given the variables already bound (ties
    break on the original index, which keeps ``explain()`` output
    deterministic).  Each filter is attached to the first step binding
    all of its variables; undetectable or never-bound filters stay
    residual and run after the join.
    """
    normalized = [tuple(pattern) for pattern in patterns]
    filter_vars = [filter_variables(predicate) for predicate in filters]
    remaining = list(range(len(normalized)))
    bound: set[str] = set()
    assigned: set[int] = set()
    steps: list[PlanStep] = []
    while remaining:
        best = min(
            remaining,
            key=lambda index: (_estimate(graph, normalized[index], bound), index),
        )
        remaining.remove(best)
        pattern = normalized[best]
        estimated = _estimate(graph, pattern, bound)
        bound_before = tuple(sorted(bound))
        bound |= {component for component in pattern if is_variable(component)}
        pushed = tuple(
            index
            for index, variables in enumerate(filter_vars)
            if index not in assigned
            and variables is not None
            and variables <= bound
        )
        assigned.update(pushed)
        steps.append(PlanStep(pattern, best, estimated, bound_before, pushed))
    residual = tuple(
        index for index in range(len(filters)) if index not in assigned
    )
    return QueryPlan(steps, residual)


class FanoutPlan:
    """A sharded execution wrapper around a :class:`QueryPlan`.

    Adds the routing layer's decisions — which shards participate,
    whether the query scatters whole per-shard SELECTs or broadcasts
    a router-level join, and whether the per-shard work compiles to a
    native numeric index scan — on top of the inner join plan.  The
    inner plan is built against the sharded store's *global*
    statistics, so its ``explain()`` is byte-identical to the plan a
    single store holding the same triples would produce; only the
    fan-out envelope differs.
    """

    def __init__(self, plan: QueryPlan, route: str, target_shard: int | None,
                 shards: int, native_numeric: bool) -> None:
        self.plan = plan
        self.route = route
        self.target_shard = target_shard
        self.shards = shards
        self.native_numeric = native_numeric

    def explain(self) -> dict:
        """The inner plan's explain plus a stable fan-out envelope."""
        return {
            "strategy": "shard-fanout",
            "route": self.route,
            "target_shard": self.target_shard,
            "shards": self.shards,
            "native_numeric": self.native_numeric,
            "plan": self.plan.explain(),
        }

    def describe(self) -> str:
        """Human-readable rendering: routing header, then join steps."""
        target = (f" -> shard {self.target_shard}"
                  if self.target_shard is not None else "")
        native = " | native numeric scan" if self.native_numeric else ""
        header = f"route {self.route}{target} over {self.shards} shard(s){native}"
        return "\n".join([header, self.plan.describe()])


def build_sharded_plan(
    graph,
    patterns: Sequence[Pattern],
    filters: Sequence[Callable[[Binding], bool]] = (),
    optional: Sequence[Pattern] = (),
) -> FanoutPlan:
    """Plan a query against a (possibly) sharded store.

    Works on any graph: a store without routing hooks plans as one
    ``single-shard`` target.  For a
    :class:`~repro.stores.rdf.shard.ShardedGraph` the route comes from
    its broadcast-vs-colocate decision and ``native_numeric`` reports
    whether the per-shard scans will run inside the backend's numeric
    index (duck-typed so this module needs no import of the sharding
    layer).
    """
    inner = build_plan(graph, patterns, filters)
    route_fn = getattr(graph, "route_select", None)
    if route_fn is None:
        return FanoutPlan(inner, "single-shard", 0, 1, False)
    route, target = route_fn(patterns, optional)
    pushdown_fn = getattr(graph, "native_numeric_pushdown", None)
    native = (pushdown_fn is not None
              and route == "scatter"
              and pushdown_fn(patterns, filters, optional=optional) is not None)
    return FanoutPlan(inner, route, target,
                      getattr(graph, "shard_count", 1), native)


def execute_plan(
    graph: Graph,
    plan: QueryPlan,
    filters: Sequence[Callable[[Binding], bool]] = (),
) -> list[Binding]:
    """Run a plan's join, applying pushed-down filters at each step.

    Residual filters (``plan.residual_filters``) are *not* applied —
    the caller runs them after OPTIONAL extension, matching the naive
    engine's semantics.
    """
    bindings: list[Binding] = [{}]
    for step in plan.steps:
        step_filters = [filters[index] for index in step.filter_indexes]
        next_bindings: list[Binding] = []
        for binding in bindings:
            for extended in _match_pattern(graph, step.pattern, binding):
                if all(predicate(extended) for predicate in step_filters):
                    next_bindings.append(extended)
        bindings = next_bindings
        if not bindings:
            break
    return bindings
