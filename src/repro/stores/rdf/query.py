"""A SPARQL-like SELECT engine over basic graph patterns.

Patterns are (subject, predicate, object) tuples whose components are
either concrete terms or variables — strings starting with ``?``.
``select`` solves the conjunction of patterns against a graph, applies
optional filters over the bindings, and projects the requested
variables.  This is the query layer Jena's SPARQL engine provides in
the paper (used there to query DBpedia; used here against the local
graph and the simulated knowledge services' exports).

By default ``select`` routes the join through the cost-based planner
(:mod:`repro.stores.rdf.plan`): patterns run most-selective-first and
filters are pushed down to the earliest step that binds their
variables.  ``optimize=False`` keeps the literal user-given order (the
naive engine), which the property tests use as the reference
implementation.  When both ``order_by`` and ``limit`` are given (and
``distinct`` is not), the engine switches to heap-based top-k instead
of a full sort.

Example::

    select(
        graph,
        patterns=[("?country", "rdf:type", "repro:Country"),
                  ("?country", "repro:population_millions", "?pop")],
        variables=["?country", "?pop"],
        filters=[lambda b: b["?pop"] > 100],
        order_by="?pop", descending=True,
    )
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Sequence

from repro.stores.rdf.graph import Graph, Term

Pattern = tuple[object, object, object]
Binding = dict[str, Term]


def is_variable(term: object) -> bool:
    """Whether a pattern component is a variable (``?name``)."""
    return isinstance(term, str) and term.startswith("?")


def _substitute(component: object, binding: Binding) -> object:
    if is_variable(component) and component in binding:
        return binding[component]
    return component


def _match_pattern(graph: Graph, pattern: Pattern, binding: Binding) -> list[Binding]:
    """All extensions of ``binding`` that satisfy one pattern."""
    subject, predicate, obj = (_substitute(component, binding) for component in pattern)
    query = (
        None if is_variable(subject) else subject,
        None if is_variable(predicate) else predicate,
        None if is_variable(obj) else obj,
    )
    extensions = []
    for triple in graph.match(*query):
        extended = dict(binding)
        consistent = True
        for component, value in zip((subject, predicate, obj), iter(triple)):
            if is_variable(component):
                if component in extended and extended[component] != value:
                    consistent = False
                    break
                extended[component] = value
            elif component != value:
                consistent = False
                break
        if consistent:
            extensions.append(extended)
    return extensions


def solve(graph: Graph, patterns: Sequence[Pattern]) -> list[Binding]:
    """All variable bindings satisfying every pattern (natural join).

    Joins in the literal pattern order — the naive reference engine.
    ``select`` reorders via the planner instead; use this directly when
    the given order is meaningful.
    """
    bindings: list[Binding] = [{}]
    for pattern in patterns:
        next_bindings: list[Binding] = []
        for binding in bindings:
            next_bindings.extend(_match_pattern(graph, pattern, binding))
        bindings = next_bindings
        if not bindings:
            break
    return bindings


def solve_optional(
    graph: Graph,
    solutions: list[Binding],
    optional_patterns: Sequence[Pattern],
) -> list[Binding]:
    """SPARQL OPTIONAL semantics (left join).

    Each existing solution is extended by the optional pattern group
    where possible; solutions with no compatible extension survive
    unchanged (their optional variables stay unbound).
    """
    extended: list[Binding] = []
    for binding in solutions:
        matches = [dict(binding)]
        for pattern in optional_patterns:
            next_matches: list[Binding] = []
            for candidate in matches:
                next_matches.extend(_match_pattern(graph, pattern, candidate))
            matches = next_matches
            if not matches:
                break
        if matches:
            extended.extend(matches)
        else:
            extended.append(binding)
    return extended


def _order_key(value: object) -> tuple[int, object]:
    """A total-order sort key over mixed-type binding values.

    Values are ranked by class — None, then numerics, then strings,
    then everything else by its repr — and compared by value within a
    rank.  bool / int / float all coerce to float, so mixed numeric
    columns sort numerically instead of grouping by type name.
    """
    if value is None:
        return (0, 0.0)
    if isinstance(value, (bool, int, float)):
        return (1, float(value))
    if isinstance(value, str):
        return (2, value)
    return (3, str(value))


def _binding_key(binding: Binding) -> frozenset:
    """A hashable identity for a binding (order-independent)."""
    return frozenset(binding.items())


def distinct_bindings(bindings: Sequence[Binding]) -> list[Binding]:
    """Drop duplicate bindings, keeping first occurrences in order."""
    seen: set[frozenset] = set()
    unique: list[Binding] = []
    for binding in bindings:
        key = _binding_key(binding)
        if key not in seen:
            seen.add(key)
            unique.append(binding)
    return unique


class RangeFilter:
    """A declarative numeric range filter over one variable.

    Behaves exactly like a hand-written filter callable — it can be
    passed anywhere in ``filters`` — but carries its variable and
    bounds as inspectable data, so execution layers can do better than
    calling it per binding: the planner pushes it down like any
    ``bound_filter`` (it exposes ``variables``), and storage backends
    with native numeric scans (SQLite's ``onum`` column, fanned out
    per shard by :class:`~repro.stores.rdf.shard.ShardedGraph`)
    evaluate the range inside the index scan itself.

    Non-numeric binding values never satisfy a RangeFilter (a
    declared numeric range is also a numeric type constraint).
    """

    __slots__ = ("variable", "low", "high", "low_inclusive",
                 "high_inclusive")

    def __init__(self, variable: str, low: float | None = None,
                 high: float | None = None, *,
                 low_inclusive: bool = True,
                 high_inclusive: bool = True) -> None:
        if not is_variable(variable):
            raise ValueError(
                f"RangeFilter needs a ?variable, got {variable!r}")
        self.variable = variable
        self.low = low
        self.high = high
        self.low_inclusive = low_inclusive
        self.high_inclusive = high_inclusive

    @property
    def variables(self) -> frozenset[str]:
        """The single variable this filter reads (planner pushdown hook)."""
        return frozenset((self.variable,))

    def __call__(self, binding: Binding) -> bool:
        """Whether the binding's value is numeric and inside the range."""
        value = binding.get(self.variable)
        if not isinstance(value, (bool, int, float)):
            return False
        if self.low is not None:
            if self.low_inclusive:
                if value < self.low:
                    return False
            elif value <= self.low:
                return False
        if self.high is not None:
            if self.high_inclusive:
                if value > self.high:
                    return False
            elif value >= self.high:
                return False
        return True

    def __repr__(self) -> str:
        lo = "[" if self.low_inclusive else "("
        hi = "]" if self.high_inclusive else ")"
        return (f"RangeFilter({self.variable} in "
                f"{lo}{self.low}, {self.high}{hi})")


def project_bindings(solutions: list[Binding],
                     variables: Sequence[str]) -> list[Binding]:
    """Project each binding onto ``variables`` (validated)."""
    unknown = [name for name in variables if not is_variable(name)]
    if unknown:
        raise ValueError(f"projection must list variables, got {unknown}")
    return [
        {name: binding[name] for name in variables if name in binding}
        for binding in solutions
    ]


def select(
    graph: Graph,
    patterns: Sequence[Pattern],
    variables: Sequence[str] | None = None,
    filters: Sequence[Callable[[Binding], bool]] = (),
    distinct: bool = False,
    order_by: str | None = None,
    descending: bool = False,
    limit: int | None = None,
    optional: Sequence[Pattern] = (),
    optimize: bool = True,
) -> list[Binding]:
    """Run a SELECT query; returns a list of projected bindings.

    ``variables=None`` projects every variable that appears in the
    patterns.  Filters receive full (pre-projection) bindings.
    ``optional`` patterns have SPARQL OPTIONAL (left-join) semantics:
    they enrich solutions when they match but never eliminate one.
    ``optimize=True`` (the default) plans the join order and filter
    placement by cost; the result set is identical to the naive
    engine's, only the evaluation order changes.
    """
    for pattern in list(patterns) + list(optional):
        if len(pattern) != 3:
            raise ValueError(f"patterns must be triples, got {pattern!r}")
    filters = list(filters)
    if optimize and patterns:
        # Imported lazily: plan.py imports this module for pattern
        # matching, so a top-level import would be circular.
        from repro.stores.rdf.plan import build_plan, execute_plan

        plan = build_plan(graph, patterns, filters)
        solutions = execute_plan(graph, plan, filters)
        remaining_filters = [filters[index] for index in plan.residual_filters]
    else:
        solutions = solve(graph, patterns)
        remaining_filters = filters
    if optional:
        solutions = solve_optional(graph, solutions, optional)
    for predicate in remaining_filters:
        solutions = [binding for binding in solutions if predicate(binding)]
    if order_by is not None:
        def sort_key(binding: Binding) -> tuple[int, object]:
            return _order_key(binding.get(order_by))

        if limit is not None and limit >= 0 and not distinct:
            # Top-k: a bounded heap instead of sorting everything.
            # nsmallest/nlargest are stable, so the outcome matches
            # sort + slice exactly.
            chooser = heapq.nlargest if descending else heapq.nsmallest
            solutions = chooser(limit, solutions, key=sort_key)
        else:
            solutions.sort(key=sort_key, reverse=descending)
    if variables is not None:
        solutions = project_bindings(solutions, variables)
    if distinct:
        solutions = distinct_bindings(solutions)
    if limit is not None:
        solutions = solutions[:limit]
    return solutions


def union(
    graph: Graph,
    pattern_groups: Sequence[Sequence[Pattern]],
    variables: Sequence[str] | None = None,
    distinct: bool = True,
    **select_kwargs,
) -> list[Binding]:
    """SPARQL UNION: the concatenation of each group's solutions.

    Groups may bind different variable subsets (as in SPARQL); with
    ``distinct`` (the default) duplicate bindings across groups are
    collapsed.
    """
    combined: list[Binding] = []
    for patterns in pattern_groups:
        combined.extend(
            select(graph, patterns, variables=variables, distinct=False,
                   **select_kwargs)
        )
    if distinct:
        combined = distinct_bindings(combined)
    return combined
