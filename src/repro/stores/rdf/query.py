"""A SPARQL-like SELECT engine over basic graph patterns.

Patterns are (subject, predicate, object) tuples whose components are
either concrete terms or variables — strings starting with ``?``.
``select`` solves the conjunction of patterns against a graph, applies
optional filters over the bindings, and projects the requested
variables.  This is the query layer Jena's SPARQL engine provides in
the paper (used there to query DBpedia; used here against the local
graph and the simulated knowledge services' exports).

Example::

    select(
        graph,
        patterns=[("?country", "rdf:type", "repro:Country"),
                  ("?country", "repro:population_millions", "?pop")],
        variables=["?country", "?pop"],
        filters=[lambda b: b["?pop"] > 100],
        order_by="?pop", descending=True,
    )
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.stores.rdf.graph import Graph, Term

Pattern = tuple[object, object, object]
Binding = dict[str, Term]


def is_variable(term: object) -> bool:
    """Whether a pattern component is a variable (``?name``)."""
    return isinstance(term, str) and term.startswith("?")


def _substitute(component: object, binding: Binding) -> object:
    if is_variable(component) and component in binding:
        return binding[component]
    return component


def _match_pattern(graph: Graph, pattern: Pattern, binding: Binding) -> list[Binding]:
    """All extensions of ``binding`` that satisfy one pattern."""
    subject, predicate, obj = (_substitute(component, binding) for component in pattern)
    query = (
        None if is_variable(subject) else subject,
        None if is_variable(predicate) else predicate,
        None if is_variable(obj) else obj,
    )
    extensions = []
    for triple in graph.match(*query):
        extended = dict(binding)
        consistent = True
        for component, value in zip((subject, predicate, obj), iter(triple)):
            if is_variable(component):
                if component in extended and extended[component] != value:
                    consistent = False
                    break
                extended[component] = value
            elif component != value:
                consistent = False
                break
        if consistent:
            extensions.append(extended)
    return extensions


def solve(graph: Graph, patterns: Sequence[Pattern]) -> list[Binding]:
    """All variable bindings satisfying every pattern (natural join)."""
    bindings: list[Binding] = [{}]
    for pattern in patterns:
        next_bindings: list[Binding] = []
        for binding in bindings:
            next_bindings.extend(_match_pattern(graph, pattern, binding))
        bindings = next_bindings
        if not bindings:
            break
    return bindings


def solve_optional(
    graph: Graph,
    solutions: list[Binding],
    optional_patterns: Sequence[Pattern],
) -> list[Binding]:
    """SPARQL OPTIONAL semantics (left join).

    Each existing solution is extended by the optional pattern group
    where possible; solutions with no compatible extension survive
    unchanged (their optional variables stay unbound).
    """
    extended: list[Binding] = []
    for binding in solutions:
        matches = [dict(binding)]
        for pattern in optional_patterns:
            next_matches: list[Binding] = []
            for candidate in matches:
                next_matches.extend(_match_pattern(graph, pattern, candidate))
            matches = next_matches
            if not matches:
                break
        if matches:
            extended.extend(matches)
        else:
            extended.append(binding)
    return extended


def select(
    graph: Graph,
    patterns: Sequence[Pattern],
    variables: Sequence[str] | None = None,
    filters: Sequence[Callable[[Binding], bool]] = (),
    distinct: bool = False,
    order_by: str | None = None,
    descending: bool = False,
    limit: int | None = None,
    optional: Sequence[Pattern] = (),
) -> list[Binding]:
    """Run a SELECT query; returns a list of projected bindings.

    ``variables=None`` projects every variable that appears in the
    patterns.  Filters receive full (pre-projection) bindings.
    ``optional`` patterns have SPARQL OPTIONAL (left-join) semantics:
    they enrich solutions when they match but never eliminate one.
    """
    for pattern in list(patterns) + list(optional):
        if len(pattern) != 3:
            raise ValueError(f"patterns must be triples, got {pattern!r}")
    solutions = solve(graph, patterns)
    if optional:
        solutions = solve_optional(graph, solutions, optional)
    for predicate in filters:
        solutions = [binding for binding in solutions if predicate(binding)]
    if order_by is not None:
        solutions.sort(
            key=lambda binding: (str(type(binding.get(order_by)).__name__),
                                 binding.get(order_by) is None,
                                 binding.get(order_by)),
            reverse=descending,
        )
    if variables is not None:
        unknown = [name for name in variables if not is_variable(name)]
        if unknown:
            raise ValueError(f"projection must list variables, got {unknown}")
        solutions = [
            {name: binding[name] for name in variables if name in binding}
            for binding in solutions
        ]
    if distinct:
        seen = set()
        unique = []
        for binding in solutions:
            key = tuple(sorted(binding.items(), key=lambda item: item[0]))
            if key not in seen:
                seen.add(key)
                unique.append(binding)
        solutions = unique
    if limit is not None:
        solutions = solutions[:limit]
    return solutions


def union(
    graph: Graph,
    pattern_groups: Sequence[Sequence[Pattern]],
    variables: Sequence[str] | None = None,
    distinct: bool = True,
    **select_kwargs,
) -> list[Binding]:
    """SPARQL UNION: the concatenation of each group's solutions.

    Groups may bind different variable subsets (as in SPARQL); with
    ``distinct`` (the default) duplicate bindings across groups are
    collapsed.
    """
    combined: list[Binding] = []
    for patterns in pattern_groups:
        combined.extend(
            select(graph, patterns, variables=variables, distinct=False,
                   **select_kwargs)
        )
    if distinct:
        seen = set()
        unique = []
        for binding in combined:
            key = tuple(sorted(binding.items(), key=lambda item: item[0]))
            if key not in seen:
                seen.add(key)
                unique.append(binding)
        combined = unique
    return combined
