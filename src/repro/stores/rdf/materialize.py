"""Incrementally maintained materialized views over the triple store.

Full re-materialization — rerunning every reasoner over the whole
graph — is what made "add one regression result, re-infer" scale with
graph size instead of change size.  :class:`MaterializedGraph` keeps a
graph *closed under its reasoners at all times*: every ``add`` routes
the new triples through each reasoner's semi-naive ``apply_delta``, so
only consequences of the change are derived.  Deletion falls back to
rebuild-from-base (exact truth maintenance under deletes needs full
DRed bookkeeping; the PKB's write mix is overwhelmingly additive).

Reads are served through a bounded, graph-version-keyed query-result
cache: the graph's monotonic ``version`` is part of every entry, so
any mutation — direct or derived — invalidates stale results without
bookkeeping; an LRU bound keeps memory flat.  Queries carrying filter
callables bypass the cache (callables have no stable identity).
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable, Iterator, Sequence

from repro.obs import names
from repro.stores.rdf.graph import Graph, Term, Triple
from repro.stores.rdf.query import Binding, Pattern, select
from repro.stores.rdf.reasoner import RdfsReasoner
from repro.stores.rdf.rules import GenericRuleReasoner


class QueryResultCache:
    """A bounded LRU cache of query results keyed by graph version.

    An entry is only a hit when its recorded version equals the
    caller's current version; stale entries are dropped on sight.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[tuple, tuple[int, list[Binding]]] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, version: int, key: tuple) -> list[Binding] | None:
        """The cached result for ``key`` at ``version``, or None."""
        entry = self._entries.get(key)
        if entry is None or entry[0] != version:
            if entry is not None:
                del self._entries[key]
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry[1]

    def put(self, version: int, key: tuple, result: list[Binding]) -> None:
        """Store a result, evicting least-recently-used entries."""
        self._entries[key] = (version, result)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._entries.clear()


def _delta_consequences(reasoner, graph: Graph,
                        frontier: set[Triple]) -> set[Triple]:
    """The triples ``reasoner`` derives from ``frontier``, as a set."""
    if isinstance(reasoner, GenericRuleReasoner):
        return reasoner._run(graph, set(frontier), None)
    return reasoner._delta_set(graph, frontier)


def _full_apply(reasoner, graph: Graph) -> int:
    """Run a reasoner fully, whatever its API flavor."""
    if isinstance(reasoner, GenericRuleReasoner):
        return reasoner.forward(graph)
    return reasoner.apply(graph)


class MaterializedGraph:
    """A graph kept closed under a set of reasoners, incrementally.

    Wraps a base :class:`Graph` (shared, not copied) plus reasoners —
    any mix of :class:`RdfsReasoner`, :class:`TransitiveReasoner` and
    :class:`GenericRuleReasoner` — and maintains the joint fixpoint:

    * construction runs a full materialization;
    * :meth:`add` / :meth:`add_all` derive only the consequences of
      the new triples (semi-naive), iterating across reasoners until
      no reasoner adds anything;
    * :meth:`remove` / :meth:`discard` rebuild from the recorded base
      facts (derived triples are never explicitly stored anywhere
      else, so deletion must re-derive);
    * :meth:`select` answers queries through a bounded cache keyed by
      the graph version.

    Reads may keep going through the wrapped graph directly; writes
    must come through this wrapper to stay materialized.
    """

    def __init__(
        self,
        base: Graph | None = None,
        reasoners: Sequence[object] | None = None,
        cache_size: int = 128,
        obs=None,
    ) -> None:
        self.graph = base if base is not None else Graph()
        self.reasoners = (
            list(reasoners) if reasoners is not None else [RdfsReasoner()]
        )
        self._base: set[Triple] = set(self.graph)
        self._cache = QueryResultCache(capacity=cache_size)
        # Optional repro.obs.Observability wiring.
        if obs is not None and obs.enabled:
            self._metric_delta = obs.metrics.counter(
                names.RDF_MATERIALIZE_DELTA_TOTAL,
                "Incremental (semi-naive) materialization runs.")
            self._metric_full = obs.metrics.counter(
                names.RDF_MATERIALIZE_FULL_TOTAL,
                "Full re-materialization runs.")
            self._metric_cache_hits = obs.metrics.counter(
                names.RDF_QUERY_CACHE_HITS_TOTAL,
                "Materialized-view query cache hits.")
            self._metric_cache_misses = obs.metrics.counter(
                names.RDF_QUERY_CACHE_MISSES_TOTAL,
                "Materialized-view query cache misses.")
        else:
            self._metric_delta = self._metric_full = None
            self._metric_cache_hits = self._metric_cache_misses = None
        self.refresh()

    # -- delegation --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.graph)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self.graph)

    def __contains__(self, triple: Triple | tuple) -> bool:
        return triple in self.graph

    @property
    def version(self) -> int:
        """The wrapped graph's monotonic version counter."""
        return self.graph.version

    def match(self, subject: str | None = None, predicate: str | None = None,
              obj: Term | None = None) -> list[Triple]:
        """Pattern match over the materialized graph."""
        return self.graph.match(subject, predicate, obj)

    def objects(self, subject: str, predicate: str) -> set[Term]:
        """All objects of ``(subject, predicate, ?)`` in the closure."""
        return self.graph.objects(subject, predicate)

    def subjects(self, predicate: str, obj: Term) -> set[str]:
        """All subjects of ``(?, predicate, object)`` in the closure."""
        return self.graph.subjects(predicate, obj)

    def predicates(self) -> set[str]:
        """Every predicate present in the materialized graph."""
        return self.graph.predicates()

    def estimate_cardinality(self, subject: object = None,
                             predicate: object = None,
                             obj: object = None) -> float:
        """Planner cardinality estimate over the materialized triples."""
        return self.graph.estimate_cardinality(subject, predicate, obj)

    def predicate_statistics(self):
        """Per-predicate statistics over the materialized triples."""
        return self.graph.predicate_statistics()

    def to_list(self) -> list[list[Term]]:
        """Deterministic JSON-friendly dump of the materialized triples."""
        return self.graph.to_list()

    def base_facts(self) -> set[Triple]:
        """The explicitly asserted (non-derived) triples."""
        return set(self._base)

    @property
    def inferred_count(self) -> int:
        """How many currently held triples are derived, not asserted."""
        return len(self.graph) - len(self._base)

    # -- mutation ----------------------------------------------------------

    def add(self, triple: Triple | tuple) -> bool:
        """Insert a triple and derive its consequences incrementally."""
        triple = Graph._coerce(triple)
        if not self.graph.add(triple):
            # Already present (possibly as a derived fact) — still a
            # base assertion from now on, so deletes keep it.
            self._base.add(triple)
            return False
        self._base.add(triple)
        self._derive({triple})
        return True

    def add_all(self, triples: Iterable[Triple | tuple]) -> int:
        """Insert many triples, then derive from the whole batch once."""
        fresh: set[Triple] = set()
        for triple in triples:
            triple = Graph._coerce(triple)
            self._base.add(triple)
            if self.graph.add(triple):
                fresh.add(triple)
        if fresh:
            self._derive(fresh)
        return len(fresh)

    def remove(self, triple: Triple | tuple) -> bool:
        """Retract a base fact; rebuilds the materialization."""
        triple = Graph._coerce(triple)
        if triple not in self._base:
            return False
        self._base.discard(triple)
        self._rebuild()
        return True

    def discard(self, triple: Triple | tuple) -> bool:
        """Alias of :meth:`remove` (set-like naming)."""
        return self.remove(triple)

    def clear(self) -> None:
        """Drop every triple, asserted and derived (version advances)."""
        self.graph.clear()
        self._base.clear()
        self._cache.clear()

    # -- materialization ---------------------------------------------------

    def refresh(self) -> int:
        """Run every reasoner to a joint fixpoint; returns new triples."""
        added_total = 0
        changed = True
        while changed:
            changed = False
            for reasoner in self.reasoners:
                step = _full_apply(reasoner, self.graph)
                if step:
                    added_total += step
                    changed = True
        if self._metric_full is not None:
            self._metric_full.inc()
        return added_total

    def _derive(self, frontier: set[Triple]) -> int:
        """Joint incremental fixpoint: feed each reasoner's output to
        the others until nobody derives anything new."""
        added_total = 0
        while frontier:
            derived: set[Triple] = set()
            for reasoner in self.reasoners:
                derived |= _delta_consequences(reasoner, self.graph, frontier)
            added_total += len(derived)
            frontier = derived
        if self._metric_delta is not None:
            self._metric_delta.inc()
        return added_total

    def _rebuild(self) -> None:
        self.graph.clear()
        for triple in self._base:
            self.graph.add(triple)
        self.refresh()

    # -- cached queries ----------------------------------------------------

    @property
    def cache(self) -> QueryResultCache:
        """The bounded, version-keyed query-result cache."""
        return self._cache

    @staticmethod
    def _cache_key(
        patterns: Sequence[Pattern],
        variables: Sequence[str] | None,
        distinct: bool,
        order_by: str | None,
        descending: bool,
        limit: int | None,
        optional: Sequence[Pattern],
    ) -> tuple:
        return (
            tuple(tuple(pattern) for pattern in patterns),
            tuple(variables) if variables is not None else None,
            distinct,
            order_by,
            descending,
            limit,
            tuple(tuple(pattern) for pattern in optional),
        )

    def select(
        self,
        patterns: Sequence[Pattern],
        variables: Sequence[str] | None = None,
        filters: Sequence = (),
        distinct: bool = False,
        order_by: str | None = None,
        descending: bool = False,
        limit: int | None = None,
        optional: Sequence[Pattern] = (),
        optimize: bool = True,
    ) -> list[Binding]:
        """A planned SELECT with version-keyed result caching.

        Queries with ``filters`` bypass the cache: a callable has no
        stable identity to key on.  Cached results are returned as
        fresh copies, so callers may mutate them safely.
        """
        cacheable = not filters and optimize
        key = None
        if cacheable:
            key = self._cache_key(patterns, variables, distinct, order_by,
                                  descending, limit, optional)
            cached = self._cache.get(self.graph.version, key)
            if cached is not None:
                if self._metric_cache_hits is not None:
                    self._metric_cache_hits.inc()
                return [dict(binding) for binding in cached]
            if self._metric_cache_misses is not None:
                self._metric_cache_misses.inc()
        # A wrapped store with its own execution strategy (the sharded
        # router's scatter/fan-out) answers itself; plain backends go
        # through the single-store engine.
        runner = getattr(self.graph, "select", None)
        if callable(runner):
            result = runner(
                patterns, variables=variables, filters=filters,
                distinct=distinct, order_by=order_by, descending=descending,
                limit=limit, optional=optional, optimize=optimize,
            )
        else:
            result = select(
                self.graph, patterns, variables=variables, filters=filters,
                distinct=distinct, order_by=order_by, descending=descending,
                limit=limit, optional=optional, optimize=optimize,
            )
        if cacheable:
            self._cache.put(self.graph.version, key,
                            [dict(binding) for binding in result])
        return result
