"""Hash-sharded triple storage with parallel fan-out query execution.

One dictionary-encoded graph caps both KB size and scan parallelism:
every query runs single-threaded over one index set.  A
:class:`ShardedGraph` splits the triple set across N independent
:class:`~repro.stores.backends.base.StorageBackend` shards keyed by a
**stable subject hash** (CRC-32, so placement survives restarts and
file-backed shards reopen onto the same data), and turns queries into
scatter/gather plans:

* **Routing** — a pattern with a concrete subject touches exactly one
  shard; everything else fans out.  Because a subject's triples are
  colocated, *star queries* (every pattern sharing one subject
  variable) decompose perfectly: each shard answers the whole query
  over its slice and the union of slices is the global answer.
* **Scatter execution** — per-shard SELECTs run on a small worker
  pool with filters and top-k heaps pushed down per shard, and merge
  with stable ordering (``heapq.merge`` keeps ties in shard order).
  An :func:`asyncio`-native :meth:`ShardedGraph.aselect` awaits the
  same fan-out from coroutine code.
* **Native numeric pushdown** — a single-pattern query whose filters
  are :class:`~repro.stores.rdf.query.RangeFilter`\\ s compiles to each
  backend's numeric index scan
  (:meth:`~repro.stores.backends.sqlite.SqliteTripleStore.scan_numeric`),
  so SQLite shards scan in C with the GIL released — N shards really
  do scan on N cores.
* **Broadcast joins** — cross-shard joins fall back to the cost-based
  planner over the router itself: each join step's pattern scan is
  scattered across shards and the bindings join at the router (the
  "broadcast" side of the broadcast-vs-colocate decision).

The router maintains **global cardinality statistics** (predicate
counts plus distinct subject/object multiplicities) so
:meth:`estimate_cardinality` returns bit-identical floats to a single
:class:`~repro.stores.rdf.graph.Graph` holding the same triples —
which keeps planner ``explain()`` output byte-stable across shard
counts.

Thread-safety matches :class:`Graph`: concurrent reads are fine,
concurrent writers need external synchronization.
"""

from __future__ import annotations

import asyncio
import contextvars
import heapq
import zlib
from collections.abc import Callable, Iterable, Iterator, Sequence
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from itertools import chain, islice

from repro.obs import names
from repro.stores.rdf.graph import Graph, Term, Triple
from repro.stores.rdf.materialize import MaterializedGraph
from repro.stores.rdf.query import (
    Binding,
    Pattern,
    RangeFilter,
    _order_key,
    distinct_bindings,
    is_variable,
    project_bindings,
    select as _select,
)
from repro.stores.rdf.stats import BOUND, PredicateStats
from repro.util.clock import SYSTEM_CLOCK, Clock

#: Route labels (also used by ``FanoutPlan.explain()``).
ROUTE_SINGLE = "single-shard"
ROUTE_SCATTER = "scatter"
ROUTE_BROADCAST = "broadcast"

#: Below this many held triples a fan-out ``match`` stays serial —
#: thread dispatch costs more than the scan it would parallelize.
DEFAULT_PARALLEL_THRESHOLD = 4096

_POOL_CAP = 8


def shard_of(subject: str, shards: int) -> int:
    """The stable shard index for a subject (CRC-32 of its UTF-8)."""
    return zlib.crc32(subject.encode("utf-8")) % shards


def merged_range(filters: Sequence[RangeFilter]) -> tuple:
    """Intersect RangeFilters into one ``(low, low_inc, high, high_inc)``."""
    low: float | None = None
    low_inc = True
    high: float | None = None
    high_inc = True
    for f in filters:
        if f.low is not None and (low is None or f.low > low
                                  or (f.low == low and not f.low_inclusive)):
            low, low_inc = f.low, f.low_inclusive
        if f.high is not None and (high is None or f.high < high
                                   or (f.high == high
                                       and not f.high_inclusive)):
            high, high_inc = f.high, f.high_inclusive
    return low, low_inc, high, high_inc


def _fallback_numeric_scan(backend, predicate: str, low, low_inc, high,
                           high_inc, descending: bool,
                           limit: int | None) -> list[Triple]:
    """Python-side numeric range + top-k for backends without a native scan.

    Mirrors ``SqliteTripleStore.scan_numeric`` semantics: numeric
    objects only, ordered by value with a deterministic subject
    tie-break, bounded by a heap when a limit is given.
    """
    probe = RangeFilter("?v", low, high, low_inclusive=low_inc,
                        high_inclusive=high_inc)

    def in_range(value: object) -> bool:
        return probe({"?v": value})

    candidates = [t for t in backend.match(None, predicate, None)
                  if in_range(t.object)]
    # Same total order as the SQL scan: value (per ``descending``),
    # then subject ascending for ties.
    sign = -1.0 if descending else 1.0
    key = (lambda t: (sign * float(t.object), t.subject))
    if limit is not None:
        return heapq.nsmallest(limit, candidates, key=key)
    return sorted(candidates, key=key)


class ShardedGraph:
    """N independent storage shards behind one Graph-shaped surface.

    ``backend_factory(index)`` builds each shard (default: an
    in-memory :class:`Graph`).  ``shard_reasoners`` wraps every shard
    in a :class:`MaterializedGraph`, giving the scatter path per-shard
    version-keyed query caches; only pass reasoners whose premises are
    subject-local (schema-spanning rules like ``rdfs:subClassOf``
    chains must instead materialize at the router — wrap the whole
    ShardedGraph in a MaterializedGraph, which the KB's
    ``enable_materialization`` does).
    """

    def __init__(self, shards: int = 4,
                 backend_factory: Callable[[int], object] | None = None,
                 *,
                 executor: ThreadPoolExecutor | None = None,
                 obs=None,
                 clock: Clock | None = None,
                 parallel_threshold: int = DEFAULT_PARALLEL_THRESHOLD,
                 shard_reasoners: Sequence[object] | None = None) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shard_count = shards
        self.parallel_threshold = parallel_threshold
        factory = backend_factory if backend_factory is not None else (
            lambda index: Graph())
        self._factory = factory
        built = [factory(index) for index in range(shards)]
        if shard_reasoners is not None:
            built = [MaterializedGraph(base, reasoners=list(shard_reasoners))
                     for base in built]
        self._shards = built
        self._owns_pool = executor is None
        self._pool = executor
        self._clock = clock if clock is not None else SYSTEM_CLOCK
        # Router-global statistics: exact mirrors of what a single
        # Graph's GraphStatistics would hold, maintained per mutation.
        self._total = 0
        self._pred_count: dict[str, int] = {}
        self._pred_subjects: dict[str, dict[str, int]] = {}
        self._pred_objects: dict[str, dict[Term, int]] = {}
        self._subject_count: dict[str, int] = {}
        self._object_count: dict[Term, int] = {}
        # File-backed shards may reopen with existing triples; hydrate
        # the router's global statistics from them (one O(n) pass).
        for shard in self._shards:
            for triple in shard:
                self._stats_add(triple)
        if obs is not None and obs.enabled:
            self._tracer = obs.tracer
            self._metric_scans = obs.metrics.counter(
                names.KB_SHARD_SCANS_TOTAL,
                "Per-shard scans issued by fan-out query execution.")
            self._metric_fanout = obs.metrics.histogram(
                names.KB_SHARD_FANOUT_MS,
                "Wall milliseconds spent in scatter/gather fan-outs.")
        else:
            self._tracer = None
            self._metric_scans = None
            self._metric_fanout = None

    # -- infrastructure ----------------------------------------------------

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=min(self.shard_count, _POOL_CAP),
                thread_name_prefix="repro-shard")
        return self._pool

    def _submit(self, function, *args):
        """Submit to the pool with the caller's contextvars (spans, tenant)."""
        context = contextvars.copy_context()
        return self._ensure_pool().submit(context.run, function, *args)

    def _fan_out(self, function) -> list:
        """Run ``function(shard)`` for every shard, in parallel when the
        pool pays for itself; results come back in shard order."""
        if self.shard_count == 1:
            return [function(self._shards[0])]
        if self._metric_scans is not None:
            self._metric_scans.inc(self.shard_count)
        if self._total < self.parallel_threshold:
            return [function(shard) for shard in self._shards]
        futures = [self._submit(function, shard) for shard in self._shards]
        return [future.result() for future in futures]

    def close(self) -> None:
        """Shut down the owned worker pool and close closable shards."""
        if self._owns_pool and self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        for shard in self._shards:
            backend = shard.graph if isinstance(shard, MaterializedGraph) else shard
            closer = getattr(backend, "close", None)
            if callable(closer):
                closer()

    def shard_for(self, subject: str):
        """The shard backend holding ``subject``'s triples."""
        return self._shards[shard_of(subject, self.shard_count)]

    @property
    def shards(self) -> list:
        """The shard backends, in index order (read-only use)."""
        return list(self._shards)

    # -- statistics maintenance --------------------------------------------

    def _stats_add(self, triple: Triple) -> None:
        self._total += 1
        predicate = triple.predicate
        self._pred_count[predicate] = self._pred_count.get(predicate, 0) + 1
        bucket = self._pred_subjects.setdefault(predicate, {})
        bucket[triple.subject] = bucket.get(triple.subject, 0) + 1
        objects = self._pred_objects.setdefault(predicate, {})
        objects[triple.object] = objects.get(triple.object, 0) + 1
        self._subject_count[triple.subject] = (
            self._subject_count.get(triple.subject, 0) + 1)
        self._object_count[triple.object] = (
            self._object_count.get(triple.object, 0) + 1)

    def _stats_remove(self, triple: Triple) -> None:
        self._total -= 1
        predicate = triple.predicate

        def decrement(table: dict, key) -> None:
            left = table[key] - 1
            if left:
                table[key] = left
            else:
                del table[key]

        decrement(self._pred_count, predicate)
        decrement(self._pred_subjects[predicate], triple.subject)
        if not self._pred_subjects[predicate]:
            del self._pred_subjects[predicate]
        decrement(self._pred_objects[predicate], triple.object)
        if not self._pred_objects[predicate]:
            del self._pred_objects[predicate]
        decrement(self._subject_count, triple.subject)
        decrement(self._object_count, triple.object)

    # -- mutation ----------------------------------------------------------

    def add(self, triple: Triple | tuple) -> bool:
        """Insert a triple on its subject's shard."""
        triple = Graph._coerce(triple)
        added = self.shard_for(triple.subject).add(triple)
        if added:
            self._stats_add(triple)
        return added

    def add_all(self, triples: Iterable[Triple | tuple]) -> int:
        """Bulk insert: triples are grouped per shard and written as one
        batched transaction each (``add_many``) where the backend
        supports it."""
        groups: dict[int, list[Triple]] = {}
        for triple in triples:
            triple = Graph._coerce(triple)
            groups.setdefault(shard_of(triple.subject, self.shard_count),
                              []).append(triple)
        added = 0
        for index in sorted(groups):
            shard = self._shards[index]
            batch = groups[index]
            add_many = getattr(shard, "add_many", None)
            if callable(add_many):
                flags = add_many(batch)
            else:
                flags = [shard.add(triple) for triple in batch]
            for triple, fresh in zip(batch, flags):
                if fresh:
                    self._stats_add(triple)
                    added += 1
        return added

    def add_many(self, triples: Iterable[Triple | tuple]) -> list[bool]:
        """Per-triple newness flags (order preserved across shards)."""
        rows = [Graph._coerce(triple) for triple in triples]
        flags = []
        for triple in rows:
            flags.append(self.add(triple))
        return flags

    def remove(self, triple: Triple | tuple) -> bool:
        """Delete a triple from its subject's shard."""
        triple = Graph._coerce(triple)
        removed = self.shard_for(triple.subject).remove(triple)
        if removed:
            self._stats_remove(triple)
        return removed

    def discard(self, triple: Triple | tuple) -> bool:
        """Alias of :meth:`remove` (set-like naming)."""
        return self.remove(triple)

    def clear(self) -> None:
        """Clear every shard; versions still advance."""
        for shard in self._shards:
            shard.clear()
        self._total = 0
        self._pred_count.clear()
        self._pred_subjects.clear()
        self._pred_objects.clear()
        self._subject_count.clear()
        self._object_count.clear()

    # -- reads -------------------------------------------------------------

    def __len__(self) -> int:
        return self._total

    def __iter__(self) -> Iterator[Triple]:
        return chain.from_iterable(self._shards)

    def __contains__(self, triple: Triple | tuple) -> bool:
        triple = Graph._coerce(triple)
        return triple in self.shard_for(triple.subject)

    @property
    def version(self) -> int:
        """Sum of shard versions — monotonic, bumps on any mutation."""
        return sum(shard.version for shard in self._shards)

    def match(self, subject: str | None = None, predicate: str | None = None,
              obj: Term | None = None) -> list[Triple]:
        """Prefix scan: routed when the subject is bound, else scattered.

        Shard triple sets are disjoint, so the concatenation (in shard
        order) needs no dedup.
        """
        if subject is not None:
            return self.shard_for(subject).match(subject, predicate, obj)
        results = self._fan_out(lambda shard: shard.match(subject, predicate,
                                                          obj))
        return [triple for rows in results for triple in rows]

    def objects(self, subject: str, predicate: str) -> set[Term]:
        """All objects of ``(subject, predicate, ?)`` — routed."""
        return {t.object for t in self.match(subject, predicate, None)}

    def subjects(self, predicate: str, obj: Term) -> set[str]:
        """All subjects of ``(?, predicate, object)`` — scattered."""
        return {t.subject for t in self.match(None, predicate, obj)}

    def predicates(self) -> set[str]:
        """Every predicate with at least one triple (router stats)."""
        return set(self._pred_count)

    def copy(self) -> "ShardedGraph":
        """An in-memory sharded copy with the same shard count."""
        duplicate = ShardedGraph(shards=self.shard_count,
                                 parallel_threshold=self.parallel_threshold)
        duplicate.add_all(self)
        return duplicate

    # -- statistics and cardinality estimation -----------------------------

    def predicate_statistics(self) -> dict[str, PredicateStats]:
        """Global per-predicate statistics (identical to a single store's)."""
        return {
            predicate: PredicateStats(
                predicate=predicate,
                count=count,
                distinct_subjects=len(self._pred_subjects[predicate]),
                distinct_objects=len(self._pred_objects[predicate]),
            )
            for predicate, count in self._pred_count.items()
        }

    def estimate_cardinality(self, subject: object = None,
                             predicate: object = None,
                             obj: object = None) -> float:
        """Bit-identical to a single Graph's estimate on the same data.

        Concrete-subject patterns route to one shard (which holds every
        triple of that subject, so its exact count *is* the global
        count); concrete predicate/object bases sum exact per-shard
        counts; BOUND discounts divide by the router's global distinct
        counts.  This is what keeps ``explain()`` byte-stable across
        shard counts.
        """
        if self._total == 0:
            return 0.0
        s_const = subject is not None and subject is not BOUND
        p_const = predicate is not None and predicate is not BOUND
        o_const = obj is not None and obj is not BOUND

        sub = subject if s_const else None
        pred = predicate if p_const else None
        objc = obj if o_const else None
        if s_const:
            base = self.shard_for(sub).estimate_cardinality(sub, pred, objc)
        elif p_const and o_const:
            base = sum(shard.estimate_cardinality(None, pred, objc)
                       for shard in self._shards)
        elif p_const:
            base = float(self._pred_count.get(pred, 0))
        elif o_const:
            base = sum(shard.estimate_cardinality(None, None, objc)
                       for shard in self._shards)
        else:
            base = float(self._total)
        if base == 0:
            return 0.0

        estimate = float(base)
        if subject is BOUND:
            distinct = (len(self._pred_subjects.get(pred, ()))
                        if p_const else len(self._subject_count))
            estimate /= max(1, distinct)
        if obj is BOUND:
            distinct = (len(self._pred_objects.get(pred, ()))
                        if p_const else len(self._object_count))
            estimate /= max(1, distinct)
        if predicate is BOUND:
            estimate /= max(1, len(self._pred_count))
        return estimate

    # -- query routing -----------------------------------------------------

    def route_select(self, patterns: Sequence[Pattern],
                     optional: Sequence[Pattern] = ()) -> tuple[str, int | None]:
        """The broadcast-vs-colocate decision for one SELECT.

        * every subject concrete and on one shard → ``single-shard``;
        * every pattern sharing one subject *variable* that appears in
          no other position → ``scatter`` (per-shard answers union to
          the global answer);
        * anything else → ``broadcast`` (router-level join; each
          pattern scan still routes or scatters individually).
        """
        all_patterns = [tuple(p) for p in patterns] + [tuple(p) for p in optional]
        if not all_patterns:
            return ROUTE_BROADCAST, None
        subjects = {pattern[0] for pattern in all_patterns}
        if all(isinstance(s, str) and not is_variable(s) for s in subjects):
            targets = {shard_of(s, self.shard_count) for s in subjects}
            if len(targets) == 1:
                return ROUTE_SINGLE, targets.pop()
            return ROUTE_BROADCAST, None
        if len(subjects) == 1:
            star = next(iter(subjects))
            if is_variable(star):
                for pattern in all_patterns:
                    if pattern[1] == star or pattern[2] == star:
                        return ROUTE_BROADCAST, None
                return ROUTE_SCATTER, None
        return ROUTE_BROADCAST, None

    def native_numeric_pushdown(self, patterns: Sequence[Pattern],
                                filters: Sequence = (),
                                distinct: bool = False,
                                order_by: str | None = None,
                                optional: Sequence[Pattern] = ()) -> dict | None:
        """The compiled per-shard numeric scan, or None when inapplicable.

        Applies to ``[(?s, p, ?v)]`` with every filter a
        :class:`RangeFilter` on ``?v`` (at least one — the declared
        range is also the numeric-type constraint that makes the
        index scan exact) and ordering absent or on ``?v``.
        """
        if len(patterns) != 1 or optional:
            return None
        subject, predicate, obj = tuple(patterns[0])
        if not (is_variable(subject) and is_variable(obj)
                and subject != obj):
            return None
        if not isinstance(predicate, str) or is_variable(predicate):
            return None
        if order_by not in (None, obj):
            return None
        if not filters or not all(
                isinstance(f, RangeFilter) and f.variable == obj
                for f in filters):
            return None
        low, low_inc, high, high_inc = merged_range(filters)
        return {
            "subject_var": subject,
            "object_var": obj,
            "predicate": predicate,
            "low": low, "low_inclusive": low_inc,
            "high": high, "high_inclusive": high_inc,
        }

    # -- scatter execution -------------------------------------------------

    @staticmethod
    def _shard_select(shard, patterns, **kwargs) -> list[Binding]:
        """One shard's SELECT, through its materialized view if it has one."""
        if isinstance(shard, MaterializedGraph):
            return shard.select(patterns, **kwargs)
        return _select(shard, patterns, **kwargs)

    def select(
        self,
        patterns: Sequence[Pattern],
        variables: Sequence[str] | None = None,
        filters: Sequence = (),
        distinct: bool = False,
        order_by: str | None = None,
        descending: bool = False,
        limit: int | None = None,
        optional: Sequence[Pattern] = (),
        optimize: bool = True,
    ) -> list[Binding]:
        """A SELECT with fan-out execution — same results as the
        single-store engine, different evaluation topology.

        Colocated queries scatter whole per-shard SELECTs (filters,
        heaps and limits pushed down) and merge with stable ordering;
        cross-shard joins broadcast through the router's pattern
        scans.  See :meth:`route_select`.
        """
        route, target = self.route_select(patterns, optional)
        if route == ROUTE_SINGLE:
            return self._shard_select(
                self._shards[target], patterns, variables=variables,
                filters=filters, distinct=distinct, order_by=order_by,
                descending=descending, limit=limit, optional=optional,
                optimize=optimize)
        if route == ROUTE_BROADCAST:
            return _select(self, patterns, variables=variables,
                           filters=filters, distinct=distinct,
                           order_by=order_by, descending=descending,
                           limit=limit, optional=optional, optimize=optimize)
        return self._scatter_select(
            patterns, variables=variables, filters=filters, distinct=distinct,
            order_by=order_by, descending=descending, limit=limit,
            optional=optional, optimize=optimize)

    def _scatter_tasks(self, patterns, filters, distinct, order_by,
                       descending, limit, optional, optimize):
        """Build the per-shard callable plus merge metadata for one scatter."""
        native = self.native_numeric_pushdown(
            patterns, filters, distinct=distinct, order_by=order_by,
            optional=optional)
        push_limit = limit if not distinct else None
        if native is not None:
            subject_var = native["subject_var"]
            object_var = native["object_var"]

            def per_shard(shard) -> list[Binding]:
                backend = (shard.graph if isinstance(shard, MaterializedGraph)
                           else shard)
                scan = getattr(backend, "scan_numeric", None)
                if callable(scan):
                    triples = scan(
                        native["predicate"], native["low"], native["high"],
                        low_inclusive=native["low_inclusive"],
                        high_inclusive=native["high_inclusive"],
                        descending=descending, limit=push_limit)
                else:
                    triples = _fallback_numeric_scan(
                        backend, native["predicate"], native["low"],
                        native["low_inclusive"], native["high"],
                        native["high_inclusive"], descending, push_limit)
                return [{subject_var: t.subject, object_var: t.object}
                        for t in triples]

            # Native scans always come back value-ordered, so the merge
            # is sorted even when the caller gave no order_by.
            merge_key = (lambda b: _order_key(b.get(object_var)))
            return per_shard, merge_key, True
        per_shard = (lambda shard: self._shard_select(
            shard, patterns, variables=None, filters=filters, distinct=False,
            order_by=order_by, descending=descending, limit=push_limit,
            optional=optional, optimize=optimize))
        if order_by is not None:
            merge_key = (lambda b: _order_key(b.get(order_by)))
            return per_shard, merge_key, True
        return per_shard, None, False

    def _merge_scatter(self, results, merge_key, ordered, variables, distinct,
                       descending, limit) -> list[Binding]:
        """Gather per-shard solutions: stable merge, project, distinct, trim."""
        if ordered:
            merged_iter = heapq.merge(*results, key=merge_key,
                                      reverse=descending)
            if limit is not None and not distinct:
                merged = list(islice(merged_iter, limit))
            else:
                merged = list(merged_iter)
        else:
            merged = [binding for rows in results for binding in rows]
            if limit is not None and not distinct:
                merged = merged[:limit]
        if variables is not None:
            merged = project_bindings(merged, variables)
        if distinct:
            merged = distinct_bindings(merged)
        if limit is not None:
            merged = merged[:limit]
        return merged

    def _scatter_select(self, patterns, *, variables, filters, distinct,
                        order_by, descending, limit, optional,
                        optimize) -> list[Binding]:
        per_shard, merge_key, ordered = self._scatter_tasks(
            patterns, filters, distinct, order_by, descending, limit,
            optional, optimize)
        span = (self._tracer.span(names.SPAN_KB_SHARD_SCAN,
                                  {"route": ROUTE_SCATTER,
                                   "shards": self.shard_count,
                                   "patterns": len(patterns)})
                if self._tracer is not None else nullcontext())
        with span:
            started = self._clock.now()
            results = self._fan_out(per_shard)
            merged = self._merge_scatter(results, merge_key, ordered,
                                         variables, distinct, descending,
                                         limit)
            if self._metric_fanout is not None:
                self._metric_fanout.observe(
                    (self._clock.now() - started) * 1000.0)
        return merged

    async def aselect(
        self,
        patterns: Sequence[Pattern],
        variables: Sequence[str] | None = None,
        filters: Sequence = (),
        distinct: bool = False,
        order_by: str | None = None,
        descending: bool = False,
        limit: int | None = None,
        optional: Sequence[Pattern] = (),
        optimize: bool = True,
    ) -> list[Binding]:
        """Awaitable SELECT: the same fan-out on ``asyncio`` awaitables.

        Scatter routes await one task per shard (each running on the
        worker pool, so SQLite shards still scan in parallel C);
        routed and broadcast queries run as a single pooled task.  Use
        from :mod:`repro.core.aio` coroutine code to keep the event
        loop unblocked during KB queries.
        """
        route, _target = self.route_select(patterns, optional)
        if route != ROUTE_SCATTER:
            future = self._submit(
                lambda: self.select(
                    patterns, variables=variables, filters=filters,
                    distinct=distinct, order_by=order_by,
                    descending=descending, limit=limit, optional=optional,
                    optimize=optimize))
            return await asyncio.wrap_future(future)
        per_shard, merge_key, ordered = self._scatter_tasks(
            patterns, filters, distinct, order_by, descending, limit,
            optional, optimize)
        span = (self._tracer.span(names.SPAN_KB_SHARD_SCAN,
                                  {"route": ROUTE_SCATTER,
                                   "shards": self.shard_count,
                                   "patterns": len(patterns), "aio": True})
                if self._tracer is not None else nullcontext())
        with span:
            started = self._clock.now()
            if self._metric_scans is not None and self.shard_count > 1:
                self._metric_scans.inc(self.shard_count)
            futures = [asyncio.wrap_future(self._submit(per_shard, shard))
                       for shard in self._shards]
            results = await asyncio.gather(*futures)
            merged = self._merge_scatter(results, merge_key, ordered,
                                         variables, distinct, descending,
                                         limit)
            if self._metric_fanout is not None:
                self._metric_fanout.observe(
                    (self._clock.now() - started) * 1000.0)
        return merged

    # -- persistence -------------------------------------------------------

    def to_list(self) -> list[list[Term]]:
        """JSON-friendly dump in the shared deterministic order."""
        from repro.stores.backends.base import canonical_triple_list

        return canonical_triple_list(self)

    @classmethod
    def from_list(cls, payload: Iterable[list], **kwargs) -> "ShardedGraph":
        """Build a sharded graph (see ``__init__`` kwargs) from a dump."""
        sharded = cls(**kwargs)
        sharded.add_all(tuple(item) for item in payload)
        return sharded
