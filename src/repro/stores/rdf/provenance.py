"""Confidence-weighted facts and confidence-propagating inference.

This implements the paper's stated future work, §5: "determining
accuracy levels of data stored within the personalized knowledge base,
using these accuracy levels during the process of inferring new facts,
and assigning accuracy levels to newly inferred facts."

Design:

* every fact carries a confidence in (0, 1] and the set of sources that
  asserted it;
* independent corroboration strengthens a fact (noisy-OR combination:
  ``1 - (1-c1)(1-c2)``), re-assertion by the same source just keeps the
  maximum;
* rules fire over facts meeting a confidence floor; a derived fact's
  confidence is ``rule.strength × T(premise confidences)`` where ``T``
  is a configurable t-norm (``min`` — Gödel — by default, or
  ``product``);
* inference runs to a fixpoint with an epsilon: a derivation only
  counts when it *raises* a fact's confidence by more than epsilon, so
  cyclic rules terminate.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.stores.rdf.graph import Graph, Triple
from repro.stores.rdf.query import Pattern, _match_pattern, is_variable
from repro.stores.rdf.rules import Rule

TNorm = Callable[[Sequence[float]], float]


def godel_tnorm(values: Sequence[float]) -> float:
    """min-combination: a chain is as strong as its weakest link."""
    return min(values) if values else 1.0


def product_tnorm(values: Sequence[float]) -> float:
    """product-combination: long derivations decay faster."""
    result = 1.0
    for value in values:
        result *= value
    return result


@dataclass
class FactInfo:
    """Metadata attached to one fact."""

    confidence: float
    sources: frozenset[str] = field(default_factory=frozenset)


@dataclass(frozen=True)
class WeightedRule:
    """A rule plus its own reliability in (0, 1]."""

    rule: Rule
    strength: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.strength <= 1.0:
            raise ValueError(f"rule strength must be in (0, 1], got {self.strength}")


class ConfidenceGraph:
    """A triple store whose facts carry confidence and provenance."""

    def __init__(self) -> None:
        self._graph = Graph()
        self._info: dict[Triple, FactInfo] = {}

    def __len__(self) -> int:
        return len(self._graph)

    def __contains__(self, triple) -> bool:
        return self._graph._coerce(triple) in self._info

    def __iter__(self):
        return iter(self._graph)

    @property
    def graph(self) -> Graph:
        """The underlying plain graph (read-only by convention)."""
        return self._graph

    # -- assertion -----------------------------------------------------------

    def assert_fact(self, triple, confidence: float, source: str = "user") -> float:
        """Assert a fact; returns its resulting confidence.

        A new *independent* source corroborates via noisy-OR; the same
        source re-asserting keeps the maximum of old and new.
        """
        if not 0.0 < confidence <= 1.0:
            raise ValueError(f"confidence must be in (0, 1], got {confidence}")
        triple = self._graph._coerce(triple)
        existing = self._info.get(triple)
        if existing is None:
            self._graph.add(triple)
            self._info[triple] = FactInfo(confidence, frozenset({source}))
            return confidence
        if source in existing.sources:
            combined = max(existing.confidence, confidence)
        else:
            combined = 1.0 - (1.0 - existing.confidence) * (1.0 - confidence)
        self._info[triple] = FactInfo(
            min(combined, 1.0), existing.sources | {source}
        )
        return self._info[triple].confidence

    def upgrade_fact(self, triple, confidence: float, source: str) -> bool:
        """Assert with *max* semantics (no corroboration boost).

        Used by the inference engine: a second derivation of the same
        fact is not independent evidence, so it only ever raises the
        stored confidence to the strongest derivation seen.  Returns
        whether the fact was new.
        """
        if not 0.0 < confidence <= 1.0:
            raise ValueError(f"confidence must be in (0, 1], got {confidence}")
        triple = self._graph._coerce(triple)
        existing = self._info.get(triple)
        if existing is None:
            self._graph.add(triple)
            self._info[triple] = FactInfo(confidence, frozenset({source}))
            return True
        self._info[triple] = FactInfo(
            max(existing.confidence, confidence), existing.sources | {source}
        )
        return False

    def retract(self, triple) -> bool:
        triple = self._graph._coerce(triple)
        if triple not in self._info:
            return False
        del self._info[triple]
        self._graph.remove(triple)
        return True

    # -- inspection -----------------------------------------------------------

    def confidence(self, triple) -> float:
        """The fact's confidence (0.0 when absent)."""
        info = self._info.get(self._graph._coerce(triple))
        return info.confidence if info else 0.0

    def sources(self, triple) -> frozenset[str]:
        info = self._info.get(self._graph._coerce(triple))
        return info.sources if info else frozenset()

    def match(self, subject=None, predicate=None, obj=None,
              min_confidence: float = 0.0) -> list[tuple[Triple, float]]:
        """Pattern match returning (triple, confidence) pairs."""
        return [
            (triple, self._info[triple].confidence)
            for triple in self._graph.match(subject, predicate, obj)
            if self._info[triple].confidence >= min_confidence
        ]

    def facts_above(self, threshold: float) -> list[tuple[Triple, float]]:
        return [
            (triple, info.confidence)
            for triple, info in self._info.items()
            if info.confidence >= threshold
        ]


class ConfidenceRuleEngine:
    """Forward chaining that propagates confidence through rules."""

    def __init__(
        self,
        rules: Sequence[WeightedRule],
        tnorm: TNorm = godel_tnorm,
        confidence_floor: float = 0.0,
        epsilon: float = 1e-6,
    ) -> None:
        self.rules = list(rules)
        self.tnorm = tnorm
        self.confidence_floor = confidence_floor
        self.epsilon = epsilon

    def _premise_confidences(
        self, store: ConfidenceGraph, rule: Rule, binding: dict
    ) -> list[float]:
        confidences = []
        for premise in rule.premises:
            instantiated = Triple(*(
                binding[component] if is_variable(component) else component
                for component in premise
            ))
            confidences.append(store.confidence(instantiated))
        return confidences

    def infer(self, store: ConfidenceGraph, max_rounds: int = 100) -> int:
        """Run to fixpoint; returns the number of *new* facts asserted.

        Confidence-raising re-derivations (> epsilon) also keep the
        iteration alive, so corroborating chains settle properly.
        """
        new_facts = 0
        for _ in range(max_rounds):
            changed = False
            for weighted in self.rules:
                rule = weighted.rule
                bindings: list[dict] = [{}]
                for premise in rule.premises:
                    next_bindings = []
                    for binding in bindings:
                        next_bindings.extend(
                            _match_pattern(store.graph, premise, binding))
                    bindings = next_bindings
                    if not bindings:
                        break
                for binding in bindings:
                    if any(not guard(binding) for guard in rule.guards):
                        continue
                    premise_confidences = self._premise_confidences(
                        store, rule, binding)
                    if any(conf < self.confidence_floor
                           for conf in premise_confidences):
                        continue
                    derived_confidence = weighted.strength * self.tnorm(
                        premise_confidences)
                    if derived_confidence <= 0.0:
                        continue
                    for conclusion in rule.conclusions:
                        triple = Triple(*(
                            binding[component] if is_variable(component)
                            else component
                            for component in conclusion
                        ))
                        before = store.confidence(triple)
                        if derived_confidence > before + self.epsilon:
                            was_new = store.upgrade_fact(
                                triple,
                                min(derived_confidence, 1.0),
                                source=f"inferred:{rule.name}",
                            )
                            if was_new:
                                new_facts += 1
                            changed = True
            if not changed:
                break
        return new_facts
