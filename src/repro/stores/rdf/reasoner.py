"""Predefined reasoners: transitive closure and an RDFS subset.

These mirror the first three of Jena's predefined reasoners that the
paper lists (the fourth, the generic rule reasoner, lives in
:mod:`repro.stores.rdf.rules`).  Both reasoners are *materializing*:
``apply`` adds entailed triples to the graph and returns how many were
new, so repeated application is idempotent — a property the test suite
checks.

Both are implemented as semi-naive delta rules on top of
:class:`~repro.stores.rdf.rules.GenericRuleReasoner`.  That buys an
incremental mode for free: :meth:`apply_delta` derives only the
consequences of newly added triples instead of rescanning the whole
graph every fixpoint round, which is what
:class:`~repro.stores.rdf.materialize.MaterializedGraph` uses to keep
a materialized view fresh under a stream of additions.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.stores.rdf.graph import Graph, RDF, RDFS, Triple
from repro.stores.rdf.rules import GenericRuleReasoner, Rule


def _no_self_loop(head: str, tail: str):
    """Guard factory: keep transitive closure free of ``x -> x`` edges."""
    def guard(binding: dict) -> bool:
        return binding[head] != binding[tail]

    return guard


def _transitive_rule(predicate: str, name: str) -> Rule:
    return Rule(
        premises=[("?a", predicate, "?b"), ("?b", predicate, "?c")],
        conclusions=[("?a", predicate, "?c")],
        name=name,
        guards=(_no_self_loop("?a", "?c"),),
    )


class TransitiveReasoner:
    """Computes the transitive closure of selected predicates.

    By default closes ``rdfs:subClassOf`` and ``rdfs:subPropertyOf`` —
    "storing and traversing class and property lattices" as the paper
    puts it.  Additional transitive predicates (e.g. a ``locatedIn``
    hierarchy) can be supplied.
    """

    def __init__(self, predicates: list[str] | None = None) -> None:
        self.predicates = list(predicates) if predicates is not None else [
            RDFS.subClassOf,
            RDFS.subPropertyOf,
        ]

    def _engine(self) -> GenericRuleReasoner:
        # Built per call so callers may mutate ``predicates`` freely.
        return GenericRuleReasoner([
            _transitive_rule(predicate, f"transitive:{predicate}")
            for predicate in self.predicates
        ])

    def apply(self, graph: Graph) -> int:
        """Materialize the closure; returns the number of new triples."""
        return self._engine().forward(graph)

    def apply_delta(self, graph: Graph, delta: Iterable[Triple | tuple]) -> int:
        """Extend the closure with the consequences of ``delta`` only.

        Assumes the graph was closed before the delta triples were
        inserted (they must already be present).  Returns new-triple
        count.
        """
        return len(self._delta_set(graph, delta))

    def _delta_set(self, graph: Graph, delta: Iterable[Triple | tuple]) -> set[Triple]:
        """Like :meth:`apply_delta` but returns the added triples."""
        frontier = {Graph._coerce(triple) for triple in delta}
        return self._engine()._run(graph, frontier, None) if frontier else set()


class RdfsReasoner:
    """A configurable subset of the RDF Schema entailment rules.

    Implemented rules (names from the RDFS semantics spec):

    * ``rdfs2`` — domain: ``(p domain c), (x p y) -> (x type c)``
    * ``rdfs3`` — range: ``(p range c), (x p y) -> (y type c)``
    * ``rdfs5`` — subPropertyOf transitivity
    * ``rdfs7`` — property inheritance: ``(p subPropertyOf q), (x p y) -> (x q y)``
    * ``rdfs9`` — instance inheritance: ``(c subClassOf d), (x type c) -> (x type d)``
    * ``rdfs11`` — subClassOf transitivity

    The ``rules`` argument selects a subset, mirroring Jena's
    "configurable subset of the RDF Schema entailments".
    """

    ALL_RULES = ("rdfs2", "rdfs3", "rdfs5", "rdfs7", "rdfs9", "rdfs11")

    def __init__(self, rules: tuple[str, ...] | None = None) -> None:
        selected = tuple(rules) if rules is not None else self.ALL_RULES
        unknown = set(selected) - set(self.ALL_RULES)
        if unknown:
            raise ValueError(f"unknown RDFS rules: {sorted(unknown)}")
        self.rules = selected
        self._reasoner = GenericRuleReasoner(
            [self._RULE_FACTORIES[name]() for name in selected]
        )

    # Each RDFS entailment as a Horn rule.  Premise order matters for
    # the naive first round: the schema-level premise (domain / range /
    # subClassOf / subPropertyOf) comes first because schema triples
    # are few, instance triples many.
    _RULE_FACTORIES = {
        "rdfs2": lambda: Rule(
            premises=[("?p", RDFS.domain, "?c"), ("?x", "?p", "?y")],
            conclusions=[("?x", RDF.type, "?c")],
            name="rdfs2",
        ),
        "rdfs3": lambda: Rule(
            premises=[("?p", RDFS.range, "?c"), ("?x", "?p", "?y")],
            conclusions=[("?y", RDF.type, "?c")],
            name="rdfs3",
            guards=(lambda binding: isinstance(binding["?y"], str),),
        ),
        "rdfs5": lambda: _transitive_rule(RDFS.subPropertyOf, "rdfs5"),
        "rdfs7": lambda: Rule(
            premises=[("?p", RDFS.subPropertyOf, "?q"), ("?x", "?p", "?y")],
            conclusions=[("?x", "?q", "?y")],
            name="rdfs7",
            guards=(lambda binding: isinstance(binding["?q"], str),),
        ),
        "rdfs9": lambda: Rule(
            premises=[("?c", RDFS.subClassOf, "?d"), ("?x", RDF.type, "?c")],
            conclusions=[("?x", RDF.type, "?d")],
            name="rdfs9",
            guards=(lambda binding: isinstance(binding["?d"], str),),
        ),
        "rdfs11": lambda: _transitive_rule(RDFS.subClassOf, "rdfs11"),
    }

    def apply(self, graph: Graph) -> int:
        """Run all selected rules to fixpoint; returns new-triple count."""
        return self._reasoner.forward(graph)

    def apply_delta(self, graph: Graph, delta: Iterable[Triple | tuple]) -> int:
        """Derive only the consequences of ``delta`` (semi-naive).

        Assumes the graph held an RDFS fixpoint before the delta
        triples were inserted (they must already be present).  Returns
        new-triple count.
        """
        return len(self._delta_set(graph, delta))

    def _delta_set(self, graph: Graph, delta: Iterable[Triple | tuple]) -> set[Triple]:
        """Like :meth:`apply_delta` but returns the added triples."""
        frontier = {Graph._coerce(triple) for triple in delta}
        return self._reasoner._run(graph, frontier, None) if frontier else set()
