"""Predefined reasoners: transitive closure and an RDFS subset.

These mirror the first three of Jena's predefined reasoners that the
paper lists (the fourth, the generic rule reasoner, lives in
:mod:`repro.stores.rdf.rules`).  Both reasoners are *materializing*:
``apply`` adds entailed triples to the graph and returns how many were
new, so repeated application is idempotent — a property the test suite
checks.
"""

from __future__ import annotations

from repro.stores.rdf.graph import Graph, RDF, RDFS, Triple


class TransitiveReasoner:
    """Computes the transitive closure of selected predicates.

    By default closes ``rdfs:subClassOf`` and ``rdfs:subPropertyOf`` —
    "storing and traversing class and property lattices" as the paper
    puts it.  Additional transitive predicates (e.g. a ``locatedIn``
    hierarchy) can be supplied.
    """

    def __init__(self, predicates: list[str] | None = None) -> None:
        self.predicates = list(predicates) if predicates is not None else [
            RDFS.subClassOf,
            RDFS.subPropertyOf,
        ]

    def apply(self, graph: Graph) -> int:
        """Materialize the closure; returns the number of new triples."""
        added_total = 0
        for predicate in self.predicates:
            added_total += self._close(graph, predicate)
        return added_total

    @staticmethod
    def _close(graph: Graph, predicate: str) -> int:
        # Warshall-style fixpoint over the adjacency of one predicate.
        successors: dict[str, set] = {}
        for triple in graph.match(None, predicate, None):
            successors.setdefault(triple.subject, set()).add(triple.object)
        changed = True
        while changed:
            changed = False
            for subject, objects in list(successors.items()):
                expansion = set()
                for middle in objects:
                    expansion |= successors.get(middle, set())
                new = expansion - objects
                if new:
                    objects |= new
                    changed = True
        added = 0
        for subject, objects in successors.items():
            for obj in objects:
                if subject != obj and graph.add(Triple(subject, predicate, obj)):
                    added += 1
        return added


class RdfsReasoner:
    """A configurable subset of the RDF Schema entailment rules.

    Implemented rules (names from the RDFS semantics spec):

    * ``rdfs2`` — domain: ``(p domain c), (x p y) -> (x type c)``
    * ``rdfs3`` — range: ``(p range c), (x p y) -> (y type c)``
    * ``rdfs5`` — subPropertyOf transitivity
    * ``rdfs7`` — property inheritance: ``(p subPropertyOf q), (x p y) -> (x q y)``
    * ``rdfs9`` — instance inheritance: ``(c subClassOf d), (x type c) -> (x type d)``
    * ``rdfs11`` — subClassOf transitivity

    The ``rules`` argument selects a subset, mirroring Jena's
    "configurable subset of the RDF Schema entailments".
    """

    ALL_RULES = ("rdfs2", "rdfs3", "rdfs5", "rdfs7", "rdfs9", "rdfs11")

    def __init__(self, rules: tuple[str, ...] | None = None) -> None:
        selected = tuple(rules) if rules is not None else self.ALL_RULES
        unknown = set(selected) - set(self.ALL_RULES)
        if unknown:
            raise ValueError(f"unknown RDFS rules: {sorted(unknown)}")
        self.rules = selected

    def apply(self, graph: Graph) -> int:
        """Run all selected rules to fixpoint; returns new-triple count."""
        added_total = 0
        changed = True
        while changed:
            changed = False
            for rule in self.rules:
                step = getattr(self, f"_{rule}")(graph)
                if step:
                    added_total += step
                    changed = True
        return added_total

    @staticmethod
    def _rdfs2(graph: Graph) -> int:
        added = 0
        for domain_triple in graph.match(None, RDFS.domain, None):
            for usage in graph.match(None, domain_triple.subject, None):
                added += graph.add(Triple(usage.subject, RDF.type, domain_triple.object))
        return added

    @staticmethod
    def _rdfs3(graph: Graph) -> int:
        added = 0
        for range_triple in graph.match(None, RDFS.range, None):
            for usage in graph.match(None, range_triple.subject, None):
                if isinstance(usage.object, str):
                    added += graph.add(Triple(usage.object, RDF.type, range_triple.object))
        return added

    @staticmethod
    def _rdfs5(graph: Graph) -> int:
        return TransitiveReasoner._close(graph, RDFS.subPropertyOf)

    @staticmethod
    def _rdfs7(graph: Graph) -> int:
        added = 0
        for sub_property in graph.match(None, RDFS.subPropertyOf, None):
            if not isinstance(sub_property.object, str):
                continue
            for usage in graph.match(None, sub_property.subject, None):
                added += graph.add(
                    Triple(usage.subject, sub_property.object, usage.object)
                )
        return added

    @staticmethod
    def _rdfs9(graph: Graph) -> int:
        added = 0
        for subclass in graph.match(None, RDFS.subClassOf, None):
            if not isinstance(subclass.object, str):
                continue
            for instance in graph.match(None, RDF.type, subclass.subject):
                added += graph.add(Triple(instance.subject, RDF.type, subclass.object))
        return added

    @staticmethod
    def _rdfs11(graph: Graph) -> int:
        return TransitiveReasoner._close(graph, RDFS.subClassOf)
