"""The generic rule reasoner: user-defined rules over the triple store.

Reproduces Jena's "generic rule reasoner that supports user-defined
rules ... forward chaining, tabled backward chaining, and hybrid
execution strategies":

* :meth:`GenericRuleReasoner.forward` materializes consequences to a
  fixpoint (semi-naive: each round only re-derives from the frontier);
* :meth:`GenericRuleReasoner.prove` answers a goal by tabled backward
  chaining (memoized SLD resolution with cycle protection);
* :meth:`GenericRuleReasoner.hybrid` runs one forward pass and then
  answers goals backward against the enriched graph.

Rules are Horn clauses over triple patterns with ``?variables`` and
optional Python guard functions over the bindings::

    Rule(
        premises=[("?x", "repro:parent", "?y"), ("?y", "repro:parent", "?z")],
        conclusions=[("?x", "repro:grandparent", "?z")],
        name="grandparent",
    )
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field

from repro.stores.rdf.graph import Graph, Triple
from repro.stores.rdf.query import Binding, Pattern, is_variable, _match_pattern

Guard = Callable[[Binding], bool]


@dataclass(frozen=True)
class Rule:
    """A Horn rule: if all premises match, assert all conclusions."""

    premises: tuple[Pattern, ...]
    conclusions: tuple[Pattern, ...]
    name: str = "rule"
    guards: tuple[Guard, ...] = field(default=())

    def __init__(self, premises: Sequence[Pattern], conclusions: Sequence[Pattern],
                 name: str = "rule", guards: Sequence[Guard] = ()) -> None:
        object.__setattr__(self, "premises", tuple(tuple(p) for p in premises))
        object.__setattr__(self, "conclusions", tuple(tuple(c) for c in conclusions))
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "guards", tuple(guards))
        head_vars = {
            component
            for conclusion in self.conclusions
            for component in conclusion
            if is_variable(component)
        }
        body_vars = {
            component
            for premise in self.premises
            for component in premise
            if is_variable(component)
        }
        unbound = head_vars - body_vars
        if unbound:
            raise ValueError(
                f"rule {name!r} has unbound conclusion variables: {sorted(unbound)}"
            )

    def _instantiate(self, pattern: Pattern, binding: Binding) -> Triple:
        subject, predicate, obj = (
            binding[component] if is_variable(component) else component
            for component in pattern
        )
        return Triple(subject, predicate, obj)


class GenericRuleReasoner:
    """Forward, backward and hybrid execution over a rule set."""

    def __init__(self, rules: Sequence[Rule]) -> None:
        self.rules = list(rules)
        self._rename_counter = 0

    # -- forward chaining --------------------------------------------------

    def forward(self, graph: Graph, max_rounds: int | None = None) -> int:
        """Materialize all rule consequences in ``graph``.

        Returns the number of new triples.  ``max_rounds`` bounds the
        fixpoint iteration (None = run to convergence).
        """
        return len(self._run(graph, None, max_rounds))

    def forward_delta(
        self,
        graph: Graph,
        delta: Iterable[Triple | tuple],
        max_rounds: int | None = None,
    ) -> int:
        """Materialize only the consequences of ``delta`` triples.

        Semi-naive incremental maintenance: assuming ``graph`` was
        already at fixpoint *before* the delta triples were inserted,
        this derives exactly the new consequences — every fired rule
        instance must use at least one delta (or newly derived) triple.
        The delta triples themselves must already be in the graph.
        Returns the number of new triples.
        """
        frontier = {Graph._coerce(triple) for triple in delta}
        if not frontier:
            return 0
        return len(self._run(graph, frontier, max_rounds))

    def _run(
        self,
        graph: Graph,
        frontier: set[Triple] | None,
        max_rounds: int | None,
    ) -> set[Triple]:
        """The shared fixpoint loop; returns every triple it added.

        ``frontier=None`` means "everything is new" (full evaluation,
        first round unrestricted); a concrete frontier seeds semi-naive
        evaluation from those triples only.
        """
        added_all: set[Triple] = set()
        rounds = 0
        while True:
            rounds += 1
            new_triples: set[Triple] = set()
            for rule in self.rules:
                for binding in self._rule_bindings(graph, rule, frontier):
                    if any(not guard(binding) for guard in rule.guards):
                        continue
                    for conclusion in rule.conclusions:
                        triple = rule._instantiate(conclusion, binding)
                        if triple not in graph:
                            new_triples.add(triple)
            if not new_triples:
                break
            for triple in new_triples:
                graph.add(triple)
            added_all |= new_triples
            frontier = new_triples
            if max_rounds is not None and rounds >= max_rounds:
                break
        return added_all

    def _rule_bindings(
        self, graph: Graph, rule: Rule, frontier: set[Triple] | None
    ) -> list[Binding]:
        """Bindings for a rule's premises.

        Semi-naive restriction: when a frontier is given, only consider
        matches where at least one premise is satisfied by a frontier
        triple (anything else was already derived in a previous round).
        """
        if frontier is None:
            return self._solve(graph, rule.premises, {})
        bindings: list[Binding] = []
        for pivot_index in range(len(rule.premises)):
            pivot = rule.premises[pivot_index]
            for triple in frontier:
                seed = self._unify(pivot, triple)
                if seed is None:
                    continue
                rest = [
                    premise
                    for index, premise in enumerate(rule.premises)
                    if index != pivot_index
                ]
                bindings.extend(self._solve(graph, rest, seed))
        return bindings

    @staticmethod
    def _unify(pattern: Pattern, triple: Triple) -> Binding | None:
        binding: Binding = {}
        for component, value in zip(pattern, iter(triple)):
            if is_variable(component):
                if component in binding and binding[component] != value:
                    return None
                binding[component] = value
            elif component != value:
                return None
        return binding

    @staticmethod
    def _solve(graph: Graph, patterns: Sequence[Pattern], seed: Binding) -> list[Binding]:
        bindings = [dict(seed)]
        for pattern in patterns:
            next_bindings: list[Binding] = []
            for binding in bindings:
                next_bindings.extend(_match_pattern(graph, pattern, binding))
            bindings = next_bindings
            if not bindings:
                break
        return bindings

    # -- tabled backward chaining -------------------------------------------

    def prove(self, graph: Graph, goal: Pattern, _table: dict | None = None,
              _in_progress: set | None = None) -> list[Binding]:
        """All bindings under which ``goal`` holds (facts or rules).

        Memoizes solved goals in a table and returns no answers for
        goals already on the call stack (cycle protection), which is
        the standard tabling discipline.  Tabled answers are stored
        under *normalized* variable names so that two goals differing
        only in variable naming share one table entry safely.
        """
        goal = tuple(goal)
        table = _table if _table is not None else {}
        in_progress = _in_progress if _in_progress is not None else set()
        key, var_map = self._goal_key(goal)
        inverse = {normalized: original for original, normalized in var_map.items()}
        if key in table:
            return [
                {inverse[name]: value for name, value in binding.items()}
                for binding in table[key]
            ]
        if key in in_progress:
            return []
        in_progress.add(key)

        answers: list[Binding] = []
        seen: set[tuple] = set()

        def admit(binding: Binding) -> None:
            projected = {
                component: binding[component]
                for component in goal
                if is_variable(component) and component in binding
            }
            signature = tuple(sorted(projected.items()))
            if signature not in seen:
                seen.add(signature)
                answers.append(projected)

        # Facts.
        for binding in _match_pattern(graph, goal, {}):
            admit(binding)

        # Rules whose conclusions unify with the goal.
        for rule in self.rules:
            for conclusion in rule.conclusions:
                self._rename_counter += 1
                renamed_rule = self._rename(rule, self._rename_counter)
                renamed_conclusion = renamed_rule.conclusions[
                    rule.conclusions.index(conclusion)
                ]
                unifier = self._unify_patterns(renamed_conclusion, goal)
                if unifier is None:
                    continue
                body_bindings = [unifier]
                for premise in renamed_rule.premises:
                    next_bindings: list[Binding] = []
                    for binding in body_bindings:
                        instantiated = tuple(
                            binding.get(component, component) if is_variable(component)
                            else component
                            for component in premise
                        )
                        for sub_answer in self.prove(graph, instantiated, table, in_progress):
                            merged = dict(binding)
                            conflict = False
                            for variable, value in sub_answer.items():
                                if variable in merged and merged[variable] != value:
                                    conflict = True
                                    break
                                merged[variable] = value
                            # Re-instantiate remaining variables of the premise.
                            for component, bound in zip(premise, instantiated):
                                if is_variable(component) and not is_variable(bound):
                                    merged.setdefault(component, bound)
                            if not conflict:
                                next_bindings.append(merged)
                    body_bindings = next_bindings
                    if not body_bindings:
                        break
                for binding in body_bindings:
                    if any(not guard(binding) for guard in renamed_rule.guards):
                        continue
                    # Map the goal's variables through the unified conclusion.
                    goal_binding: Binding = {}
                    for goal_component, conclusion_component in zip(
                        goal, renamed_conclusion
                    ):
                        if is_variable(goal_component):
                            value = (
                                binding.get(conclusion_component, conclusion_component)
                                if is_variable(conclusion_component)
                                else conclusion_component
                            )
                            if is_variable(value):
                                continue  # genuinely unbound — skip
                            if (
                                goal_component in goal_binding
                                and goal_binding[goal_component] != value
                            ):
                                goal_binding = None  # type: ignore[assignment]
                                break
                            goal_binding[goal_component] = value
                    if goal_binding is not None:
                        admit(goal_binding)

        in_progress.discard(key)
        table[key] = [
            {var_map[name]: value for name, value in binding.items()}
            for binding in answers
        ]
        return answers

    def holds(self, graph: Graph, goal: Pattern) -> bool:
        """Whether a (possibly ground) goal is provable."""
        return bool(self.prove(graph, goal))

    def hybrid(self, graph: Graph, goal: Pattern) -> list[Binding]:
        """One forward pass, then backward proof against the enriched graph."""
        self.forward(graph)
        return self.prove(graph, goal)

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _goal_key(goal: Pattern) -> tuple[tuple, dict[str, str]]:
        """Canonical tabling key plus the original→normalized variable map."""
        key = []
        names: dict[str, str] = {}
        for component in goal:
            if is_variable(component):
                names.setdefault(component, f"?v{len(names)}")
                key.append(names[component])
            else:
                key.append(component)
        return tuple(key), names

    @staticmethod
    def _rename(rule: Rule, suffix: int) -> Rule:
        """Rename a rule's variables apart from the goal's."""
        def rename(pattern: Pattern) -> Pattern:
            return tuple(
                f"{component}__r{suffix}" if is_variable(component) else component
                for component in pattern
            )

        return Rule(
            premises=[rename(premise) for premise in rule.premises],
            conclusions=[rename(conclusion) for conclusion in rule.conclusions],
            name=rule.name,
            guards=rule.guards,
        )

    @staticmethod
    def _unify_patterns(conclusion: Pattern, goal: Pattern) -> Binding | None:
        """Unify a renamed conclusion with a goal pattern.

        Returns a binding over the *conclusion's* variables.  Goal
        variables unify with anything (they are answered later);
        conclusion variables bind to the goal's concrete terms.
        """
        binding: Binding = {}
        for conclusion_component, goal_component in zip(conclusion, goal):
            if is_variable(conclusion_component):
                if is_variable(goal_component):
                    continue
                if (
                    conclusion_component in binding
                    and binding[conclusion_component] != goal_component
                ):
                    return None
                binding[conclusion_component] = goal_component
            elif is_variable(goal_component):
                continue
            elif conclusion_component != goal_component:
                return None
        return binding
