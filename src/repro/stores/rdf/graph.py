"""Triples and the indexed RDF graph.

A statement has a subject, predicate and object (the paper's "The Java
HashMap class implements the Java Map interface" example).  Subjects
and predicates are strings (URIs or names); objects may be strings or
numbers — numeric literals matter because the PKB stores regression
results as statements.

The graph keeps three hash indexes (SPO, POS, OSP) so that any
wildcard pattern is answered from the most selective index, the same
layout classic triple stores use.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

Term = str | int | float | bool


class _Namespace:
    """Attribute-style URI factory: ``RDFS.subClassOf`` etc."""

    def __init__(self, prefix: str) -> None:
        self._prefix = prefix

    def __getattr__(self, name: str) -> str:
        if name.startswith("_"):
            raise AttributeError(name)
        return self._prefix + name

    def __call__(self, name: str) -> str:
        return self._prefix + name


RDF = _Namespace("rdf:")
RDFS = _Namespace("rdfs:")
REPRO = _Namespace("repro:")


@dataclass(frozen=True)
class Triple:
    """One RDF statement."""

    subject: str
    predicate: str
    object: Term

    def __iter__(self) -> Iterator[Term]:
        return iter((self.subject, self.predicate, self.object))


class Graph:
    """A set of triples with SPO / POS / OSP hash indexes."""

    def __init__(self, triples: Iterable[Triple | tuple] = ()) -> None:
        self._triples: set[Triple] = set()
        self._spo: dict[str, dict[str, set[Term]]] = {}
        self._pos: dict[str, dict[Term, set[str]]] = {}
        self._osp: dict[Term, dict[str, set[str]]] = {}
        for triple in triples:
            self.add(triple)

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __contains__(self, triple: Triple | tuple) -> bool:
        return self._coerce(triple) in self._triples

    @staticmethod
    def _coerce(triple: Triple | tuple) -> Triple:
        if isinstance(triple, Triple):
            return triple
        subject, predicate, obj = triple
        return Triple(subject, predicate, obj)

    def add(self, triple: Triple | tuple) -> bool:
        """Insert a triple; returns False when it was already present."""
        triple = self._coerce(triple)
        if triple in self._triples:
            return False
        self._triples.add(triple)
        self._spo.setdefault(triple.subject, {}).setdefault(triple.predicate, set()).add(
            triple.object
        )
        self._pos.setdefault(triple.predicate, {}).setdefault(triple.object, set()).add(
            triple.subject
        )
        self._osp.setdefault(triple.object, {}).setdefault(triple.subject, set()).add(
            triple.predicate
        )
        return True

    def add_all(self, triples: Iterable[Triple | tuple]) -> int:
        """Insert many triples; returns how many were new."""
        return sum(1 for triple in triples if self.add(triple))

    def remove(self, triple: Triple | tuple) -> bool:
        """Delete a triple; returns whether it was present."""
        triple = self._coerce(triple)
        if triple not in self._triples:
            return False
        self._triples.discard(triple)

        def prune(index: dict, first, second, third) -> None:
            index[first][second].discard(third)
            if not index[first][second]:
                del index[first][second]
            if not index[first]:
                del index[first]

        prune(self._spo, triple.subject, triple.predicate, triple.object)
        prune(self._pos, triple.predicate, triple.object, triple.subject)
        prune(self._osp, triple.object, triple.subject, triple.predicate)
        return True

    def match(
        self,
        subject: str | None = None,
        predicate: str | None = None,
        obj: Term | None = None,
    ) -> list[Triple]:
        """All triples matching the pattern; ``None`` is a wildcard.

        Dispatches to the index that binds the most components, so even
        single-wildcard patterns avoid a full scan.
        """
        if subject is not None and predicate is not None and obj is not None:
            triple = Triple(subject, predicate, obj)
            return [triple] if triple in self._triples else []
        if subject is not None and predicate is not None:
            objects = self._spo.get(subject, {}).get(predicate, set())
            return [Triple(subject, predicate, item) for item in objects]
        if predicate is not None and obj is not None:
            subjects = self._pos.get(predicate, {}).get(obj, set())
            return [Triple(item, predicate, obj) for item in subjects]
        if subject is not None and obj is not None:
            predicates = self._osp.get(obj, {}).get(subject, set())
            return [Triple(subject, item, obj) for item in predicates]
        if subject is not None:
            return [
                Triple(subject, predicate_key, item)
                for predicate_key, objects in self._spo.get(subject, {}).items()
                for item in objects
            ]
        if predicate is not None:
            return [
                Triple(item, predicate, object_key)
                for object_key, subjects in self._pos.get(predicate, {}).items()
                for item in subjects
            ]
        if obj is not None:
            return [
                Triple(subject_key, item, obj)
                for subject_key, predicates in self._osp.get(obj, {}).items()
                for item in predicates
            ]
        return list(self._triples)

    def objects(self, subject: str, predicate: str) -> set[Term]:
        """All objects of (subject, predicate, ?)."""
        return set(self._spo.get(subject, {}).get(predicate, set()))

    def subjects(self, predicate: str, obj: Term) -> set[str]:
        """All subjects of (?, predicate, object)."""
        return set(self._pos.get(predicate, {}).get(obj, set()))

    def predicates(self) -> set[str]:
        return set(self._pos)

    def copy(self) -> "Graph":
        return Graph(self._triples)

    # -- persistence -------------------------------------------------------

    def to_list(self) -> list[list[Term]]:
        """JSON-friendly dump, deterministically ordered.

        The sort key stringifies objects because literals may mix types
        (numbers from regression results next to string labels).
        """
        ordered = sorted(
            self._triples,
            key=lambda t: (t.subject, t.predicate, type(t.object).__name__, str(t.object)),
        )
        return [[t.subject, t.predicate, t.object] for t in ordered]

    @classmethod
    def from_list(cls, payload: Iterable[list]) -> "Graph":
        return cls(tuple(item) for item in payload)
