"""Triples and the indexed, dictionary-encoded RDF graph.

A statement has a subject, predicate and object (the paper's "The Java
HashMap class implements the Java Map interface" example).  Subjects
and predicates are strings (URIs or names); objects may be strings or
numbers — numeric literals matter because the PKB stores regression
results as statements.

Internally the graph *interns* every term into a small integer id
(dictionary encoding, the layout production triple stores use): the
SPO / POS / OSP hash indexes then store ints, which hash faster,
compare faster during joins, and keep each index entry a machine word
instead of a repeated string.  Terms are decoded back only at the API
boundary, so callers still see plain :class:`Triple` values.

The graph also maintains per-predicate cardinality statistics
(:mod:`repro.stores.rdf.stats`) on every ``add`` / ``discard`` and a
monotonically increasing ``version`` — the inputs the query planner
and the incremental materializer rely on.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.stores.rdf.stats import BOUND, GraphStatistics, PredicateStats

Term = str | int | float | bool


class _Namespace:
    """Attribute-style URI factory: ``RDFS.subClassOf`` etc."""

    def __init__(self, prefix: str) -> None:
        self._prefix = prefix

    def __getattr__(self, name: str) -> str:
        if name.startswith("_"):
            raise AttributeError(name)
        return self._prefix + name

    def __call__(self, name: str) -> str:
        return self._prefix + name


RDF = _Namespace("rdf:")
RDFS = _Namespace("rdfs:")
REPRO = _Namespace("repro:")


@dataclass(frozen=True)
class Triple:
    """One RDF statement."""

    subject: str
    predicate: str
    object: Term

    def __iter__(self) -> Iterator[Term]:
        return iter((self.subject, self.predicate, self.object))


class Graph:
    """A set of triples with interned terms and SPO / POS / OSP indexes."""

    def __init__(self, triples: Iterable[Triple | tuple] = ()) -> None:
        # Term dictionary: term -> id and id -> term.  The first-seen
        # representation of equal terms wins (1, 1.0 and True hash and
        # compare equal in Python, exactly as the previous set-of-Triples
        # storage collapsed them).
        self._term_ids: dict[Term, int] = {}
        self._terms: list[Term] = []
        self._triples: set[tuple[int, int, int]] = set()
        self._spo: dict[int, dict[int, set[int]]] = {}
        self._pos: dict[int, dict[int, set[int]]] = {}
        self._osp: dict[int, dict[int, set[int]]] = {}
        self._stats = GraphStatistics()
        self._version = 0
        for triple in triples:
            self.add(triple)

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        terms = self._terms
        for subject_id, predicate_id, object_id in self._triples:
            yield Triple(terms[subject_id], terms[predicate_id], terms[object_id])

    def __contains__(self, triple: Triple | tuple) -> bool:
        key = self._key_of(self._coerce(triple))
        return key is not None and key in self._triples

    @property
    def version(self) -> int:
        """Monotonic mutation counter; bumps on every successful change.

        Never decreases (not even on :meth:`clear`), so it is safe as a
        cache-invalidation key.
        """
        return self._version

    @staticmethod
    def _coerce(triple: Triple | tuple) -> Triple:
        if isinstance(triple, Triple):
            return triple
        subject, predicate, obj = triple
        return Triple(subject, predicate, obj)

    # -- interning ---------------------------------------------------------

    def _intern(self, term: Term) -> int:
        term_id = self._term_ids.get(term)
        if term_id is None:
            term_id = len(self._terms)
            self._term_ids[term] = term_id
            self._terms.append(term)
        return term_id

    def _key_of(self, triple: Triple) -> tuple[int, int, int] | None:
        """The triple's id-key, or None when any term was never interned."""
        ids = self._term_ids
        subject_id = ids.get(triple.subject)
        if subject_id is None:
            return None
        predicate_id = ids.get(triple.predicate)
        if predicate_id is None:
            return None
        object_id = ids.get(triple.object)
        if object_id is None:
            return None
        return subject_id, predicate_id, object_id

    # -- mutation ----------------------------------------------------------

    def add(self, triple: Triple | tuple) -> bool:
        """Insert a triple; returns False when it was already present."""
        triple = self._coerce(triple)
        subject_id = self._intern(triple.subject)
        predicate_id = self._intern(triple.predicate)
        object_id = self._intern(triple.object)
        key = (subject_id, predicate_id, object_id)
        if key in self._triples:
            return False
        self._triples.add(key)
        self._spo.setdefault(subject_id, {}).setdefault(predicate_id, set()).add(
            object_id
        )
        self._pos.setdefault(predicate_id, {}).setdefault(object_id, set()).add(
            subject_id
        )
        self._osp.setdefault(object_id, {}).setdefault(subject_id, set()).add(
            predicate_id
        )
        self._stats.record_add(subject_id, predicate_id, object_id)
        self._version += 1
        return True

    def add_all(self, triples: Iterable[Triple | tuple]) -> int:
        """Insert many triples; returns how many were new."""
        return sum(1 for triple in triples if self.add(triple))

    def add_many(self, triples: Iterable[Triple | tuple]) -> list[bool]:
        """Insert many triples; returns per-triple newness flags.

        The sharded router prefers this over :meth:`add_all` so it can
        maintain its global statistics from exactly the triples that
        were new.  Batching backends override it with one transaction.
        """
        return [self.add(triple) for triple in triples]

    def remove(self, triple: Triple | tuple) -> bool:
        """Delete a triple; returns whether it was present.

        Term-dictionary entries are kept even when their last triple
        goes away (standard interning behavior; ids stay stable).
        """
        key = self._key_of(self._coerce(triple))
        if key is None or key not in self._triples:
            return False
        self._triples.discard(key)
        subject_id, predicate_id, object_id = key

        def prune(index: dict, first: int, second: int, third: int) -> None:
            index[first][second].discard(third)
            if not index[first][second]:
                del index[first][second]
            if not index[first]:
                del index[first]

        prune(self._spo, subject_id, predicate_id, object_id)
        prune(self._pos, predicate_id, object_id, subject_id)
        prune(self._osp, object_id, subject_id, predicate_id)
        self._stats.record_remove(subject_id, predicate_id, object_id)
        self._version += 1
        return True

    def discard(self, triple: Triple | tuple) -> bool:
        """Alias of :meth:`remove` (set-like naming)."""
        return self.remove(triple)

    def clear(self) -> None:
        """Drop every triple and the term dictionary; version still advances."""
        self._term_ids.clear()
        self._terms.clear()
        self._triples.clear()
        self._spo.clear()
        self._pos.clear()
        self._osp.clear()
        self._stats.clear()
        self._version += 1

    # -- matching ----------------------------------------------------------

    def match(
        self,
        subject: str | None = None,
        predicate: str | None = None,
        obj: Term | None = None,
    ) -> list[Triple]:
        """All triples matching the pattern; ``None`` is a wildcard.

        Dispatches to the index that binds the most components, so even
        single-wildcard patterns avoid a full scan.
        """
        ids = self._term_ids
        terms = self._terms
        subject_id = predicate_id = object_id = None
        if subject is not None:
            subject_id = ids.get(subject)
            if subject_id is None:
                return []
        if predicate is not None:
            predicate_id = ids.get(predicate)
            if predicate_id is None:
                return []
        if obj is not None:
            object_id = ids.get(obj)
            if object_id is None:
                return []
        if subject is not None and predicate is not None and obj is not None:
            present = (subject_id, predicate_id, object_id) in self._triples
            return [Triple(subject, predicate, obj)] if present else []
        if subject is not None and predicate is not None:
            objects = self._spo.get(subject_id, {}).get(predicate_id, set())
            return [Triple(subject, predicate, terms[item]) for item in objects]
        if predicate is not None and obj is not None:
            subjects = self._pos.get(predicate_id, {}).get(object_id, set())
            return [Triple(terms[item], predicate, obj) for item in subjects]
        if subject is not None and obj is not None:
            predicates = self._osp.get(object_id, {}).get(subject_id, set())
            return [Triple(subject, terms[item], obj) for item in predicates]
        if subject is not None:
            return [
                Triple(subject, terms[predicate_key], terms[item])
                for predicate_key, objects in self._spo.get(subject_id, {}).items()
                for item in objects
            ]
        if predicate is not None:
            return [
                Triple(terms[item], predicate, terms[object_key])
                for object_key, subjects in self._pos.get(predicate_id, {}).items()
                for item in subjects
            ]
        if obj is not None:
            return [
                Triple(terms[subject_key], terms[item], obj)
                for subject_key, predicates in self._osp.get(object_id, {}).items()
                for item in predicates
            ]
        return list(self)

    def objects(self, subject: str, predicate: str) -> set[Term]:
        """All objects of (subject, predicate, ?)."""
        subject_id = self._term_ids.get(subject)
        predicate_id = self._term_ids.get(predicate)
        if subject_id is None or predicate_id is None:
            return set()
        object_ids = self._spo.get(subject_id, {}).get(predicate_id, set())
        return {self._terms[item] for item in object_ids}

    def subjects(self, predicate: str, obj: Term) -> set[str]:
        """All subjects of (?, predicate, object)."""
        predicate_id = self._term_ids.get(predicate)
        object_id = self._term_ids.get(obj)
        if predicate_id is None or object_id is None:
            return set()
        subject_ids = self._pos.get(predicate_id, {}).get(object_id, set())
        return {self._terms[item] for item in subject_ids}

    def predicates(self) -> set[str]:
        """Every predicate with at least one triple."""
        return {self._terms[predicate_id] for predicate_id in self._pos}

    def copy(self) -> "Graph":
        return Graph(self)

    # -- statistics and cardinality estimation -----------------------------

    def predicate_statistics(self) -> dict[str, PredicateStats]:
        """A snapshot of per-predicate statistics, keyed by predicate term."""
        stats = self._stats
        return {
            self._terms[predicate_id]: PredicateStats(
                predicate=self._terms[predicate_id],
                count=stats.predicate_count(predicate_id),
                distinct_subjects=stats.distinct_subjects(predicate_id),
                distinct_objects=stats.distinct_objects(predicate_id),
            )
            for predicate_id in stats.predicate_ids()
        }

    def estimate_cardinality(
        self,
        subject: object = None,
        predicate: object = None,
        obj: object = None,
    ) -> float:
        """Estimated rows for a pattern, from indexes and statistics.

        Each position is a concrete term, ``None`` (free variable) or
        :data:`repro.stores.rdf.stats.BOUND` (a variable whose value
        will be supplied by earlier join steps but is unknown at
        planning time).  Concrete positions use exact index counts;
        BOUND positions discount by the average fan-out.  O(1) except
        for subject-only / object-only patterns, which sum one small
        index bucket.
        """
        total = len(self._triples)
        if total == 0:
            return 0.0
        subject_id = predicate_id = object_id = None
        if subject is not None and subject is not BOUND:
            subject_id = self._term_ids.get(subject)
            if subject_id is None:
                return 0.0
        if predicate is not None and predicate is not BOUND:
            predicate_id = self._term_ids.get(predicate)
            if predicate_id is None:
                return 0.0
        if obj is not None and obj is not BOUND:
            object_id = self._term_ids.get(obj)
            if object_id is None:
                return 0.0

        s_const = subject_id is not None
        p_const = predicate_id is not None
        o_const = object_id is not None
        if s_const and p_const and o_const:
            key = (subject_id, predicate_id, object_id)
            return 1.0 if key in self._triples else 0.0
        if s_const and p_const:
            base = len(self._spo.get(subject_id, {}).get(predicate_id, ()))
        elif p_const and o_const:
            base = len(self._pos.get(predicate_id, {}).get(object_id, ()))
        elif s_const and o_const:
            base = len(self._osp.get(object_id, {}).get(subject_id, ()))
        elif s_const:
            base = sum(len(objs) for objs in self._spo.get(subject_id, {}).values())
        elif p_const:
            base = self._stats.predicate_count(predicate_id)
        elif o_const:
            base = sum(len(preds) for preds in self._osp.get(object_id, {}).values())
        else:
            base = total
        if base == 0:
            return 0.0

        estimate = float(base)
        if subject is BOUND:
            distinct = (
                self._stats.distinct_subjects(predicate_id)
                if p_const
                else len(self._spo)
            )
            estimate /= max(1, distinct)
        if obj is BOUND:
            distinct = (
                self._stats.distinct_objects(predicate_id)
                if p_const
                else len(self._osp)
            )
            estimate /= max(1, distinct)
        if predicate is BOUND:
            estimate /= max(1, len(self._pos))
        return estimate

    # -- persistence -------------------------------------------------------

    def to_list(self) -> list[list[Term]]:
        """JSON-friendly dump, deterministically ordered.

        The sort key stringifies objects because literals may mix types
        (numbers from regression results next to string labels).
        """
        ordered = sorted(
            self,
            key=lambda t: (t.subject, t.predicate, type(t.object).__name__, str(t.object)),
        )
        return [[t.subject, t.predicate, t.object] for t in ordered]

    @classmethod
    def from_list(cls, payload: Iterable[list]) -> "Graph":
        return cls(tuple(item) for item in payload)
