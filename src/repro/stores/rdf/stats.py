"""Per-predicate cardinality statistics for the triple store.

The query planner (:mod:`repro.stores.rdf.plan`) needs to know, before
touching any data, roughly how many triples a pattern will match.  The
classic answer is per-predicate statistics maintained *incrementally*
on every ``Graph.add`` / ``Graph.discard`` — never recomputed by
scanning — so planning stays O(patterns²) regardless of graph size:

* ``count(p)`` — how many triples use predicate ``p``;
* ``distinct_subjects(p)`` / ``distinct_objects(p)`` — how many
  different subjects / objects appear with ``p``, which give the
  average fan-out used to discount patterns whose subject or object is
  a join variable already bound by an earlier pattern.

:class:`GraphStatistics` works on the graph's interned integer term
ids (see :class:`repro.stores.rdf.graph.Graph`); the graph decodes ids
back to terms for the human-facing :meth:`Graph.predicate_statistics`
snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass


class _BoundMarker:
    """Sentinel: a pattern position held by an already-bound variable.

    Its concrete value is unknown at planning time, so the estimator
    discounts by the average fan-out instead of an index lookup.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "<bound>"


BOUND = _BoundMarker()


@dataclass(frozen=True)
class PredicateStats:
    """A read-only snapshot of one predicate's statistics."""

    predicate: str
    count: int
    distinct_subjects: int
    distinct_objects: int

    @property
    def subject_fanout(self) -> float:
        """Average triples per distinct subject (``count / distinct_subjects``)."""
        return self.count / self.distinct_subjects if self.distinct_subjects else 0.0

    @property
    def object_fanout(self) -> float:
        """Average triples per distinct object (``count / distinct_objects``)."""
        return self.count / self.distinct_objects if self.distinct_objects else 0.0


class GraphStatistics:
    """Incrementally-maintained cardinality statistics over term ids.

    The owning :class:`~repro.stores.rdf.graph.Graph` calls
    :meth:`record_add` / :meth:`record_remove` from its own mutation
    path, so the counters can never drift from the indexes.
    Multiplicity maps (term id → how many triples reference it) make
    removal exact: a subject only stops being "distinct" for a
    predicate when its last triple with that predicate goes away.
    """

    __slots__ = ("total", "_count", "_subjects", "_objects")

    def __init__(self) -> None:
        self.total = 0
        self._count: dict[int, int] = {}
        self._subjects: dict[int, dict[int, int]] = {}
        self._objects: dict[int, dict[int, int]] = {}

    # -- maintenance (called by Graph only) --------------------------------

    def record_add(self, subject_id: int, predicate_id: int, object_id: int) -> None:
        """Account for one newly inserted triple."""
        self.total += 1
        self._count[predicate_id] = self._count.get(predicate_id, 0) + 1
        subjects = self._subjects.setdefault(predicate_id, {})
        subjects[subject_id] = subjects.get(subject_id, 0) + 1
        objects = self._objects.setdefault(predicate_id, {})
        objects[object_id] = objects.get(object_id, 0) + 1

    def record_remove(self, subject_id: int, predicate_id: int, object_id: int) -> None:
        """Account for one removed triple."""
        self.total -= 1
        remaining = self._count[predicate_id] - 1
        if remaining:
            self._count[predicate_id] = remaining
        else:
            del self._count[predicate_id]

        def decrement(table: dict[int, dict[int, int]], key: int) -> None:
            bucket = table[predicate_id]
            left = bucket[key] - 1
            if left:
                bucket[key] = left
            else:
                del bucket[key]
            if not bucket:
                del table[predicate_id]

        decrement(self._subjects, subject_id)
        decrement(self._objects, object_id)

    def clear(self) -> None:
        """Reset every counter (the graph was cleared)."""
        self.total = 0
        self._count.clear()
        self._subjects.clear()
        self._objects.clear()

    # -- queries ------------------------------------------------------------

    def predicate_count(self, predicate_id: int) -> int:
        """Triples whose predicate has this id (0 when unseen)."""
        return self._count.get(predicate_id, 0)

    def distinct_subjects(self, predicate_id: int) -> int:
        """Distinct subjects appearing with this predicate id."""
        return len(self._subjects.get(predicate_id, ()))

    def distinct_objects(self, predicate_id: int) -> int:
        """Distinct objects appearing with this predicate id."""
        return len(self._objects.get(predicate_id, ()))

    def predicate_ids(self) -> list[int]:
        """Every predicate id with at least one triple."""
        return list(self._count)
