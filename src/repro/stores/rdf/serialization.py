"""Turtle-style serialization for the triple store.

A compact, line-oriented subset of Turtle: one ``subject predicate
object .`` statement per line, string objects quoted with escapes,
numbers and booleans bare.  Good enough to interchange with external
tooling and to keep human-inspectable dumps of the PKB's graph in
version control.
"""

from __future__ import annotations

from repro.stores.rdf.graph import Graph, Term, Triple
from repro.util.errors import SerializationError


_BARE_SAFE = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
    ":_/-."
)


def _encode_term(term: Term) -> str:
    if isinstance(term, bool):
        return "true" if term else "false"
    if isinstance(term, (int, float)):
        return repr(term)
    if isinstance(term, str):
        bare_ok = (
            term != ""
            and all(ch in _BARE_SAFE for ch in term)
            and not term.endswith(".")
            and not _looks_literal(term)
        )
        if bare_ok:
            return term
        escaped = term.replace("\\", "\\\\").replace('"', '\\"')
        escaped = escaped.replace("\n", "\\n").replace("\r", "\\r")
        return f'"{escaped}"'
    raise SerializationError(f"cannot serialize term of type {type(term).__name__}")


def _looks_literal(text: str) -> bool:
    """Strings that would parse back as numbers/booleans must be quoted."""
    if text in ("true", "false"):
        return True
    try:
        float(text)
        return True
    except ValueError:
        return False


def _decode_term(token: str) -> Term:
    if token.startswith('"'):
        if not token.endswith('"') or len(token) < 2:
            raise SerializationError(f"unterminated string literal: {token!r}")
        body = token[1:-1]
        out = []
        index = 0
        while index < len(body):
            ch = body[index]
            if ch == "\\" and index + 1 < len(body):
                follower = body[index + 1]
                out.append({"n": "\n", "r": "\r", '"': '"',
                            "\\": "\\"}.get(follower, follower))
                index += 2
            else:
                out.append(ch)
                index += 1
        return "".join(out)
    if token == "true":
        return True
    if token == "false":
        return False
    try:
        return int(token)
    except ValueError:  # repro: ignore[RA002] — coercion probe; fallthrough IS the handling
        pass
    try:
        return float(token)
    except ValueError:  # repro: ignore[RA002] — coercion probe; fallthrough IS the handling
        pass
    return token


def _split_statement(line: str) -> list[str]:
    """Split a statement line into three tokens, respecting quotes."""
    tokens = []
    current = []
    in_string = False
    index = 0
    while index < len(line):
        ch = line[index]
        if in_string:
            current.append(ch)
            if ch == "\\" and index + 1 < len(line):
                current.append(line[index + 1])
                index += 1
            elif ch == '"':
                in_string = False
        elif ch == '"':
            in_string = True
            current.append(ch)
        elif ch.isspace():
            if current:
                tokens.append("".join(current))
                current = []
        else:
            current.append(ch)
        index += 1
    if current:
        tokens.append("".join(current))
    return tokens


def to_turtle(graph: Graph) -> str:
    """Serialize a graph, deterministically ordered, one triple per line."""
    lines = []
    for subject, predicate, obj in graph.to_list():
        lines.append(f"{_encode_term(subject)} {_encode_term(predicate)} "
                     f"{_encode_term(obj)} .")
    return "\n".join(lines) + ("\n" if lines else "")


def from_turtle(text: str) -> Graph:
    """Parse the subset emitted by :func:`to_turtle`.

    Blank lines and ``#`` comment lines are ignored; every other line
    must be ``subject predicate object .``.
    """
    graph = Graph()
    # Split on '\n' only: splitlines() would also break on form feeds
    # and other unicode boundaries that may sit inside quoted literals.
    for line_number, raw_line in enumerate(text.split("\n"), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        if not line.endswith("."):
            raise SerializationError(
                f"line {line_number}: statement must end with '.': {raw_line!r}")
        tokens = _split_statement(line[:-1].strip())
        if len(tokens) != 3:
            raise SerializationError(
                f"line {line_number}: expected 3 terms, got {len(tokens)}")
        subject = _decode_term(tokens[0])
        predicate = _decode_term(tokens[1])
        obj = _decode_term(tokens[2])
        if not isinstance(subject, str) or not isinstance(predicate, str):
            raise SerializationError(
                f"line {line_number}: subject and predicate must be names")
        graph.add(Triple(subject, predicate, obj))
    return graph
