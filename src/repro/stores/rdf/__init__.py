"""RDF triple store with reasoning (the PKB's Apache Jena stand-in).

* :mod:`repro.stores.rdf.graph` — triples, the indexed graph, and the
  RDF/RDFS vocabulary constants.
* :mod:`repro.stores.rdf.query` — a SPARQL-like SELECT engine over
  basic graph patterns with filters.
* :mod:`repro.stores.rdf.reasoner` — the predefined reasoners the paper
  lists: transitive and RDFS-subset rule reasoners.
* :mod:`repro.stores.rdf.rules` — the "generic rule reasoner that
  supports user-defined rules", with forward chaining and tabled
  backward chaining.
* :mod:`repro.stores.rdf.stats` / :mod:`repro.stores.rdf.plan` —
  per-predicate cardinality statistics and the cost-based query
  planner built on them.
* :mod:`repro.stores.rdf.materialize` — incrementally maintained
  materialized views with a version-keyed query-result cache.
* :mod:`repro.stores.rdf.shard` — the hash-sharded composite store
  with parallel fan-out query execution (backends pluggable via
  :mod:`repro.stores.backends`).
"""

from repro.stores.rdf.graph import Triple, Graph, RDF, RDFS, REPRO
from repro.stores.rdf.query import (
    select,
    union,
    distinct_bindings,
    project_bindings,
    Pattern,
    RangeFilter,
    is_variable,
)
from repro.stores.rdf.stats import BOUND, GraphStatistics, PredicateStats
from repro.stores.rdf.plan import (
    QueryPlan,
    PlanStep,
    FanoutPlan,
    build_plan,
    build_sharded_plan,
    execute_plan,
    bound_filter,
    filter_variables,
)
from repro.stores.rdf.shard import ShardedGraph, shard_of
from repro.stores.rdf.materialize import MaterializedGraph, QueryResultCache
from repro.stores.rdf.reasoner import TransitiveReasoner, RdfsReasoner
from repro.stores.rdf.rules import Rule, GenericRuleReasoner
from repro.stores.rdf.serialization import to_turtle, from_turtle
from repro.stores.rdf.provenance import (
    ConfidenceGraph,
    ConfidenceRuleEngine,
    WeightedRule,
    godel_tnorm,
    product_tnorm,
)

__all__ = [
    "to_turtle",
    "from_turtle",
    "ConfidenceGraph",
    "ConfidenceRuleEngine",
    "WeightedRule",
    "godel_tnorm",
    "product_tnorm",
    "Triple",
    "Graph",
    "RDF",
    "RDFS",
    "REPRO",
    "select",
    "union",
    "distinct_bindings",
    "project_bindings",
    "Pattern",
    "RangeFilter",
    "is_variable",
    "BOUND",
    "GraphStatistics",
    "PredicateStats",
    "QueryPlan",
    "PlanStep",
    "FanoutPlan",
    "build_plan",
    "build_sharded_plan",
    "execute_plan",
    "ShardedGraph",
    "shard_of",
    "bound_filter",
    "filter_variables",
    "MaterializedGraph",
    "QueryResultCache",
    "TransitiveReasoner",
    "RdfsReasoner",
    "Rule",
    "GenericRuleReasoner",
]
