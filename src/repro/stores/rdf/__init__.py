"""RDF triple store with reasoning (the PKB's Apache Jena stand-in).

* :mod:`repro.stores.rdf.graph` — triples, the indexed graph, and the
  RDF/RDFS vocabulary constants.
* :mod:`repro.stores.rdf.query` — a SPARQL-like SELECT engine over
  basic graph patterns with filters.
* :mod:`repro.stores.rdf.reasoner` — the predefined reasoners the paper
  lists: transitive and RDFS-subset rule reasoners.
* :mod:`repro.stores.rdf.rules` — the "generic rule reasoner that
  supports user-defined rules", with forward chaining and tabled
  backward chaining.
"""

from repro.stores.rdf.graph import Triple, Graph, RDF, RDFS, REPRO
from repro.stores.rdf.query import select, Pattern, is_variable
from repro.stores.rdf.reasoner import TransitiveReasoner, RdfsReasoner
from repro.stores.rdf.rules import Rule, GenericRuleReasoner
from repro.stores.rdf.serialization import to_turtle, from_turtle
from repro.stores.rdf.provenance import (
    ConfidenceGraph,
    ConfidenceRuleEngine,
    WeightedRule,
    godel_tnorm,
    product_tnorm,
)

__all__ = [
    "to_turtle",
    "from_turtle",
    "ConfidenceGraph",
    "ConfidenceRuleEngine",
    "WeightedRule",
    "godel_tnorm",
    "product_tnorm",
    "Triple",
    "Graph",
    "RDF",
    "RDFS",
    "REPRO",
    "select",
    "Pattern",
    "is_variable",
    "TransitiveReasoner",
    "RdfsReasoner",
    "Rule",
    "GenericRuleReasoner",
]
