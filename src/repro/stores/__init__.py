"""Local persistent stores used by the personalized knowledge base.

The paper's PKB stores data "in multiple ways": files/CSV, a relational
DBMS (MySQL in the paper), key-value stores, and an RDF triple store
with reasoning (Apache Jena in the paper).  Each has a from-scratch
equivalent here, plus the format converters the paper calls "a key
property" of the PKB.

The triple store's physical layer is pluggable
(:mod:`repro.stores.backends`): the in-memory indexed graph and a
stdlib-``sqlite3`` file backend satisfy the same
:class:`~repro.stores.backends.base.StorageBackend` contract, and
:class:`~repro.stores.rdf.shard.ShardedGraph` composes N of either
behind hash sharding with parallel fan-out queries.
"""

from repro.stores.backends import SqliteTripleStore, StorageBackend
from repro.stores.kvstore import KeyValueStore, InMemoryKeyValueStore, FileKeyValueStore
from repro.stores.rdf.shard import ShardedGraph, shard_of
from repro.stores.csvio import read_csv, write_csv, read_csv_text, write_csv_text
from repro.stores.relational import Column, Database, Table
from repro.stores.converters import (
    table_to_triples,
    triples_to_rows,
    rows_to_table,
    csv_text_to_table,
    table_to_csv_text,
)

__all__ = [
    "StorageBackend",
    "SqliteTripleStore",
    "ShardedGraph",
    "shard_of",
    "KeyValueStore",
    "InMemoryKeyValueStore",
    "FileKeyValueStore",
    "read_csv",
    "write_csv",
    "read_csv_text",
    "write_csv_text",
    "Column",
    "Database",
    "Table",
    "table_to_triples",
    "triples_to_rows",
    "rows_to_table",
    "csv_text_to_table",
    "table_to_csv_text",
]
