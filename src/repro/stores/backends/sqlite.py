"""A stdlib-``sqlite3`` triple store implementing :class:`StorageBackend`.

The "dev-grade durable backend" of the pluggable storage layer: one
file (or ``:memory:``) holds a dictionary-encoded triple table whose
three B-tree orderings mirror the in-memory graph's SPO / POS / OSP
hash indexes, so every ``match`` prefix scan is index-backed:

* ``terms(id, kind, text, numkey)`` — the term dictionary.  ``numkey``
  is an exact rational key (``fractions.Fraction``) for numeric terms,
  so ``1``, ``1.0`` and ``True`` collapse into one term exactly as
  Python dict interning collapses them in :class:`Graph` — the
  first-seen representation wins and is what scans decode back to.
* ``triples(s, p, o, onum)`` — interned id triples.  The table is
  ``WITHOUT ROWID`` with primary key ``(s, p, o)`` (the SPO index);
  secondary indexes cover ``(p, o, s)`` and ``(o, s, p)``.  ``onum``
  denormalizes numeric object values so range scans and top-k orders
  can run inside SQLite's C engine (GIL released), which is what the
  sharded scatter path parallelizes across backends.

Writes are batched: :meth:`add_all` / :meth:`add_many` run chunked
``executemany`` inside one transaction.  A ``fault_hook`` — the chaos
harness's injection point — is consulted between chunks; any raise
rolls the whole batch back, so partial batches are never visible
(asserted by ``tests/chaos/test_sqlite_faults.py``).

File-backed stores run in WAL mode so a reader can scan while another
connection writes.  The monotonic ``version`` counter is persisted in
a ``meta`` table and therefore survives reopen.
"""

from __future__ import annotations

import sqlite3
import threading
from collections.abc import Iterable, Iterator
from fractions import Fraction
from pathlib import Path

from repro.obs import names
from repro.stores.backends.base import canonical_triple_list
from repro.stores.rdf.graph import Term, Triple
from repro.stores.rdf.stats import BOUND, PredicateStats

_SCHEMA = """
CREATE TABLE IF NOT EXISTS terms (
    id INTEGER PRIMARY KEY,
    kind TEXT NOT NULL,
    text TEXT NOT NULL,
    numkey TEXT
);
CREATE TABLE IF NOT EXISTS triples (
    s INTEGER NOT NULL,
    p INTEGER NOT NULL,
    o INTEGER NOT NULL,
    onum REAL,
    PRIMARY KEY (s, p, o)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_triples_pos ON triples (p, o, s);
CREATE INDEX IF NOT EXISTS idx_triples_osp ON triples (o, s, p);
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value INTEGER NOT NULL
);
"""


def _encode(term: Term) -> tuple[str, str]:
    """A term's persisted ``(kind, text)`` representation."""
    if isinstance(term, bool):
        return "bool", str(term)
    if isinstance(term, int):
        return "int", str(term)
    if isinstance(term, float):
        return "float", repr(term)
    return "str", term


def _decode(kind: str, text: str) -> Term:
    """Rebuild a term from its persisted representation."""
    if kind == "bool":
        return text == "True"
    if kind == "int":
        return int(text)
    if kind == "float":
        return float(text)
    return text


def _numeric_value(term: Term) -> float | None:
    """The term's float value when numeric, else None (for ``onum``)."""
    if isinstance(term, (bool, int, float)):
        try:
            return float(term)
        except OverflowError:
            # Ints beyond float range stay scannable by equality but
            # are excluded from numeric range scans.
            return None
    return None


class SqliteTripleStore:
    """A :class:`StorageBackend` over one stdlib-``sqlite3`` database.

    Thread-safe: one connection guarded by an RLock, so independent
    stores (e.g. shards) scan in parallel while each store serializes
    its own access.  ``batch_size`` bounds the rows per ``executemany``
    chunk inside :meth:`add_all` / :meth:`add_many` transactions.
    """

    def __init__(self, path: str | Path = ":memory:", *,
                 batch_size: int = 512,
                 fault_hook=None,
                 obs=None) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.path = str(path)
        self.batch_size = batch_size
        self.fault_hook = fault_hook
        self._lock = threading.RLock()
        # isolation_level=None → autocommit; batch writes manage their
        # own BEGIN/COMMIT explicitly so rollback is exact.
        self._conn = sqlite3.connect(self.path, check_same_thread=False,
                                     isolation_level=None)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.executescript(_SCHEMA)
        self._term_ids: dict[Term, int] = {}
        self._terms: dict[int, Term] = {}
        for term_id, kind, text in self._conn.execute(
                "SELECT id, kind, text FROM terms ORDER BY id"):
            term = _decode(kind, text)
            # First-seen (lowest id) representation wins on reload,
            # matching the order the terms were originally interned.
            if term not in self._term_ids:
                self._term_ids[term] = term_id
            self._terms[term_id] = term
        self._size = self._conn.execute(
            "SELECT COUNT(*) FROM triples").fetchone()[0]
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = 'version'").fetchone()
        self._version = row[0] if row is not None else 0
        if obs is not None and obs.enabled:
            self._metric_ops = obs.metrics.counter(
                names.STORAGE_BACKEND_OPS_TOTAL,
                "Storage-backend operations, labelled by backend and op.")
        else:
            self._metric_ops = None

    # -- bookkeeping -------------------------------------------------------

    def _count_op(self, op: str) -> None:
        if self._metric_ops is not None:
            self._metric_ops.inc(backend="sqlite", op=op)

    def _persist_version(self) -> None:
        self._conn.execute(
            "INSERT INTO meta (key, value) VALUES ('version', ?) "
            "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
            (self._version,))

    def _intern(self, term: Term, journal: list[Term] | None = None) -> int:
        term_id = self._term_ids.get(term)
        if term_id is None:
            kind, text = _encode(term)
            numkey = None
            if isinstance(term, (bool, int, float)):
                try:
                    numkey = str(Fraction(term))
                except (OverflowError, ValueError):
                    # inf / nan have no rational key; fall back to the
                    # textual representation (collapses equal infinities,
                    # as Python dict interning does).
                    numkey = text
            cursor = self._conn.execute(
                "INSERT INTO terms (kind, text, numkey) VALUES (?, ?, ?)",
                (kind, text, numkey))
            term_id = cursor.lastrowid
            self._term_ids[term] = term_id
            self._terms[term_id] = term
            if journal is not None:
                journal.append(term)
        return term_id

    def _forget_terms(self, journal: list[Term]) -> None:
        """Undo dictionary entries for terms rolled back with a batch."""
        for term in journal:
            term_id = self._term_ids.pop(term, None)
            if term_id is not None:
                self._terms.pop(term_id, None)

    def _ids_of(self, triple: Triple) -> tuple[int, int, int] | None:
        subject_id = self._term_ids.get(triple.subject)
        if subject_id is None:
            return None
        predicate_id = self._term_ids.get(triple.predicate)
        if predicate_id is None:
            return None
        object_id = self._term_ids.get(triple.object)
        if object_id is None:
            return None
        return subject_id, predicate_id, object_id

    # -- mutation ----------------------------------------------------------

    def add(self, triple: Triple | tuple) -> bool:
        """Insert a triple; returns False when it was already present."""
        triple = Triple(*triple) if not isinstance(triple, Triple) else triple
        with self._lock:
            subject_id = self._intern(triple.subject)
            predicate_id = self._intern(triple.predicate)
            object_id = self._intern(triple.object)
            cursor = self._conn.execute(
                "INSERT OR IGNORE INTO triples (s, p, o, onum) "
                "VALUES (?, ?, ?, ?)",
                (subject_id, predicate_id, object_id,
                 _numeric_value(self._terms[object_id])))
            added = cursor.rowcount == 1
            if added:
                self._size += 1
                self._version += 1
                self._persist_version()
            self._count_op("add")
            return added

    def _batch_insert(self, triples: Iterable[Triple | tuple],
                      collect_flags: bool) -> tuple[int, list[bool]]:
        """Chunked, transactional bulk insert shared by add_all/add_many.

        The whole call is one transaction: if the fault hook (or SQLite
        itself) raises between chunks, every chunk already written is
        rolled back and the term dictionary is restored — a batch is
        visible either completely or not at all.
        """
        rows = [Triple(*t) if not isinstance(t, Triple) else t for t in triples]
        flags: list[bool] = []
        added = 0
        journal: list[Term] = []
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                for start in range(0, len(rows), self.batch_size):
                    chunk = rows[start:start + self.batch_size]
                    if self.fault_hook is not None:
                        self.fault_hook(start // self.batch_size)
                    if collect_flags:
                        for triple in chunk:
                            ids = (self._intern(triple.subject, journal),
                                   self._intern(triple.predicate, journal),
                                   self._intern(triple.object, journal))
                            cursor = self._conn.execute(
                                "INSERT OR IGNORE INTO triples "
                                "(s, p, o, onum) VALUES (?, ?, ?, ?)",
                                (*ids, _numeric_value(self._terms[ids[2]])))
                            flags.append(cursor.rowcount == 1)
                            added += flags[-1]
                    else:
                        encoded = []
                        for triple in chunk:
                            ids = (self._intern(triple.subject, journal),
                                   self._intern(triple.predicate, journal),
                                   self._intern(triple.object, journal))
                            encoded.append(
                                (*ids, _numeric_value(self._terms[ids[2]])))
                        before = self._conn.total_changes
                        self._conn.executemany(
                            "INSERT OR IGNORE INTO triples "
                            "(s, p, o, onum) VALUES (?, ?, ?, ?)", encoded)
                        added += self._conn.total_changes - before
                self._size += added
                self._version += added
                self._persist_version()
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                self._forget_terms(journal)
                raise
            self._count_op("add_batch")
        return added, flags

    def add_all(self, triples: Iterable[Triple | tuple]) -> int:
        """Insert many triples in one batched transaction; returns new count."""
        added, _ = self._batch_insert(triples, collect_flags=False)
        return added

    def add_many(self, triples: Iterable[Triple | tuple]) -> list[bool]:
        """Like :meth:`add_all` but reports per-triple newness.

        The sharded router uses this to keep its global statistics
        exact while still writing one transaction per shard batch.
        """
        _, flags = self._batch_insert(triples, collect_flags=True)
        return flags

    def remove(self, triple: Triple | tuple) -> bool:
        """Delete a triple; returns whether it was present."""
        triple = Triple(*triple) if not isinstance(triple, Triple) else triple
        with self._lock:
            ids = self._ids_of(triple)
            if ids is None:
                return False
            cursor = self._conn.execute(
                "DELETE FROM triples WHERE s = ? AND p = ? AND o = ?", ids)
            removed = cursor.rowcount == 1
            if removed:
                self._size -= 1
                self._version += 1
                self._persist_version()
            self._count_op("remove")
            return removed

    def discard(self, triple: Triple | tuple) -> bool:
        """Alias of :meth:`remove` (set-like naming)."""
        return self.remove(triple)

    def clear(self) -> None:
        """Drop every triple and term; the version still advances."""
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._conn.execute("DELETE FROM triples")
                self._conn.execute("DELETE FROM terms")
                self._version += 1
                self._persist_version()
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            self._term_ids.clear()
            self._terms.clear()
            self._size = 0
            self._count_op("clear")

    # -- scans -------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Triple]:
        with self._lock:
            rows = self._conn.execute("SELECT s, p, o FROM triples").fetchall()
        terms = self._terms
        for subject_id, predicate_id, object_id in rows:
            yield Triple(terms[subject_id], terms[predicate_id],
                         terms[object_id])

    def __contains__(self, triple: Triple | tuple) -> bool:
        triple = Triple(*triple) if not isinstance(triple, Triple) else triple
        with self._lock:
            ids = self._ids_of(triple)
            if ids is None:
                return False
            row = self._conn.execute(
                "SELECT 1 FROM triples WHERE s = ? AND p = ? AND o = ? "
                "LIMIT 1", ids).fetchone()
            return row is not None

    @property
    def version(self) -> int:
        """Monotonic mutation counter (persisted across reopen)."""
        return self._version

    def match(self, subject: str | None = None, predicate: str | None = None,
              obj: Term | None = None) -> list[Triple]:
        """Index-backed prefix scan; ``None`` is a wildcard.

        SQLite picks the SPO primary key or one of the POS / OSP
        secondary indexes from the bound columns — the same dispatch
        table the in-memory graph implements by hand.
        """
        clauses: list[str] = []
        params: list[int] = []
        with self._lock:
            for column, term in (("s", subject), ("p", predicate), ("o", obj)):
                if term is None:
                    continue
                term_id = self._term_ids.get(term)
                if term_id is None:
                    return []
                clauses.append(f"{column} = ?")
                params.append(term_id)
            sql = "SELECT s, p, o FROM triples"
            if clauses:
                sql += " WHERE " + " AND ".join(clauses)
            rows = self._conn.execute(sql, params).fetchall()
            self._count_op("scan")
        terms = self._terms
        return [Triple(terms[s], terms[p], terms[o]) for s, p, o in rows]

    def scan_numeric(self, predicate: str, low: float | None = None,
                     high: float | None = None, *,
                     low_inclusive: bool = True, high_inclusive: bool = True,
                     descending: bool = False,
                     limit: int | None = None) -> list[Triple]:
        """Numeric-object scan executed inside SQLite's C engine.

        Returns triples ``(s, predicate, numeric o)`` whose object
        value falls in the given range, ordered by value (ties broken
        by interned subject id, so output is deterministic for one
        store).  This is the pushed-down filter + top-k primitive the
        sharded scatter path fans out per shard: the row scan runs
        with the GIL released, so N shards scan on N cores.
        """
        with self._lock:
            predicate_id = self._term_ids.get(predicate)
            if predicate_id is None:
                return []
            clauses = ["p = ?", "onum IS NOT NULL"]
            params: list[object] = [predicate_id]
            if low is not None:
                clauses.append("onum >= ?" if low_inclusive else "onum > ?")
                params.append(low)
            if high is not None:
                clauses.append("onum <= ?" if high_inclusive else "onum < ?")
                params.append(high)
            direction = "DESC" if descending else "ASC"
            sql = ("SELECT s, o FROM triples WHERE " + " AND ".join(clauses)
                   + f" ORDER BY onum {direction}, s ASC")
            if limit is not None:
                sql += " LIMIT ?"
                params.append(limit)
            rows = self._conn.execute(sql, params).fetchall()
            self._count_op("scan_numeric")
        terms = self._terms
        return [Triple(terms[s], predicate, terms[o]) for s, o in rows]

    def objects(self, subject: str, predicate: str) -> set[Term]:
        """All objects of ``(subject, predicate, ?)``."""
        return {t.object for t in self.match(subject, predicate, None)}

    def subjects(self, predicate: str, obj: Term) -> set[str]:
        """All subjects of ``(?, predicate, object)``."""
        return {t.subject for t in self.match(None, predicate, obj)}

    def predicates(self) -> set[str]:
        """Every predicate with at least one triple."""
        with self._lock:
            rows = self._conn.execute("SELECT DISTINCT p FROM triples").fetchall()
        return {self._terms[row[0]] for row in rows}

    # -- statistics and cardinality estimation -----------------------------

    def predicate_statistics(self) -> dict[str, PredicateStats]:
        """Per-predicate statistics computed from the POS index."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT p, COUNT(*), COUNT(DISTINCT s), COUNT(DISTINCT o) "
                "FROM triples GROUP BY p").fetchall()
        stats = {}
        for predicate_id, count, distinct_subjects, distinct_objects in rows:
            predicate = self._terms[predicate_id]
            stats[predicate] = PredicateStats(
                predicate=predicate, count=count,
                distinct_subjects=distinct_subjects,
                distinct_objects=distinct_objects)
        return stats

    def _scalar(self, sql: str, params: tuple = ()) -> int:
        return self._conn.execute(sql, params).fetchone()[0]

    def estimate_cardinality(self, subject: object = None,
                             predicate: object = None,
                             obj: object = None) -> float:
        """Estimated rows for a pattern — same contract as the graph's.

        Concrete positions use exact index counts; ``BOUND`` positions
        discount by average fan-out.  For identical content this
        returns bit-identical floats to
        :meth:`Graph.estimate_cardinality`, which keeps planner
        ``explain()`` output byte-stable across backends.
        """
        with self._lock:
            total = self._size
            if total == 0:
                return 0.0
            subject_id = predicate_id = object_id = None
            if subject is not None and subject is not BOUND:
                subject_id = self._term_ids.get(subject)
                if subject_id is None:
                    return 0.0
            if predicate is not None and predicate is not BOUND:
                predicate_id = self._term_ids.get(predicate)
                if predicate_id is None:
                    return 0.0
            if obj is not None and obj is not BOUND:
                object_id = self._term_ids.get(obj)
                if object_id is None:
                    return 0.0

            s_const = subject_id is not None
            p_const = predicate_id is not None
            o_const = object_id is not None
            if s_const and p_const and o_const:
                row = self._conn.execute(
                    "SELECT 1 FROM triples WHERE s = ? AND p = ? AND o = ? "
                    "LIMIT 1", (subject_id, predicate_id, object_id)).fetchone()
                return 1.0 if row is not None else 0.0
            if s_const and p_const:
                base = self._scalar(
                    "SELECT COUNT(*) FROM triples WHERE s = ? AND p = ?",
                    (subject_id, predicate_id))
            elif p_const and o_const:
                base = self._scalar(
                    "SELECT COUNT(*) FROM triples WHERE p = ? AND o = ?",
                    (predicate_id, object_id))
            elif s_const and o_const:
                base = self._scalar(
                    "SELECT COUNT(*) FROM triples WHERE s = ? AND o = ?",
                    (subject_id, object_id))
            elif s_const:
                base = self._scalar(
                    "SELECT COUNT(*) FROM triples WHERE s = ?", (subject_id,))
            elif p_const:
                base = self._scalar(
                    "SELECT COUNT(*) FROM triples WHERE p = ?", (predicate_id,))
            elif o_const:
                base = self._scalar(
                    "SELECT COUNT(*) FROM triples WHERE o = ?", (object_id,))
            else:
                base = total
            if base == 0:
                return 0.0

            estimate = float(base)
            if subject is BOUND:
                if p_const:
                    distinct = self._scalar(
                        "SELECT COUNT(DISTINCT s) FROM triples WHERE p = ?",
                        (predicate_id,))
                else:
                    distinct = self._scalar(
                        "SELECT COUNT(DISTINCT s) FROM triples")
                estimate /= max(1, distinct)
            if obj is BOUND:
                if p_const:
                    distinct = self._scalar(
                        "SELECT COUNT(DISTINCT o) FROM triples WHERE p = ?",
                        (predicate_id,))
                else:
                    distinct = self._scalar(
                        "SELECT COUNT(DISTINCT o) FROM triples")
                estimate /= max(1, distinct)
            if predicate is BOUND:
                distinct = self._scalar("SELECT COUNT(DISTINCT p) FROM triples")
                estimate /= max(1, distinct)
            return estimate

    # -- persistence -------------------------------------------------------

    def to_list(self) -> list[list[Term]]:
        """JSON-friendly dump in the shared deterministic order."""
        return canonical_triple_list(self)

    @classmethod
    def from_list(cls, payload: Iterable[list], **kwargs) -> "SqliteTripleStore":
        """Build a store (see ``__init__`` kwargs) from a dumped list."""
        store = cls(**kwargs)
        store.add_all(tuple(item) for item in payload)
        return store

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "SqliteTripleStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
