"""Pluggable storage backends for the PKB triple store.

* :mod:`repro.stores.backends.base` — the :class:`StorageBackend`
  protocol (structural; the in-memory
  :class:`~repro.stores.rdf.graph.Graph` satisfies it unchanged) and
  the shared canonical dump order.
* :mod:`repro.stores.backends.sqlite` — :class:`SqliteTripleStore`,
  a stdlib-``sqlite3`` file / ``:memory:`` backend with WAL, batched
  transactional writes and index-backed prefix scans.

The hash-sharded composite lives in :mod:`repro.stores.rdf.shard`
(it is a query-execution layer as much as a storage one).
"""

from repro.stores.backends.base import StorageBackend, canonical_triple_list
from repro.stores.backends.sqlite import SqliteTripleStore

__all__ = [
    "StorageBackend",
    "SqliteTripleStore",
    "canonical_triple_list",
]
