"""The pluggable triple-storage contract behind the PKB's RDF store.

PR 3 made one in-memory :class:`~repro.stores.rdf.graph.Graph` fast;
this package makes the *storage layer itself* replaceable, the way
``wware/med-lit-schema`` hides SQLite (dev) and Postgres (prod) behind
one ``PipelineStorageInterface``.  Every backend speaks the same
structural protocol — :class:`StorageBackend` — so the query engine,
planner, materializer and knowledge base never know which engine holds
the triples:

* :class:`~repro.stores.rdf.graph.Graph` — the dictionary-encoded
  in-memory store with SPO/POS/OSP hash indexes (the default);
* :class:`~repro.stores.backends.sqlite.SqliteTripleStore` — a
  stdlib-``sqlite3`` store (file or ``:memory:``) whose prefix scans
  are backed by B-tree indexes over the same three orderings;
* :class:`~repro.stores.rdf.shard.ShardedGraph` — N independent
  backends keyed by a stable subject hash, with parallel fan-out
  query execution.

The protocol is deliberately the surface :mod:`repro.stores.rdf.query`
already consumes.  ``match`` *is* the prefix-scan API: each bound /
wildcard combination corresponds to a prefix of exactly one of the
SPO, POS or OSP orderings, and every backend must dispatch to the
matching index rather than scanning:

======================  ==============  ========================
pattern (S, P, O)       index           prefix
======================  ==============  ========================
(s, p, o)               SPO             full key (membership)
(s, p, ?)               SPO             (s, p)
(s, ?, ?)               SPO             (s,)
(?, p, o)               POS             (p, o)
(?, p, ?)               POS             (p,)
(s, ?, o)               OSP             (o, s)
(?, ?, o)               OSP             (o,)
(?, ?, ?)               —               full iteration
======================  ==============  ========================
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import Protocol, runtime_checkable

from repro.stores.rdf.graph import Term, Triple
from repro.stores.rdf.stats import PredicateStats


@runtime_checkable
class StorageBackend(Protocol):
    """What a triple store must provide to back the PKB.

    Structural (duck-typed): :class:`~repro.stores.rdf.graph.Graph`
    satisfies it unchanged.  Two semantic obligations matter beyond
    the signatures:

    * **Term collapsing** — terms that compare equal in Python
      (``1``, ``1.0`` and ``True``) are one term; the first-seen
      representation wins.  The contract suite pins this.
    * **Version discipline** — ``version`` increases on every
      successful mutation (including ``clear``) and never decreases,
      so it stays safe as a cache-invalidation key.
    """

    def add(self, triple: Triple | tuple) -> bool:
        """Insert a triple; False when it was already present."""

    def add_all(self, triples: Iterable[Triple | tuple]) -> int:
        """Insert many triples; returns how many were new."""

    def remove(self, triple: Triple | tuple) -> bool:
        """Delete a triple; returns whether it was present."""

    def discard(self, triple: Triple | tuple) -> bool:
        """Alias of :meth:`remove` (set-like naming)."""

    def clear(self) -> None:
        """Drop every triple; the version still advances."""

    def match(self, subject: str | None = None, predicate: str | None = None,
              obj: Term | None = None) -> list[Triple]:
        """Index-backed prefix scan; ``None`` is a wildcard."""

    def objects(self, subject: str, predicate: str) -> set[Term]:
        """All objects of ``(subject, predicate, ?)``."""

    def subjects(self, predicate: str, obj: Term) -> set[str]:
        """All subjects of ``(?, predicate, object)``."""

    def predicates(self) -> set[str]:
        """Every predicate with at least one triple."""

    def estimate_cardinality(self, subject: object = None,
                             predicate: object = None,
                             obj: object = None) -> float:
        """Estimated matching rows; see :meth:`Graph.estimate_cardinality`."""

    def predicate_statistics(self) -> dict[str, PredicateStats]:
        """Per-predicate cardinality statistics, keyed by predicate."""

    def to_list(self) -> list[list[Term]]:
        """JSON-friendly dump, deterministically ordered."""

    @property
    def version(self) -> int:
        """Monotonic mutation counter."""

    def __len__(self) -> int:
        """How many triples the store holds."""

    def __iter__(self) -> Iterator[Triple]:
        """Iterate every stored triple (order unspecified)."""

    def __contains__(self, triple: Triple | tuple) -> bool:
        """Membership test for one concrete triple."""


def canonical_triple_list(triples: Iterable[Triple]) -> list[list[Term]]:
    """The shared deterministic dump order every backend uses.

    Matches :meth:`Graph.to_list` byte-for-byte: sort by subject,
    predicate, object type name, then stringified object (objects mix
    numeric and string literals, which do not compare directly).
    """
    ordered = sorted(
        triples,
        key=lambda t: (t.subject, t.predicate, type(t.object).__name__,
                       str(t.object)),
    )
    return [[t.subject, t.predicate, t.object] for t in ordered]
