"""CSV reading and writing with light type inference.

The PKB reads analysis results back from "MATLAB, Excel, Python
programs, R" via CSV, so values arrive as strings; ``read_csv`` infers
int/float/bool where unambiguous and leaves everything else as text.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path


def _infer(value: str) -> object:
    text = value.strip()
    if text == "":
        return None
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(text)
    except ValueError:  # repro: ignore[RA002] — coercion probe; fallthrough IS the handling
        pass
    try:
        return float(text)
    except ValueError:  # repro: ignore[RA002] — coercion probe; fallthrough IS the handling
        pass
    return value


def read_csv_text(text: str, infer_types: bool = True) -> tuple[list[str], list[list[object]]]:
    """Parse CSV text into (header, rows)."""
    reader = csv.reader(io.StringIO(text))
    try:
        header = next(reader)
    except StopIteration:
        return [], []
    rows = []
    for raw_row in reader:
        if not raw_row:
            continue
        row = [_infer(cell) if infer_types else cell for cell in raw_row]
        rows.append(row)
    return header, rows


def write_csv_text(header: list[str], rows: list[list[object]]) -> str:
    """Render (header, rows) as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(header)
    for row in rows:
        writer.writerow(["" if cell is None else cell for cell in row])
    return buffer.getvalue()


def read_csv(path: str | Path, infer_types: bool = True) -> tuple[list[str], list[list[object]]]:
    """Read a CSV file into (header, rows)."""
    return read_csv_text(Path(path).read_text(), infer_types=infer_types)


def write_csv(path: str | Path, header: list[str], rows: list[list[object]]) -> None:
    """Write (header, rows) to a CSV file, creating parent directories."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(write_csv_text(header, rows))
