"""Local key-value stores.

:class:`InMemoryKeyValueStore` is the PKB's working store and the cache
backend; :class:`FileKeyValueStore` adds JSON persistence with atomic
writes so a crashed process never leaves a torn file behind.
"""

from __future__ import annotations

import json
import os
import tempfile
from abc import ABC, abstractmethod
from pathlib import Path

from repro.util.errors import NotFoundError, SerializationError

_MISSING = object()


class KeyValueStore(ABC):
    """Minimal mapping-style store contract shared by all backends."""

    @abstractmethod
    def put(self, key: str, value: object) -> None:
        """Store ``value`` under ``key``, replacing any previous value."""

    @abstractmethod
    def get(self, key: str, default: object = _MISSING) -> object:
        """Fetch the value for ``key``.

        Raises :class:`NotFoundError` for unknown keys unless a
        ``default`` is supplied.
        """

    @abstractmethod
    def delete(self, key: str) -> bool:
        """Remove ``key``; returns whether it existed."""

    @abstractmethod
    def keys(self, prefix: str = "") -> list[str]:
        """All keys starting with ``prefix``, sorted."""

    def contains(self, key: str) -> bool:
        return self.get(key, default=None) is not None or key in self.keys(key)

    def __contains__(self, key: str) -> bool:
        sentinel = object()
        return self.get(key, default=sentinel) is not sentinel

    def __len__(self) -> int:
        return len(self.keys())

    def items(self, prefix: str = "") -> list[tuple[str, object]]:
        return [(key, self.get(key)) for key in self.keys(prefix)]

    def clear(self) -> None:
        for key in self.keys():
            self.delete(key)


class InMemoryKeyValueStore(KeyValueStore):
    """Plain dict-backed store."""

    def __init__(self) -> None:
        self._data: dict[str, object] = {}

    def put(self, key: str, value: object) -> None:
        self._data[key] = value

    def get(self, key: str, default: object = _MISSING) -> object:
        if key in self._data:
            return self._data[key]
        if default is _MISSING:
            raise NotFoundError(f"no value for key {key!r}")
        return default

    def delete(self, key: str) -> bool:
        return self._data.pop(key, _MISSING) is not _MISSING

    def keys(self, prefix: str = "") -> list[str]:
        return sorted(key for key in self._data if key.startswith(prefix))


class FileKeyValueStore(KeyValueStore):
    """JSON-file-backed store with atomic persistence.

    The whole store is one JSON object on disk; every mutation rewrites
    it atomically (write to a temp file in the same directory, then
    ``os.replace``).  Values must be JSON-serializable.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._data: dict[str, object] = {}
        if self.path.exists():
            self._data = json.loads(self.path.read_text())

    def _flush(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        descriptor, temp_name = tempfile.mkstemp(
            dir=self.path.parent, prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "w") as handle:
                json.dump(self._data, handle)
            os.replace(temp_name, self.path)
        except BaseException:
            if os.path.exists(temp_name):
                os.unlink(temp_name)
            raise

    def put(self, key: str, value: object) -> None:
        try:
            json.dumps(value)
        except (TypeError, ValueError) as exc:
            raise SerializationError(
                f"value for key {key!r} is not JSON-serializable: {exc}"
            ) from exc
        self._data[key] = value
        self._flush()

    def get(self, key: str, default: object = _MISSING) -> object:
        if key in self._data:
            return self._data[key]
        if default is _MISSING:
            raise NotFoundError(f"no value for key {key!r}")
        return default

    def delete(self, key: str) -> bool:
        existed = self._data.pop(key, _MISSING) is not _MISSING
        if existed:
            self._flush()
        return existed

    def keys(self, prefix: str = "") -> list[str]:
        return sorted(key for key in self._data if key.startswith(prefix))
