"""A small relational database engine (the PKB's MySQL stand-in).

Implements the slice of an RDBMS the personalized knowledge base needs:
typed schemas, inserts with validation/coercion, selection with
predicates, projection, ordering and limits, updates and deletes,
grouped aggregates, equi-joins, CSV import/export and JSON persistence.

Predicates (``where=``) are either a dict of column equalities
(``{"country": "Japan"}``) or an arbitrary ``row -> bool`` callable.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass

from repro.util.errors import ConfigurationError, NotFoundError, ReproError

Predicate = Callable[[dict], bool] | Mapping[str, object] | None

_TYPES: dict[str, tuple[type, ...]] = {
    "int": (int,),
    "float": (float, int),
    "str": (str,),
    "bool": (bool,),
    "any": (object,),
}


class SchemaError(ReproError):
    """A row or query does not fit the table's schema."""


@dataclass(frozen=True)
class Column:
    """One typed column.  ``type`` is int / float / str / bool / any."""

    name: str
    type: str = "any"
    nullable: bool = True

    def __post_init__(self) -> None:
        if self.type not in _TYPES:
            raise ConfigurationError(
                f"unknown column type {self.type!r}; choose from {sorted(_TYPES)}"
            )

    def validate(self, value: object) -> object:
        """Check (and where sensible coerce) a value for this column."""
        if value is None:
            if not self.nullable:
                raise SchemaError(f"column {self.name!r} is not nullable")
            return None
        expected = _TYPES[self.type]
        if self.type == "float" and isinstance(value, int) and not isinstance(value, bool):
            return float(value)
        if self.type in ("int", "float") and isinstance(value, bool):
            raise SchemaError(f"column {self.name!r} expects {self.type}, got bool")
        if not isinstance(value, expected):
            raise SchemaError(
                f"column {self.name!r} expects {self.type}, got {type(value).__name__}"
            )
        return value


def _as_predicate(where: Predicate) -> Callable[[dict], bool]:
    if where is None:
        return lambda row: True
    if callable(where):
        return where
    conditions = dict(where)
    return lambda row: all(row.get(column) == value for column, value in conditions.items())


class Table:
    """One table: a schema plus rows stored as dicts."""

    def __init__(self, name: str, columns: list[Column]) -> None:
        if not columns:
            raise ConfigurationError(f"table {name!r} needs at least one column")
        names = [column.name for column in columns]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"table {name!r} has duplicate column names")
        self.name = name
        self.columns = list(columns)
        self._by_name = {column.name: column for column in columns}
        self.rows: list[dict] = []
        # Hash indexes: rebuilt lazily after mutations (see create_index).
        self._indexed_columns: set[str] = set()
        self._indexes: dict[str, dict[object, list[dict]]] = {}
        self._indexes_dirty = False

    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def __len__(self) -> int:
        return len(self.rows)

    # -- mutation ---------------------------------------------------------

    def insert(self, row: Mapping[str, object]) -> None:
        """Insert one row; missing columns become NULL, extras are an error."""
        unknown = set(row) - set(self._by_name)
        if unknown:
            raise SchemaError(f"table {self.name!r} has no columns {sorted(unknown)}")
        validated = {
            column.name: column.validate(row.get(column.name))
            for column in self.columns
        }
        self.rows.append(validated)
        self._indexes_dirty = True

    def insert_many(self, rows: Iterable[Mapping[str, object]]) -> int:
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def update(self, changes: Mapping[str, object], where: Predicate = None) -> int:
        """Apply ``changes`` to matching rows; returns the number matched.

        Indexes are only invalidated when an *indexed* column's value
        actually changed: buckets hold row references, so in-place
        edits to other columns leave every bucket valid, and no-op
        updates (same value written back) cost no rebuild at all.
        """
        predicate = _as_predicate(where)
        validated_changes = {
            name: self._column(name).validate(value) for name, value in changes.items()
        }
        updated = 0
        index_stale = False
        for row in self.rows:
            if predicate(row):
                for name, value in validated_changes.items():
                    if row[name] != value:
                        row[name] = value
                        if name in self._indexed_columns:
                            index_stale = True
                updated += 1
        if index_stale:
            self._indexes_dirty = True
        return updated

    def delete(self, where: Predicate = None) -> int:
        """Delete matching rows; returns the number removed."""
        predicate = _as_predicate(where)
        before = len(self.rows)
        self.rows = [row for row in self.rows if not predicate(row)]
        removed = before - len(self.rows)
        if removed:
            self._indexes_dirty = True
        return removed

    # -- indexes ------------------------------------------------------------

    def create_index(self, column: str) -> None:
        """Create a hash index on ``column`` (idempotent).

        Indexes accelerate dict-equality ``where`` clauses in
        :meth:`select`; they are rebuilt lazily after any mutation, so
        write-heavy phases pay nothing until the next indexed read.
        """
        self._column(column)
        self._indexed_columns.add(column)
        self._indexes_dirty = True

    def indexed_columns(self) -> set[str]:
        return set(self._indexed_columns)

    def _rebuild_indexes(self) -> None:
        self._indexes = {column: {} for column in self._indexed_columns}
        for row in self.rows:
            for column in self._indexed_columns:
                self._indexes[column].setdefault(row[column], []).append(row)
        self._indexes_dirty = False

    def _candidate_rows(self, where: Predicate) -> list[dict] | None:
        """Rows matching the most selective indexed equality, if any."""
        if not isinstance(where, Mapping) or not self._indexed_columns:
            return None
        usable = [column for column in where if column in self._indexed_columns]
        if not usable:
            return None
        if self._indexes_dirty:
            self._rebuild_indexes()
        best = min(
            usable,
            key=lambda column: len(self._indexes[column].get(where[column], ())),
        )
        return self._indexes[best].get(where[best], [])

    # -- queries ----------------------------------------------------------

    def _column(self, name: str) -> Column:
        if name not in self._by_name:
            raise SchemaError(f"table {self.name!r} has no column {name!r}")
        return self._by_name[name]

    def select(
        self,
        columns: list[str] | None = None,
        where: Predicate = None,
        order_by: str | list[str] | None = None,
        descending: bool = False,
        limit: int | None = None,
    ) -> list[dict]:
        """Filter, order, project and limit — returns copies of the rows.

        Dict-equality predicates use a hash index when one exists on a
        referenced column (see :meth:`create_index`).
        """
        predicate = _as_predicate(where)
        candidates = self._candidate_rows(where)
        source = candidates if candidates is not None else self.rows
        matched = [dict(row) for row in source if predicate(row)]
        if order_by is not None:
            keys = [order_by] if isinstance(order_by, str) else list(order_by)
            for key in keys:
                self._column(key)
            # None sorts first; a (is-not-None, value) tuple keeps mixed
            # NULL columns orderable.
            matched.sort(
                key=lambda row: tuple((row[key] is not None, row[key]) for key in keys),
                reverse=descending,
            )
        if limit is not None:
            matched = matched[:limit]
        if columns is not None:
            for name in columns:
                self._column(name)
            matched = [{name: row[name] for name in columns} for row in matched]
        return matched

    def aggregate(
        self,
        function: str,
        column: str | None = None,
        where: Predicate = None,
        group_by: str | None = None,
    ) -> object:
        """count/sum/avg/min/max, optionally grouped.

        Without ``group_by`` returns a scalar; with it, a dict keyed by
        group value.  NULLs are skipped (SQL semantics); aggregates over
        no values return None except ``count`` which returns 0.
        """
        functions = {
            "count": len,
            "sum": sum,
            "avg": lambda values: sum(values) / len(values) if values else None,
            "min": lambda values: min(values) if values else None,
            "max": lambda values: max(values) if values else None,
        }
        if function not in functions:
            raise SchemaError(f"unknown aggregate {function!r}")
        if function != "count" and column is None:
            raise SchemaError(f"aggregate {function!r} needs a column")
        if column is not None:
            self._column(column)
        if group_by is not None:
            self._column(group_by)
        predicate = _as_predicate(where)
        matched = [row for row in self.rows if predicate(row)]

        def compute(rows: list[dict]) -> object:
            if function == "count" and column is None:
                return len(rows)
            values = [row[column] for row in rows if row[column] is not None]
            if function == "count":
                return len(values)
            return functions[function](values)

        if group_by is None:
            return compute(matched)
        groups: dict[object, list[dict]] = {}
        for row in matched:
            groups.setdefault(row[group_by], []).append(row)
        return {key: compute(rows) for key, rows in groups.items()}

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "columns": [
                {"name": column.name, "type": column.type, "nullable": column.nullable}
                for column in self.columns
            ],
            "rows": [dict(row) for row in self.rows],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Table":
        table = cls(
            payload["name"],
            [Column(spec["name"], spec["type"], spec["nullable"])
             for spec in payload["columns"]],
        )
        for row in payload["rows"]:
            table.insert(row)
        return table


class Database:
    """A named collection of tables with joins and persistence."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}

    def create_table(self, name: str, columns: list[Column]) -> Table:
        if name in self._tables:
            raise ConfigurationError(f"table {name!r} already exists")
        table = Table(name, columns)
        self._tables[name] = table
        return table

    def replace_table(self, table: Table) -> Table:
        """Install ``table`` under its own name, replacing any existing one."""
        self._tables[table.name] = table
        return table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise NotFoundError(f"no table named {name!r}")
        del self._tables[name]

    def table(self, name: str) -> Table:
        if name not in self._tables:
            raise NotFoundError(f"no table named {name!r}")
        return self._tables[name]

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def join(
        self,
        left: str,
        right: str,
        on: tuple[str, str],
        columns: list[str] | None = None,
        where: Predicate = None,
    ) -> list[dict]:
        """Inner equi-join: ``left.on[0] == right.on[1]``.

        Output columns are prefixed ``table.column``; ``columns`` and
        ``where`` apply to the joined rows.  Implemented as a hash join.
        """
        left_table = self.table(left)
        right_table = self.table(right)
        left_key, right_key = on
        left_table._column(left_key)
        right_table._column(right_key)

        buckets: dict[object, list[dict]] = {}
        for row in right_table.rows:
            buckets.setdefault(row[right_key], []).append(row)

        predicate = _as_predicate(where)
        joined = []
        for left_row in left_table.rows:
            for right_row in buckets.get(left_row[left_key], []):
                combined = {f"{left}.{name}": value for name, value in left_row.items()}
                combined.update(
                    {f"{right}.{name}": value for name, value in right_row.items()}
                )
                if predicate(combined):
                    if columns is not None:
                        combined = {name: combined[name] for name in columns}
                    joined.append(combined)
        return joined

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> dict:
        return {"tables": [table.to_dict() for table in self._tables.values()]}

    @classmethod
    def from_dict(cls, payload: dict) -> "Database":
        database = cls()
        for table_payload in payload["tables"]:
            table = Table.from_dict(table_payload)
            database._tables[table.name] = table
        return database
