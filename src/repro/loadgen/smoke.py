"""Smoke scenario: the tenancy layer end to end on the real SDK stack.

Where :mod:`repro.loadgen.driver` simulates a server to measure
scheduling behavior at scale, the smoke run exercises the *actual*
serving path — ``build_world`` services, :class:`RichClient` with a
:class:`~repro.tenancy.runtime.Tenancy`, weighted-fair admission and
the JSON gateway — and machine-checks the tenant-isolation contract:

* budgets refuse with 429 once a tenant's calls run out;
* rate limits refuse with 429 and an honest ``retry_after``;
* suspension refuses with 403;
* cache namespaces keep one tenant's hits invisible to another;
* per-tenant ledgers and tenant metrics add up;
* a quick simulator pass covers a 10,000-tenant Zipf population.

Deterministic for a given seed; CI runs ``python -m repro.loadgen
--smoke --seed 7`` and fails on any violated check.
"""

from __future__ import annotations

from repro.core.admission import AdmissionController, AdmissionLimit
from repro.core.gateway import SdkGateway
from repro.core.invoker import RichClient
from repro.loadgen.driver import LoadSpec, run_spec
from repro.obs import Observability, names
from repro.services.catalog import build_world
from repro.tenancy import Tenancy, Tenant, TenantRegistry


class SmokeFailure(AssertionError):
    """One smoke check did not hold."""


def _check(checks: list[tuple[str, bool]], label: str, passed: bool) -> None:
    checks.append((label, passed))


def run_smoke(seed: int = 7, verbose: bool = True) -> int:
    """Run every smoke check; returns a process exit code (0 = pass)."""
    world = build_world(seed=seed)
    registry = TenantRegistry()
    registry.register(Tenant("alpha", weight=2.0))
    registry.register(Tenant("bravo", max_calls=2))
    registry.register(Tenant("charlie", rate=0.5, burst=1))
    registry.register(Tenant("mallory"))
    registry.suspend("mallory")
    tenancy = Tenancy(registry)
    admission = AdmissionController(
        world.clock, default_limit=AdmissionLimit(max_concurrent=4),
        fair=True, weight_of=tenancy.weight_of)
    client = RichClient(world.registry, admission=admission, tenancy=tenancy,
                        obs=Observability(clock=world.clock))
    gateway = SdkGateway(client)

    def invoke(tenant: str | None, text: str) -> dict:
        envelope = {"method": "invoke",
                    "params": {"service": "lexica-prime",
                               "operation": "analyze",
                               "payload": {"text": text}}}
        if tenant is not None:
            envelope["tenant"] = tenant
        return gateway.handle(envelope)

    checks: list[tuple[str, bool]] = []

    # Plain tenanted call succeeds and is charged to the tenant.
    first = invoke("alpha", "Shares of Vantora Systems rallied in Meridian City.")
    _check(checks, "tenanted invoke returns 200", first["status"] == 200)
    usage = gateway.handle({"method": "tenant_usage",
                            "params": {"tenant": "alpha"}})
    _check(checks, "tenant ledger counted the call",
           usage["status"] == 200 and usage["result"]["calls"] == 1
           and usage["result"]["cost"] > 0)

    # Cache isolation: alpha's repeat hits, bravo's identical request
    # must not see alpha's entry.
    repeat = invoke("alpha", "Shares of Vantora Systems rallied in Meridian City.")
    _check(checks, "same tenant repeat served from cache",
           repeat["status"] == 200 and repeat["result"]["cached"])
    other = invoke("bravo", "Shares of Vantora Systems rallied in Meridian City.")
    _check(checks, "other tenant's identical request is not a cache hit",
           other["status"] == 200 and not other["result"]["cached"])

    # Budget: bravo has max_calls=2 and has spent 1; one more passes,
    # the next refuses with 429.
    second = invoke("bravo", "Orchard Grove announced a new park.")
    refused = invoke("bravo", "Northbridge United won the derby.")
    _check(checks, "budgeted tenant exhausts with 429",
           second["status"] == 200 and refused["status"] == 429
           and refused["error_type"] == "TenantBudgetExceededError")

    # Rate: charlie's bucket holds one token at 0.5/s; the second
    # immediate call refuses with a positive retry_after hint.
    burst_ok = invoke("charlie", "Rates held steady this quarter.")
    throttled = invoke("charlie", "Rates held steady this quarter again.")
    _check(checks, "rate-limited tenant refused with retry_after",
           burst_ok["status"] == 200 and throttled["status"] == 429
           and throttled.get("retry_after", 0) > 0)

    # Suspension: 403, not 429 — backoff will not help.
    forbidden = invoke("mallory", "Anything at all.")
    _check(checks, "suspended tenant refused with 403",
           forbidden["status"] == 403)

    # Untenanted requests still work exactly as before.
    legacy = invoke(None, "Harborline Ferries expanded service.")
    _check(checks, "untenanted invoke unaffected", legacy["status"] == 200)

    # Tenant metrics exist and carry the tenant dimension.
    metrics = client.obs.metrics.snapshot()
    _check(checks, "tenant metrics registered",
           names.TENANT_REQUESTS_TOTAL in metrics
           and names.TENANT_REJECTED_TOTAL in metrics)

    # The simulator holds a 10,000-tenant Zipf population (brief run).
    big = run_spec(LoadSpec(tenants=10_000, arrival_rate=2_000.0,
                            duration=2.0, seed=seed, discipline="fair"))
    _check(checks, "simulator handles a 10k-tenant population",
           big.total_arrivals > 1_000 and len(big.tenants) > 500)

    # Fair vs FIFO under an aggressor: the fair run must score a high
    # Jain index; the FIFO control is the unfair baseline.
    from repro.loadgen.workload import Aggressor
    fair = run_spec(LoadSpec(tenants=50, arrival_rate=300.0, duration=5.0,
                             seed=seed, discipline="fair",
                             aggressors=(Aggressor(rank=0, multiplier=10.0),)))
    _check(checks, "fair discipline keeps Jain index high under an aggressor",
           fair.fairness() >= 0.9)

    failed = [label for label, passed in checks if not passed]
    if verbose:
        for label, passed in checks:
            print(f"  [{'ok' if passed else 'FAIL'}] {label}")
        print(f"loadgen smoke: {len(checks) - len(failed)}/{len(checks)} "
              f"checks passed (seed={seed})")
    client.close()
    return 1 if failed else 0
