"""Deterministic load generation on the simulated clock.

A discrete-event simulator of one serving process: arrivals (open-loop
Poisson streams, optionally closed-loop think-time users) contend for a
server with bounded concurrency; excess requests queue under one of two
disciplines — a single **FIFO** queue (the unfair control) or the
weighted-fair **DRR** scheduler the bulkheads use
(:class:`repro.tenancy.scheduling.DrrScheduler`) — and overflow is
shed.  Everything runs on a :class:`~repro.util.clock.ManualClock` with
all randomness drawn from seeded children of one
:class:`~repro.util.rng.SeededRng`, so the same
:class:`LoadSpec` always produces byte-identical reports: the fairness
benchmark's numbers are reproducible facts, not flaky samples.

The simulator scales to populations of tens of thousands of tenants
because per-tenant state (stats, sub-queues) is created lazily on a
tenant's first arrival and the Zipf sampler draws in O(log n).
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.loadgen.report import RunReport, TenantStats
from repro.loadgen.workload import Aggressor, TenantPopulation
from repro.tenancy.scheduling import DrrScheduler
from repro.util.clock import ManualClock
from repro.util.rng import SeededRng

#: Queue disciplines the simulated server supports.
DISCIPLINE_FAIR = "fair"
DISCIPLINE_FIFO = "fifo"

_BACKGROUND = "background"


@dataclass(frozen=True)
class LoadSpec:
    """One load-generation run, fully specified.

    ``arrival_rate`` is the aggregate background open-loop rate
    (requests per simulated second) split across tenants by the Zipf
    law; aggressors add their scripted floods on top.  ``mode="closed"``
    replaces the background stream with ``closed_users`` think-time
    users (each bound to one Zipf-drawn tenant for the whole run).
    ``service_time`` is the *median* of the lognormal service-time
    distribution (``service_sigma`` its log-space spread).  The server
    admits ``concurrency`` requests at once; FIFO queues are bounded by
    ``queue_cap`` in total, fair mode bounds each tenant's sub-queue at
    ``tenant_queue_cap`` (the per-tenant isolation that keeps one
    tenant's backlog from consuming the whole buffer).  The per-tenant
    cap defaults *shallow* on purpose: under sustained overload a deep
    sub-queue just converts fair scheduling into self-queueing latency
    — every tenant waits behind its own backlog — whereas a shallow
    cap sheds the excess early and keeps served requests fast.
    ``weights`` maps tenant rank to fair-share weight (default:
    everyone 1.0).
    """

    tenants: int = 100
    zipf_exponent: float = 1.0
    mode: str = "open"
    arrival_rate: float = 400.0
    closed_users: int = 32
    think_time: float = 0.05
    service_time: float = 0.01
    service_sigma: float = 0.5
    concurrency: int = 8
    queue_cap: int = 64
    tenant_queue_cap: int = 2
    discipline: str = DISCIPLINE_FAIR
    duration: float = 30.0
    seed: int = 7
    aggressors: tuple[Aggressor, ...] = ()
    weights: Mapping[int, float] | None = None

    def __post_init__(self) -> None:
        if self.mode not in ("open", "closed"):
            raise ValueError(f"mode must be 'open' or 'closed', got {self.mode!r}")
        if self.discipline not in (DISCIPLINE_FAIR, DISCIPLINE_FIFO):
            raise ValueError(
                f"discipline must be 'fair' or 'fifo', got {self.discipline!r}")
        if self.tenants <= 0:
            raise ValueError(f"tenants must be positive, got {self.tenants}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if self.service_time <= 0:
            raise ValueError(
                f"service_time must be positive, got {self.service_time}")
        if self.concurrency <= 0:
            raise ValueError(
                f"concurrency must be positive, got {self.concurrency}")
        for aggressor in self.aggressors:
            if aggressor.rank >= self.tenants:
                raise ValueError(
                    f"aggressor rank {aggressor.rank} outside the population")


@dataclass
class _Job:
    """One in-flight request."""

    rank: int
    arrived: float
    user: int | None = None


@dataclass(order=True)
class _Event:
    """Heap entry; ``seq`` breaks time ties deterministically."""

    time: float
    seq: int
    kind: str = field(compare=False)
    payload: object = field(compare=False, default=None)


class LoadDriver:
    """Runs one :class:`LoadSpec` to completion and reports.

    The event loop drains every scheduled event: arrival streams stop
    producing at ``spec.duration``, then the queue drains and in-flight
    requests complete, so the report accounts for every request that
    ever arrived (no truncation bias at the end of the run).
    """

    def __init__(self, spec: LoadSpec,
                 population: TenantPopulation | None = None) -> None:
        self.spec = spec
        self.population = (population if population is not None
                           else TenantPopulation(spec.tenants,
                                                 spec.zipf_exponent))
        self.clock = ManualClock()

    # -- public API ---------------------------------------------------------

    def run(self) -> RunReport:
        """Simulate the whole run; returns its :class:`RunReport`."""
        spec = self.spec
        root = SeededRng(spec.seed)
        self._interarrival_rng = root.child("interarrivals")
        self._tenant_rng = root.child("tenants")
        self._service_rng = root.child("service")
        self._aggressor_rngs = {
            index: root.child(f"aggressor:{index}")
            for index in range(len(spec.aggressors))
        }
        self._user_rng = root.child("users")
        self._log_median = math.log(spec.service_time)
        self._heap: list[_Event] = []
        self._seq = 0
        self._busy = 0
        self._stats: dict[int, TenantStats] = {}
        if spec.discipline == DISCIPLINE_FAIR:
            weights = dict(spec.weights or {})
            by_id = {self.population.tenant_id(rank): weight
                     for rank, weight in weights.items()}
            self._drr: DrrScheduler | None = DrrScheduler(
                weight_of=lambda tenant: by_id.get(tenant, 1.0))
            self._fifo: deque[_Job] | None = None
        else:
            self._drr = None
            self._fifo = deque()

        self._users_rank: dict[int, int] = {}
        if spec.mode == "open" and spec.arrival_rate > 0:
            self._push_event(
                self._interarrival_rng.exponential(spec.arrival_rate),
                "background")
        if spec.mode == "closed":
            for user in range(spec.closed_users):
                self._users_rank[user] = self.population.sampler.draw(
                    self._user_rng)
                self._schedule_user(user, 0.0)
        for index, aggressor in enumerate(spec.aggressors):
            rate = self._aggressor_rate(aggressor)
            first = aggressor.start + self._aggressor_rngs[index].exponential(rate)
            if first < aggressor.active_until(spec.duration):
                self._push_event(first, "aggressor", index)

        while self._heap:
            event = heapq.heappop(self._heap)
            now = event.time
            self.clock.advance(now - self.clock.now())
            if event.kind == "background":
                self._on_background(now)
            elif event.kind == "aggressor":
                self._on_aggressor(event.payload, now)
            elif event.kind == "user":
                self._on_user(event.payload, now)
            elif event.kind == "completion":
                self._on_completion(event.payload, now)

        tenants = {stats.tenant_id: stats for stats in self._stats.values()}
        return RunReport(discipline=spec.discipline, seed=spec.seed,
                         duration=spec.duration, tenants=tenants)

    # -- event handlers -----------------------------------------------------

    def _on_background(self, now: float) -> None:
        rank = self.population.sampler.draw(self._tenant_rng)
        self._submit(rank, now, user=None)
        next_time = now + self._interarrival_rng.exponential(
            self.spec.arrival_rate)
        if next_time < self.spec.duration:
            self._push_event(next_time, "background")

    def _on_aggressor(self, index: int, now: float) -> None:
        aggressor = self.spec.aggressors[index]
        self._submit(aggressor.rank, now, user=None)
        rate = self._aggressor_rate(aggressor)
        next_time = now + self._aggressor_rngs[index].exponential(rate)
        if next_time < aggressor.active_until(self.spec.duration):
            self._push_event(next_time, "aggressor", index)

    def _on_user(self, user: int, now: float) -> None:
        self._submit(self._users_rank[user], now, user=user)

    def _on_completion(self, job: _Job, now: float) -> None:
        self._busy -= 1
        stats = self._stats_for(job.rank)
        stats.completions += 1
        stats.latencies.append(now - job.arrived)
        if job.user is not None:
            self._schedule_user(job.user, now)
        queued = self._pop_queued()
        if queued is not None:
            self._start(queued, now)

    # -- server mechanics ---------------------------------------------------

    def _submit(self, rank: int, now: float, user: int | None) -> None:
        stats = self._stats_for(rank)
        stats.arrivals += 1
        job = _Job(rank, now, user)
        if self._busy < self.spec.concurrency:
            self._start(job, now)
            return
        if self._queue_full(rank):
            stats.sheds += 1
            if user is not None:
                # A shed closed-loop user backs off for a think time.
                self._schedule_user(user, now)
            return
        if self._drr is not None:
            self._drr.push(self.population.tenant_id(rank), job)
        else:
            self._fifo.append(job)

    def _start(self, job: _Job, now: float) -> None:
        self._busy += 1
        duration = self._service_rng.lognormal(self._log_median,
                                               self.spec.service_sigma)
        self._push_event(now + duration, "completion", job)

    def _queue_full(self, rank: int) -> bool:
        if self._drr is not None:
            tenant_id = self.population.tenant_id(rank)
            return self._drr.depth(tenant_id) >= self.spec.tenant_queue_cap
        return len(self._fifo) >= self.spec.queue_cap

    def _pop_queued(self) -> _Job | None:
        if self._drr is not None:
            return self._drr.pop_next()
        return self._fifo.popleft() if self._fifo else None

    # -- helpers ------------------------------------------------------------

    def _aggressor_rate(self, aggressor: Aggressor) -> float:
        """The flood's rate: multiplier x the tenant's natural share."""
        natural = self.spec.arrival_rate * self.population.arrival_share(
            aggressor.rank)
        if natural <= 0:
            # Closed-loop runs have no background rate; anchor the flood
            # to the users' aggregate request rate instead.
            natural = (self.spec.closed_users / max(self.spec.think_time, 1e-9)
                       * self.population.arrival_share(aggressor.rank))
        return aggressor.multiplier * natural

    def _schedule_user(self, user: int, now: float) -> None:
        next_time = now + self._user_rng.exponential(
            1.0 / max(self.spec.think_time, 1e-9))
        if next_time < self.spec.duration:
            self._push_event(next_time, "user", user)

    def _stats_for(self, rank: int) -> TenantStats:
        stats = self._stats.get(rank)
        if stats is None:
            weight = 1.0
            if self.spec.weights is not None:
                weight = float(self.spec.weights.get(rank, 1.0))
            stats = TenantStats(self.population.tenant_id(rank), weight=weight)
            self._stats[rank] = stats
        return stats

    def _push_event(self, time: float, kind: str, payload: object = None) -> None:
        self._seq += 1
        heapq.heappush(self._heap, _Event(time, self._seq, kind, payload))


def run_spec(spec: LoadSpec) -> RunReport:
    """Convenience: build a driver for ``spec`` and run it."""
    return LoadDriver(spec).run()
