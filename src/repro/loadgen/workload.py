"""Workload specification: tenant populations, Zipf skew, aggressors.

Real multi-tenant traffic is heavy-tailed — a handful of applications
generate most of the requests while a long tail stays mostly idle.
:class:`TenantPopulation` models that with a Zipf popularity law over
tenant ranks, and :class:`Aggressor` scripts the adversarial case the
fairness benchmark needs: one tenant deliberately offering a multiple
of its fair share for a window of the run.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass

from repro.util.rng import SeededRng


class ZipfSampler:
    """Zipf-skewed index sampler with O(log n) draws.

    Same popularity law as :meth:`repro.util.rng.SeededRng.zipf_index`
    (rank ``r`` weighs ``1 / (r + 1) ** exponent``, rank 0 most
    popular) but the cumulative mass is precomputed once, so sampling
    a population of tens of thousands of tenants is one bisect per
    draw instead of an O(n) scan.
    """

    def __init__(self, size: int, exponent: float = 1.0) -> None:
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        if exponent < 0:
            raise ValueError(f"exponent must be >= 0, got {exponent}")
        self.size = size
        self.exponent = exponent
        cumulative: list[float] = []
        total = 0.0
        for rank in range(size):
            total += 1.0 / (rank + 1) ** exponent
            cumulative.append(total)
        self._cumulative = cumulative
        self._total = total

    def draw(self, rng: SeededRng) -> int:
        """One index in ``[0, size)``; all randomness comes from ``rng``."""
        return bisect_left(self._cumulative, rng.random() * self._total)

    def share(self, rank: int) -> float:
        """Rank's fraction of the total arrival mass (sums to 1.0)."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} outside [0, {self.size})")
        return (1.0 / (rank + 1) ** self.exponent) / self._total


@dataclass(frozen=True)
class Aggressor:
    """A scripted misbehaving tenant.

    During ``[start, stop)`` (stop ``None`` = until the run ends) the
    tenant at ``rank`` offers ``multiplier`` times its natural Zipf
    arrival rate *on top of* the background stream — the 10x flood the
    fairness benchmark throws at the scheduler.
    """

    rank: int
    multiplier: float = 10.0
    start: float = 0.0
    stop: float | None = None

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError(f"rank must be >= 0, got {self.rank}")
        if self.multiplier <= 0:
            raise ValueError(
                f"multiplier must be positive, got {self.multiplier}")
        if self.stop is not None and self.stop <= self.start:
            raise ValueError("stop must be after start")

    def active_until(self, duration: float) -> float:
        """When this aggressor's stream ends, clamped to the run."""
        return min(self.stop, duration) if self.stop is not None else duration


class TenantPopulation:
    """``size`` tenants with Zipf-distributed arrival popularity.

    Tenant ids are stable (``t00000``, ``t00001``, ... by rank) so runs
    with the same spec name the same tenants; the load driver samples
    arrival tenants through :attr:`sampler`.
    """

    def __init__(self, size: int, zipf_exponent: float = 1.0,
                 prefix: str = "t") -> None:
        self.size = size
        self.prefix = prefix
        self.sampler = ZipfSampler(size, zipf_exponent)

    def tenant_id(self, rank: int) -> str:
        """The stable id for one rank (zero-padded for sortability)."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} outside [0, {self.size})")
        return f"{self.prefix}{rank:05d}"

    def arrival_share(self, rank: int) -> float:
        """Rank's share of background arrivals (the Zipf mass)."""
        return self.sampler.share(rank)

    def __len__(self) -> int:
        return self.size
