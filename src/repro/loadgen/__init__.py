"""repro.loadgen — deterministic multi-tenant load generation.

The measurement companion to :mod:`repro.tenancy`: a discrete-event
simulator (:mod:`~repro.loadgen.driver`) that drives Zipf-skewed
tenant populations — tens of thousands of tenants, scripted aggressors
— against fair (DRR) or FIFO queueing on the virtual clock, reporting
per-tenant p50/p99 latency, shed rates and Jain's fairness index
(:mod:`~repro.loadgen.report`); plus an end-to-end smoke scenario
(:mod:`~repro.loadgen.smoke`) that machine-checks the tenant-isolation
contract on the real SDK stack.  ``python -m repro.loadgen --help``
for the CLI.
"""

from repro.loadgen.driver import (
    DISCIPLINE_FAIR,
    DISCIPLINE_FIFO,
    LoadDriver,
    LoadSpec,
    run_spec,
)
from repro.loadgen.report import RunReport, TenantStats, jain_index
from repro.loadgen.workload import Aggressor, TenantPopulation, ZipfSampler

__all__ = [
    "LoadSpec",
    "LoadDriver",
    "run_spec",
    "RunReport",
    "TenantStats",
    "jain_index",
    "Aggressor",
    "TenantPopulation",
    "ZipfSampler",
    "DISCIPLINE_FAIR",
    "DISCIPLINE_FIFO",
]
