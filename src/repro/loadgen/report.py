"""Run reports: per-tenant latency percentiles, shed rates, fairness.

The driver produces a :class:`RunReport`; benchmarks persist its
:meth:`~RunReport.to_dict` as machine-readable JSON and print its
:meth:`~RunReport.render` text.  Fairness is summarized with **Jain's
index** over weight-normalized delivered fractions — 1.0 means every
tenant got the same share of what it asked for, 1/n means one tenant
got everything.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analytics.stats import mean, percentile


def jain_index(values: list[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    1.0 when all values are equal; approaches ``1/n`` as one value
    dominates.  Empty or all-zero inputs score 1.0 (nothing was unfair
    because nothing happened).
    """
    if not values:
        return 1.0
    square_sum = sum(value * value for value in values)
    if square_sum == 0.0:
        return 1.0
    total = sum(values)
    return (total * total) / (len(values) * square_sum)


@dataclass
class TenantStats:
    """One tenant's ledger for a run."""

    tenant_id: str
    weight: float = 1.0
    arrivals: int = 0
    completions: int = 0
    sheds: int = 0
    latencies: list[float] = field(default_factory=list)

    @property
    def shed_rate(self) -> float:
        """Fraction of this tenant's arrivals that were refused."""
        return self.sheds / self.arrivals if self.arrivals else 0.0

    @property
    def delivered_fraction(self) -> float:
        """Completions over arrivals — the share of offered load served."""
        return self.completions / self.arrivals if self.arrivals else 0.0

    def latency_percentile(self, fraction: float) -> float | None:
        """Interpolated completion-latency percentile (None = no data)."""
        if not self.latencies:
            return None
        return percentile(self.latencies, fraction)

    def to_dict(self) -> dict:
        """Machine-readable summary (latency samples are not included)."""
        return {
            "tenant": self.tenant_id,
            "weight": self.weight,
            "arrivals": self.arrivals,
            "completions": self.completions,
            "sheds": self.sheds,
            "shed_rate": round(self.shed_rate, 6),
            "delivered_fraction": round(self.delivered_fraction, 6),
            "p50": _rounded(self.latency_percentile(0.50)),
            "p99": _rounded(self.latency_percentile(0.99)),
            "mean": _rounded(mean(self.latencies)) if self.latencies else None,
        }


def _rounded(value: float | None) -> float | None:
    return round(value, 6) if value is not None else None


@dataclass
class RunReport:
    """Everything one load-generation run measured."""

    discipline: str
    seed: int
    duration: float
    tenants: dict[str, TenantStats]

    @property
    def total_arrivals(self) -> int:
        return sum(stats.arrivals for stats in self.tenants.values())

    @property
    def total_completions(self) -> int:
        return sum(stats.completions for stats in self.tenants.values())

    @property
    def total_sheds(self) -> int:
        return sum(stats.sheds for stats in self.tenants.values())

    @property
    def shed_rate(self) -> float:
        arrivals = self.total_arrivals
        return self.total_sheds / arrivals if arrivals else 0.0

    def overall_percentile(self, fraction: float) -> float | None:
        """Latency percentile across every completed request."""
        merged: list[float] = []
        for stats in self.tenants.values():
            merged.extend(stats.latencies)
        return percentile(merged, fraction) if merged else None

    def fairness(self, min_arrivals: int = 1) -> float:
        """Jain's index over weight-normalized delivered fractions.

        Only tenants that offered at least ``min_arrivals`` requests
        participate — idle tenants received nothing because they asked
        for nothing, which is not unfairness.
        """
        values = [stats.delivered_fraction / stats.weight
                  for stats in self.tenants.values()
                  if stats.arrivals >= min_arrivals]
        return jain_index(values)

    def tenant(self, tenant_id: str) -> TenantStats:
        """One tenant's stats (KeyError when it never appeared)."""
        return self.tenants[tenant_id]

    def to_dict(self) -> dict:
        """Machine-readable report (stable ordering, rounded floats)."""
        return {
            "discipline": self.discipline,
            "seed": self.seed,
            "duration": self.duration,
            "arrivals": self.total_arrivals,
            "completions": self.total_completions,
            "sheds": self.total_sheds,
            "shed_rate": round(self.shed_rate, 6),
            "fairness_jain": round(self.fairness(), 6),
            "p50": _rounded(self.overall_percentile(0.50)),
            "p99": _rounded(self.overall_percentile(0.99)),
            "tenants": [self.tenants[tenant_id].to_dict()
                        for tenant_id in sorted(self.tenants)],
        }

    def render(self, top: int = 10) -> str:
        """Human-readable summary: aggregate line plus the busiest tenants."""
        lines = [
            f"loadgen run: discipline={self.discipline} seed={self.seed} "
            f"duration={self.duration:g}s",
            f"  arrivals={self.total_arrivals} "
            f"completions={self.total_completions} "
            f"sheds={self.total_sheds} "
            f"(shed rate {self.shed_rate:.1%})",
            f"  p50={_fmt(self.overall_percentile(0.50))} "
            f"p99={_fmt(self.overall_percentile(0.99))} "
            f"jain={self.fairness():.4f} "
            f"({len(self.tenants)} tenants)",
        ]
        busiest = sorted(self.tenants.values(),
                         key=lambda stats: (-stats.arrivals, stats.tenant_id))
        if busiest[:top]:
            lines.append("  busiest tenants:")
            lines.append("    tenant    arrivals  done  shed     p50      p99")
        for stats in busiest[:top]:
            lines.append(
                f"    {stats.tenant_id:<9} {stats.arrivals:>8} "
                f"{stats.completions:>5} {stats.sheds:>5} "
                f"{_fmt(stats.latency_percentile(0.50)):>7} "
                f"{_fmt(stats.latency_percentile(0.99)):>8}")
        return "\n".join(lines)


def _fmt(value: float | None) -> str:
    return f"{value:.4f}" if value is not None else "-"
