"""Command-line entry point: ``python -m repro.loadgen``.

Two modes:

* ``--smoke`` runs the end-to-end tenancy smoke checks against the
  real SDK stack (CI's tenancy job; exits non-zero on any failure);
* otherwise, runs one deterministic load simulation and prints its
  report (``--json`` for the machine-readable form).

Same seed, same bytes — the simulator runs entirely on the virtual
clock with seeded randomness.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.loadgen.driver import DISCIPLINE_FAIR, DISCIPLINE_FIFO, LoadSpec, run_spec
from repro.loadgen.workload import Aggressor


def _parse_aggressor(text: str) -> Aggressor:
    """``RANK:MULTIPLIER`` (e.g. ``0:10``) -> :class:`Aggressor`."""
    try:
        rank_text, _, multiplier_text = text.partition(":")
        return Aggressor(rank=int(rank_text),
                         multiplier=float(multiplier_text or 10.0))
    except ValueError as error:
        raise argparse.ArgumentTypeError(
            f"aggressor must look like RANK:MULTIPLIER, got {text!r}") from error


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.loadgen",
        description="Deterministic multi-tenant load generation: simulate "
                    "Zipf-skewed tenant populations against fair or FIFO "
                    "queueing, or smoke-test the real tenancy stack.")
    parser.add_argument("--smoke", action="store_true",
                        help="run the end-to-end tenancy smoke checks "
                             "(exits 1 on any failure)")
    parser.add_argument("--seed", type=int, default=7,
                        help="simulation seed (default: 7); same seed, "
                             "same bytes")
    parser.add_argument("--tenants", type=int, default=100,
                        help="population size (default: 100)")
    parser.add_argument("--rate", type=float, default=400.0,
                        help="aggregate open-loop arrivals/s (default: 400)")
    parser.add_argument("--duration", type=float, default=30.0,
                        help="simulated seconds (default: 30)")
    parser.add_argument("--discipline",
                        choices=[DISCIPLINE_FAIR, DISCIPLINE_FIFO],
                        default=DISCIPLINE_FAIR,
                        help="queue discipline (default: fair)")
    parser.add_argument("--closed", action="store_true",
                        help="closed-loop mode (think-time users) instead "
                             "of the open-loop Poisson stream")
    parser.add_argument("--aggressor", action="append", default=[],
                        type=_parse_aggressor, metavar="RANK:MULT",
                        help="add a scripted aggressor tenant (repeatable), "
                             "e.g. 0:10 = rank-0 tenant at 10x its share")
    parser.add_argument("--zipf", type=float, default=1.0,
                        help="Zipf exponent for arrival skew (default: 1.0)")
    parser.add_argument("--json", action="store_true",
                        help="print the machine-readable report as JSON")
    args = parser.parse_args(argv)

    if args.smoke:
        from repro.loadgen.smoke import run_smoke

        return run_smoke(seed=args.seed)

    spec = LoadSpec(
        tenants=args.tenants,
        zipf_exponent=args.zipf,
        mode="closed" if args.closed else "open",
        arrival_rate=args.rate,
        duration=args.duration,
        discipline=args.discipline,
        seed=args.seed,
        aggressors=tuple(args.aggressor),
    )
    report = run_spec(spec)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
