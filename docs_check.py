"""Documentation checker: runnable snippets, live links, docstring audit.

Run as ``python -m docs_check`` from the repository root (CI's docs job
does).  Three passes, any failure exits non-zero with a report:

1. **Snippets execute** — every ```python fence in ``docs/*.md`` and
   ``README.md`` is compiled and executed.  Blocks within one file run
   in order and share a namespace, so a page can build on its own
   earlier snippets (the way a reader follows them).
2. **Relative links resolve** — every ``[text](target)`` markdown link
   that is not an absolute URL or a pure anchor must point at an
   existing file relative to the page that contains it.
3. **Core docstrings** — every module, public class and public method
   in ``src/repro/core`` carries a docstring (the locally-runnable
   equivalent of CI's ``pydocstyle --select=D100,D101,D102`` pass).
4. **Analysis clean** — ``repro.analysis`` (the project's own static
   analysis suite, see ``docs/static-analysis.md``) reports zero
   unsuppressed findings over ``src/repro`` in strict mode.
"""

from __future__ import annotations

import ast
import contextlib
import io
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent
DOCS = ROOT / "docs"
CORE = ROOT / "src" / "repro" / "core"

FENCE = re.compile(r"^```python\s*$(.*?)^```\s*$", re.MULTILINE | re.DOTALL)
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _snippet_files() -> list[Path]:
    return sorted(DOCS.glob("*.md")) + [ROOT / "README.md"]


def check_snippets(failures: list[str]) -> int:
    """Execute every python fence; returns the number of blocks run."""
    sys.path.insert(0, str(ROOT / "src"))
    ran = 0
    for path in _snippet_files():
        text = path.read_text(encoding="utf-8")
        namespace: dict = {"__name__": f"docs_check.{path.stem}"}
        for index, match in enumerate(FENCE.finditer(text), start=1):
            source = match.group(1)
            line = text[: match.start()].count("\n") + 2
            label = f"{path.relative_to(ROOT)} block {index} (line {line})"
            try:
                code = compile(source, str(path), "exec")
            except SyntaxError as error:
                failures.append(f"{label}: does not compile: {error}")
                continue
            buffer = io.StringIO()
            try:
                with contextlib.redirect_stdout(buffer):
                    exec(code, namespace)  # noqa: S102 — our own docs
            except Exception as error:  # noqa: BLE001 — reported below
                failures.append(
                    f"{label}: raised {type(error).__name__}: {error}")
                continue
            ran += 1
    return ran


def check_links(failures: list[str]) -> int:
    """Verify relative markdown links; returns the number checked."""
    checked = 0
    for path in _snippet_files():
        for match in LINK.finditer(path.read_text(encoding="utf-8")):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            checked += 1
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                failures.append(
                    f"{path.relative_to(ROOT)}: broken link -> {target}")
    return checked


def _missing_docstrings(tree: ast.Module) -> list[tuple[int, str]]:
    problems: list[tuple[int, str]] = []
    if ast.get_docstring(tree) is None:
        problems.append((1, "missing module docstring (D100)"))
    for node in tree.body:
        if not isinstance(node, ast.ClassDef) or node.name.startswith("_"):
            continue
        if ast.get_docstring(node) is None:
            problems.append(
                (node.lineno, f"class {node.name}: missing docstring (D101)"))
        for item in node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name.startswith("_"):
                continue
            if ast.get_docstring(item) is None:
                problems.append(
                    (item.lineno,
                     f"method {node.name}.{item.name}: "
                     "missing docstring (D102)"))
    return problems


def check_core_docstrings(failures: list[str]) -> int:
    """Audit src/repro/core for missing docstrings; returns files scanned."""
    scanned = 0
    for path in sorted(CORE.rglob("*.py")):
        scanned += 1
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        for line, problem in _missing_docstrings(tree):
            failures.append(f"{path.relative_to(ROOT)}:{line}: {problem}")
    return scanned


def check_analysis_clean(failures: list[str]) -> int:
    """Run repro.analysis over src/repro in strict mode; returns the
    number of files it scanned."""
    if str(ROOT / "src") not in sys.path:
        sys.path.insert(0, str(ROOT / "src"))
    from repro.analysis import analyze_paths

    report = analyze_paths([ROOT / "src" / "repro"], root=ROOT)
    for finding in report.findings:
        failures.append(f"analysis: {finding.render()}")
    for error in report.errors:
        failures.append(f"analysis: {error}")
    for unknown in report.unknown_suppressions:
        failures.append(f"analysis: unknown suppression: {unknown}")
    return report.files_scanned


def main() -> int:
    """Run all four passes; print a summary; 0 on success."""
    failures: list[str] = []
    ran = check_snippets(failures)
    links = check_links(failures)
    scanned = check_core_docstrings(failures)
    analyzed = check_analysis_clean(failures)
    print(f"docs_check: {ran} snippet blocks executed, "
          f"{links} relative links verified, "
          f"{scanned} core modules docstring-audited, "
          f"{analyzed} files analysis-clean")
    if failures:
        print(f"\n{len(failures)} failure(s):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("docs_check: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
