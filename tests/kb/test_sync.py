"""Tests for offline operation and resynchronization."""

import pytest

from repro.crypto.cipher import StreamCipher, derive_key
from repro.kb.secure import SecureRemoteStore
from repro.kb.sync import OfflineSyncStore
from repro.simnet.connectivity import ManualConnectivity
from repro.util.errors import NotFoundError


@pytest.fixture
def connectivity(world):
    model = ManualConnectivity()
    world.transport.connectivity = model
    return model


@pytest.fixture
def sync(client, connectivity):
    cipher = StreamCipher(derive_key("sync tests", iterations=500))
    remote = SecureRemoteStore(client, "store-standard", cipher)
    return OfflineSyncStore(remote=remote)


class TestOnlineOperation:
    def test_put_pushes_through_immediately(self, sync):
        sync.put("k", {"v": 1})
        assert sync.pending_count == 0
        assert sync.stats.immediate_pushes == 1
        assert sync.remote.get("k") == {"v": 1}

    def test_get_prefers_local(self, sync):
        sync.put("k", 1)
        sync.get("k")
        assert sync.stats.local_reads == 1
        assert sync.stats.remote_reads == 0

    def test_get_falls_back_to_remote_and_caches(self, sync):
        sync.remote.put("remote-only", 42)
        assert sync.get("remote-only") == 42
        assert sync.stats.remote_reads == 1
        # Second read is local.
        sync.get("remote-only")
        assert sync.stats.local_reads == 1

    def test_delete_propagates(self, sync):
        sync.put("k", 1)
        sync.delete("k")
        with pytest.raises(NotFoundError):
            sync.remote.get("k")


class TestOfflineOperation:
    def test_writes_queue_while_offline(self, sync, connectivity):
        connectivity.go_offline()
        sync.put("a", 1)
        sync.put("b", 2)
        assert sync.pending_count == 2
        assert sync.stats.queued_writes == 2
        # Local reads still work.
        assert sync.get("a") == 1

    def test_offline_read_of_unknown_key_raises(self, sync, connectivity):
        connectivity.go_offline()
        with pytest.raises(NotFoundError):
            sync.get("never-seen")

    def test_sync_replays_after_reconnect(self, sync, connectivity):
        connectivity.go_offline()
        sync.put("a", 1)
        sync.put("b", 2)
        connectivity.go_online()
        applied = sync.sync()
        assert applied == 2
        assert sync.pending_count == 0
        assert sync.remote.get("a") == 1
        assert sync.remote.get("b") == 2

    def test_sync_coalesces_to_latest_write(self, sync, connectivity):
        connectivity.go_offline()
        sync.put("k", 1)
        sync.put("k", 2)
        sync.put("k", 3)
        connectivity.go_online()
        assert sync.sync() == 1  # one remote write, the latest value
        assert sync.remote.get("k") == 3

    def test_offline_delete_then_sync(self, sync, connectivity):
        sync.put("k", 1)
        connectivity.go_offline()
        sync.delete("k")
        connectivity.go_online()
        sync.sync()
        with pytest.raises(NotFoundError):
            sync.remote.get("k")

    def test_sync_stops_if_connectivity_drops_again(self, sync, connectivity):
        connectivity.go_offline()
        sync.put("a", 1)
        sync.put("b", 2)
        # Still offline: sync applies nothing, keeps the queue.
        assert sync.sync() == 0
        assert sync.pending_count == 2
        assert sync.stats.failed_syncs == 1

    def test_sync_noop_with_empty_queue(self, sync):
        assert sync.sync() == 0

    def test_pull_refreshes_local(self, sync, connectivity):
        sync.remote.put("server-side", "fresh")
        pulled = sync.pull()
        assert pulled >= 1
        connectivity.go_offline()
        assert sync.get("server-side") == "fresh"

    def test_pull_keeps_dirty_keys(self, sync, connectivity):
        sync.put("k", "old-remote")
        connectivity.go_offline()
        sync.put("k", "newer-local")
        connectivity.go_online()
        sync.pull()
        assert sync.get("k") == "newer-local"  # local wins until synced
        sync.sync()
        assert sync.remote.get("k") == "newer-local"
