"""Tests for entity disambiguation strategies."""

import pytest

from repro.kb.disambiguation import (
    EntityDisambiguator,
    ExactMatchStrategy,
    ServiceBackedStrategy,
    SynonymFileStrategy,
)

US_ALIASES = ["USA", "US", "United States", "America", "the States",
              "United States of America"]


class TestExactMatchStrategy:
    def test_canonical_name_resolves(self):
        strategy = ExactMatchStrategy({"United States of America": "Q30"})
        assert strategy.resolve("united states of america").entity_id == "Q30"

    def test_aliases_do_not_resolve(self):
        """The paper's warning: plain string matching splits one entity."""
        strategy = ExactMatchStrategy({"United States of America": "Q30"})
        assert strategy.resolve("USA") is None
        assert strategy.resolve("America") is None


class TestServiceBackedStrategy:
    def test_all_aliases_collapse(self, client):
        strategy = ServiceBackedStrategy(client, "lexica-prime")
        ids = {strategy.resolve(alias).entity_id for alias in US_ALIASES}
        assert ids == {"Q30"}

    def test_resolved_entity_carries_links(self, client):
        resolved = ServiceBackedStrategy(client, "lexica-prime").resolve("US")
        assert resolved.links["dbpedia"].endswith("United_States_of_America")
        assert resolved.strategy == "service"

    def test_unknown_surface(self, client):
        assert ServiceBackedStrategy(client, "lexica-prime").resolve("Wakanda") is None

    def test_repeated_resolutions_are_cached(self, client):
        strategy = ServiceBackedStrategy(client, "lexica-prime")
        strategy.resolve("USA")
        calls_before = client.monitor.call_count("lexica-prime")
        strategy.resolve("USA")
        assert client.monitor.call_count("lexica-prime") == calls_before

    def test_offline_degrades_to_none(self, client):
        from repro.simnet.connectivity import ManualConnectivity

        connectivity = ManualConnectivity()
        client.registry.get("lexica-prime").transport.connectivity = connectivity
        connectivity.go_offline()
        strategy = ServiceBackedStrategy(client, "lexica-prime")
        assert strategy.resolve("USA") is None
        connectivity.go_online()


class TestSynonymFileStrategy:
    def test_from_file_text(self):
        strategy = SynonymFileStrategy.from_file_text(
            """
            # disease synonyms
            grippe = D_influenza
            sugar diabetes = D_diabetes
            """
        )
        assert strategy.resolve("grippe").entity_id == "D_influenza"
        assert strategy.resolve("Sugar Diabetes").entity_id == "D_diabetes"

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            SynonymFileStrategy.from_file_text("this line has no equals sign")

    def test_unknown_surface(self):
        strategy = SynonymFileStrategy({"x": "E1"})
        assert strategy.resolve("y") is None

    def test_entity_names_used_when_known(self):
        strategy = SynonymFileStrategy({"htn": "D_hyp"},
                                       entity_names={"D_hyp": "Hypertension"})
        assert strategy.resolve("HTN").name == "Hypertension"


class TestDisambiguatorChain:
    def test_first_strategy_wins(self, client):
        synonyms = SynonymFileStrategy({"usa": "USER_OVERRIDE"})
        chain = EntityDisambiguator([synonyms,
                                     ServiceBackedStrategy(client, "lexica-prime")])
        assert chain.resolve("USA").entity_id == "USER_OVERRIDE"

    def test_falls_through_to_later_strategies(self, client):
        synonyms = SynonymFileStrategy({"grippe": "D_influenza"})
        chain = EntityDisambiguator([synonyms,
                                     ServiceBackedStrategy(client, "lexica-prime")])
        assert chain.resolve("USA").entity_id == "Q30"
        assert chain.resolve("grippe").entity_id == "D_influenza"

    def test_counts(self, client):
        chain = EntityDisambiguator([ServiceBackedStrategy(client, "lexica-prime")])
        chain.resolve("USA")
        chain.resolve("Wakanda")
        assert chain.resolved_count == 1
        assert chain.unresolved_count == 1

    def test_needs_strategies(self):
        with pytest.raises(ValueError):
            EntityDisambiguator([])

    def test_canonicalize_stream_collapses_aliases(self, client):
        chain = EntityDisambiguator([ServiceBackedStrategy(client, "lexica-prime")])
        report = chain.canonicalize_stream(US_ALIASES + ["Wakanda"])
        assert report["distinct_surfaces"] == 7
        assert report["unique_entities"] == 1
        assert report["unresolved_surfaces"] == 1
        assert report["mapping"]["USA"] == "Q30"

    def test_exact_match_proliferates_entities(self, client):
        """Contrast: the naive baseline resolves only the canonical name."""
        exact = EntityDisambiguator([ExactMatchStrategy(
            {"United States of America": "Q30"})])
        report = exact.canonicalize_stream(US_ALIASES)
        assert report["unique_entities"] == 1
        assert report["unresolved_surfaces"] == 5  # five aliases lost
