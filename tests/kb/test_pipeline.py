"""Tests for the analyze → RDF → infer pipeline (Figure 5)."""

import pytest

from repro.kb.pipeline import AnalysisPipeline, default_rules
from repro.stores.rdf.graph import Graph, RDF, REPRO
from repro.stores.rdf.rules import Rule


@pytest.fixture
def pipeline():
    return AnalysisPipeline()


RISING = ([0, 1, 2, 3, 4], [10.0, 12.1, 13.9, 16.2, 18.0])
FALLING = ([0, 1, 2, 3, 4], [18.0, 16.2, 13.9, 12.1, 10.0])
NOISY_FLATISH = ([0, 1, 2, 3, 4, 5], [10.0, 10.4, 9.8, 10.2, 9.9, 10.1])


class TestAnalyzeSeries:
    def test_results_stored_as_statements(self, pipeline):
        result = pipeline.analyze_series("C_x", *RISING, entity_type="Company")
        graph = pipeline.graph
        assert ("C_x", REPRO.trend, "rising") in graph
        assert ("C_x", RDF.type, REPRO("Company")) in graph
        assert graph.match("C_x", REPRO.slope, None)
        assert result["trend"] == "rising"
        assert result["slope"] > 0

    def test_forecast_extends_trend(self, pipeline):
        result = pipeline.analyze_series("C_x", *RISING)
        assert result["forecast_next"] > RISING[1][-1] - 1

    def test_fit_label_thresholds(self, pipeline):
        strong = pipeline.analyze_series("C_strong", *RISING)
        weak = pipeline.analyze_series("C_weak", *NOISY_FLATISH)
        assert strong["fit"] == "strong"
        assert weak["fit"] == "weak"

    def test_series_counter(self, pipeline):
        pipeline.analyze_series("a", *RISING)
        pipeline.analyze_series("b", *FALLING)
        assert pipeline.series_analyzed == 2


class TestInference:
    def test_rising_company_becomes_candidate(self, pipeline):
        pipeline.analyze_series("C_up", *RISING, entity_type="Company")
        added = pipeline.infer()
        assert added > 0
        assert pipeline.recommendations() == {"C_up": "investment-candidate"}

    def test_falling_company_goes_to_watchlist(self, pipeline):
        pipeline.analyze_series("C_down", *FALLING, entity_type="Company")
        pipeline.infer()
        assert pipeline.recommendations() == {"C_down": "watch-list"}

    def test_non_company_gets_no_recommendation(self, pipeline):
        pipeline.analyze_series("city_x", *RISING, entity_type="City")
        pipeline.infer()
        assert pipeline.recommendations() == {}

    def test_weak_fit_blocks_candidate_status(self, pipeline):
        """A rising but noisy series is not a 'reliable-uptrend'."""
        pipeline.analyze_series("C_noisy", [0, 1, 2, 3, 4, 5],
                                [10, 14, 9, 15, 8, 16], entity_type="Company")
        pipeline.infer()
        signals = pipeline.graph.match("C_noisy", REPRO.signal, None)
        assert signals == []

    def test_inference_goes_beyond_any_single_analysis(self, pipeline):
        """The chain trend → outlook → signal → recommendation derives
        facts that no regression produced directly."""
        pipeline.analyze_series("C_up", *RISING, entity_type="Company")
        before = {t.predicate for t in pipeline.graph.match("C_up", None, None)}
        pipeline.infer()
        after = {t.predicate for t in pipeline.graph.match("C_up", None, None)}
        new_predicates = after - before
        assert REPRO.outlook in new_predicates
        assert REPRO.recommendation in new_predicates

    def test_inference_idempotent(self, pipeline):
        pipeline.analyze_series("C_up", *RISING, entity_type="Company")
        pipeline.infer()
        assert pipeline.infer() == 0

    def test_custom_rules(self):
        custom = AnalysisPipeline(rules=[
            Rule([("?s", REPRO.trend, "falling")],
                 [("?s", "repro:alert", "sell")], name="sell-alert"),
        ])
        custom.analyze_series("C_down", *FALLING)
        custom.infer()
        assert ("C_down", "repro:alert", "sell") in custom.graph

    def test_external_graph_shared(self):
        graph = Graph()
        pipeline = AnalysisPipeline(graph)
        pipeline.analyze_series("x", *RISING)
        assert len(graph) > 0

    def test_default_rules_are_wellformed(self):
        assert len(default_rules()) >= 4

    def test_facts_about(self, pipeline):
        pipeline.analyze_series("C_x", *RISING)
        facts = pipeline.facts_about("C_x")
        assert all(fact.subject == "C_x" for fact in facts)
        assert len(facts) >= 6
