"""Property-based test: OfflineSyncStore vs an oracle, under random
operation sequences with connectivity flips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import RichClient, build_world
from repro.crypto.cipher import StreamCipher, derive_key
from repro.kb.secure import SecureRemoteStore
from repro.kb.sync import OfflineSyncStore
from repro.simnet.connectivity import ManualConnectivity

KEYS = ["a", "b", "c"]

operations = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.sampled_from(KEYS),
                  st.integers(min_value=0, max_value=99)),
        st.tuples(st.just("delete"), st.sampled_from(KEYS), st.none()),
        st.tuples(st.just("offline"), st.none(), st.none()),
        st.tuples(st.just("online_sync"), st.none(), st.none()),
    ),
    max_size=30,
)


@settings(max_examples=40, deadline=None)
@given(ops=operations)
def test_sync_store_matches_oracle(ops):
    world = build_world(seed=2, corpus_size=5)
    connectivity = ManualConnectivity()
    world.transport.connectivity = connectivity
    client = RichClient(world.registry)
    cipher = StreamCipher(derive_key("prop", iterations=200))
    sync = OfflineSyncStore(remote=SecureRemoteStore(
        client, "store-standard", cipher))

    oracle: dict[str, int] = {}
    online = True
    for operation, key, value in ops:
        if operation == "put":
            sync.put(key, value)
            oracle[key] = value
        elif operation == "delete":
            sync.delete(key)
            oracle.pop(key, None)
        elif operation == "offline":
            connectivity.go_offline()
            online = False
        elif operation == "online_sync":
            connectivity.go_online()
            online = True
            sync.sync()

    # Local view always matches the oracle exactly.
    for key in KEYS:
        if key in oracle:
            assert sync.get(key) == oracle[key]
        else:
            sentinel = object()
            assert sync.local.get(key, default=sentinel) is sentinel

    # After a final reconnect + sync the remote converges to the oracle.
    connectivity.go_online()
    sync.sync()
    assert sync.pending_count == 0
    remote_keys = set(sync.remote.keys())
    for key, value in oracle.items():
        assert sync.remote.get(key) == value
    deleted = set(KEYS) - set(oracle)
    written_then_deleted = deleted & remote_keys
    # Any key that still exists remotely but not in the oracle would be
    # a sync bug (deletes must replay too).
    assert not written_then_deleted
    client.close()
