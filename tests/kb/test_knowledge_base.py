"""Tests for the PersonalKnowledgeBase facade."""

import pytest

from repro.kb.disambiguation import EntityDisambiguator, ServiceBackedStrategy
from repro.kb.knowledge_base import PersonalKnowledgeBase
from repro.stores.rdf.graph import RDF, RDFS, REPRO
from repro.stores.rdf.rules import Rule
from repro.util.errors import ConfigurationError


@pytest.fixture
def kb(client):
    disambiguator = EntityDisambiguator(
        [ServiceBackedStrategy(client, "lexica-prime")])
    return PersonalKnowledgeBase(client=client, disambiguator=disambiguator)


CSV_TEXT = "city,month,temp\nTokyo,1,5.1\nTokyo,7,26.9\nParis,7,20.2\n"


class TestFactEntry:
    def test_add_fact_disambiguates_subject(self, kb):
        kb.add_fact("USA", "repro:visited", "true")
        assert ("Q30", "repro:visited", "true") in kb.graph

    def test_aliases_collapse_to_one_subject(self, kb):
        """'This prevents the proliferation of redundant database
        entries' — all aliases write to one canonical subject."""
        kb.add_fact("USA", "repro:p1", "a")
        kb.add_fact("United States of America", "repro:p2", "b")
        kb.add_fact("the States", "repro:p3", "c")
        subjects = {t.subject for t in kb.graph.match(None, None, None)
                    if t.predicate.startswith("repro:p")}
        assert subjects == {"Q30"}

    def test_label_and_links_stored(self, kb):
        kb.add_fact("USA", "repro:visited", "true")
        assert ("Q30", RDFS.label, "United States of America") in kb.graph
        assert kb.graph.match("Q30", REPRO("link_dbpedia"), None)

    def test_string_objects_also_disambiguated(self, kb):
        kb.add_fact("France", "repro:ally_of", "the States")
        assert ("Q142", "repro:ally_of", "Q30") in kb.graph

    def test_disambiguation_can_be_disabled(self, kb):
        kb.add_fact("USA", "repro:raw", 1, disambiguate=False)
        assert ("USA", "repro:raw", 1) in kb.graph

    def test_unresolvable_subject_kept_verbatim(self, kb):
        kb.add_fact("my house", "repro:rooms", 5)
        assert ("my house", "repro:rooms", 5) in kb.graph

    def test_facts_about_resolves_aliases(self, kb):
        kb.add_fact("USA", "repro:visited", "true")
        assert kb.facts_about("America")

    def test_kb_works_without_disambiguator(self):
        bare = PersonalKnowledgeBase()
        bare.add_fact("x", "p", 1)
        assert ("x", "p", 1) in bare.graph


class TestIngestion:
    def test_ingest_entity_from_all_sources(self, kb):
        outcomes = kb.ingest_entity("US")
        assert set(outcomes) == {"dbpedia-sim", "wikidata-sim", "yago-sim"}
        # Property names are normalized back to canonical form.
        assert kb.graph.match("Q30", REPRO("population_millions"), None)
        assert kb.graph.match("Q30", REPRO("capital"), None)

    def test_ingest_records_provenance(self, kb):
        kb.ingest_entity("US", sources=["dbpedia-sim"])
        provenance = kb.graph.match("Q30", REPRO("source_dbpedia-sim"), None)
        assert provenance and "dbpedia.org" in str(provenance[0].object)

    def test_ingest_skips_uncovered_sources(self, kb, world):
        source = world.service("yago-sim")
        missing = next(entity for entity in world.gazetteer
                       if not source.covers(entity.entity_id))
        outcomes = kb.ingest_entity(missing.name, sources=["yago-sim"])
        assert outcomes["yago-sim"].startswith("miss")

    def test_ingest_requires_client(self):
        with pytest.raises(ConfigurationError):
            PersonalKnowledgeBase().ingest_entity("US")


class TestFormatConversion:
    def test_csv_to_table(self, kb):
        table = kb.ingest_csv_text("readings", CSV_TEXT)
        assert len(table) == 3
        assert table.aggregate("max", "temp") == 26.9

    def test_table_to_rdf_and_query(self, kb):
        kb.ingest_csv_text("readings", CSV_TEXT)
        added = kb.table_to_rdf("readings")
        assert added == 12  # 3 rows x (3 columns + rdf:type)
        rows = kb.query(
            [("?r", "repro:city", "Tokyo"), ("?r", "repro:temp", "?t")],
            variables=["?t"],
        )
        assert {row["?t"] for row in rows} == {5.1, 26.9}

    def test_rdf_back_to_table_includes_inferred(self, kb):
        kb.ingest_csv_text("readings", CSV_TEXT)
        kb.table_to_rdf("readings")
        kb.infer_with_rules([Rule(
            premises=[("?r", "repro:temp", "?t")],
            conclusions=[("?r", "repro:measured", "yes")],
            name="measured",
        )])
        table = kb.rdf_to_table("readings")
        assert "measured" in table.column_names
        assert all(row["measured"] == "yes" for row in table.select())

    def test_export_csv_roundtrip(self, kb, tmp_path):
        kb.ingest_csv_text("readings", CSV_TEXT)
        path = tmp_path / "out.csv"
        text = kb.export_table_csv("readings", path)
        assert path.read_text() == text
        reimported = kb.ingest_csv_text("copy", text)
        assert reimported.select() == kb.database.table("readings").select()

    def test_csv_file_ingest(self, kb, tmp_path):
        path = tmp_path / "in.csv"
        path.write_text(CSV_TEXT)
        table = kb.ingest_csv_file("readings", path)
        assert len(table) == 3


class TestReasoning:
    def test_rdfs_reasoner(self, kb):
        kb.graph.add(("Dog", RDFS.subClassOf, "Animal"))
        kb.graph.add(("rex", RDF.type, "Dog"))
        added = kb.reason("rdfs")
        assert added >= 1
        assert ("rex", RDF.type, "Animal") in kb.graph

    def test_transitive_reasoner(self, kb):
        kb.graph.add(("a", RDFS.subClassOf, "b"))
        kb.graph.add(("b", RDFS.subClassOf, "c"))
        kb.reason("transitive")
        assert ("a", RDFS.subClassOf, "c") in kb.graph

    def test_unknown_reasoner_rejected(self, kb):
        with pytest.raises(ConfigurationError):
            kb.reason("owl-full")

    def test_user_rules(self, kb):
        kb.add_fact("x", "repro:p", "y", disambiguate=False)
        kb.infer_with_rules([Rule([("?a", "repro:p", "?b")],
                                  [("?b", "repro:q", "?a")], name="invert")])
        assert ("y", "repro:q", "x") in kb.graph


class TestAnalysis:
    def test_analyze_numeric_table(self, kb):
        kb.ingest_csv_text("prices", "day,price\n0,10\n1,12\n2,14\n3,16\n")
        result = kb.analyze_numeric_table("prices", "day", "price",
                                          subject="C_x", entity_type="Company")
        assert result["slope"] == pytest.approx(2.0)
        assert ("C_x", REPRO.trend, "rising") in kb.graph
        kb.pipeline.infer()
        assert kb.pipeline.recommendations()["C_x"] == "investment-candidate"

    def test_nulls_skipped(self, kb):
        kb.ingest_csv_text("prices", "day,price\n0,10\n1,\n2,14\n3,16\n")
        result = kb.analyze_numeric_table("prices", "day", "price", subject="s")
        assert result["slope"] == pytest.approx(2.0, abs=0.2)


class TestPersistence:
    def test_snapshot_restore_roundtrip(self, kb):
        kb.add_fact("USA", "repro:visited", "true")
        kb.ingest_csv_text("readings", CSV_TEXT)
        kb.kv.put("note", "hello")
        snapshot = kb.snapshot()

        fresh = PersonalKnowledgeBase()
        fresh.restore(snapshot)
        assert ("Q30", "repro:visited", "true") in fresh.graph
        assert fresh.database.table("readings").select() == kb.database.table(
            "readings").select()
        assert fresh.kv.get("note") == "hello"

    def test_save_load_local_file(self, kb, tmp_path):
        kb.add_fact("USA", "repro:visited", "true")
        path = kb.save_local(tmp_path / "snap.json")
        fresh = PersonalKnowledgeBase()
        fresh.load_local(path)
        assert ("Q30", "repro:visited", "true") in fresh.graph

    def test_data_dir_default_paths(self, client, tmp_path):
        kb = PersonalKnowledgeBase(client=client, data_dir=tmp_path / "kbdata")
        kb.add_fact("x", "p", 1, disambiguate=False)
        kb.save_local()
        fresh = PersonalKnowledgeBase(data_dir=tmp_path / "kbdata")
        fresh.load_local()
        assert ("x", "p", 1) in fresh.graph

    def test_no_remote_configured(self, kb):
        with pytest.raises(ConfigurationError):
            kb.backup_remote()

    def test_spellcheck_requires_checker(self, kb):
        with pytest.raises(ConfigurationError):
            kb.correct_text("helo")

    def test_turtle_export_import_roundtrip(self, kb, tmp_path):
        kb.add_fact("USA", "repro:visited", "true")
        kb.ingest_entity("US", sources=["dbpedia-sim"])
        path = tmp_path / "kb.ttl"
        text = kb.export_graph_turtle(path)
        assert path.read_text() == text
        assert "Q30" in text

        fresh = PersonalKnowledgeBase()
        added = fresh.import_graph_turtle(path)
        assert added == len(kb.graph)
        assert set(fresh.graph) == set(kb.graph)

    def test_turtle_import_from_inline_text(self, kb):
        added = kb.import_graph_turtle("home repro:rooms 5 .\n")
        assert added == 1
        assert ("home", "repro:rooms", 5) in kb.graph

    def test_restore_resets_pipeline_graph(self, kb):
        kb.add_fact("x", "p", 1, disambiguate=False)
        snapshot = kb.snapshot()
        fresh = PersonalKnowledgeBase()
        fresh.restore(snapshot)
        fresh.pipeline.analyze_series("s", [0, 1, 2], [1.0, 2.0, 3.0])
        assert fresh.pipeline.graph is fresh.graph
        assert len(fresh.graph) > 1
