"""KB storage configuration: backends, sharding, byte-compatibility.

``PersonalKnowledgeBase(storage=..., shards=N)`` swaps the RDF store's
physical layer.  The default must stay bit-for-bit what it always was
(a single in-memory Graph); every other configuration must answer the
same queries with the same bytes.
"""

import asyncio

import pytest

from repro.kb import KnowledgeBase, PersonalKnowledgeBase
from repro.stores.backends.sqlite import SqliteTripleStore
from repro.stores.rdf.graph import Graph
from repro.stores.rdf.query import RangeFilter
from repro.stores.rdf.shard import ShardedGraph
from repro.util.errors import ConfigurationError

CONFIGS = {
    "default": {},
    "sqlite": {"storage": "sqlite"},
    "sharded-memory": {"shards": 4},
    "sharded-sqlite": {"storage": "sqlite", "shards": 3},
    "custom-factory": {"storage": (lambda index: Graph()), "shards": 2},
}


def seeded(**kwargs) -> PersonalKnowledgeBase:
    kb = PersonalKnowledgeBase(**kwargs)
    for i in range(25):
        kb.add_fact(f"repro:city{i}", "repro:population", i * 10,
                    disambiguate=False)
        kb.add_fact(f"repro:city{i}", "rdf:type", "repro:City",
                    disambiguate=False)
    return kb


def test_knowledgebase_alias():
    assert KnowledgeBase is PersonalKnowledgeBase


def test_default_storage_is_plain_graph():
    kb = PersonalKnowledgeBase()
    assert type(kb.graph) is Graph
    assert kb.uses_default_storage


def test_unknown_storage_rejected():
    with pytest.raises(ConfigurationError):
        PersonalKnowledgeBase(storage="mysql")


@pytest.mark.parametrize("name", sorted(CONFIGS), ids=sorted(CONFIGS))
def test_every_config_answers_queries_identically(name):
    reference = seeded()
    kb = seeded(**CONFIGS[name])
    queries = [
        dict(patterns=[("?c", "rdf:type", "repro:City"),
                       ("?c", "repro:population", "?p")],
             order_by="?p", descending=True, limit=5),
        dict(patterns=[("?c", "repro:population", "?p")],
             filters=[RangeFilter("?p", 50, 120)], order_by="?p"),
        dict(patterns=[("repro:city7", "repro:population", "?p")]),
        dict(patterns=[("?c", "rdf:type", "?t")], variables=["?t"],
             distinct=True),
    ]
    for query in queries:
        assert kb.query(**query) == reference.query(**query), (name, query)
    # Snapshots are byte-identical regardless of physical layout.
    assert kb.snapshot()["graph"] == reference.snapshot()["graph"]


def test_sharded_explain_reports_routing():
    kb = seeded(storage="sqlite", shards=3)
    assert isinstance(kb.graph, ShardedGraph)
    plan = kb.explain([("?c", "repro:population", "?p")],
                      [RangeFilter("?p", 0, None)])
    info = plan.explain()
    assert info["route"] == "scatter"
    assert info["shards"] == 3
    assert info["native_numeric"] is True
    # Default KBs keep returning the plain QueryPlan dict shape.
    flat = seeded().explain([("?c", "repro:population", "?p")])
    assert flat.explain()["strategy"] == "greedy-selectivity"


def test_sqlite_kb_persists_across_reopen(tmp_path):
    kb = seeded(data_dir=tmp_path, storage="sqlite", shards=2)
    snapshot = kb.snapshot()["graph"]
    kb.graph.close()
    reopened = PersonalKnowledgeBase(data_dir=tmp_path, storage="sqlite",
                                     shards=2)
    assert reopened.snapshot()["graph"] == snapshot
    assert (tmp_path / "triples" / "shard0.sqlite").exists()
    assert (tmp_path / "triples" / "shard1.sqlite").exists()
    reopened.graph.close()


def test_restore_reuses_configured_backends():
    kb = seeded(storage="sqlite", shards=2)
    snapshot = kb.snapshot()
    graph_before = kb.graph
    kb.restore(snapshot)
    assert kb.graph is graph_before  # cleared in place, not rebuilt
    assert kb.snapshot()["graph"] == snapshot["graph"]
    kb.graph.close()


def test_materialization_composes_with_sharded_storage():
    kb = seeded(storage="sqlite", shards=3)
    kb.enable_materialization(reasoners=[])
    rows = kb.query([("?c", "repro:population", "?p")], order_by="?p",
                    limit=3)
    assert rows == seeded().query([("?c", "repro:population", "?p")],
                                  order_by="?p", limit=3)
    # Second identical query comes from the view's version-keyed cache.
    again = kb.query([("?c", "repro:population", "?p")], order_by="?p",
                     limit=3)
    assert again == rows
    assert kb.view.cache.hits >= 1
    kb.graph.close()


def test_aquery_matches_query():
    for config in ({}, {"shards": 3}):
        kb = seeded(**config)
        query = dict(patterns=[("?c", "repro:population", "?p")],
                     filters=[RangeFilter("?p", 100, None)], order_by="?p")
        assert asyncio.run(kb.aquery(**query)) == kb.query(**query)


def test_table_and_pipeline_flow_through_sharded_store():
    kb = seeded(storage="sqlite", shards=2)
    kb.ingest_csv_text("m", "name,value\na,1\nb,2\n")
    assert kb.table_to_rdf("m", subject_column="name") > 0
    rows = kb.query([("?s", "repro:value", "?v")], order_by="?v")
    assert [r["?v"] for r in rows] == [1, 2]
    kb.graph.close()
