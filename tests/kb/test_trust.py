"""Tests for the trust-aware (accuracy-level) pipeline."""

import pytest

from repro.kb.trust import DEFAULT_SOURCE_PRIORS, TrustAwarePipeline
from repro.stores.rdf.graph import REPRO, Triple

RISING_CLEAN = ([0, 1, 2, 3, 4], [10.0, 12.0, 14.0, 16.0, 18.0])
RISING_NOISY = ([0, 1, 2, 3, 4, 5], [10.0, 14.0, 9.0, 15.0, 8.0, 16.0])


class TestSourcePriors:
    def test_known_sources(self):
        pipeline = TrustAwarePipeline()
        assert pipeline.prior_for("wikidata-sim") == DEFAULT_SOURCE_PRIORS[
            "wikidata-sim"]

    def test_unknown_source_gets_half(self):
        assert TrustAwarePipeline().prior_for("random-blog") == 0.5

    def test_overrides(self):
        pipeline = TrustAwarePipeline(source_priors={"rumor": 0.05})
        assert pipeline.prior_for("rumor") == 0.05

    def test_assert_scales_by_prior(self):
        pipeline = TrustAwarePipeline()
        pipeline.assert_from_source(("x", "p", "y"), "rumor")
        assert pipeline.store.confidence(("x", "p", "y")) == pytest.approx(
            DEFAULT_SOURCE_PRIORS["rumor"])

    def test_explicit_confidence_multiplies_prior(self):
        pipeline = TrustAwarePipeline()
        pipeline.assert_from_source(("x", "p", "y"), "user", confidence=0.5)
        assert pipeline.store.confidence(("x", "p", "y")) == pytest.approx(0.5)


class TestAnalysisConfidence:
    def test_clean_fit_high_confidence(self):
        pipeline = TrustAwarePipeline()
        result = pipeline.analyze_series("C_clean", *RISING_CLEAN,
                                         entity_type="Company")
        assert result["trend"] == "rising"
        assert result["trend_confidence"] > 0.85

    def test_noisy_fit_low_confidence(self):
        pipeline = TrustAwarePipeline()
        result = pipeline.analyze_series("C_noisy", *RISING_NOISY,
                                         entity_type="Company")
        assert result["trend_confidence"] < 0.2


class TestInferenceWithAccuracy:
    def test_confident_analysis_yields_recommendation(self):
        pipeline = TrustAwarePipeline()
        pipeline.analyze_series("C_clean", *RISING_CLEAN, entity_type="Company")
        pipeline.infer()
        recommendations = pipeline.recommendations(min_confidence=0.5)
        assert recommendations["C_clean"]["recommendation"] == "investment-candidate"

    def test_noisy_analysis_filtered_by_floor(self):
        """'Using these accuracy levels during the process of inferring
        new facts': a weak trend never becomes a recommendation."""
        pipeline = TrustAwarePipeline(confidence_floor=0.3)
        pipeline.analyze_series("C_noisy", *RISING_NOISY, entity_type="Company")
        pipeline.infer()
        assert pipeline.recommendations() == {}

    def test_inferred_facts_get_accuracy_levels(self):
        """'Assigning accuracy levels to newly inferred facts.'"""
        pipeline = TrustAwarePipeline()
        pipeline.analyze_series("C_clean", *RISING_CLEAN, entity_type="Company")
        pipeline.infer()
        explanation = pipeline.explain(
            Triple("C_clean", REPRO.recommendation, "investment-candidate"))
        assert 0.0 < explanation["confidence"] < 1.0
        assert explanation["sources"] == ["inferred:candidate"]
        # The conclusion is weaker than its strongest premise.
        trend_confidence = pipeline.store.confidence(
            Triple("C_clean", REPRO.trend, "rising"))
        assert explanation["confidence"] < trend_confidence

    def test_threshold_splits_recommendations(self):
        pipeline = TrustAwarePipeline(confidence_floor=0.0)
        pipeline.analyze_series("C_clean", *RISING_CLEAN, entity_type="Company")
        pipeline.analyze_series("C_noisy", *RISING_NOISY, entity_type="Company")
        pipeline.infer()
        everything = pipeline.recommendations(min_confidence=0.0)
        confident = pipeline.recommendations(min_confidence=0.5)
        assert set(everything) == {"C_clean", "C_noisy"}
        assert set(confident) == {"C_clean"}

    def test_corroborated_ingest_strengthens_downstream(self):
        lone = TrustAwarePipeline()
        lone.analyze_series("C", *RISING_NOISY, entity_type="Company")
        corroborated = TrustAwarePipeline()
        corroborated.analyze_series("C", *RISING_NOISY, entity_type="Company")
        corroborated.assert_from_source(
            Triple("C", REPRO.trend, "rising"), "user", confidence=0.9)
        lone.infer()
        corroborated.infer()
        lone_rec = lone.recommendations().get("C", {"confidence": 0.0})
        corroborated_rec = corroborated.recommendations()["C"]
        assert corroborated_rec["confidence"] > lone_rec["confidence"]
