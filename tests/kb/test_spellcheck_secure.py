"""Tests for the local spell checker and the secure remote store."""

import pytest

from repro.crypto.cipher import StreamCipher, derive_key
from repro.crypto.compression import IdentityCodec
from repro.kb.secure import SecureRemoteStore
from repro.kb.spellcheck import LocalSpellChecker
from repro.util.errors import NotFoundError


@pytest.fixture
def cipher():
    return StreamCipher(derive_key("kb tests", iterations=500))


@pytest.fixture
def secure(client, cipher):
    return SecureRemoteStore(client, "store-standard", cipher)


class TestLocalSpellChecker:
    def test_built_from_world_texts(self, world):
        checker = LocalSpellChecker.from_texts(
            (doc.text for doc in world.corpus.documents), world.gazetteer)
        assert checker.is_known("results")
        assert checker.is_known("ibm")  # gazetteer name included

    def test_corrections(self, world):
        checker = LocalSpellChecker.from_texts(
            (doc.text for doc in world.corpus.documents), world.gazetteer)
        result = checker.correct_text("excellnt resuts")
        corrected = dict(result["replacements"])
        assert corrected.get("excellnt") == "excellent"

    def test_no_simulated_time_consumed(self, world):
        """The local checker is 'generally faster': zero network time."""
        checker = LocalSpellChecker.from_texts(
            (doc.text for doc in world.corpus.documents), world.gazetteer)
        before = world.clock.now()
        checker.correct_text("excellnt results were anounced")
        assert world.clock.now() == before

    def test_add_words(self, world):
        checker = LocalSpellChecker.from_texts(["plain text"])
        assert not checker.is_known("kubernetes")
        checker.add_words(["Kubernetes"])
        assert checker.is_known("kubernetes")

    def test_call_counter(self):
        checker = LocalSpellChecker.from_texts(["some words here"])
        checker.correct_word("words")
        checker.suggestions("wrds")
        assert checker.calls == 2


class TestSecureRemoteStore:
    def test_put_get_roundtrip(self, secure):
        secure.put("facts", {"graph": [1, 2, 3]})
        assert secure.get("facts") == {"graph": [1, 2, 3]}

    def test_remote_holds_only_ciphertext(self, secure, world):
        secure.put("secret", {"password": "hunter2"})
        raw = world.service("store-standard")._data["pkb/secret"]
        import json

        assert "hunter2" not in json.dumps(raw)
        assert "ciphertext" in raw

    def test_get_missing_raises_not_found(self, secure):
        with pytest.raises(NotFoundError):
            secure.get("ghost")

    def test_delete(self, secure):
        secure.put("k", 1)
        assert secure.delete("k") is True
        assert secure.delete("k") is False

    def test_keys_strip_prefix(self, secure):
        secure.put("alpha", 1)
        secure.put("beta", 2)
        assert secure.keys() == ["alpha", "beta"]

    def test_compression_saves_bandwidth(self, client, cipher):
        compressed = SecureRemoteStore(client, "store-standard", cipher,
                                       key_prefix="c/")
        raw = SecureRemoteStore(client, "store-standard", cipher,
                                codec=IdentityCodec(), key_prefix="r/")
        payload = {"text": "repetition " * 500}
        compressed.put("k", payload)
        raw.put("k", payload)
        assert compressed.stats.uploaded_bytes < raw.stats.uploaded_bytes
        assert compressed.stats.upload_ratio < 1.0
        assert compressed.stats.bytes_saved > 0

    def test_stats_track_operations(self, secure):
        secure.put("a", 1)
        secure.get("a")
        assert secure.stats.puts == 1
        assert secure.stats.gets == 1
