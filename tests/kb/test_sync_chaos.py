"""Offline-sync convergence under scripted outages (chaos satellite).

Drives :class:`OfflineSyncStore` through **two** scripted offline
windows with writes interleaved across online and offline phases — from
the syncing writer *and* a second, directly-connected writer — and
asserts the remote store converges with no lost update.
"""

import pytest

from repro import RichClient, build_world
from repro.chaos.plan import FaultPlan, Partition, Window
from repro.crypto.cipher import StreamCipher
from repro.kb.secure import SecureRemoteStore
from repro.kb.sync import OfflineSyncStore
from repro.util.errors import NotFoundError

KEY = b"chaos-sync-test-key-0123456789ab"

#: The two scripted outages the writer must ride out.
WINDOWS = (Window(2.0, 4.0), Window(6.0, 8.0))


@pytest.fixture
def setup():
    plan = FaultPlan(tuple(Partition(w) for w in WINDOWS), seed=21)
    world = build_world(seed=21, corpus_size=10)
    plan.injector().install(world.transport)
    client = RichClient(world.registry)
    secure = SecureRemoteStore(client, "store-standard", StreamCipher(KEY))
    yield world.clock, secure, OfflineSyncStore(remote=secure)
    client.close()


def _advance_to(clock, when):
    delta = when - clock.now()
    if delta > 0:
        clock.charge(delta)


class TestTwoWindowConvergence:
    def test_interleaved_writes_converge_with_no_lost_update(self, setup):
        clock, secure, store = setup

        # t≈0, online: the first write pushes straight through.
        store.put("doc", {"rev": 1})
        assert store.pending_count == 0

        # Window 1 (t in [2,4)): writes queue, reads stay local-first.
        _advance_to(clock, 2.5)
        store.put("doc", {"rev": 2})
        store.put("tags", ["draft"])
        assert store.pending_count == 2
        assert store.get("doc") == {"rev": 2}
        assert store.sync() == 0            # outage: nothing applies
        assert store.stats.failed_syncs == 1
        assert store.pending_count == 2     # the queue survives the failure

        # Healed gap (t in [4,6)): a second writer lands a direct write
        # AND the first writer's backlog replays.
        _advance_to(clock, 4.5)
        secure.put("peer", {"author": "B"})
        assert store.sync() == 2
        assert store.pending_count == 0
        assert secure.get("doc") == {"rev": 2}

        # Window 2 (t in [6,8)): a conflicting same-key write queues.
        _advance_to(clock, 6.5)
        store.put("doc", {"rev": 3})
        store.put("notes", "from window two")
        assert store.pending_count == 2

        # After the second heal everything converges.
        _advance_to(clock, 8.5)
        assert store.sync() == 2
        assert secure.get("doc") == {"rev": 3}      # later writer wins
        assert secure.get("tags") == ["draft"]      # window-1 write intact
        assert secure.get("notes") == "from window two"
        assert secure.get("peer") == {"author": "B"}  # peer write untouched

    def test_coalescing_keeps_only_the_last_write_per_key(self, setup):
        clock, secure, store = setup
        _advance_to(clock, 2.1)             # inside window 1
        for revision in range(5):
            store.put("doc", {"rev": revision})
        _advance_to(clock, 4.5)
        assert store.sync() == 1            # five queued puts, one replay
        assert secure.get("doc") == {"rev": 4}

    def test_delete_replays_across_an_outage(self, setup):
        clock, secure, store = setup
        store.put("doomed", 1)
        _advance_to(clock, 2.5)
        store.delete("doomed")
        _advance_to(clock, 4.5)
        assert store.sync() == 1
        with pytest.raises(NotFoundError):
            secure.get("doomed")

    def test_offline_read_of_unseen_key_is_honest(self, setup):
        clock, secure, store = setup
        secure.put("remote-only", 42)       # never read into local store
        _advance_to(clock, 2.5)             # offline
        with pytest.raises(NotFoundError):
            store.get("remote-only")
        _advance_to(clock, 4.5)             # healed: falls through to remote
        assert store.get("remote-only") == 42
        _advance_to(clock, 6.5)             # offline again: now cached
        assert store.get("remote-only") == 42
