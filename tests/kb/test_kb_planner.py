"""Planner, explain() and materialization wiring on the PKB facade."""

from repro.kb.knowledge_base import PersonalKnowledgeBase
from repro.obs import Observability
from repro.stores.rdf.graph import RDF, RDFS, Triple
from repro.util.clock import ManualClock


def populated_kb(**kwargs):
    kb = PersonalKnowledgeBase(**kwargs)
    for index in range(5):
        kb.add_fact(f"p{index}", "rdf:type", "Person")
        kb.add_fact(f"p{index}", "name", f"N{index}")
    kb.add_fact("p1", "worksAt", "acme")
    return kb


class TestExplain:
    def test_explain_orders_by_selectivity(self):
        kb = populated_kb()
        plan = kb.explain([
            ("?p", "rdf:type", "Person"),
            ("?p", "worksAt", "?org"),
        ])
        explained = plan.explain()
        assert explained["strategy"] == "greedy-selectivity"
        # The single worksAt edge runs before the five type triples.
        assert plan.pattern_order() == [1, 0]
        assert explained["steps"][0]["estimated_rows"] == 1.0


class TestQuery:
    def test_query_is_planned_by_default_and_matches_naive(self):
        kb = populated_kb()
        patterns = [("?p", "rdf:type", "Person"), ("?p", "worksAt", "?org")]
        assert kb.query(patterns) == kb.query(patterns, optimize=False)
        assert kb.query(patterns) == [{"?p": "p1", "?org": "acme"}]

    def test_query_emits_span_and_counter(self):
        obs = Observability(clock=ManualClock())
        kb = populated_kb(obs=obs)
        kb.query([("?p", "worksAt", "?org")])
        span = next(span for span in obs.collector.spans()
                    if span.name == "kb.query")
        assert span.attributes["patterns"] == 1
        assert obs.metrics.counter("kb_queries_total").total() == 1.0


class TestMaterialization:
    def test_writes_derive_incrementally(self):
        kb = PersonalKnowledgeBase()
        view = kb.enable_materialization()
        assert view is kb.view
        assert view.graph is kb.graph
        kb.add_fact("Cat", RDFS.subClassOf, "Mammal")
        kb.add_fact("tom", RDF.type, "Cat")
        assert Triple("tom", RDF.type, "Mammal") in kb.graph

    def test_query_served_from_view_cache(self):
        kb = PersonalKnowledgeBase()
        kb.enable_materialization()
        kb.add_fact("Cat", RDFS.subClassOf, "Mammal")
        kb.add_fact("tom", RDF.type, "Cat")
        patterns = [("?x", RDF.type, "Mammal")]
        first = kb.query(patterns)
        assert kb.query(patterns) == first == [{"?x": "tom"}]
        assert kb.view.cache.hits == 1

    def test_pipeline_statements_flow_through_view(self):
        kb = PersonalKnowledgeBase()
        kb.enable_materialization()
        assert kb.pipeline.graph is kb.view
        kb.pipeline.analyze_series(
            "acme", [0, 1, 2], [1.0, 2.0, 3.0], entity_type="Company")
        assert kb.pipeline.infer() > 0
        assert kb.pipeline.recommendations() == {
            "acme": "investment-candidate"}

    def test_restore_rewraps_view_around_fresh_graph(self):
        kb = PersonalKnowledgeBase()
        kb.enable_materialization()
        kb.add_fact("Cat", RDFS.subClassOf, "Mammal")
        kb.add_fact("tom", RDF.type, "Cat")
        snapshot = kb.snapshot()
        fresh = PersonalKnowledgeBase()
        fresh.enable_materialization()
        fresh.restore(snapshot)
        assert fresh.pipeline.graph is fresh.view
        assert fresh.view.graph is fresh.graph
        assert Triple("tom", RDF.type, "Mammal") in fresh.graph
        # Restored facts keep deriving incrementally.
        fresh.add_fact("jerry", RDF.type, "Cat")
        assert Triple("jerry", RDF.type, "Mammal") in fresh.graph


class TestIncrementalPipeline:
    def test_delta_mode_after_full_fixpoint(self):
        kb = PersonalKnowledgeBase()
        kb.pipeline.analyze_series("acme", [0, 1, 2], [1.0, 2.0, 3.0],
                                   entity_type="Company")
        kb.pipeline.infer()
        assert kb.pipeline.last_infer_mode == "full"
        kb.pipeline.analyze_series("globex", [0, 1, 2], [3.0, 2.0, 1.0],
                                   entity_type="Company")
        kb.pipeline.infer()
        assert kb.pipeline.last_infer_mode == "delta"
        assert kb.pipeline.recommendations() == {
            "acme": "investment-candidate", "globex": "watch-list"}

    def test_external_mutation_falls_back_to_full(self):
        kb = PersonalKnowledgeBase()
        kb.pipeline.analyze_series("acme", [0, 1, 2], [1.0, 2.0, 3.0],
                                   entity_type="Company")
        kb.pipeline.infer()
        # A write the pipeline never saw: the version check must force
        # a full fixpoint so its consequences are not missed.
        kb.graph.add(("globex", "repro:trend", "rising"))
        kb.pipeline.infer()
        assert kb.pipeline.last_infer_mode == "full"
        assert Triple("globex", "repro:outlook", "positive") in kb.graph
