"""Tests for the simulated transport."""

import pytest

from repro.simnet.connectivity import ScriptedConnectivity
from repro.simnet.errors import ConnectivityError, ServiceTimeoutError
from repro.simnet.latency import ConstantLatency
from repro.simnet.transport import Transport, wire_size
from repro.util.clock import ManualClock
from repro.util.errors import SerializationError
from repro.util.rng import SeededRng


def echo_server(payload):
    """A trivial service: echoes the payload with 0.1 s compute time."""
    return {"echo": payload}, 0.1


class TestWireSize:
    def test_counts_json_bytes(self):
        assert wire_size({"a": 1}) == len(b'{"a":1}')

    def test_rejects_unserializable(self):
        with pytest.raises(SerializationError):
            wire_size({"bad": object()})


class TestTransportCall:
    def test_successful_call_returns_payload_and_latency(self, transport):
        result = transport.call("svc", echo_server, {"x": 1})
        assert result.payload == {"echo": {"x": 1}}
        assert result.latency == pytest.approx(0.1)

    def test_latency_charged_to_clock(self):
        clock = ManualClock()
        transport = Transport(clock=clock, rng=SeededRng(1),
                              network_latency=ConstantLatency(0.05))
        transport.call("svc", echo_server, {})
        # outbound 0.05 + compute 0.1 + inbound 0.05
        assert clock.now() == pytest.approx(0.2)

    def test_serialization_boundary_copies_data(self, transport):
        payload = {"nested": [1, 2, 3]}

        def mutating_server(request):
            request["nested"].append(99)
            return {"got": request["nested"]}, 0.0

        transport.call("svc", mutating_server, payload)
        assert payload["nested"] == [1, 2, 3]  # caller's data untouched

    def test_rejects_unserializable_request(self, transport):
        with pytest.raises(SerializationError):
            transport.call("svc", echo_server, {"bad": object()})

    def test_rejects_unserializable_response(self, transport):
        def bad_server(payload):
            return {"value": object()}, 0.0

        with pytest.raises(SerializationError):
            transport.call("svc", bad_server, {})

    def test_timeout_raises_and_charges_timeout(self):
        clock = ManualClock()
        transport = Transport(clock=clock, rng=SeededRng(1))
        with pytest.raises(ServiceTimeoutError):
            transport.call("svc", echo_server, {}, timeout=0.05)
        assert clock.now() == pytest.approx(0.05)  # client waited the timeout
        assert transport.stats.timeouts == 1

    def test_generous_timeout_passes(self, transport):
        result = transport.call("svc", echo_server, {}, timeout=10.0)
        assert result.payload["echo"] == {}

    def test_offline_raises_connectivity_error(self):
        clock = ManualClock()
        transport = Transport(
            clock=clock, rng=SeededRng(1),
            connectivity=ScriptedConnectivity([], initially_online=False),
        )
        with pytest.raises(ConnectivityError):
            transport.call("svc", echo_server, {})
        assert transport.stats.offline_failures == 1

    def test_connectivity_follows_clock(self):
        clock = ManualClock()
        transport = Transport(
            clock=clock, rng=SeededRng(1),
            connectivity=ScriptedConnectivity([1.0, 2.0]),
        )
        transport.call("svc", echo_server, {})  # online at t=0
        clock.advance(1.0)
        with pytest.raises(ConnectivityError):
            transport.call("svc", echo_server, {})  # offline during [1, 2)
        clock.advance(1.0)
        transport.call("svc", echo_server, {})  # back online

    def test_server_exception_propagates_after_charging_outbound(self):
        clock = ManualClock()
        transport = Transport(clock=clock, rng=SeededRng(1),
                              network_latency=ConstantLatency(0.02))

        def failing_server(payload):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            transport.call("svc", failing_server, {})
        assert clock.now() == pytest.approx(0.02)  # outbound trip was paid

    def test_stats_accumulate(self, transport):
        transport.call("a", echo_server, {"k": 1})
        transport.call("a", echo_server, {"k": 2})
        transport.call("b", echo_server, {})
        stats = transport.stats
        assert stats.calls == 3
        assert stats.successes == 3
        assert stats.per_endpoint_calls == {"a": 2, "b": 1}
        assert stats.bytes_sent > 0
        assert stats.bytes_received > 0
        assert stats.total_latency == pytest.approx(0.3)
