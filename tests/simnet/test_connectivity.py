"""Tests for connectivity models."""

import pytest

from repro.simnet.connectivity import AlwaysOnline, ManualConnectivity, ScriptedConnectivity


class TestAlwaysOnline:
    def test_always_true(self):
        model = AlwaysOnline()
        assert model.is_online(0.0)
        assert model.is_online(1e9)


class TestScriptedConnectivity:
    def test_flips_at_transitions(self):
        model = ScriptedConnectivity([10.0, 20.0])
        assert model.is_online(0.0)
        assert model.is_online(9.99)
        assert not model.is_online(10.0)
        assert not model.is_online(15.0)
        assert model.is_online(20.0)
        assert model.is_online(100.0)

    def test_initially_offline(self):
        model = ScriptedConnectivity([5.0], initially_online=False)
        assert not model.is_online(0.0)
        assert model.is_online(5.0)

    def test_unsorted_transitions_rejected(self):
        with pytest.raises(ValueError):
            ScriptedConnectivity([20.0, 10.0])

    def test_next_transition_after(self):
        model = ScriptedConnectivity([10.0, 20.0])
        assert model.next_transition_after(0.0) == 10.0
        assert model.next_transition_after(10.0) == 20.0
        assert model.next_transition_after(25.0) is None

    def test_empty_schedule_never_changes(self):
        model = ScriptedConnectivity([])
        assert model.is_online(123.0)


class TestManualConnectivity:
    def test_toggling(self):
        model = ManualConnectivity()
        assert model.is_online(0.0)
        model.go_offline()
        assert not model.is_online(0.0)
        model.go_online()
        assert model.is_online(0.0)
