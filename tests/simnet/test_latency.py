"""Tests for latency distributions."""

import pytest

from repro.simnet.latency import (
    CompositeLatency,
    ConstantLatency,
    LogNormalLatency,
    SizeDependentLatency,
    UniformLatency,
)
from repro.util.rng import SeededRng


@pytest.fixture
def rng():
    return SeededRng(7)


class TestConstantLatency:
    def test_sample_is_constant(self, rng):
        dist = ConstantLatency(0.25)
        assert dist.sample(rng, {}) == 0.25
        assert dist.mean({}) == 0.25

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantLatency(-0.1)


class TestUniformLatency:
    def test_within_bounds(self, rng):
        dist = UniformLatency(0.1, 0.2)
        for _ in range(200):
            assert 0.1 <= dist.sample(rng, {}) <= 0.2

    def test_mean(self):
        assert UniformLatency(0.1, 0.3).mean({}) == pytest.approx(0.2)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            UniformLatency(0.3, 0.1)


class TestLogNormalLatency:
    def test_always_positive(self, rng):
        dist = LogNormalLatency(median=0.1, sigma=0.5)
        assert all(dist.sample(rng, {}) > 0 for _ in range(500))

    def test_median_roughly_holds(self, rng):
        dist = LogNormalLatency(median=0.1, sigma=0.3)
        samples = sorted(dist.sample(rng, {}) for _ in range(2001))
        assert samples[1000] == pytest.approx(0.1, rel=0.15)

    def test_mean_formula(self):
        dist = LogNormalLatency(median=0.1, sigma=0.0)
        assert dist.mean({}) == pytest.approx(0.1)

    def test_zero_sigma_is_constant(self, rng):
        dist = LogNormalLatency(median=0.2, sigma=0.0)
        assert dist.sample(rng, {}) == pytest.approx(0.2)

    def test_median_must_be_positive(self):
        with pytest.raises(ValueError):
            LogNormalLatency(median=0.0)


class TestSizeDependentLatency:
    def test_grows_with_size(self, rng):
        dist = SizeDependentLatency(base=0.01, slope=0.001, noise_sigma=0.0)
        small = dist.sample(rng, {"size": 10})
        large = dist.sample(rng, {"size": 1000})
        assert large > small
        assert small == pytest.approx(0.01 + 0.001 * 10)

    def test_missing_param_uses_zero(self, rng):
        dist = SizeDependentLatency(base=0.05, slope=0.001, noise_sigma=0.0)
        assert dist.sample(rng, {}) == pytest.approx(0.05)

    def test_crossover_analytic(self):
        s1 = SizeDependentLatency(base=0.02, slope=2e-5)
        s2 = SizeDependentLatency(base=0.25, slope=1e-6)
        crossing = s1.crossover_with(s2)
        # At the crossing the two deterministic curves agree.
        assert s1.deterministic({"size": crossing}) == pytest.approx(
            s2.deterministic({"size": crossing})
        )

    def test_crossover_parallel_lines_is_none(self):
        s1 = SizeDependentLatency(base=0.1, slope=1e-5)
        s2 = SizeDependentLatency(base=0.2, slope=1e-5)
        assert s1.crossover_with(s2) is None

    def test_crossover_negative_is_none(self):
        # s1 is strictly better everywhere: crossing would be negative.
        s1 = SizeDependentLatency(base=0.1, slope=1e-6)
        s2 = SizeDependentLatency(base=0.2, slope=2e-6)
        assert s2.crossover_with(s1) is None

    def test_noise_multiplies(self, rng):
        dist = SizeDependentLatency(base=0.1, slope=0.0, noise_sigma=0.3)
        samples = [dist.sample(rng, {"size": 0}) for _ in range(500)]
        assert min(samples) > 0
        assert len(set(samples)) > 1


class TestCompositeLatency:
    def test_sums_components(self, rng):
        dist = CompositeLatency(ConstantLatency(0.1), ConstantLatency(0.05))
        assert dist.sample(rng, {}) == pytest.approx(0.15)
        assert dist.mean({}) == pytest.approx(0.15)

    def test_needs_components(self):
        with pytest.raises(ValueError):
            CompositeLatency()
