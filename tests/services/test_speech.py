"""Tests for simulated speech recognition."""

import pytest

from repro.services.speech import (
    SpeechRecognitionService,
    Utterance,
    generate_utterances,
    rover_vote,
    word_error_rate,
)
from repro.services.spellcheck import SpellChecker
from repro.simnet.errors import RemoteServiceError

SENTENCES = [
    "the company announced excellent quarterly results",
    "the market reacted to the announcement with strong gains",
    "investors praised the innovative strategy of the company",
]


@pytest.fixture(scope="module")
def language_model():
    return SpellChecker.from_texts(SENTENCES * 3)


class TestWordErrorRate:
    def test_perfect_transcript(self):
        assert word_error_rate(["a", "b"], ["a", "b"]) == 0.0

    def test_substitution(self):
        assert word_error_rate(["a", "x"], ["a", "b"]) == pytest.approx(0.5)

    def test_deletion_and_insertion(self):
        assert word_error_rate(["a"], ["a", "b"]) == pytest.approx(0.5)
        assert word_error_rate(["a", "x", "b"], ["a", "b"]) == pytest.approx(0.5)

    def test_empty_reference(self):
        assert word_error_rate([], []) == 0.0
        assert word_error_rate(["x"], []) == 1.0


class TestUtteranceGeneration:
    def test_deterministic(self):
        first = generate_utterances(SENTENCES, seed=4)
        second = generate_utterances(SENTENCES, seed=4)
        assert [u.signal_words for u in first] == [u.signal_words for u in second]

    def test_signal_is_corrupted(self):
        utterances = generate_utterances(SENTENCES, seed=4, char_error=0.3)
        corrupted = sum(
            1 for utterance in utterances
            for signal, gold in zip(utterance.signal_words, utterance.gold_words)
            if signal != gold
        )
        assert corrupted > 0

    def test_zero_noise_is_clean(self):
        utterances = generate_utterances(SENTENCES, char_error=0.0, drop_rate=0.0)
        for utterance in utterances:
            assert utterance.signal_words == utterance.gold_words


class TestSpeechService:
    def test_transcription_repairs_noise(self, transport, language_model):
        service = SpeechRecognitionService("asr", transport, language_model,
                                           acuity=1.0)
        utterances = generate_utterances(SENTENCES, seed=4, char_error=0.12,
                                         drop_rate=0.0)
        total_raw = total_decoded = 0.0
        for utterance in utterances:
            response = service.invoke("transcribe",
                                      {"signal": utterance.signal_words})
            total_decoded += word_error_rate(response.value["words"],
                                             utterance.gold_words)
            total_raw += word_error_rate(utterance.signal_words,
                                         utterance.gold_words)
        assert total_decoded < total_raw  # decoding genuinely helps

    def test_acuity_degrades_wer(self, transport, language_model):
        sharp = SpeechRecognitionService("sharp", transport, language_model,
                                         acuity=1.0, seed=1)
        deaf = SpeechRecognitionService("deaf", transport, language_model,
                                        acuity=0.6, seed=1)
        utterances = generate_utterances(SENTENCES * 3, seed=6, char_error=0.05)

        def total_wer(service):
            return sum(
                word_error_rate(
                    service.invoke("transcribe",
                                   {"signal": u.signal_words}).value["words"],
                    u.gold_words)
                for u in utterances
            )

        assert total_wer(deaf) > total_wer(sharp)

    def test_invalid_signal_rejected(self, transport, language_model):
        service = SpeechRecognitionService("asr", transport, language_model)
        with pytest.raises(RemoteServiceError):
            service.invoke("transcribe", {"signal": "not a list"})
        with pytest.raises(RemoteServiceError):
            service.invoke("sing", {})

    def test_latency_scales_with_signal_length(self, transport, language_model):
        from repro.services.base import ServiceRequest

        service = SpeechRecognitionService("asr", transport, language_model)
        params = service.latency_params(
            ServiceRequest("transcribe", {"signal": ["a"] * 40}))
        assert params["size"] == 40.0

    def test_acuity_validated(self, transport, language_model):
        with pytest.raises(ValueError):
            SpeechRecognitionService("asr", transport, language_model, acuity=0.0)


class TestRoverVoting:
    def test_majority_fixes_isolated_errors(self):
        reference = ["the", "market", "gained", "today"]
        hypotheses = [
            ["the", "market", "gained", "today"],
            ["the", "marked", "gained", "today"],
            ["the", "market", "gained", "toady"],
        ]
        assert rover_vote(hypotheses) == reference

    def test_handles_dropped_words(self):
        hypotheses = [
            ["the", "market", "gained", "today"],
            ["market", "gained", "today"],          # leading word lost
            ["the", "market", "gained"],             # trailing word lost
        ]
        assert rover_vote(hypotheses) == ["the", "market", "gained", "today"]

    def test_empty_input(self):
        assert rover_vote([]) == []

    def test_single_hypothesis_passthrough(self):
        assert rover_vote([["a", "b"]]) == ["a", "b"]

    def test_rover_beats_weakest_provider(self, transport, language_model):
        """End to end: the combined transcript has lower WER than the
        weaker provider's own."""
        providers = [
            SpeechRecognitionService("p1", transport, language_model,
                                     acuity=0.99, seed=1),
            SpeechRecognitionService("p2", transport, language_model,
                                     acuity=0.85, seed=2),
            SpeechRecognitionService("p3", transport, language_model,
                                     acuity=0.90, seed=3),
        ]
        utterances = generate_utterances(SENTENCES * 4, seed=8, char_error=0.10)
        per_provider = {service.name: 0.0 for service in providers}
        combined = 0.0
        for utterance in utterances:
            hypotheses = []
            for service in providers:
                words = service.invoke(
                    "transcribe", {"signal": utterance.signal_words}
                ).value["words"]
                hypotheses.append(words)
                per_provider[service.name] += word_error_rate(
                    words, utterance.gold_words)
            combined += word_error_rate(rover_vote(hypotheses),
                                        utterance.gold_words)
        assert combined < max(per_provider.values())
