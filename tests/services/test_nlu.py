"""Tests for the NLU engine and service wrapper."""

import pytest

from repro.data.gazetteer import default_gazetteer
from repro.data.lexicon import default_sentiment_lexicon
from repro.data.taxonomy import default_taxonomy
from repro.services.nlu import ALL_FEATURES, NluEngine, NluService
from repro.simnet.errors import RemoteServiceError


@pytest.fixture(scope="module")
def engine():
    return NluEngine(default_gazetteer(), default_taxonomy(), default_sentiment_lexicon())


class TestEntityExtraction:
    def test_finds_canonical_names(self, engine):
        entities = engine.extract_entities("IBM and Initech are companies.")
        ids = {entity["id"] for entity in entities}
        assert ids == {"C_ibm", "C_initech"}

    def test_finds_aliases(self, engine):
        entities = engine.extract_entities("Big Blue announced a partnership.")
        assert entities[0]["id"] == "C_ibm"

    def test_longest_match_wins(self, engine):
        entities = engine.extract_entities("The United States of America is large.")
        assert len(entities) == 1
        assert entities[0]["id"] == "Q30"
        assert entities[0]["mentions"] == ["United States of America"]

    def test_counts_mentions(self, engine):
        entities = engine.extract_entities("IBM grew. IBM hired. IBM expanded.")
        assert entities[0]["count"] == 3

    def test_short_alias_requires_exact_case(self, engine):
        # "in" must not match India's alias "IN".
        entities = engine.extract_entities("She lives in a small town.")
        assert all(entity["id"] != "Q668" for entity in entities)
        entities = engine.extract_entities("Exports from IN rose sharply.")
        assert any(entity["id"] == "Q668" for entity in entities)

    def test_links_included(self, engine):
        entities = engine.extract_entities("USA")
        assert "dbpedia" in entities[0]["links"]

    def test_no_entities(self, engine):
        assert engine.extract_entities("nothing notable here") == []

    def test_alias_recall_thins_surfaces(self):
        full = NluEngine(default_gazetteer(), default_taxonomy(),
                         default_sentiment_lexicon(), alias_recall=1.0, seed=9)
        thin = NluEngine(default_gazetteer(), default_taxonomy(),
                         default_sentiment_lexicon(), alias_recall=0.3, seed=9)
        assert len(thin._known_surfaces) < len(full._known_surfaces)
        # Canonical names always survive.
        assert "United States of America" in thin._known_surfaces

    def test_heuristic_ner_flags_unknown_capitalized(self):
        engine = NluEngine(default_gazetteer(), default_taxonomy(),
                           default_sentiment_lexicon(), heuristic_ner=True)
        entities = engine.extract_entities("Flurbcorp Devices shipped units to IBM.")
        heuristic = [e for e in entities if not e["disambiguated"]]
        assert any("Flurbcorp" in e["name"] for e in heuristic)
        assert any(e["id"] == "C_ibm" and e["disambiguated"] for e in entities)


class TestKeywordsConceptsSentiment:
    def test_keywords_exclude_stopwords(self, engine):
        keywords = engine.extract_keywords(
            "the the the market market rally rally rally rally")
        texts = [keyword["text"] for keyword in keywords]
        assert "the" not in texts
        assert texts[0] == "rally"
        assert keywords[0]["relevance"] == 1.0

    def test_keywords_empty_text(self, engine):
        assert engine.extract_keywords("the a an") == []

    def test_concepts_triggered(self, engine):
        concepts = engine.extract_concepts(
            "Investors watched the stock market as earnings and revenue grew.")
        names = {concept["concept"] for concept in concepts}
        assert "finance" in names
        top = concepts[0]
        assert top["path"].startswith("/business") or top["path"].startswith("/")

    def test_document_sentiment_positive(self, engine):
        result = engine.document_sentiment("The results were excellent and wonderful.")
        assert result["label"] == "positive"
        assert result["score"] > 0

    def test_document_sentiment_negative(self, engine):
        result = engine.document_sentiment("A terrible, disastrous scandal unfolded.")
        assert result["label"] == "negative"

    def test_document_sentiment_neutral(self, engine):
        result = engine.document_sentiment("The meeting is scheduled for Tuesday.")
        assert result["label"] == "neutral"

    def test_score_clamped(self, engine):
        text = "excellent " * 200
        assert -1.0 <= engine.document_sentiment(text)["score"] <= 1.0

    def test_entity_sentiment_separates_entities(self, engine):
        text = ("IBM delivered excellent wonderful results. "
                "Initech suffered a terrible disaster.")
        sentiment = engine.entity_sentiment(text)
        assert sentiment["C_ibm"]["label"] == "positive"
        assert sentiment["C_initech"]["label"] == "negative"

    def test_entity_sentiment_skips_heuristic_entities(self):
        engine = NluEngine(default_gazetteer(), default_taxonomy(),
                           default_sentiment_lexicon(), heuristic_ner=True)
        sentiment = engine.entity_sentiment("Blorbtech had excellent results.")
        assert all(not key.startswith("unk:") for key in sentiment)


class TestDisambiguation:
    def test_direct_alias(self, engine):
        resolved = engine.disambiguate("USA")
        assert resolved["id"] == "Q30"
        assert resolved["links"]["dbpedia"].endswith("United_States_of_America")

    def test_sentence_scan(self, engine):
        """The paper's example sentence resolves to the US."""
        resolved = engine.disambiguate("The US is a country")
        assert resolved["id"] == "Q30"

    def test_unknown_phrase(self, engine):
        assert engine.disambiguate("the quick brown fox") is None


class TestAnalyze:
    def test_full_analysis_has_all_features(self, engine):
        analysis = engine.analyze("IBM had excellent results in the stock market.")
        for feature in ALL_FEATURES:
            assert feature in analysis

    def test_feature_subset(self, engine):
        analysis = engine.analyze("IBM rose.", features=("entities",))
        assert "entities" in analysis
        assert "sentiment" not in analysis

    def test_unknown_feature_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.analyze("text", features=("entities", "emotions"))


class TestNluService:
    def test_analyze_over_the_wire(self, transport, engine):
        service = NluService("nlu-test", transport, engine)
        response = service.invoke("analyze", {"text": "IBM thrived."})
        assert response.value["entities"][0]["id"] == "C_ibm"

    def test_empty_text_rejected(self, transport, engine):
        service = NluService("nlu-test", transport, engine)
        with pytest.raises(RemoteServiceError) as excinfo:
            service.invoke("analyze", {"text": "   "})
        assert excinfo.value.status == 400

    def test_analyze_url_with_fetcher(self, transport, engine):
        pages = {"http://x/1": "<html><title>T</title><body><p>IBM thrived.</p></body></html>"}
        service = NluService("nlu-test", transport, engine,
                             web_fetcher=pages.get)
        response = service.invoke("analyze_url", {"url": "http://x/1"})
        assert response.value["retrieved_url"] == "http://x/1"
        assert any(e["id"] == "C_ibm" for e in response.value["entities"])

    def test_analyze_url_without_fetcher_rejected(self, transport, engine):
        service = NluService("nlu-test", transport, engine)
        with pytest.raises(RemoteServiceError) as excinfo:
            service.invoke("analyze_url", {"url": "http://x/1"})
        assert excinfo.value.status == 400

    def test_analyze_url_missing_page_404(self, transport, engine):
        service = NluService("nlu-test", transport, engine,
                             web_fetcher=lambda url: None)
        with pytest.raises(RemoteServiceError) as excinfo:
            service.invoke("analyze_url", {"url": "http://gone/"})
        assert excinfo.value.status == 404

    def test_disambiguate_operation(self, transport, engine):
        service = NluService("nlu-test", transport, engine)
        response = service.invoke("disambiguate", {"phrase": "US"})
        assert response.value["resolved"]["id"] == "Q30"

    def test_unknown_operation(self, transport, engine):
        service = NluService("nlu-test", transport, engine)
        with pytest.raises(RemoteServiceError):
            service.invoke("summon", {})

    def test_latency_params_use_text_length(self, transport, engine):
        from repro.services.base import ServiceRequest

        service = NluService("nlu-test", transport, engine)
        params = service.latency_params(ServiceRequest("analyze", {"text": "abcde"}))
        assert params["size"] == 5.0
