"""Tests for cloud storage services."""

import pytest

from repro.services.storage import CloudStoreService
from repro.simnet.errors import RemoteServiceError
from repro.simnet.latency import SizeDependentLatency


@pytest.fixture
def store(transport):
    return CloudStoreService(
        "store", transport,
        latency=SizeDependentLatency(base=0.01, slope=1e-5, noise_sigma=0.0),
    )


class TestOperations:
    def test_put_get_roundtrip(self, store):
        store.invoke("put", {"key": "a", "value": {"n": 1}})
        response = store.invoke("get", {"key": "a"})
        assert response.value["value"] == {"n": 1}

    def test_get_missing_404(self, store):
        with pytest.raises(RemoteServiceError) as excinfo:
            store.invoke("get", {"key": "missing"})
        assert excinfo.value.status == 404

    def test_delete(self, store):
        store.invoke("put", {"key": "a", "value": 1})
        assert store.invoke("delete", {"key": "a"}).value["deleted"] is True
        assert store.invoke("delete", {"key": "a"}).value["deleted"] is False

    def test_exists(self, store):
        assert store.invoke("exists", {"key": "a"}).value["exists"] is False
        store.invoke("put", {"key": "a", "value": 1})
        assert store.invoke("exists", {"key": "a"}).value["exists"] is True

    def test_keys_prefix(self, store):
        for key in ("pkb/a", "pkb/b", "other/c"):
            store.invoke("put", {"key": key, "value": 0})
        response = store.invoke("keys", {"prefix": "pkb/"})
        assert response.value["keys"] == ["pkb/a", "pkb/b"]

    def test_put_requires_key(self, store):
        with pytest.raises(RemoteServiceError):
            store.invoke("put", {"value": 1})

    def test_overwrite(self, store):
        store.invoke("put", {"key": "a", "value": 1})
        store.invoke("put", {"key": "a", "value": 2})
        assert store.invoke("get", {"key": "a"}).value["value"] == 2
        assert store.object_count == 1


class TestSizeDependentLatency:
    def test_put_latency_grows_with_value_size(self, store):
        small = store.invoke("put", {"key": "s", "value": "x"})
        large = store.invoke("put", {"key": "l", "value": "x" * 50_000})
        assert large.latency > small.latency * 5

    def test_get_latency_reflects_stored_size(self, store):
        store.invoke("put", {"key": "s", "value": "x"})
        store.invoke("put", {"key": "l", "value": "x" * 50_000})
        small = store.invoke("get", {"key": "s"})
        large = store.invoke("get", {"key": "l"})
        assert large.latency > small.latency

    def test_crossover_between_two_stores(self, transport):
        fast_small = CloudStoreService(
            "s1", transport,
            latency=SizeDependentLatency(base=0.02, slope=2e-5, noise_sigma=0.0))
        fast_large = CloudStoreService(
            "s2", transport,
            latency=SizeDependentLatency(base=0.25, slope=1e-6, noise_sigma=0.0))
        small_payload = {"key": "k", "value": "x" * 100}
        large_payload = {"key": "k", "value": "x" * 100_000}
        # s1 wins on small objects...
        assert (fast_small.invoke("put", small_payload).latency
                < fast_large.invoke("put", small_payload).latency)
        # ...and s2 wins on large ones — the paper's example.
        assert (fast_small.invoke("put", large_payload).latency
                > fast_large.invoke("put", large_payload).latency)
