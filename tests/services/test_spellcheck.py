"""Tests for the spell checker algorithm and its remote service."""

import pytest

from repro.services.spellcheck import SpellChecker, SpellcheckService
from repro.simnet.errors import RemoteServiceError


@pytest.fixture(scope="module")
def checker():
    return SpellChecker.from_texts(
        [
            "the company announced excellent results this quarter",
            "the market reacted to the announcement with excellent gains",
            "companies announced results",
        ]
    )


class TestSpellChecker:
    def test_known_word_returned_as_is(self, checker):
        assert checker.correct_word("company") == "company"
        assert checker.suggestions("company") == ["company"]

    def test_distance_one_correction(self, checker):
        assert checker.correct_word("compani") == "company"
        assert checker.correct_word("markett") == "market"

    def test_transposition_corrected(self, checker):
        assert checker.correct_word("teh") == "the"

    def test_distance_two_fallback(self, checker):
        assert checker.correct_word("excellnet") == "excellent"

    def test_frequency_breaks_ties(self):
        checker = SpellChecker({"cat": 100, "car": 1})
        # "cak" is distance 1 from both; the frequent word wins.
        assert checker.correct_word("cak") == "cat"

    def test_unfixable_word_returned_lowercase(self, checker):
        assert checker.correct_word("Xqzpfw") == "xqzpfw"

    def test_correct_text_reports_replacements(self, checker):
        result = checker.correct_text("the compay announced excelent results")
        assert ("compay", "company") in result["replacements"]
        assert ("excelent", "excellent") in result["replacements"]

    def test_correct_text_clean_input(self, checker):
        result = checker.correct_text("the company announced results")
        assert result["replacements"] == []

    def test_extra_words_added_to_dictionary(self):
        checker = SpellChecker.from_texts(["plain text"], extra_words=["Kubernetes"])
        assert checker.is_known("kubernetes")

    def test_empty_dictionary_rejected(self):
        with pytest.raises(ValueError):
            SpellChecker({})


class TestSpellcheckService:
    def test_suggest_over_wire(self, transport, checker):
        service = SpellcheckService("spell", transport, checker)
        response = service.invoke("suggest", {"word": "compani"})
        assert response.value["suggestions"][0] == "company"

    def test_correct_over_wire(self, transport, checker):
        service = SpellcheckService("spell", transport, checker)
        response = service.invoke("correct", {"text": "excelent resuls"})
        assert "excellent" in response.value["corrected"]

    def test_costs_money(self, transport, checker):
        service = SpellcheckService("spell", transport, checker, fee_per_call=0.001)
        response = service.invoke("suggest", {"word": "compani"})
        assert response.cost == 0.001

    def test_has_network_latency(self, transport, checker, clock):
        service = SpellcheckService("spell", transport, checker)
        service.invoke("suggest", {"word": "compani"})
        assert clock.now() > 0  # the remote call took simulated time

    def test_missing_word_rejected(self, transport, checker):
        service = SpellcheckService("spell", transport, checker)
        with pytest.raises(RemoteServiceError):
            service.invoke("suggest", {})
