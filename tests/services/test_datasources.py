"""Tests for knowledge, stock and geo data services."""

import pytest

from repro.data.gazetteer import default_gazetteer
from repro.services.datasources import GeoDataService, KnowledgeService, StockDataService
from repro.simnet.errors import RemoteServiceError


@pytest.fixture(scope="module")
def gazetteer():
    return default_gazetteer()


class TestKnowledgeService:
    def test_lookup_by_alias(self, transport, gazetteer):
        service = KnowledgeService("kb", transport, gazetteer, coverage=1.0)
        record = service.invoke("lookup", {"entity": "USA"}).value
        assert record["label"] == "United States of America"
        assert record["uri"].endswith("United_States_of_America")
        assert record["type_value"] == "Country"

    def test_naming_styles_differ(self, transport, gazetteer):
        camel = KnowledgeService("c", transport, gazetteer, naming_style="camel")
        underscore = KnowledgeService("u", transport, gazetteer,
                                      naming_style="underscore")
        pcode = KnowledgeService("p", transport, gazetteer, naming_style="pcode")
        camel_facts = camel.invoke("lookup", {"entity": "USA"}).value["facts"]
        under_facts = underscore.invoke("lookup", {"entity": "USA"}).value["facts"]
        pcode_facts = pcode.invoke("lookup", {"entity": "USA"}).value["facts"]
        assert "populationMillions" in camel_facts
        assert "has_population_millions" in under_facts
        assert any(key.startswith("P") and key[1:].isdigit() for key in pcode_facts)

    def test_property_names_mapping_invertible(self, transport, gazetteer):
        service = KnowledgeService("kb", transport, gazetteer, naming_style="pcode")
        mapping = service.invoke("property_names", {}).value
        assert len(set(mapping.values())) == len(mapping)  # invertible

    def test_unknown_entity_404(self, transport, gazetteer):
        service = KnowledgeService("kb", transport, gazetteer)
        with pytest.raises(RemoteServiceError) as excinfo:
            service.invoke("lookup", {"entity": "Narnia"})
        assert excinfo.value.status == 404

    def test_partial_coverage_misses_some(self, transport, gazetteer):
        service = KnowledgeService("kb", transport, gazetteer, coverage=0.5, seed=7)
        covered = [entity for entity in gazetteer if service.covers(entity.entity_id)]
        assert 0 < len(covered) < len(gazetteer)

    def test_uncovered_entity_404(self, transport, gazetteer):
        service = KnowledgeService("kb", transport, gazetteer, coverage=0.5, seed=7)
        missing = next(entity for entity in gazetteer
                       if not service.covers(entity.entity_id))
        with pytest.raises(RemoteServiceError):
            service.invoke("lookup", {"entity": missing.name})

    def test_entities_of_type(self, transport, gazetteer):
        service = KnowledgeService("kb", transport, gazetteer, coverage=1.0)
        records = service.invoke("entities_of_type", {"type": "Country"}).value["records"]
        assert len(records) == len(gazetteer.entities_of_type("Country"))

    def test_invalid_naming_style(self, transport, gazetteer):
        with pytest.raises(ValueError):
            KnowledgeService("kb", transport, gazetteer, naming_style="kebab")


class TestStockDataService:
    def test_symbols_for_all_companies(self, transport, gazetteer):
        service = StockDataService("stocks", transport, gazetteer)
        assert len(service.symbols) == len(gazetteer.entities_of_type("Company"))

    def test_symbol_derivation(self):
        assert StockDataService.symbol_for("IBM") == "IBM"
        assert StockDataService.symbol_for("Acme Analytics") == "ACME"

    def test_quote_and_history_consistent(self, transport, gazetteer):
        service = StockDataService("stocks", transport, gazetteer)
        symbol = service.symbols[0]
        quote = service.invoke("quote", {"symbol": symbol}).value
        history = service.invoke("history", {"symbol": symbol, "days": 10}).value
        assert quote["price"] == history["closes"][-1]
        assert len(history["closes"]) == 10
        assert history["days"] == sorted(history["days"])

    def test_prices_positive(self, transport, gazetteer):
        service = StockDataService("stocks", transport, gazetteer)
        for symbol in service.symbols:
            history = service.invoke("history", {"symbol": symbol, "days": 365}).value
            assert all(price >= 1.0 for price in history["closes"])

    def test_deterministic_across_instances(self, transport, gazetteer):
        first = StockDataService("s1", transport, gazetteer, seed=17)
        second = StockDataService("s2", transport, gazetteer, seed=17)
        symbol = first.symbols[0]
        assert (first.invoke("quote", {"symbol": symbol}).value["price"]
                == second.invoke("quote", {"symbol": symbol}).value["price"])

    def test_unknown_symbol_404(self, transport, gazetteer):
        service = StockDataService("stocks", transport, gazetteer)
        with pytest.raises(RemoteServiceError):
            service.invoke("quote", {"symbol": "ZZZZ"})

    def test_invalid_days(self, transport, gazetteer):
        service = StockDataService("stocks", transport, gazetteer)
        with pytest.raises(RemoteServiceError):
            service.invoke("history", {"symbol": service.symbols[0], "days": 0})


class TestGeoDataService:
    def test_locate_city(self, transport, gazetteer):
        service = GeoDataService("geo", transport, gazetteer)
        location = service.invoke("locate", {"place": "Tokyo"}).value
        assert -90 <= location["latitude"] <= 90
        assert -180 <= location["longitude"] <= 180

    def test_locate_deterministic(self, transport, gazetteer):
        service = GeoDataService("geo", transport, gazetteer)
        first = service.invoke("locate", {"place": "Paris"}).value
        second = service.invoke("locate", {"place": "Paris"}).value
        assert first == second

    def test_climate_has_twelve_months(self, transport, gazetteer):
        service = GeoDataService("geo", transport, gazetteer)
        climate = service.invoke("climate", {"place": "Berlin"}).value
        assert len(climate["monthly_mean_temperature"]) == 12

    def test_unknown_place_404(self, transport, gazetteer):
        service = GeoDataService("geo", transport, gazetteer)
        with pytest.raises(RemoteServiceError):
            service.invoke("locate", {"place": "Middle Earth"})

    def test_company_is_not_a_place(self, transport, gazetteer):
        service = GeoDataService("geo", transport, gazetteer)
        with pytest.raises(RemoteServiceError):
            service.invoke("locate", {"place": "IBM"})
