"""Tests for image search and data transformation services."""

import pytest

from repro.services.imagesearch import ImageSearchService
from repro.services.transform import TransformService
from repro.simnet.errors import RemoteServiceError


@pytest.fixture
def image_search(transport):
    return ImageSearchService("imgs", transport, mistag_rate=0.2, seed=7)


@pytest.fixture
def transform(transport):
    return TransformService("shape", transport)


class TestImageSearch:
    def test_search_returns_tagged_descriptors(self, image_search):
        results = image_search.invoke("search_images",
                                      {"query": "cat", "limit": 5}).value
        assert results["results"]
        for hit in results["results"]:
            assert len(hit["descriptor"]) == 16
            assert "cat" in [tag.lower() for tag in hit["tags"]]

    def test_limit_respected(self, image_search):
        results = image_search.invoke("search_images",
                                      {"query": "dog", "limit": 3}).value
        assert len(results["results"]) <= 3

    def test_mistagged_images_exist(self, image_search):
        """Some images tagged 'cat' are not really cats — downstream
        classification has real work."""
        results = image_search.invoke("search_images",
                                      {"query": "cat", "limit": 100}).value
        gold = {image.image_id: image.gold_label
                for image in image_search.images}
        wrong = [hit for hit in results["results"]
                 if gold[hit["image_id"]] != "cat"]
        assert wrong  # the noise is really there

    def test_get_image(self, image_search):
        image_id = image_search.images[0].image_id
        record = image_search.invoke("get_image", {"image_id": image_id}).value
        assert record["image_id"] == image_id

    def test_unknown_image_404(self, image_search):
        with pytest.raises(RemoteServiceError):
            image_search.invoke("get_image", {"image_id": "nope"})

    def test_empty_query_rejected(self, image_search):
        with pytest.raises(RemoteServiceError):
            image_search.invoke("search_images", {"query": "  "})


class TestTransformService:
    def test_csv_to_records(self, transform):
        value = transform.invoke("csv_to_records",
                                 {"csv": "a,b\n1,x\n2,y\n"}).value
        assert value["records"] == [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        assert value["columns"] == ["a", "b"]

    def test_records_to_csv_roundtrip(self, transform):
        records = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        csv_text = transform.invoke("records_to_csv",
                                    {"records": records}).value["csv"]
        back = transform.invoke("csv_to_records", {"csv": csv_text}).value
        assert back["records"] == records

    def test_html_to_text(self, transform):
        value = transform.invoke("html_to_text",
                                 {"html": "<p>Hello <b>world</b></p>"}).value
        assert value["text"] == "Hello world"

    def test_extract_numbers(self, transform):
        value = transform.invoke(
            "extract_numbers",
            {"text": "revenue rose 12.5 percent to 340 million, -3 below plan"},
        ).value
        assert value["numbers"] == [12.5, 340, -3]

    def test_extract_dates_validates(self, transform):
        value = transform.invoke(
            "extract_dates",
            {"text": "due 2026-07-08, not 2026-13-40 or 1999-12-31"},
        ).value
        assert value["dates"] == ["2026-07-08", "1999-12-31"]

    def test_bad_inputs_rejected(self, transform):
        with pytest.raises(RemoteServiceError):
            transform.invoke("csv_to_records", {})
        with pytest.raises(RemoteServiceError):
            transform.invoke("records_to_csv", {"records": []})
        with pytest.raises(RemoteServiceError):
            transform.invoke("reticulate", {})
