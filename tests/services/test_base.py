"""Tests for the service framework: cost, failure, quota, invocation."""

import pytest

from repro.services.base import (
    FreeCost,
    NeverFails,
    OutageWindows,
    PerCallCost,
    Quota,
    QuotaExceededError,
    RandomFailures,
    ScriptedFailures,
    ServiceRegistry,
    ServiceRequest,
    SimulatedService,
    SizeBasedCost,
)
from repro.simnet.errors import RemoteServiceError
from repro.simnet.latency import ConstantLatency
from repro.util.errors import NotFoundError
from repro.util.rng import SeededRng


class EchoService(SimulatedService):
    """Minimal concrete service for framework tests."""

    def _handle(self, request: ServiceRequest):
        if request.operation == "fail":
            raise RemoteServiceError(self.name, "requested failure", status=400)
        return {"echo": dict(request.payload)}


@pytest.fixture
def service(transport):
    return EchoService("echo", "test", transport, latency=ConstantLatency(0.05))


class TestCostModels:
    def test_free(self):
        assert FreeCost().cost(ServiceRequest("op")) == 0.0

    def test_per_call(self):
        assert PerCallCost(0.01).cost(ServiceRequest("op")) == 0.01

    def test_per_call_rejects_negative(self):
        with pytest.raises(ValueError):
            PerCallCost(-1.0)

    def test_size_based_grows_with_payload(self):
        model = SizeBasedCost(fee=0.001, per_kilobyte=0.01)
        small = model.cost(ServiceRequest("op", {"v": "x"}))
        large = model.cost(ServiceRequest("op", {"v": "x" * 10_000}))
        assert large > small > 0.001


class TestFailureModels:
    def test_never_fails(self, rng):
        assert not NeverFails().should_fail(0, 0.0, rng)

    def test_random_failures_rate(self, rng):
        model = RandomFailures(0.5)
        outcomes = [model.should_fail(i, 0.0, rng) for i in range(2000)]
        assert 0.4 < sum(outcomes) / 2000 < 0.6

    def test_random_failures_bounds(self):
        with pytest.raises(ValueError):
            RandomFailures(1.5)

    def test_scripted_failures(self, rng):
        model = ScriptedFailures({0, 2})
        assert model.should_fail(0, 0.0, rng)
        assert not model.should_fail(1, 0.0, rng)
        assert model.should_fail(2, 0.0, rng)

    def test_outage_windows(self, rng):
        model = OutageWindows([(10.0, 20.0)])
        assert not model.should_fail(0, 5.0, rng)
        assert model.should_fail(0, 10.0, rng)
        assert model.should_fail(0, 19.9, rng)
        assert not model.should_fail(0, 20.0, rng)

    def test_outage_window_validated(self):
        with pytest.raises(ValueError):
            OutageWindows([(5.0, 1.0)])


class TestQuota:
    def test_consume_until_limit(self):
        quota = Quota(limit=2, window=100.0)
        assert quota.consume(0.0)
        assert quota.consume(1.0)
        assert not quota.consume(2.0)

    def test_window_expiry_frees_slots(self):
        quota = Quota(limit=1, window=10.0)
        assert quota.consume(0.0)
        assert not quota.consume(5.0)
        assert quota.consume(11.0)

    def test_remaining(self):
        quota = Quota(limit=3, window=10.0)
        quota.consume(0.0)
        assert quota.remaining(0.0) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            Quota(limit=0)
        with pytest.raises(ValueError):
            Quota(limit=1, window=0)


class TestSimulatedService:
    def test_invoke_returns_response(self, service):
        response = service.invoke("echo", {"x": 1})
        assert response.value == {"echo": {"x": 1}}
        assert response.latency == pytest.approx(0.05)
        assert response.service_name == "echo"

    def test_latency_charged_to_shared_clock(self, service, clock):
        service.invoke("echo", {})
        assert clock.now() == pytest.approx(0.05)

    def test_cost_billed(self, transport):
        service = EchoService("paid", "test", transport, cost_model=PerCallCost(0.02))
        response = service.invoke("echo", {})
        assert response.cost == 0.02
        assert service.stats.revenue == pytest.approx(0.02)

    def test_failures_injected(self, transport):
        service = EchoService("flaky", "test", transport,
                              failures=ScriptedFailures({0}))
        with pytest.raises(RemoteServiceError):
            service.invoke("echo", {})
        response = service.invoke("echo", {})  # second call succeeds
        assert response.value == {"echo": {}}
        assert service.stats.failures == 1

    def test_quota_enforced(self, transport):
        service = EchoService("limited", "test", transport,
                              quota=Quota(limit=1, window=1000.0))
        service.invoke("echo", {})
        with pytest.raises(QuotaExceededError):
            service.invoke("echo", {})
        assert service.stats.quota_rejections == 1

    def test_default_latency_params_expose_size(self, service):
        params = service.latency_params(ServiceRequest("echo", {"v": "abc"}))
        assert params["size"] > 0

    def test_application_error_propagates(self, service):
        with pytest.raises(RemoteServiceError) as excinfo:
            service.invoke("fail", {})
        assert excinfo.value.status == 400

    def test_stats_count_calls(self, service):
        service.invoke("echo", {})
        service.invoke("echo", {})
        assert service.stats.calls == 2


class TestServiceRegistry:
    def test_register_and_get(self, service):
        registry = ServiceRegistry([service])
        assert registry.get("echo") is service
        assert "echo" in registry
        assert len(registry) == 1

    def test_duplicate_rejected(self, service):
        registry = ServiceRegistry([service])
        with pytest.raises(ValueError):
            registry.register(service)

    def test_unknown_service(self):
        with pytest.raises(NotFoundError):
            ServiceRegistry().get("ghost")

    def test_services_of_kind(self, transport):
        first = EchoService("a", "kind1", transport)
        second = EchoService("b", "kind1", transport)
        third = EchoService("c", "kind2", transport)
        registry = ServiceRegistry([first, second, third])
        assert {service.name for service in registry.services_of_kind("kind1")} == {"a", "b"}
        assert registry.kinds() == {"kind1", "kind2"}
