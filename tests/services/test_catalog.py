"""Tests for the assembled world."""

from repro.services.catalog import build_world


class TestBuildWorld:
    def test_all_kinds_present(self, world):
        kinds = world.registry.kinds()
        assert {"nlu", "search", "web", "knowledge", "storage",
                "marketdata", "geodata", "spellcheck", "vision"} <= kinds

    def test_three_providers_per_competitive_kind(self, world):
        for kind in ("nlu", "search", "knowledge", "storage", "vision"):
            assert len(world.services_of_kind(kind)) == 3

    def test_shared_clock(self, world):
        clocks = {id(service.transport.clock) for service in world.registry}
        assert len(clocks) == 1
        assert world.clock is world.transport.clock

    def test_deterministic_construction(self):
        first = build_world(seed=9, corpus_size=10)
        second = build_world(seed=9, corpus_size=10)
        assert [doc.text for doc in first.corpus] == [doc.text for doc in second.corpus]
        response_a = first.service("lexica-prime").invoke(
            "analyze", {"text": first.corpus.documents[0].text})
        response_b = second.service("lexica-prime").invoke(
            "analyze", {"text": second.corpus.documents[0].text})
        assert response_a.value == response_b.value
        assert response_a.latency == response_b.latency

    def test_nlu_quality_ordering(self):
        """The premium provider really is better than the budget one."""
        world = build_world(seed=42, corpus_size=60)

        def recall(provider_name: str) -> float:
            provider = world.service(provider_name)
            found_total = gold_total = 0
            for doc in world.corpus.documents:
                analysis = provider.invoke(
                    "analyze", {"text": doc.text, "features": ["entities"]}
                ).value
                found = {entity["id"] for entity in analysis["entities"]
                         if entity["disambiguated"]}
                gold = set(doc.gold_entities)
                found_total += len(found & gold)
                gold_total += len(gold)
            return found_total / gold_total

        assert recall("lexica-prime") > recall("wordsmith-lite")

    def test_web_serves_corpus(self, world):
        doc = world.corpus.documents[0]
        response = world.web.invoke("fetch", {"url": doc.url})
        assert response.value["html"] == doc.html

    def test_nlu_latency_ordering(self, world):
        """Premium is slower (and pricier) than budget, as configured."""
        text = world.corpus.documents[0].text
        premium = [world.service("lexica-prime").invoke("analyze", {"text": text}).latency
                   for _ in range(10)]
        budget = [world.service("wordsmith-lite").invoke("analyze", {"text": text}).latency
                  for _ in range(10)]
        assert sum(premium) / 10 > sum(budget) / 10
