"""Tests for the simulated web and search engines."""

import pytest

from repro.data.corpus import generate_corpus
from repro.services.search import SearchEngineService, WebService
from repro.simnet.errors import RemoteServiceError


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(size=40, seed=5)


@pytest.fixture
def web(transport, corpus):
    return WebService("web", transport, corpus)


@pytest.fixture
def engine(transport, corpus):
    return SearchEngineService("engine", transport, corpus, coverage=1.0)


class TestWebService:
    def test_fetch_known_url(self, web, corpus):
        doc = corpus.documents[0]
        response = web.invoke("fetch", {"url": doc.url})
        assert response.value["html"] == doc.html
        assert response.value["timestamp"] == doc.timestamp

    def test_fetch_unknown_url_404(self, web):
        with pytest.raises(RemoteServiceError) as excinfo:
            web.invoke("fetch", {"url": "http://missing.example/x"})
        assert excinfo.value.status == 404

    def test_fetcher_callable(self, web, corpus):
        fetch = web.fetcher()
        doc = corpus.documents[1]
        assert fetch(doc.url) == doc.html
        assert fetch("http://missing/") is None

    def test_unknown_operation(self, web):
        with pytest.raises(RemoteServiceError):
            web.invoke("crawl", {})


class TestSearchEngine:
    def test_full_coverage_indexes_everything(self, engine, corpus):
        assert engine.crawl_size == len(corpus)

    def test_search_returns_ranked_results(self, engine, corpus):
        doc = corpus.documents[0]
        response = engine.invoke("search", {"query": doc.title, "limit": 5})
        results = response.value["results"]
        assert results
        assert [r["rank"] for r in results] == list(range(1, len(results) + 1))
        scores = [r["score"] for r in results]
        assert scores == sorted(scores, reverse=True)

    def test_result_fields(self, engine, corpus):
        doc = corpus.documents[0]
        response = engine.invoke("search", {"query": doc.title, "limit": 3})
        hit = response.value["results"][0]
        assert set(hit) >= {"rank", "url", "title", "snippet", "score", "doc_type"}
        assert hit["snippet"]

    def test_limit_respected(self, engine):
        response = engine.invoke("search", {"query": "thrives results", "limit": 2})
        assert len(response.value["results"]) <= 2

    def test_news_only_filter(self, engine):
        response = engine.invoke(
            "search", {"query": "thrives results announced", "limit": 50,
                       "news_only": True}
        )
        assert response.value["results"]
        assert all(hit["doc_type"] == "news" for hit in response.value["results"])

    def test_empty_query_rejected(self, engine):
        with pytest.raises(RemoteServiceError):
            engine.invoke("search", {"query": "  "})

    def test_no_results_for_gibberish(self, engine):
        response = engine.invoke("search", {"query": "zzzqqqxxx"})
        assert response.value["results"] == []

    def test_coverage_shrinks_crawl(self, transport, corpus):
        partial = SearchEngineService("partial", transport, corpus,
                                      coverage=0.5, seed=3)
        assert 0 < partial.crawl_size < len(corpus)

    def test_coverage_deterministic_per_seed(self, transport, corpus):
        first = SearchEngineService("e1", transport, corpus, coverage=0.5, seed=3)
        second = SearchEngineService("e2", transport, corpus, coverage=0.5, seed=3)
        assert first._crawled.keys() == second._crawled.keys()

    def test_engines_with_different_seeds_crawl_differently(self, transport, corpus):
        first = SearchEngineService("e1", transport, corpus, coverage=0.6, seed=1)
        second = SearchEngineService("e2", transport, corpus, coverage=0.6, seed=2)
        assert first._crawled.keys() != second._crawled.keys()

    def test_coverage_validated(self, transport, corpus):
        with pytest.raises(ValueError):
            SearchEngineService("bad", transport, corpus, coverage=0.0)

    def test_results_only_from_own_crawl(self, transport, corpus):
        partial = SearchEngineService("partial", transport, corpus,
                                      coverage=0.3, seed=3)
        crawled_urls = set(partial._crawled.values())
        response = partial.invoke("search", {"query": "thrives results announced",
                                             "limit": 50})
        assert all(hit["url"] in crawled_urls for hit in response.value["results"])
