"""Tests for the simulated visual recognition services."""

import pytest

from repro.services.vision import (
    DESCRIPTOR_DIMS,
    VisualRecognitionService,
    class_prototypes,
    generate_images,
)
from repro.simnet.errors import RemoteServiceError


class TestImageGeneration:
    def test_deterministic(self):
        first = generate_images(count=10, seed=3)
        second = generate_images(count=10, seed=3)
        assert [img.descriptor for img in first] == [img.descriptor for img in second]

    def test_descriptor_dimensions(self):
        for image in generate_images(count=5):
            assert len(image.descriptor) == DESCRIPTOR_DIMS

    def test_prototypes_stable(self):
        assert class_prototypes() == class_prototypes()


class TestClassification:
    def test_full_acuity_is_accurate(self, transport):
        service = VisualRecognitionService("v", transport, visible_dims=16)
        images = generate_images(count=60, noise=0.3, seed=9)
        correct = 0
        for image in images:
            result = service.invoke("classify", {"descriptor": image.descriptor})
            if result.value["classes"][0]["label"] == image.gold_label:
                correct += 1
        assert correct / len(images) > 0.9

    def test_fewer_dims_lower_accuracy(self, transport):
        sharp = VisualRecognitionService("sharp", transport, visible_dims=16)
        blurry = VisualRecognitionService("blurry", transport, visible_dims=2)
        images = generate_images(count=80, noise=0.5, seed=10)

        def accuracy(service):
            hits = 0
            for image in images:
                top = service.invoke(
                    "classify", {"descriptor": image.descriptor}
                ).value["classes"][0]["label"]
                hits += top == image.gold_label
            return hits / len(images)

        assert accuracy(sharp) > accuracy(blurry)

    def test_confidences_sum_near_one_over_top5(self, transport):
        service = VisualRecognitionService("v", transport)
        image = generate_images(count=1, seed=1)[0]
        classes = service.invoke("classify", {"descriptor": image.descriptor}).value["classes"]
        assert len(classes) == 5
        assert 0.5 <= sum(c["confidence"] for c in classes) <= 1.001
        confidences = [c["confidence"] for c in classes]
        assert confidences == sorted(confidences, reverse=True)

    def test_wrong_descriptor_size_rejected(self, transport):
        service = VisualRecognitionService("v", transport)
        with pytest.raises(RemoteServiceError):
            service.invoke("classify", {"descriptor": [0.0] * 3})

    def test_visible_dims_validated(self, transport):
        with pytest.raises(ValueError):
            VisualRecognitionService("v", transport, visible_dims=0)
