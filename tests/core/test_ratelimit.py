"""Tests for the token-bucket rate limiter."""

import pytest

from repro.core.ratelimit import (
    RateLimitExceededError,
    ServiceRateLimiter,
    TokenBucket,
)
from repro.util.clock import ManualClock


@pytest.fixture
def clock():
    return ManualClock()


class TestTokenBucket:
    def test_burst_available_immediately(self, clock):
        bucket = TokenBucket(clock, rate=1.0, burst=3)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refills_over_time(self, clock):
        bucket = TokenBucket(clock, rate=2.0, burst=1)
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(0.5)  # 2/s * 0.5s = 1 token
        assert bucket.try_acquire()

    def test_refill_capped_at_burst(self, clock):
        bucket = TokenBucket(clock, rate=10.0, burst=2)
        clock.advance(100.0)
        assert bucket.available == pytest.approx(2.0)

    def test_acquire_waits_on_the_clock(self, clock):
        bucket = TokenBucket(clock, rate=1.0, burst=1)
        assert bucket.acquire() == 0.0
        waited = bucket.acquire()
        assert waited == pytest.approx(1.0)
        assert clock.now() == pytest.approx(1.0)
        assert bucket.stats.throttled == 1
        assert bucket.stats.total_wait == pytest.approx(1.0)

    def test_sustained_rate_is_honoured(self, clock):
        bucket = TokenBucket(clock, rate=5.0, burst=1)
        start = clock.now()
        for _ in range(11):
            bucket.acquire()
        elapsed = clock.now() - start
        # 10 post-burst permits at 5/s = 2 seconds.
        assert elapsed == pytest.approx(2.0)

    def test_acquire_or_raise(self, clock):
        bucket = TokenBucket(clock, rate=1.0, burst=1, service="svc")
        bucket.acquire_or_raise()
        with pytest.raises(RateLimitExceededError) as excinfo:
            bucket.acquire_or_raise()
        assert excinfo.value.wait_needed == pytest.approx(1.0)
        assert clock.now() == 0.0  # never waited

    def test_validation(self, clock):
        with pytest.raises(ValueError):
            TokenBucket(clock, rate=0.0)
        with pytest.raises(ValueError):
            TokenBucket(clock, rate=1.0, burst=0)


class TestServiceRateLimiter:
    def test_per_service_buckets(self, clock):
        limiter = ServiceRateLimiter(clock)
        limiter.configure("a", rate=1.0, burst=1)
        assert limiter.acquire("a") == 0.0
        assert limiter.acquire("a") == pytest.approx(1.0)

    def test_unconfigured_service_is_unlimited(self, clock):
        limiter = ServiceRateLimiter(clock)
        for _ in range(100):
            assert limiter.acquire("anything") == 0.0
        assert clock.now() == 0.0

    def test_stays_under_server_quota(self, world, clock):
        """End to end: a bucket sized to the server quota means the
        client never sees a 429."""
        from repro import RichClient
        from repro.services.base import Quota, QuotaExceededError

        # 10 calls per 100 simulated seconds.
        world.service("glotta").quota = Quota(limit=10, window=100.0)
        client = RichClient(world.registry)
        limiter = ServiceRateLimiter(world.clock)
        limiter.configure("glotta", rate=10 / 100.0, burst=1)
        completed = 0
        for index in range(25):
            limiter.acquire("glotta")
            client.invoke("glotta", "analyze",
                          {"text": f"document number {index} looks excellent"},
                          use_cache=False)
            completed += 1
        assert completed == 25  # zero QuotaExceededError raised
        client.close()
