"""Tests for document-set and multi-service aggregation."""

import pytest

from repro.core.aggregation import DocumentSetAggregator, MultiServiceCombiner


def analysis(entities=(), keywords=(), concepts=(), sentiment=None,
             entity_sentiment=None):
    return {
        "entities": [
            {"id": eid, "name": name, "type": etype, "count": count,
             "disambiguated": True}
            for eid, name, etype, count in entities
        ],
        "keywords": [{"text": text, "count": count, "relevance": 1.0}
                     for text, count in keywords],
        "concepts": [{"concept": concept, "path": f"/{concept}", "relevance": 1.0}
                     for concept in concepts],
        "sentiment": sentiment or {},
        "entity_sentiment": entity_sentiment or {},
    }


class TestDocumentSetAggregator:
    def test_entity_frequencies_across_documents(self):
        aggregator = DocumentSetAggregator()
        aggregator.add_analysis(analysis(entities=[("e1", "IBM", "Company", 3)]))
        aggregator.add_analysis(analysis(entities=[("e1", "IBM", "Company", 2),
                                                   ("e2", "Acme", "Company", 1)]))
        top = aggregator.top_entities()
        assert top[0].entity_id == "e1"
        assert top[0].document_count == 2
        assert top[0].total_mentions == 5
        assert top[1].document_count == 1

    def test_keyword_totals(self):
        aggregator = DocumentSetAggregator()
        aggregator.add_analysis(analysis(keywords=[("growth", 4)]))
        aggregator.add_analysis(analysis(keywords=[("growth", 2), ("loss", 1)]))
        top = aggregator.top_keywords()
        assert top[0] == ("growth", 6, 2)
        assert ("loss", 1, 1) in top

    def test_concept_profile(self):
        aggregator = DocumentSetAggregator()
        aggregator.add_analysis(analysis(concepts=["finance"]))
        aggregator.add_analysis(analysis(concepts=["finance", "politics"]))
        assert aggregator.concept_profile() == {"finance": 2, "politics": 1}

    def test_entity_sentiment_aggregation(self):
        aggregator = DocumentSetAggregator()
        aggregator.add_analysis(analysis(
            entities=[("e1", "IBM", "Company", 1)],
            entity_sentiment={"e1": {"score": 0.8, "label": "positive"}},
        ))
        aggregator.add_analysis(analysis(
            entities=[("e1", "IBM", "Company", 1)],
            entity_sentiment={"e1": {"score": 0.4, "label": "positive"}},
        ))
        report = aggregator.entity_sentiment_report()
        assert report[0]["mean_sentiment"] == pytest.approx(0.6)
        assert report[0]["favorability"] == "positive"

    def test_favorability_labels(self):
        aggregate = DocumentSetAggregator()
        aggregate.add_analysis(analysis(
            entities=[("e1", "X", "T", 1)],
            entity_sentiment={"e1": {"score": -0.5, "label": "negative"}},
        ))
        assert aggregate.entity_sentiment_report()[0]["favorability"] == "negative"

    def test_entity_without_sentiment_is_neutral(self):
        aggregator = DocumentSetAggregator()
        aggregator.add_analysis(analysis(entities=[("e1", "X", "T", 1)]))
        row = aggregator.entity_sentiment_report()[0]
        assert row["mean_sentiment"] is None
        assert row["favorability"] == "neutral"

    def test_document_sentiment_mean(self):
        aggregator = DocumentSetAggregator()
        aggregator.add_analysis(analysis(sentiment={"score": 0.5}))
        aggregator.add_analysis(analysis(sentiment={"score": -0.1}))
        assert aggregator.mean_document_sentiment() == pytest.approx(0.2)
        assert aggregator.documents_analyzed == 2

    def test_non_disambiguated_entities_skipped(self):
        aggregator = DocumentSetAggregator()
        aggregator.add_analysis({
            "entities": [{"id": "unk:x", "name": "X", "type": "Unknown",
                          "count": 1, "disambiguated": False}],
        })
        assert aggregator.top_entities() == []

    def test_empty_aggregator(self):
        aggregator = DocumentSetAggregator()
        assert aggregator.top_entities() == []
        assert aggregator.top_keywords() == []
        assert aggregator.mean_document_sentiment() is None


class TestMultiServiceCombiner:
    def test_confidence_is_agreement_fraction(self):
        analyses = {
            "p1": analysis(entities=[("e1", "IBM", "Company", 2),
                                     ("e2", "Acme", "Company", 1)]),
            "p2": analysis(entities=[("e1", "IBM", "Company", 1)]),
            "p3": analysis(entities=[("e1", "IBM", "Company", 3)]),
        }
        combined = MultiServiceCombiner.combine_entities(analyses)
        by_id = {entry["id"]: entry for entry in combined}
        assert by_id["e1"]["confidence"] == pytest.approx(1.0)
        assert by_id["e2"]["confidence"] == pytest.approx(1 / 3, abs=1e-4)
        assert by_id["e1"]["count"] == 3  # max across providers
        assert combined[0]["id"] == "e1"  # highest confidence first

    def test_min_confidence_filters(self):
        analyses = {
            "p1": analysis(entities=[("e1", "IBM", "Company", 1)]),
            "p2": analysis(),
        }
        assert MultiServiceCombiner.combine_entities(analyses, min_confidence=0.6) == []

    def test_heuristic_entities_ignored(self):
        analyses = {
            "p1": {"entities": [{"id": "unk:x", "name": "X", "type": "Unknown",
                                 "count": 1, "disambiguated": False}]},
        }
        assert MultiServiceCombiner.combine_entities(analyses) == []

    def test_empty_input(self):
        assert MultiServiceCombiner.combine_entities({}) == []

    def test_combined_entity_sentiment_averages(self):
        analyses = {
            "p1": analysis(entity_sentiment={"e1": {"score": 0.6}}),
            "p2": analysis(entity_sentiment={"e1": {"score": 0.2}}),
        }
        combined = MultiServiceCombiner.combine_entity_sentiment(analyses)
        assert combined["e1"]["score"] == pytest.approx(0.4)
        assert combined["e1"]["providers"] == 2
        assert combined["e1"]["label"] == "positive"


class TestGoldScoring:
    def test_perfect_match(self):
        scores = MultiServiceCombiner.score_against_gold(
            analysis(entities=[("e1", "IBM", "Company", 1)]), ["e1"])
        assert scores == {"precision": 1.0, "recall": 1.0, "f1": 1.0}

    def test_partial_recall(self):
        scores = MultiServiceCombiner.score_against_gold(
            analysis(entities=[("e1", "IBM", "Company", 1)]), ["e1", "e2"])
        assert scores["recall"] == pytest.approx(0.5)
        assert scores["precision"] == 1.0

    def test_false_positive_hits_precision(self):
        scores = MultiServiceCombiner.score_against_gold(
            analysis(entities=[("e1", "IBM", "Company", 1),
                               ("e9", "Wrong", "Company", 1)]), ["e1"])
        assert scores["precision"] == pytest.approx(0.5)

    def test_empty_analysis(self):
        scores = MultiServiceCombiner.score_against_gold(analysis(), ["e1"])
        assert scores["f1"] == 0.0

    def test_sentiment_accuracy(self):
        result = MultiServiceCombiner.score_against_gold(
            analysis(
                entities=[("e1", "IBM", "Company", 1)],
                entity_sentiment={"e1": {"score": 0.5}, "e2": {"score": 0.5}},
            ),
            ["e1", "e2"],
            gold_sentiment={"e1": 1, "e2": -1, "e3": 0},
        )
        assert result["sentiment_accuracy"] == pytest.approx(0.5)
