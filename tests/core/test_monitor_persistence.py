"""Tests for monitor history persistence."""

import pytest

from repro.core.latency import LatencyPredictor
from repro.core.monitoring import InvocationRecord, ServiceMonitor
from repro.stores.kvstore import FileKeyValueStore, InMemoryKeyValueStore


def seeded_monitor():
    monitor = ServiceMonitor()
    for size in (100, 200, 400, 800, 1600):
        monitor.record(InvocationRecord(
            "store", "put", 0.0, 0.01 + 1e-5 * size, 0.001, True,
            latency_params={"size": float(size)}))
    monitor.record(InvocationRecord("store", "put", 1.0, None, 0.0, False,
                                    error="boom"))
    monitor.rate_quality("store", 0.8)
    return monitor


class TestSaveLoad:
    def test_roundtrip_preserves_statistics(self):
        original = seeded_monitor()
        store = InMemoryKeyValueStore()
        saved = original.save_to(store)
        assert saved == 6

        restored = ServiceMonitor()
        loaded = restored.load_from(store)
        assert loaded == 6
        assert restored.mean_latency("store") == original.mean_latency("store")
        assert restored.availability("store") == original.availability("store")
        assert restored.mean_quality("store") == pytest.approx(0.8)
        assert restored.latency_observations("store", "size") == \
            original.latency_observations("store", "size")

    def test_restored_history_drives_prediction(self):
        store = InMemoryKeyValueStore()
        seeded_monitor().save_to(store)
        restored = ServiceMonitor()
        restored.load_from(store)
        predictor = LatencyPredictor(restored)
        assert predictor.predict("store", {"size": 1000}) == pytest.approx(
            0.01 + 1e-5 * 1000, rel=1e-6)

    def test_file_backed_roundtrip(self, tmp_path):
        store = FileKeyValueStore(tmp_path / "monitor.json")
        seeded_monitor().save_to(store)
        restored = ServiceMonitor()
        assert restored.load_from(FileKeyValueStore(tmp_path / "monitor.json")) == 6

    def test_load_from_empty_store(self):
        assert ServiceMonitor().load_from(InMemoryKeyValueStore()) == 0

    def test_client_restart_scenario(self, world):
        """A restarted client ranks correctly from the persisted history."""
        from repro import RichClient, Weights

        first = RichClient(world.registry)
        for provider in ("lexica-prime", "wordsmith-lite"):
            for doc in world.corpus.documents[:5]:
                first.invoke(provider, "analyze", {"text": doc.text},
                             use_cache=False)
        store = InMemoryKeyValueStore()
        first.monitor.save_to(store)
        first.close()

        reborn = RichClient(world.registry, monitor=ServiceMonitor())
        reborn.monitor.load_from(store)
        ranked = reborn.rank_services(
            "nlu", weights=Weights(response_time=1, cost=0, quality=0))
        assert ranked[0][0] == "wordsmith-lite"  # knowledge survived restart
        reborn.close()
