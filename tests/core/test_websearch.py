"""Tests for the web-search → fetch → store → analyze pipeline."""

import pytest

from repro.core.websearch import DocumentArchive, WebSearchAnalyzer


@pytest.fixture
def analyzer(client):
    return WebSearchAnalyzer(client)


class TestDocumentArchive:
    def test_store_and_get_document(self):
        archive = DocumentArchive()
        archive.store_document("http://x/1", "<html>one</html>", fetched_at=5.0)
        document = archive.get_document("http://x/1")
        assert document["html"] == "<html>one</html>"
        assert document["fetched_at"] == 5.0
        assert archive.has_document("http://x/1")
        assert not archive.has_document("http://x/2")

    def test_document_urls(self):
        archive = DocumentArchive()
        archive.store_document("http://x/b", "b", 0.0)
        archive.store_document("http://x/a", "a", 0.0)
        assert set(archive.document_urls()) == {"http://x/a", "http://x/b"}

    def test_searches_record_query_and_time(self):
        """'store all of the documents from a particular Web search along
        with the query itself and the time the query was made'."""
        archive = DocumentArchive()
        archive.store_search("q1", "engine", 10.0, ["http://x/1"])
        archive.store_search("q1", "engine", 20.0, ["http://x/2"])
        archive.store_search("q2", "engine", 15.0, [])
        searches = archive.searches("q1")
        assert [record["timestamp"] for record in searches] == [10.0, 20.0]
        assert searches[0]["result_urls"] == ["http://x/1"]
        assert len(archive.searches()) == 3

    def test_export_to_directory(self, tmp_path):
        archive = DocumentArchive()
        archive.store_document("http://x/a", "<html>a</html>", 0.0)
        count = archive.export_to_directory(tmp_path / "dump")
        assert count == 1
        files = list((tmp_path / "dump").glob("*.html"))
        assert len(files) == 1
        assert files[0].read_text() == "<html>a</html>"


class TestSearch:
    def test_search_archives_query(self, analyzer):
        result = analyzer.search("excellent results", engine="goggle", limit=5)
        assert result.value["results"]
        searches = analyzer.archive.searches("excellent results")
        assert len(searches) == 1
        assert searches[0]["engine"] == "goggle"

    def test_search_uses_best_engine_by_default(self, analyzer):
        result = analyzer.search("excellent results")
        assert result.service in ("goggle", "bung", "yahu")

    def test_multi_engine_union_covers_more(self, analyzer, world):
        query = "thrives announced results"
        single = analyzer.search(query, engine="yahu", limit=10).value["results"]
        merged = analyzer.multi_engine_search(query, limit=10)
        assert len(merged) >= len(single)
        assert len(merged) == len(set(merged))  # deduplicated

    def test_news_only_flows_through(self, analyzer, world):
        result = analyzer.search("thrives announced results", engine="goggle",
                                 limit=20, news_only=True)
        assert all(hit["doc_type"] == "news" for hit in result.value["results"])


class TestFetch:
    def test_fetch_stores_in_archive(self, analyzer, world):
        url = world.corpus.documents[0].url
        html = analyzer.fetch(url)
        assert html == world.corpus.documents[0].html
        assert analyzer.archive.has_document(url)

    def test_refetch_served_from_archive(self, analyzer, world, client):
        url = world.corpus.documents[0].url
        analyzer.fetch(url)
        web_calls_before = client.monitor.call_count("worldwide-web")
        analyzer.fetch(url)
        assert client.monitor.call_count("worldwide-web") == web_calls_before


class TestAnalyze:
    def test_analyze_url_prefers_service_side_fetch(self, analyzer, world):
        url = world.corpus.documents[0].url
        analysis = analyzer.analyze_url(url, "lexica-prime")
        assert analysis.get("retrieved_url") == url

    def test_analyze_url_falls_back_to_local_fetch(self, analyzer, world):
        """wordsmith-lite cannot fetch URLs; the SDK fetches and strips."""
        url = world.corpus.documents[0].url
        analysis = analyzer.analyze_url(url, "wordsmith-lite")
        assert "retrieved_url" not in analysis
        assert "entities" in analysis
        assert analyzer.archive.has_document(url)

    def test_analyze_search_results_aggregates(self, analyzer, world):
        aggregator = analyzer.analyze_search_results(
            "excellent results announced", limit=5, nlu_service="lexica-prime")
        assert aggregator.documents_analyzed == len(
            analyzer.archive.searches()[0]["result_urls"])
        assert aggregator.top_entities()

    def test_analyze_texts(self, analyzer):
        aggregator = analyzer.analyze_texts(
            ["IBM thrived with excellent results.",
             "Initech collapsed after a terrible scandal."],
            nlu_service="lexica-prime")
        assert aggregator.documents_analyzed == 2
        ids = {agg.entity_id for agg in aggregator.top_entities()}
        assert {"C_ibm", "C_initech"} <= ids

    def test_analyze_directory_offline(self, analyzer, world, tmp_path, client):
        # Archive a couple of pages, export, then re-analyze from disk.
        urls = [doc.url for doc in world.corpus.documents[:3]]
        for url in urls:
            analyzer.fetch(url)
        analyzer.archive.export_to_directory(tmp_path / "dump")
        aggregator = analyzer.analyze_directory(tmp_path / "dump",
                                                nlu_service="lexica-prime")
        assert aggregator.documents_analyzed == 3
