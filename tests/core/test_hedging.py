"""Tests for hedged requests (tail-latency mitigation)."""

import pytest

from repro import RichClient, build_world
from repro.core.hedging import HedgedInvoker
from repro.core.ranking import Weights
from repro.util.clock import RealClock

TIME_SCALE = 0.02


@pytest.fixture
def rt_world():
    return build_world(seed=59, corpus_size=20,
                       clock=RealClock(time_scale=TIME_SCALE))


@pytest.fixture
def rt_client(rt_world):
    client = RichClient(rt_world.registry)
    yield client
    client.close()


def warm(client, world, calls=8):
    text = world.corpus.documents[0].text
    for provider in ("lexica-prime", "glotta", "wordsmith-lite"):
        for _ in range(calls):
            client.invoke(provider, "analyze", {"text": text}, use_cache=False)


class TestDeadlines:
    def test_default_deadline_without_history(self, rt_client):
        invoker = HedgedInvoker(rt_client, default_deadline=0.42)
        assert invoker.deadline_for("lexica-prime") == 0.42

    def test_deadline_from_percentile(self, rt_world, rt_client):
        warm(rt_client, rt_world)
        invoker = HedgedInvoker(rt_client, deadline_percentile=0.95)
        deadline = invoker.deadline_for("lexica-prime")
        latencies = rt_client.monitor.latencies("lexica-prime")
        assert min(latencies) <= deadline <= max(latencies) + 1e-9

    def test_percentile_validated(self, rt_client):
        with pytest.raises(ValueError):
            HedgedInvoker(rt_client, deadline_percentile=1.0)


class TestHedgedInvocation:
    def test_fast_primary_never_hedges(self, rt_world, rt_client):
        warm(rt_client, rt_world)
        invoker = HedgedInvoker(
            rt_client, default_deadline=10.0,
            weights=Weights(response_time=1, cost=0, quality=0))
        # Deadline is far above any latency: the primary always wins.
        invoker.deadline_for = lambda service: 10.0  # type: ignore[assignment]
        result = invoker.invoke("nlu", "analyze",
                                {"text": "Globex thrives."}, use_cache=False)
        assert result.value["sentiment"]
        assert invoker.stats.hedges_fired == 0
        assert invoker.stats.primary_wins == 1

    def test_slow_primary_fires_hedge(self, rt_world, rt_client):
        warm(rt_client, rt_world)
        invoker = HedgedInvoker(rt_client,
                                weights=Weights(response_time=1, cost=0,
                                                quality=0))
        invoker.deadline_for = lambda service: 0.0001  # type: ignore[assignment]
        result = invoker.invoke("nlu", "analyze",
                                {"text": "Globex thrives today."},
                                use_cache=False)
        assert result.value["entities"] is not None
        assert invoker.stats.hedges_fired == 1
        assert invoker.stats.hedge_wins + invoker.stats.primary_wins == 1

    def test_hedge_survives_primary_failure(self, rt_world, rt_client):
        from repro.services.base import ScriptedFailures

        warm(rt_client, rt_world)
        weights = Weights(response_time=1, cost=0, quality=0)
        ranked = [name for name, _ in rt_client.rank_services("nlu",
                                                              weights=weights)]
        rt_world.service(ranked[0]).failures = ScriptedFailures(set(range(50)))
        invoker = HedgedInvoker(rt_client, weights=weights)
        invoker.deadline_for = lambda service: 0.0001  # type: ignore[assignment]
        result = invoker.invoke("nlu", "analyze",
                                {"text": "Globex gains again."},
                                use_cache=False)
        assert result.service != ranked[0]

    def test_unknown_kind_rejected(self, rt_client):
        with pytest.raises(ValueError):
            HedgedInvoker(rt_client).invoke("teleport", "op", {})

    def test_stats_accumulate(self, rt_world, rt_client):
        warm(rt_client, rt_world, calls=4)
        invoker = HedgedInvoker(rt_client, default_deadline=10.0)
        invoker.deadline_for = lambda service: 10.0  # type: ignore[assignment]
        for index in range(3):
            invoker.invoke("nlu", "analyze",
                           {"text": f"Globex report {index}."}, use_cache=False)
        assert invoker.stats.requests == 3
        assert len(invoker.stats.latencies) == 3
        assert invoker.stats.hedge_rate == 0.0
