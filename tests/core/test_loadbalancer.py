"""Tests for load-balancing policies."""

import pytest

from repro.core.loadbalancer import (
    LeastSpendBalancer,
    RoundRobinBalancer,
    StickyBalancer,
    WeightedScoreBalancer,
    traffic_distribution,
)
from repro.core.monitoring import InvocationRecord, ServiceMonitor
from repro.core.ranking import ServiceRanker, Weights

CANDIDATES = ["a", "b", "c"]


def monitor_with_history():
    monitor = ServiceMonitor()
    for service, latency, cost in (("a", 0.1, 0.01), ("b", 0.2, 0.002),
                                   ("c", 0.4, 0.0005)):
        for _ in range(5):
            monitor.record(InvocationRecord(service, "op", 0.0, latency, cost, True))
    return monitor


class TestRoundRobin:
    def test_rotates_evenly(self):
        balancer = RoundRobinBalancer()
        picks = [balancer.choose(CANDIDATES) for _ in range(9)]
        assert picks == ["a", "b", "c"] * 3

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinBalancer().choose([])


class TestWeightedScore:
    def test_better_ranked_gets_more_traffic(self):
        monitor = monitor_with_history()
        ranker = ServiceRanker(monitor)
        balancer = WeightedScoreBalancer(
            ranker, weights=Weights(response_time=1, cost=0, quality=0), seed=5)
        counts = traffic_distribution(balancer, CANDIDATES,
                                      [str(index) for index in range(600)])
        assert counts["a"] > counts["b"] > counts["c"]
        assert counts["c"] > 0  # the weakest still gets warmed

    def test_deterministic_per_seed(self):
        monitor = monitor_with_history()
        ranker = ServiceRanker(monitor)
        first = WeightedScoreBalancer(ranker, seed=9)
        second = WeightedScoreBalancer(ranker, seed=9)
        assert [first.choose(CANDIDATES) for _ in range(20)] == [
            second.choose(CANDIDATES) for _ in range(20)]


class TestLeastSpend:
    def test_balances_bills(self):
        monitor = ServiceMonitor()
        balancer = LeastSpendBalancer(monitor)
        spends = {"a": 0.0, "b": 0.0}
        for index in range(100):
            choice = balancer.choose(["a", "b"])
            # 'a' is twice as expensive per call.
            cost = 0.02 if choice == "a" else 0.01
            spends[choice] += cost
            monitor.record(InvocationRecord(choice, "op", 0.0, 0.1, cost, True))
        # Total spend converges: the cheap service absorbs more calls.
        assert abs(spends["a"] - spends["b"]) <= 0.02

    def test_ties_break_deterministically(self):
        balancer = LeastSpendBalancer(ServiceMonitor())
        assert balancer.choose(["b", "a"]) == "a"


class TestSticky:
    def test_same_key_same_service(self):
        balancer = StickyBalancer()
        first = balancer.choose(CANDIDATES, request_key="doc-1")
        assert all(balancer.choose(CANDIDATES, request_key="doc-1") == first
                   for _ in range(10))

    def test_keys_spread_across_services(self):
        balancer = StickyBalancer()
        counts = traffic_distribution(
            balancer, CANDIDATES, [f"doc-{index}" for index in range(300)])
        assert all(count > 50 for count in counts.values())

    def test_no_key_defaults_to_first(self):
        assert StickyBalancer().choose(CANDIDATES) == "a"


class TestStickyCacheLocality:
    def test_sticky_maximizes_cache_hits(self, world):
        """Ablation: sticky routing beats round robin on cache hit ratio
        when the same documents recur."""
        from repro import RichClient

        documents = [doc.text for doc in world.corpus.documents[:10]]
        providers = [service.name for service in world.services_of_kind("nlu")]

        def run(balancer):
            client = RichClient(world.registry)
            for _ in range(3):  # the same 10 documents, three sweeps
                for text in documents:
                    provider = balancer.choose(providers, request_key=text)
                    client.invoke(provider, "analyze", {"text": text})
            ratio = client.cache.stats.hit_ratio
            client.close()
            return ratio

        sticky_ratio = run(StickyBalancer())
        rr_ratio = run(RoundRobinBalancer())
        assert sticky_ratio > rr_ratio
