"""Tests for latency prediction from latency parameters."""

import pytest

from repro.core.latency import LatencyPredictor
from repro.core.monitoring import InvocationRecord, ServiceMonitor


def observe(monitor, service, size, latency):
    monitor.record(InvocationRecord(
        service=service, operation="put", timestamp=0.0, latency=latency,
        cost=0.0, success=True, latency_params={"size": size},
    ))


@pytest.fixture
def monitor():
    return ServiceMonitor()


class TestPrediction:
    def test_learns_affine_latency(self, monitor):
        for size in (100, 200, 400, 800, 1600):
            observe(monitor, "s1", size, 0.01 + 1e-5 * size)
        predictor = LatencyPredictor(monitor)
        assert predictor.predict("s1", {"size": 1000}) == pytest.approx(
            0.01 + 1e-5 * 1000, rel=1e-6)

    def test_model_summary(self, monitor):
        for size in (100, 200, 400, 800, 1600):
            observe(monitor, "s1", size, 0.01 + 1e-5 * size)
        summary = LatencyPredictor(monitor).model_summary("s1")
        assert summary["kind"] == "linear"
        assert summary["slope"] == pytest.approx(1e-5, rel=1e-6)
        assert summary["r_squared"] == pytest.approx(1.0)

    def test_falls_back_to_mean_with_few_observations(self, monitor):
        observe(monitor, "s1", 100, 0.5)
        observe(monitor, "s1", 200, 0.7)
        predictor = LatencyPredictor(monitor, min_observations=5)
        assert predictor.predict("s1", {"size": 1000}) == pytest.approx(0.6)

    def test_falls_back_without_param(self, monitor):
        for size in (100, 200, 400, 800, 1600):
            observe(monitor, "s1", size, 0.1)
        predictor = LatencyPredictor(monitor)
        assert predictor.predict("s1") == pytest.approx(0.1)

    def test_none_with_no_history(self, monitor):
        assert LatencyPredictor(monitor).predict("ghost", {"size": 10}) is None

    def test_no_param_variation_uses_mean(self, monitor):
        for _ in range(6):
            observe(monitor, "s1", 100, 0.2)
        predictor = LatencyPredictor(monitor)
        assert predictor.predict("s1", {"size": 100}) == pytest.approx(0.2)

    def test_prediction_clamped_non_negative(self, monitor):
        # Steeply decreasing latency extrapolates below zero.
        for size, latency in ((1, 1.0), (2, 0.5), (3, 0.1), (4, 0.05), (5, 0.01)):
            observe(monitor, "s1", size, latency)
        predictor = LatencyPredictor(monitor)
        assert predictor.predict("s1", {"size": 100}) >= 0.0

    def test_polynomial_degree(self, monitor):
        for size in range(1, 12):
            observe(monitor, "s1", size, 0.01 * size * size)
        predictor = LatencyPredictor(monitor, degree=2)
        assert predictor.predict("s1", {"size": 20}) == pytest.approx(4.0, rel=0.01)
        assert predictor.model_summary("s1")["kind"] == "poly-2"

    def test_min_observations_validated(self, monitor):
        with pytest.raises(ValueError):
            LatencyPredictor(monitor, min_observations=1)


class TestCrossover:
    def test_recovers_crossover_of_two_services(self, monitor):
        # s1: fast base, steep slope.  s2: slow base, flat slope.
        for size in (100, 1000, 5000, 20_000, 50_000):
            observe(monitor, "s1", size, 0.02 + 2e-5 * size)
            observe(monitor, "s2", size, 0.25 + 1e-6 * size)
        predictor = LatencyPredictor(monitor)
        crossing = predictor.crossover("s1", "s2")
        expected = (0.25 - 0.02) / (2e-5 - 1e-6)
        assert crossing == pytest.approx(expected, rel=1e-6)
        # Below the crossover s1 is predicted faster; above, s2.
        below = crossing * 0.5
        above = crossing * 2.0
        assert predictor.predict("s1", {"size": below}) < predictor.predict(
            "s2", {"size": below})
        assert predictor.predict("s1", {"size": above}) > predictor.predict(
            "s2", {"size": above})

    def test_no_crossover_without_models(self, monitor):
        observe(monitor, "s1", 100, 0.1)
        assert LatencyPredictor(monitor).crossover("s1", "s2") is None

    def test_parallel_slopes_no_crossover(self, monitor):
        for size in (100, 1000, 5000, 20_000, 50_000):
            observe(monitor, "s1", size, 0.1 + 1e-5 * size)
            observe(monitor, "s2", size, 0.2 + 1e-5 * size)
        assert LatencyPredictor(monitor).crossover("s1", "s2") is None
