"""Tests for quality evaluators and drift detection."""

import pytest

from repro.core.quality import (
    AgreementEvaluator,
    CompositeEvaluator,
    GoldBasedEvaluator,
    RollingQualityTracker,
)


def analysis(entity_ids, sentiments=None):
    return {
        "entities": [
            {"id": entity_id, "name": entity_id, "type": "T", "count": 1,
             "disambiguated": True}
            for entity_id in entity_ids
        ],
        "entity_sentiment": {
            entity_id: {"score": score}
            for entity_id, score in (sentiments or {}).items()
        },
    }


class TestGoldBasedEvaluator:
    def test_perfect(self):
        evaluator = GoldBasedEvaluator()
        assert evaluator.evaluate(analysis(["a", "b"]), ["a", "b"]) == 1.0

    def test_blends_f1_and_sentiment(self):
        evaluator = GoldBasedEvaluator()
        quality = evaluator.evaluate(
            analysis(["a"], sentiments={"a": 0.5}),
            ["a"],
            gold_sentiment={"a": -1},  # wrong sign
        )
        assert quality == pytest.approx(0.5)  # F1 1.0, sentiment 0.0

    def test_empty_analysis_scores_zero(self):
        assert GoldBasedEvaluator().evaluate(analysis([]), ["a"]) == pytest.approx(0.0)


class TestAgreementEvaluator:
    def test_unanimous_agreement(self):
        evaluator = AgreementEvaluator()
        analyses = {"p1": analysis(["a"]), "p2": analysis(["a"]),
                    "p3": analysis(["a"])}
        scores = evaluator.evaluate_all(analyses)
        assert all(score == 1.0 for score in scores.values())

    def test_outlier_scores_low_without_gold(self):
        analyses = {
            "good1": analysis(["a", "b"]),
            "good2": analysis(["a", "b"]),
            "weird": analysis(["z"]),
        }
        scores = AgreementEvaluator().evaluate_all(analyses)
        assert scores["weird"] < scores["good1"] == scores["good2"]

    def test_missing_entity_hurts_recall(self):
        analyses = {
            "full1": analysis(["a", "b"]),
            "full2": analysis(["a", "b"]),
            "partial": analysis(["a"]),
        }
        scores = AgreementEvaluator().evaluate_all(analyses)
        assert scores["partial"] < 1.0

    def test_consensus_threshold(self):
        analyses = {
            "p1": analysis(["a", "b"]),
            "p2": analysis(["a"]),
            "p3": analysis(["a"]),
        }
        assert AgreementEvaluator(0.9).consensus_entities(analyses) == {"a"}
        assert AgreementEvaluator(0.3).consensus_entities(analyses) == {"a", "b"}

    def test_all_empty_is_perfect_agreement(self):
        analyses = {"p1": analysis([]), "p2": analysis([])}
        scores = AgreementEvaluator().evaluate_all(analyses)
        assert all(score == 1.0 for score in scores.values())

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            AgreementEvaluator(0.0)


class TestCompositeEvaluator:
    def test_weighted_blend(self):
        evaluator = CompositeEvaluator({"f1": 3.0, "speed": 1.0})
        assert evaluator.evaluate({"f1": 1.0, "speed": 0.0}) == pytest.approx(0.75)

    def test_weights_normalized(self):
        first = CompositeEvaluator({"a": 1, "b": 1})
        second = CompositeEvaluator({"a": 10, "b": 10})
        components = {"a": 0.8, "b": 0.2}
        assert first.evaluate(components) == second.evaluate(components)

    def test_missing_component_rejected(self):
        evaluator = CompositeEvaluator({"a": 1.0})
        with pytest.raises(ValueError):
            evaluator.evaluate({"b": 1.0})

    def test_empty_weights_rejected(self):
        with pytest.raises(ValueError):
            CompositeEvaluator({})


class TestRollingQualityTracker:
    def test_mean_quality(self):
        tracker = RollingQualityTracker(window=10, baseline=3)
        for value in (0.8, 0.9, 1.0):
            tracker.observe("svc", value)
        assert tracker.mean_quality("svc") == pytest.approx(0.9)
        assert tracker.mean_quality("ghost") is None

    def test_no_drift_when_stable(self):
        tracker = RollingQualityTracker(window=100, baseline=10, tolerance=0.1)
        for _ in range(40):
            tracker.observe("svc", 0.9)
        report = tracker.check_drift("svc", recent=10)
        assert report is not None
        assert not report.drifted
        assert report.delta == pytest.approx(0.0)

    def test_degradation_detected(self):
        tracker = RollingQualityTracker(window=100, baseline=10, tolerance=0.1)
        for _ in range(10):
            tracker.observe("svc", 0.9)   # healthy baseline
        for _ in range(20):
            tracker.observe("svc", 0.5)   # the provider got worse
        report = tracker.check_drift("svc", recent=10)
        assert report.drifted
        assert report.recent_mean == pytest.approx(0.5)
        assert tracker.degraded_services() and (
            tracker.degraded_services()[0].service == "svc")

    def test_improvement_is_not_drift(self):
        tracker = RollingQualityTracker(window=100, baseline=10, tolerance=0.1)
        for _ in range(10):
            tracker.observe("svc", 0.5)
        for _ in range(20):
            tracker.observe("svc", 0.95)
        assert not tracker.check_drift("svc", recent=10).drifted

    def test_insufficient_history_returns_none(self):
        tracker = RollingQualityTracker(window=100, baseline=10)
        tracker.observe("svc", 0.9)
        assert tracker.check_drift("svc", recent=20) is None

    def test_window_bounds_memory(self):
        tracker = RollingQualityTracker(window=5, baseline=2)
        for index in range(50):
            tracker.observe("svc", index / 50)
        assert len(tracker._history["svc"]) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            RollingQualityTracker(window=5, baseline=5)
