"""Tests for the service cache (LRU + TTL), including invariants."""

import pytest
from hypothesis import given, strategies as st

from repro.core.caching import DEFAULT_CACHEABLE_OPERATIONS, ServiceCache, cache_key
from repro.stores.kvstore import InMemoryKeyValueStore
from repro.util.clock import ManualClock


class TestCacheKey:
    def test_payload_order_irrelevant(self):
        assert cache_key("s", "op", {"a": 1, "b": 2}) == cache_key(
            "s", "op", {"b": 2, "a": 1})

    def test_distinguishes_components(self):
        base = cache_key("s", "op", {"a": 1})
        assert base != cache_key("s2", "op", {"a": 1})
        assert base != cache_key("s", "op2", {"a": 1})
        assert base != cache_key("s", "op", {"a": 2})

    def test_mutating_operations_not_cacheable(self):
        assert "put" not in DEFAULT_CACHEABLE_OPERATIONS
        assert "delete" not in DEFAULT_CACHEABLE_OPERATIONS
        assert "analyze" in DEFAULT_CACHEABLE_OPERATIONS


class TestBasicOperations:
    def test_get_after_put(self):
        cache = ServiceCache(capacity=10)
        cache.put("k", "v")
        assert cache.get("k") == "v"
        assert cache.stats.hits == 1

    def test_miss_counted(self):
        cache = ServiceCache(capacity=10)
        assert cache.get("missing") is None
        assert cache.stats.misses == 1

    def test_get_with_default(self):
        cache = ServiceCache(capacity=10)
        assert cache.get("missing", default="d") == "d"

    def test_peek_does_not_touch_stats(self):
        cache = ServiceCache(capacity=10)
        cache.put("k", "v")
        assert cache.peek("k") == "v"
        assert cache.peek("missing") is None
        assert cache.stats.hits == 0
        assert cache.stats.misses == 0

    def test_invalidate(self):
        cache = ServiceCache(capacity=10)
        cache.put("k", "v")
        assert cache.invalidate("k") is True
        assert cache.invalidate("k") is False
        assert cache.get("k") is None

    def test_invalidate_service_drops_only_its_keys(self):
        cache = ServiceCache(capacity=10)
        key_a = cache_key("svc-a", "op", {})
        key_b = cache_key("svc-b", "op", {})
        cache.put(key_a, 1)
        cache.put(key_b, 2)
        dropped = cache.invalidate_service("svc-a")
        assert dropped == 1
        assert cache.peek(key_a) is None
        assert cache.peek(key_b) == 2

    def test_hit_ratio(self):
        cache = ServiceCache(capacity=10)
        cache.put("k", "v")
        cache.get("k")
        cache.get("x")
        assert cache.stats.hit_ratio == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceCache(capacity=0)
        with pytest.raises(ValueError):
            ServiceCache(ttl=1.0)  # ttl without clock
        with pytest.raises(ValueError):
            ServiceCache(ttl=-1.0, clock=ManualClock())


class TestLru:
    def test_capacity_enforced(self):
        cache = ServiceCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert len(cache) == 2
        assert cache.peek("a") is None  # least recently used evicted
        assert cache.stats.evictions == 1

    def test_get_refreshes_recency(self):
        cache = ServiceCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # 'a' becomes most recent
        cache.put("c", 3)
        assert cache.peek("a") == 1
        assert cache.peek("b") is None

    def test_overwrite_refreshes_recency(self):
        cache = ServiceCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        cache.put("c", 3)
        assert cache.peek("a") == 10
        assert cache.peek("b") is None

    @given(st.lists(st.tuples(st.sampled_from("abcdefgh"), st.integers()),
                    max_size=60))
    def test_never_exceeds_capacity(self, operations):
        cache = ServiceCache(capacity=3)
        for key, value in operations:
            cache.put(key, value)
            assert len(cache) <= 3

    @given(st.lists(st.tuples(st.sampled_from("abcdefgh"), st.integers()),
                    max_size=60))
    def test_last_put_always_retrievable(self, operations):
        cache = ServiceCache(capacity=3)
        for key, value in operations:
            cache.put(key, value)
            assert cache.peek(key) == value


class TestTtl:
    def test_expires_after_ttl(self):
        clock = ManualClock()
        cache = ServiceCache(capacity=10, ttl=5.0, clock=clock)
        cache.put("k", "v")
        clock.advance(4.9)
        assert cache.get("k") == "v"
        clock.advance(0.2)
        assert cache.get("k") is None
        assert cache.stats.expirations == 1

    def test_refresh_on_put_resets_ttl(self):
        clock = ManualClock()
        cache = ServiceCache(capacity=10, ttl=5.0, clock=clock)
        cache.put("k", "v1")
        clock.advance(4.0)
        cache.put("k", "v2")
        clock.advance(4.0)
        assert cache.get("k") == "v2"

    def test_no_ttl_never_expires(self):
        clock = ManualClock()
        cache = ServiceCache(capacity=10, clock=clock)
        cache.put("k", "v")
        clock.advance(1e9)
        assert cache.get("k") == "v"


class TestPersistence:
    def test_save_load_roundtrip(self):
        store = InMemoryKeyValueStore()
        cache = ServiceCache(capacity=10)
        cache.put("a", 1)
        cache.put("b", [2, 3])
        assert cache.save_to(store) == 2

        fresh = ServiceCache(capacity=10)
        assert fresh.load_from(store) == 2
        assert fresh.peek("a") == 1
        assert fresh.peek("b") == [2, 3]

    def test_load_respects_capacity(self):
        store = InMemoryKeyValueStore()
        cache = ServiceCache(capacity=10)
        for index in range(8):
            cache.put(f"k{index}", index)
        cache.save_to(store)
        small = ServiceCache(capacity=3)
        small.load_from(store)
        assert len(small) == 3

    def test_expired_entries_not_saved(self):
        clock = ManualClock()
        store = InMemoryKeyValueStore()
        cache = ServiceCache(capacity=10, ttl=1.0, clock=clock)
        cache.put("old", 1)
        clock.advance(2.0)
        cache.put("new", 2)
        assert cache.save_to(store) == 1

    def test_load_from_empty_store(self):
        assert ServiceCache(capacity=3).load_from(InMemoryKeyValueStore()) == 0
