"""Tests for ListenableFuture and the bounded executor."""

import threading
import time

import pytest

from repro.core.futures import CallbackExecutor, ListenableFuture


class TestListenableFuture:
    def test_get_returns_result(self):
        future = ListenableFuture()
        future.set_result(42)
        assert future.is_done()
        assert future.get() == 42

    def test_get_raises_stored_exception(self):
        future = ListenableFuture()
        future.set_exception(ValueError("boom"))
        with pytest.raises(ValueError):
            future.get()
        assert isinstance(future.exception(), ValueError)

    def test_listener_fires_on_completion(self):
        future = ListenableFuture()
        seen = []
        future.add_listener(lambda completed: seen.append(completed.get()))
        assert seen == []
        future.set_result("done")
        assert seen == ["done"]

    def test_listener_fires_immediately_when_already_done(self):
        future = ListenableFuture.completed("early")
        seen = []
        future.add_listener(lambda completed: seen.append(completed.get()))
        assert seen == ["early"]

    def test_multiple_listeners_all_fire(self):
        future = ListenableFuture()
        seen = []
        for index in range(3):
            future.add_listener(lambda _completed, index=index: seen.append(index))
        future.set_result(None)
        assert sorted(seen) == [0, 1, 2]

    def test_listener_fires_on_failure_too(self):
        future = ListenableFuture()
        seen = []
        future.add_listener(lambda completed: seen.append(type(completed.exception())))
        future.set_exception(RuntimeError())
        assert seen == [RuntimeError]

    def test_completed_and_failed_constructors(self):
        assert ListenableFuture.completed(1).get() == 1
        failed = ListenableFuture.failed(KeyError("k"))
        assert isinstance(failed.exception(), KeyError)

    def test_transform_maps_result(self):
        future = ListenableFuture()
        doubled = future.transform(lambda value: value * 2)
        future.set_result(21)
        assert doubled.get() == 42

    def test_transform_propagates_error(self):
        future = ListenableFuture()
        derived = future.transform(lambda value: value)
        future.set_exception(ValueError("nope"))
        with pytest.raises(ValueError):
            derived.get()

    def test_transform_mapper_error_captured(self):
        future = ListenableFuture.completed(1)
        derived = future.transform(lambda value: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            derived.get()

    def test_get_timeout(self):
        future = ListenableFuture()
        with pytest.raises(Exception):
            future.get(timeout=0.01)

    def test_raising_listener_is_quarantined(self):
        """A bad callback must not starve the listeners behind it."""
        future = ListenableFuture()
        seen = []
        future.add_listener(lambda _completed: 1 / 0)
        future.add_listener(lambda completed: seen.append(completed.get()))
        future.set_result("ok")  # must not raise on the completing thread
        assert seen == ["ok"]
        assert len(future.listener_errors) == 1
        assert isinstance(future.listener_errors[0], ZeroDivisionError)

    def test_raising_listener_on_already_done_future(self):
        """The fire-immediately path quarantines exceptions the same way."""
        future = ListenableFuture.completed("ok")
        future.add_listener(lambda _completed: 1 / 0)
        assert len(future.listener_errors) == 1

    def test_result_unaffected_by_listener_errors(self):
        future = ListenableFuture()
        future.add_listener(lambda _completed: 1 / 0)
        future.set_result(42)
        assert future.get() == 42
        assert future.exception() is None


class TestCallbackExecutor:
    def test_submit_runs_function(self):
        with CallbackExecutor(max_workers=2) as executor:
            future = executor.submit(lambda: 7)
            assert future.get(timeout=5) == 7

    def test_submit_captures_exception(self):
        with CallbackExecutor(max_workers=2) as executor:
            future = executor.submit(lambda: 1 / 0)
            assert isinstance(future.exception(timeout=5), ZeroDivisionError)

    def test_callbacks_fire_from_worker(self):
        with CallbackExecutor(max_workers=2) as executor:
            done = threading.Event()
            future = executor.submit(lambda: "ok")
            future.add_listener(lambda _completed: done.set())
            assert done.wait(timeout=5)

    def test_map_all_preserves_order(self):
        with CallbackExecutor(max_workers=4) as executor:
            futures = executor.map_all(lambda item: item * 10, [1, 2, 3])
            assert [future.get(timeout=5) for future in futures] == [10, 20, 30]

    def test_pool_is_bounded(self):
        """More tasks than workers still all complete (queued, not spawned)."""
        active = []
        peak = []
        lock = threading.Lock()

        def tracked():
            with lock:
                active.append(1)
                peak.append(len(active))
            time.sleep(0.01)
            with lock:
                active.pop()
            return True

        with CallbackExecutor(max_workers=3) as executor:
            futures = [executor.submit(tracked) for _ in range(12)]
            assert all(future.get(timeout=10) for future in futures)
        assert max(peak) <= 3

    def test_workers_validated(self):
        with pytest.raises(ValueError):
            CallbackExecutor(max_workers=0)


class TestSerializedListenerDelivery:
    """Regression: listener dispatch must be serialized and in order.

    The pre-async-core implementation delivered a listener registered
    during an in-progress completion immediately on the registering
    thread, overlapping (and reordering) it with the completing
    thread's own dispatch loop — unsafe for callbacks that assume
    Guava's serialized delivery (the asyncio bridge does).
    """

    def test_listener_added_mid_delivery_waits_its_turn(self):
        future = ListenableFuture()
        order = []
        in_first = threading.Event()
        release_first = threading.Event()
        registered = threading.Event()

        def slow_first(_):
            order.append("first")
            in_first.set()
            # Hold delivery open until the racing add_listener returned.
            assert release_first.wait(timeout=5)

        def late(_):
            order.append("late")

        future.add_listener(slow_first)

        def racer():
            assert in_first.wait(timeout=5)
            future.add_listener(late)  # must queue, not run here
            registered.set()

        thread = threading.Thread(target=racer)
        thread.start()
        completer = threading.Thread(target=future.set_result, args=(1,))
        completer.start()
        assert registered.wait(timeout=5)
        # The late listener was registered while `slow_first` is still
        # executing; serialized delivery means it has NOT run yet.
        assert order == ["first"]
        release_first.set()
        completer.join(timeout=5)
        thread.join(timeout=5)
        assert order == ["first", "late"]
        assert future.listener_errors == []

    def test_concurrent_registrations_never_overlap(self):
        """Hammer add_listener against set_result; delivery stays single-file."""
        for _ in range(50):
            future = ListenableFuture()
            running = []
            overlaps = []
            lock = threading.Lock()

            def listener(_):
                with lock:
                    running.append(1)
                    if len(running) > 1:
                        overlaps.append(1)
                with lock:
                    running.pop()

            for _ in range(4):
                future.add_listener(listener)
            barrier = threading.Barrier(3)

            def register():
                barrier.wait()
                for _ in range(8):
                    future.add_listener(listener)

            def complete():
                barrier.wait()
                future.set_result("x")

            threads = [threading.Thread(target=register),
                       threading.Thread(target=register),
                       threading.Thread(target=complete)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10)
            assert not overlaps
            assert future.listener_errors == []
