"""Tests for the HTTP-style SDK gateway."""

import json

import pytest

from repro.core.gateway import SdkGateway
from repro.services.base import ScriptedFailures

TEXT = "IBM announced excellent results."


@pytest.fixture
def gateway(client):
    return SdkGateway(client)


class TestEnvelopes:
    def test_invoke_roundtrip(self, gateway):
        response = gateway.handle({
            "method": "invoke",
            "params": {"service": "lexica-prime", "operation": "analyze",
                       "payload": {"text": TEXT}},
        })
        assert response["status"] == 200
        assert any(entity["id"] == "C_ibm"
                   for entity in response["result"]["value"]["entities"])
        assert response["result"]["cached"] is False

    def test_response_is_json_pure(self, gateway):
        response = gateway.handle({
            "method": "invoke",
            "params": {"service": "glotta", "operation": "analyze",
                       "payload": {"text": TEXT}},
        })
        json.dumps(response)  # must not raise

    def test_text_wire_format(self, gateway):
        request = json.dumps({
            "method": "invoke",
            "params": {"service": "glotta", "operation": "analyze",
                       "payload": {"text": TEXT}},
        })
        response = json.loads(gateway.handle_json(request))
        assert response["status"] == 200

    def test_invalid_json_text(self, gateway):
        response = json.loads(gateway.handle_json("{not json"))
        assert response["status"] == 400

    def test_non_object_request(self, gateway):
        response = json.loads(gateway.handle_json("[1, 2]"))
        assert response["status"] == 400

    def test_missing_method(self, gateway):
        assert gateway.handle({"params": {}})["status"] == 400

    def test_unknown_method(self, gateway):
        response = gateway.handle({"method": "teleport", "params": {}})
        assert response["status"] == 404
        assert response["error_type"] == "NotFoundError"

    def test_bad_params_type(self, gateway):
        assert gateway.handle({"method": "invoke", "params": 5})["status"] == 400


class TestErrorMapping:
    def test_unknown_service_is_404(self, gateway):
        response = gateway.handle({
            "method": "invoke",
            "params": {"service": "ghost", "operation": "op"},
        })
        assert response["status"] == 404

    def test_service_validation_error_propagates_status(self, gateway):
        response = gateway.handle({
            "method": "invoke",
            "params": {"service": "lexica-prime", "operation": "analyze",
                       "payload": {"text": "  "}},
        })
        assert response["status"] == 400

    def test_offline_is_503(self, gateway, world):
        from repro.simnet.connectivity import ManualConnectivity

        connectivity = ManualConnectivity()
        world.transport.connectivity = connectivity
        connectivity.go_offline()
        response = gateway.handle({
            "method": "invoke",
            "params": {"service": "lexica-prime", "operation": "analyze",
                       "payload": {"text": TEXT}, "use_cache": False},
        })
        connectivity.go_online()
        assert response["status"] == 503

    def test_budget_exceeded_is_429(self, gateway):
        gateway.client.quota.set_budget("glotta", max_calls=0)
        response = gateway.handle({
            "method": "invoke",
            "params": {"service": "glotta", "operation": "analyze",
                       "payload": {"text": TEXT}},
        })
        assert response["status"] == 429

    def test_errors_never_raise(self, gateway):
        for request in ({}, {"method": 7}, {"method": "invoke"},
                        {"method": "invoke", "params": {"service": "x"}}):
            response = gateway.handle(request)
            assert response["status"] >= 400
        assert gateway.errors_returned >= 4


class TestMethods:
    def test_failover_method(self, gateway, world):
        ranked = [name for name, _ in gateway.client.rank_services("nlu")]
        world.service(ranked[0]).failures = ScriptedFailures(set(range(10)))
        response = gateway.handle({
            "method": "invoke_failover",
            "params": {"kind": "nlu", "operation": "analyze",
                       "payload": {"text": TEXT}, "use_cache": False},
        })
        assert response["status"] == 200
        assert response["result"]["served_by"] != ranked[0]
        assert any(attempt["failed"] for attempt in response["result"]["attempts"])

    def test_rank_and_best(self, gateway):
        gateway.handle({
            "method": "invoke",
            "params": {"service": "glotta", "operation": "analyze",
                       "payload": {"text": TEXT}},
        })
        ranked = gateway.handle({
            "method": "rank_services",
            "params": {"kind": "nlu",
                       "weights": {"response_time": 1, "cost": 0, "quality": 0}},
        })
        assert ranked["status"] == 200
        assert len(ranked["result"]) == 3
        best = gateway.handle({"method": "best_service", "params": {"kind": "nlu"}})
        assert best["result"]["service"] in {entry["service"]
                                             for entry in ranked["result"]}

    def test_summaries_cache_and_spend(self, gateway):
        gateway.handle({
            "method": "invoke",
            "params": {"service": "glotta", "operation": "analyze",
                       "payload": {"text": TEXT}},
        })
        gateway.handle({
            "method": "invoke",
            "params": {"service": "glotta", "operation": "analyze",
                       "payload": {"text": TEXT}},
        })
        summaries = gateway.handle({"method": "service_summaries", "params": {}})
        assert any(entry["service"] == "glotta" for entry in summaries["result"])
        cache = gateway.handle({"method": "cache_stats", "params": {}})
        assert cache["result"]["hits"] >= 1
        spend = gateway.handle({"method": "spend",
                                "params": {"service": "glotta"}})
        assert spend["result"]["calls"] >= 1
        total = gateway.handle({"method": "spend", "params": {}})
        assert total["result"]["total_cost"] > 0

    def test_health(self, gateway):
        response = gateway.handle({"method": "health", "params": {}})
        assert response["status"] == 200
        assert response["result"]["online"] is True
        assert response["result"]["services_registered"] > 10
