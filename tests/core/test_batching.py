"""Tests for single-flight request coalescing and micro-batching."""

import threading

import pytest

from repro import RichClient, build_world
from repro.core.batching import (
    Flight,
    FlightCancelledError,
    MicroBatcher,
    RequestCoalescer,
)
from repro.services.base import ScriptedFailures
from repro.simnet.errors import RemoteServiceError
from repro.util.clock import RealClock

TIME_SCALE = 0.02
TEXT = "IBM announced excellent results while Initech struggled badly."


# ---------------------------------------------------------------------------
# Flight / RequestCoalescer unit behaviour
# ---------------------------------------------------------------------------

class TestFlight:
    def test_complete_reaches_every_waiter(self):
        flight = Flight("k")
        flight.join()
        assert flight.waiters == 2
        assert flight.complete("value") is True
        assert flight.result() == "value"

    def test_fail_shares_the_error(self):
        flight = Flight("k")
        flight.fail(RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            flight.result()

    def test_settling_twice_is_a_noop(self):
        flight = Flight("k")
        assert flight.complete("first") is True
        assert flight.complete("second") is False
        assert flight.fail(RuntimeError("late")) is False
        assert flight.result() == "first"

    def test_cancelled_when_all_waiters_abandon(self):
        cancelled = []
        flight = Flight("k", on_cancel=cancelled.append)
        flight.join()
        assert flight.abandon() is False  # one waiter still interested
        assert flight.abandon() is True   # last one leaves -> cancel
        assert flight.cancelled
        assert cancelled == [flight]
        with pytest.raises(FlightCancelledError):
            flight.result()
        # A late leader settle is a no-op on the cancelled flight.
        assert flight.complete("too late") is False

    def test_abandon_after_settle_does_not_cancel(self):
        flight = Flight("k")
        flight.complete("value")
        assert flight.abandon() is False
        assert not flight.cancelled


class TestRequestCoalescer:
    def test_leader_then_joiners(self):
        coalescer = RequestCoalescer()
        leader, flight = coalescer.lead_or_join("k")
        assert leader is True
        joined, same = coalescer.lead_or_join("k")
        assert joined is False
        assert same is flight
        assert coalescer.stats.flights == 1
        assert coalescer.stats.coalesced == 1
        assert len(coalescer) == 1

    def test_settle_removes_the_table_entry(self):
        coalescer = RequestCoalescer()
        _, flight = coalescer.lead_or_join("k")
        coalescer.complete(flight, "value")
        assert len(coalescer) == 0
        # A later identical request starts a fresh flight (no staleness).
        leader, fresh = coalescer.lead_or_join("k")
        assert leader is True
        assert fresh is not flight

    def test_cancelled_flight_leaves_the_table(self):
        coalescer = RequestCoalescer()
        _, flight = coalescer.lead_or_join("k")
        coalescer.lead_or_join("k")
        flight.abandon()
        flight.abandon()
        assert len(coalescer) == 0
        assert coalescer.stats.cancelled == 1

    def test_count_folded_feeds_the_hit_stat(self):
        coalescer = RequestCoalescer()
        coalescer.count_folded(3)
        coalescer.count_folded(0)
        assert coalescer.stats.coalesced == 3


# ---------------------------------------------------------------------------
# Coalescing through RichClient.invoke (threaded, scaled real clock)
# ---------------------------------------------------------------------------

class TestInvokeCoalescing:
    @pytest.fixture
    def rt_world(self):
        return build_world(seed=59, corpus_size=20,
                           clock=RealClock(time_scale=TIME_SCALE))

    @pytest.fixture
    def rt_client(self, rt_world):
        client = RichClient(rt_world.registry)
        yield client
        client.close()

    def test_concurrent_identical_requests_share_one_upstream_call(
            self, rt_world, rt_client):
        callers = 6
        barrier = threading.Barrier(callers)
        results, errors = [], []

        def call():
            barrier.wait()
            try:
                results.append(
                    rt_client.invoke("lexica-prime", "analyze", {"text": TEXT}))
            except Exception as error:  # noqa: BLE001 — surfaced below
                errors.append(error)

        threads = [threading.Thread(target=call) for _ in range(callers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        assert len(results) == callers
        # Exactly one call crossed the wire; everyone else shared the
        # flight (or hit the cache it populated).
        assert rt_world.service("lexica-prime").stats.calls == 1
        shared = sum(1 for r in results if r.coalesced or r.cached)
        assert shared == callers - 1
        for result in results:
            if result.coalesced:
                assert result.cost == 0.0
        assert (rt_client.coalescer.stats.coalesced
                + rt_client.cache.stats.hits) == callers - 1

    def test_coalesce_false_forces_independent_calls(self, rt_world, rt_client):
        rt_client.invoke("glotta", "analyze", {"text": TEXT},
                         use_cache=False, coalesce=False)
        rt_client.invoke("glotta", "analyze", {"text": TEXT},
                         use_cache=False, coalesce=False)
        assert rt_world.service("glotta").stats.calls == 2
        assert rt_client.coalescer.stats.flights == 0


# ---------------------------------------------------------------------------
# invoke_batched / invoke_many (deterministic, manual clock)
# ---------------------------------------------------------------------------

class TestInvokeBatched:
    def test_one_wire_call_many_results(self, world, client):
        texts = [document.text for document in world.corpus.documents[:3]]
        outcomes = client.invoke_batched(
            "glotta", "analyze", [{"text": text} for text in texts])
        assert len(outcomes) == 3
        assert world.transport.stats.batch_calls == 1
        assert world.transport.stats.batched_items == 3
        for outcome in outcomes:
            assert outcome.batched
            assert outcome.service == "glotta"
            assert "entities" in outcome.value
        # Every item shares the batch's round trip.
        assert len({outcome.latency for outcome in outcomes}) == 1
        assert client.monitor.call_count("glotta") == 3

    def test_populates_the_cache_per_item(self, world, client):
        client.invoke_batched("glotta", "analyze", [{"text": TEXT}])
        repeat = client.invoke("glotta", "analyze", {"text": TEXT})
        assert repeat.cached
        assert world.service("glotta").stats.calls == 1

    def test_poisoned_item_is_isolated(self, world, client):
        world.service("glotta").failures = ScriptedFailures({1})
        texts = [document.text for document in world.corpus.documents[:3]]
        outcomes = client.invoke_batched(
            "glotta", "analyze", [{"text": text} for text in texts],
            use_cache=False)
        assert isinstance(outcomes[1], RemoteServiceError)
        assert outcomes[1].status == 500
        assert not isinstance(outcomes[0], Exception)
        assert not isinstance(outcomes[2], Exception)
        assert world.transport.stats.batch_calls == 1

    def test_empty_batch_is_free(self, world, client):
        assert client.invoke_batched("glotta", "analyze", []) == []
        assert world.transport.stats.calls == 0

    def test_unflagged_service_rejected(self, client):
        with pytest.raises(ValueError, match="batch"):
            client.invoke_batched("tickerfeed", "quote", [{"symbol": "IBM"}])

    def test_oversize_batch_rejected(self, world, client):
        limit = world.service("glotta").batch_max_size
        payloads = [{"text": f"item {index}"} for index in range(limit + 1)]
        with pytest.raises(ValueError, match="exceeds"):
            client.invoke_batched("glotta", "analyze", payloads)


class TestInvokeMany:
    def test_duplicates_fold_into_one_upstream_item(self, world, client):
        texts = [document.text for document in world.corpus.documents[:3]]
        payloads = [{"text": texts[index % 3]} for index in range(10)]
        results = client.invoke_many("glotta", "analyze", payloads)
        assert len(results) == 10
        assert world.service("glotta").stats.calls == 3
        assert world.transport.stats.batch_calls == 1
        assert client.coalescer.stats.coalesced == 7
        folded = [r for r in results if r.coalesced]
        assert len(folded) == 7
        assert all(r.cost == 0.0 for r in folded)
        # Order preserved: every result answers its own payload.
        for payload, result in zip(payloads, results):
            twin = results[texts.index(payload["text"])]
            assert result.value == twin.value

    def test_second_burst_served_from_cache(self, world, client):
        payloads = [{"text": document.text}
                    for document in world.corpus.documents[:4]]
        client.invoke_many("glotta", "analyze", payloads)
        repeat = client.invoke_many("glotta", "analyze", payloads)
        assert all(result.cached for result in repeat)
        assert world.service("glotta").stats.calls == 4

    def test_chunks_respect_the_declared_batch_limit(self, world, client):
        limit = world.service("glotta").batch_max_size
        payloads = [{"text": f"Initech memo number {index}"}
                    for index in range(limit + 3)]
        results = client.invoke_many("glotta", "analyze", payloads,
                                     use_cache=False)
        assert len(results) == limit + 3
        assert world.transport.stats.batch_calls == 2

    def test_falls_back_to_sequential_without_batch_support(
            self, world, client):
        payloads = [{"query": "IBM"}, {"query": "IBM"}, {"query": "Initech"}]
        results = client.invoke_many("goggle", "search", payloads,
                                     use_cache=False)
        assert world.transport.stats.batch_calls == 0
        assert world.service("goggle").stats.calls == 2  # one fold
        assert results[1].coalesced
        assert not isinstance(results[2], Exception)

    def test_failures_returned_in_place(self, world, client):
        world.service("goggle").failures = ScriptedFailures({0})
        results = client.invoke_many(
            "goggle", "search", [{"query": "IBM"}, {"query": "Initech"}],
            use_cache=False)
        assert isinstance(results[0], RemoteServiceError)
        assert not isinstance(results[1], Exception)


# ---------------------------------------------------------------------------
# MicroBatcher windows
# ---------------------------------------------------------------------------

class TestMicroBatcher:
    def test_full_window_flushes_on_submit(self, world, client):
        batcher = client.batcher(max_batch_size=3)
        texts = [document.text for document in world.corpus.documents[:3]]
        futures = [batcher.submit("glotta", "analyze", {"text": text})
                   for text in texts]
        assert all(future.is_done() for future in futures)
        assert world.transport.stats.batch_calls == 1
        assert batcher.stats.size_flushes == 1
        assert batcher.pending() == 0
        assert futures[0].get().batched

    def test_expired_window_flushes_with_the_next_submit(self, world, client):
        batcher = client.batcher(max_batch_size=8, max_wait=0.05)
        batcher.submit("glotta", "analyze",
                       {"text": world.corpus.documents[0].text})
        world.clock.advance(0.06)
        batcher.submit("glotta", "analyze",
                       {"text": world.corpus.documents[1].text})
        assert world.transport.stats.batch_calls == 1
        assert world.transport.stats.batched_items == 2
        assert batcher.stats.deadline_flushes == 1

    def test_flush_due_is_clock_driven(self, world, client):
        batcher = client.batcher(max_batch_size=8, max_wait=0.05)
        future = batcher.submit("glotta", "analyze", {"text": TEXT})
        assert batcher.flush_due() == 0  # window still young
        world.clock.advance(0.05)
        assert batcher.flush_due() == 1
        assert future.is_done()
        assert batcher.stats.deadline_flushes == 1

    def test_empty_flush_window_is_a_counted_noop(self, world, client):
        batcher = client.batcher(max_batch_size=4)
        assert batcher.flush_all() == 0
        assert batcher.stats.empty_flushes == 1
        assert world.transport.stats.calls == 0

    def test_poisoned_item_fails_only_its_own_future(self, world, client):
        world.service("glotta").failures = ScriptedFailures({1})
        batcher = client.batcher(max_batch_size=3)
        texts = [document.text for document in world.corpus.documents[:3]]
        futures = [batcher.submit("glotta", "analyze", {"text": text},
                                  use_cache=False)
                   for text in texts]
        assert isinstance(futures[1].exception(), RemoteServiceError)
        assert futures[0].exception() is None
        assert futures[2].exception() is None

    def test_cache_hit_bypasses_the_window(self, world, client):
        client.invoke("glotta", "analyze", {"text": TEXT})
        batcher = client.batcher(max_batch_size=4)
        future = batcher.submit("glotta", "analyze", {"text": TEXT})
        assert future.is_done()
        assert future.get().cached
        assert batcher.pending() == 0

    def test_unflagged_service_rejected(self, client):
        batcher = client.batcher()
        with pytest.raises(ValueError, match="batch"):
            batcher.submit("tickerfeed", "quote", {"symbol": "IBM"})

    def test_batcher_caps_below_the_catalog_limit(self, world, client):
        batcher = client.batcher(max_batch_size=2)
        assert batcher._limit_for("glotta") == 2
        uncapped = client.batcher()
        assert uncapped._limit_for("glotta") == world.service(
            "glotta").batch_max_size

    def test_validation(self, client):
        with pytest.raises(ValueError):
            MicroBatcher(client, max_batch_size=0)
        with pytest.raises(ValueError):
            MicroBatcher(client, max_wait=-0.1)


# ---------------------------------------------------------------------------
# Metrics wiring
# ---------------------------------------------------------------------------

class TestBatchingMetrics:
    def test_coalesce_and_batch_counters_exposed(self, world, client):
        payloads = [{"text": world.corpus.documents[index % 2].text}
                    for index in range(6)]
        client.invoke_many("glotta", "analyze", payloads)
        snapshot = client.obs.metrics.snapshot()
        assert snapshot["coalesce_hits_total"]["values"][0]["value"] == 4
        assert snapshot["batch_flushes_total"]["values"][0]["value"] == 1
        assert snapshot["batch_items_total"]["values"][0]["value"] == 2
        assert snapshot["batch_size"]["values"][0]["count"] == 1
