"""Tests for the RichClient facade."""

import pytest

from repro.core.invoker import RichClient
from repro.core.quota import BudgetExceededError
from repro.core.ranking import Weights
from repro.core.retry import AllServicesFailedError, FailoverInvoker, RetryPolicy
from repro.services.base import ScriptedFailures
from repro.simnet.errors import RemoteServiceError, ServiceTimeoutError

TEXT = "IBM announced excellent results while Initech struggled badly."


class TestInvoke:
    def test_returns_invocation_result(self, client):
        result = client.invoke("lexica-prime", "analyze", {"text": TEXT})
        assert result.service == "lexica-prime"
        assert result.latency > 0
        assert result.cost > 0
        assert not result.cached
        assert any(e["id"] == "C_ibm" for e in result.value["entities"])

    def test_monitor_records_success(self, client):
        client.invoke("lexica-prime", "analyze", {"text": TEXT})
        assert client.monitor.call_count("lexica-prime") == 1
        assert client.monitor.availability("lexica-prime") == 1.0

    def test_monitor_records_failure(self, world, client):
        world.service("glotta").failures = ScriptedFailures({0})
        with pytest.raises(RemoteServiceError):
            client.invoke("glotta", "analyze", {"text": TEXT}, use_cache=False)
        assert client.monitor.availability("glotta") == 0.0
        assert client.monitor.failure_count("glotta") == 1

    def test_latency_params_recorded(self, client):
        client.invoke("lexica-prime", "analyze", {"text": TEXT})
        observations = client.monitor.latency_observations("lexica-prime", "size")
        assert observations[0][0] == float(len(TEXT))

    def test_quality_rater_feeds_monitor(self, client):
        client.invoke("lexica-prime", "analyze", {"text": TEXT},
                      quality_rater=lambda value: len(value["entities"]) / 10)
        assert client.monitor.mean_quality("lexica-prime") == pytest.approx(0.2)

    def test_timeout_propagates(self, client):
        with pytest.raises(ServiceTimeoutError):
            client.invoke("lexica-prime", "analyze", {"text": TEXT},
                          timeout=1e-6, use_cache=False)

    def test_unknown_service(self, client):
        from repro.util.errors import NotFoundError

        with pytest.raises(NotFoundError):
            client.invoke("ghost", "op", {})


class TestCachingBehaviour:
    def test_second_call_served_from_cache(self, client):
        first = client.invoke("lexica-prime", "analyze", {"text": TEXT})
        second = client.invoke("lexica-prime", "analyze", {"text": TEXT})
        assert not first.cached
        assert second.cached
        assert second.latency == 0.0
        assert second.cost == 0.0
        assert second.value == first.value

    def test_cache_hits_do_not_consume_quota(self, client):
        client.quota.set_budget("lexica-prime", max_calls=1)
        client.invoke("lexica-prime", "analyze", {"text": TEXT})
        # Same request again: served locally, no budget violation.
        result = client.invoke("lexica-prime", "analyze", {"text": TEXT})
        assert result.cached

    def test_cache_bypass(self, client):
        client.invoke("lexica-prime", "analyze", {"text": TEXT})
        result = client.invoke("lexica-prime", "analyze", {"text": TEXT},
                               use_cache=False)
        assert not result.cached

    def test_mutations_never_cached(self, client):
        first = client.invoke("store-standard", "put", {"key": "k", "value": 1})
        second = client.invoke("store-standard", "put", {"key": "k", "value": 1})
        assert not first.cached and not second.cached

    def test_mutation_invalidates_service_reads(self, client):
        client.invoke("store-standard", "put", {"key": "k", "value": 1})
        read_one = client.invoke("store-standard", "get", {"key": "k"})
        assert read_one.value["value"] == 1
        client.invoke("store-standard", "put", {"key": "k", "value": 2})
        read_two = client.invoke("store-standard", "get", {"key": "k"})
        assert not read_two.cached
        assert read_two.value["value"] == 2

    def test_cache_hit_not_recorded_as_service_call(self, client):
        client.invoke("lexica-prime", "analyze", {"text": TEXT})
        client.invoke("lexica-prime", "analyze", {"text": TEXT})
        assert client.monitor.call_count("lexica-prime") == 1


class TestBudget:
    def test_budget_blocks_remote_calls(self, client):
        client.quota.set_budget("glotta", max_calls=1)
        client.invoke("glotta", "analyze", {"text": TEXT}, use_cache=False)
        with pytest.raises(BudgetExceededError):
            client.invoke("glotta", "analyze", {"text": "other text"},
                          use_cache=False)


class TestAsync:
    def test_invoke_async_returns_future(self, client):
        future = client.invoke_async("lexica-prime", "analyze", {"text": TEXT})
        result = future.get(timeout=10)
        assert result.service == "lexica-prime"

    def test_callback_fires(self, client):
        import threading

        done = threading.Event()
        future = client.invoke_async("lexica-prime", "analyze", {"text": TEXT})
        future.add_listener(lambda _completed: done.set())
        assert done.wait(timeout=10)

    def test_invoke_all_preserves_order_and_captures_errors(self, world, client):
        world.service("glotta").failures = ScriptedFailures({0})
        results = client.invoke_all([
            ("lexica-prime", "analyze", {"text": TEXT}),
            ("glotta", "analyze", {"text": TEXT}),
        ], use_cache=False)
        assert results[0].service == "lexica-prime"
        assert isinstance(results[1], RemoteServiceError)


class TestFailover:
    def test_failover_to_healthy_service(self, world, client):
        ranked = [name for name, _ in client.rank_services("nlu")]
        world.service(ranked[0]).failures = ScriptedFailures(set(range(10)))
        result = client.invoke_with_failover("nlu", "analyze", {"text": TEXT},
                                             use_cache=False)
        assert result.service != ranked[0]
        assert any(log.error for log in result.attempts)

    def test_all_down_raises(self, world, client):
        for service in world.services_of_kind("nlu"):
            service.failures = ScriptedFailures(set(range(100)))
        with pytest.raises(AllServicesFailedError):
            client.invoke_with_failover("nlu", "analyze", {"text": TEXT},
                                        use_cache=False)

    def test_unknown_kind_rejected(self, client):
        with pytest.raises(ValueError):
            client.invoke_with_failover("teleportation", "op", {})

    def test_failover_respects_per_service_policy(self, world, client):
        for service in world.services_of_kind("nlu"):
            service.failures = ScriptedFailures(set(range(100)))
        client.failover = FailoverInvoker(
            default_policy=RetryPolicy(max_attempts=1), clock=client.clock)
        with pytest.raises(AllServicesFailedError) as excinfo:
            client.invoke_with_failover("nlu", "analyze", {"text": TEXT},
                                        use_cache=False)
        assert len(excinfo.value.attempts) == 3  # one per provider


class TestRedundantInvocation:
    def test_all_providers_answer(self, client):
        results = client.invoke_redundant(
            ["lexica-prime", "glotta", "wordsmith-lite"], "analyze",
            {"text": TEXT}, use_cache=False)
        assert set(results) == {"lexica-prime", "glotta", "wordsmith-lite"}
        assert all(not isinstance(value, Exception) for value in results.values())

    def test_failures_captured_per_service(self, world, client):
        world.service("glotta").failures = ScriptedFailures({0})
        results = client.invoke_redundant(
            ["lexica-prime", "glotta"], "analyze", {"text": TEXT},
            parallel=False, use_cache=False)
        assert isinstance(results["glotta"], RemoteServiceError)
        assert not isinstance(results["lexica-prime"], Exception)

    def test_sequential_mode(self, client):
        results = client.invoke_redundant(
            ["lexica-prime", "glotta"], "analyze", {"text": TEXT},
            parallel=False, use_cache=False)
        assert len(results) == 2


class TestRankingIntegration:
    def test_rank_services_uses_collected_history(self, client):
        for provider in ("lexica-prime", "glotta", "wordsmith-lite"):
            for _ in range(3):
                client.invoke(provider, "analyze", {"text": TEXT}, use_cache=False)
        ranked = client.rank_services(
            "nlu", weights=Weights(response_time=1, cost=0, quality=0))
        assert ranked[0][0] == "wordsmith-lite"  # fastest provider
        assert client.best_service(
            "nlu", weights=Weights(response_time=1, cost=0, quality=0)
        ) == "wordsmith-lite"

    def test_service_summaries(self, client):
        client.invoke("lexica-prime", "analyze", {"text": TEXT})
        summaries = client.service_summaries()
        assert any(summary["service"] == "lexica-prime" for summary in summaries)
