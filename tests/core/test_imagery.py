"""Tests for the image search → classify → aggregate pipeline."""

import pytest

from repro.core.imagery import ImageSearchAnalyzer

VISION_PROVIDERS = ("visionary", "peek", "glance")


@pytest.fixture
def analyzer(client):
    return ImageSearchAnalyzer(client)


class TestSearchAndStore:
    def test_hits_stored_locally(self, analyzer):
        hits = analyzer.search_images("cat", limit=5)
        assert hits
        for hit in hits:
            stored = analyzer.stored_image(hit["image_id"])
            assert stored["descriptor"] == hit["descriptor"]
            assert stored["query"] == "cat"

    def test_unknown_image_not_stored(self, analyzer):
        assert analyzer.stored_image("missing") is None


class TestClassification:
    def test_single_provider(self, analyzer):
        hit = analyzer.search_images("dog", limit=1)[0]
        classes = analyzer.classify(hit["descriptor"], "visionary")
        assert classes[0]["confidence"] >= classes[-1]["confidence"]

    def test_agreement_voting(self, analyzer):
        hit = analyzer.search_images("dog", limit=1)[0]
        verdict = analyzer.classify_with_agreement(hit["descriptor"],
                                                   VISION_PROVIDERS)
        assert 0 < verdict["confidence"] <= 1.0
        assert set(verdict["votes"]) == set(VISION_PROVIDERS)
        assert verdict["label"] in verdict["votes"].values()


class TestPipeline:
    def test_full_pipeline(self, analyzer, world):
        report = analyzer.analyze_image_search("cat", VISION_PROVIDERS, limit=10)
        assert report["images_analyzed"] == len(report["verdicts"])
        assert sum(report["label_distribution"].values()) == report[
            "images_analyzed"]
        assert 0.0 <= report["on_topic_fraction"] <= 1.0

    def test_classification_beats_tags(self, analyzer, world):
        """§2.2's point: tags lie; the image analysis service tells you
        what the pictures really show."""
        search = world.service("pixfinder")
        gold = {image.image_id: image.gold_label for image in search.images}
        report = analyzer.analyze_image_search("cat", ("visionary",), limit=30)
        correct = sum(
            1 for verdict in report["verdicts"]
            if verdict["label"] == gold[verdict["image_id"]]
        )
        # Tag accuracy for the same result set:
        tag_correct = sum(
            1 for verdict in report["verdicts"] if gold[verdict["image_id"]] == "cat"
        )
        assert correct > tag_correct

    def test_offline_reanalysis(self, analyzer, world, client):
        analyzer.analyze_image_search("dog", ("visionary",), limit=6)
        search_calls = client.monitor.call_count("pixfinder")
        replay = analyzer.reanalyze_stored(("peek",))
        assert replay["images_analyzed"] >= 6
        assert client.monitor.call_count("pixfinder") == search_calls  # no re-search
