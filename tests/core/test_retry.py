"""Tests for retry policies and ranked failover."""

import pytest

from repro.core.retry import (
    AllServicesFailedError,
    FailoverInvoker,
    RetriesExhaustedError,
    RetryPolicy,
    invoke_with_retry,
)
from repro.simnet.errors import RemoteServiceError
from repro.util.clock import ManualClock


class Flaky:
    """Callable failing the first ``failures`` times."""

    def __init__(self, failures, result="ok"):
        self.failures = failures
        self.result = result
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise RemoteServiceError("svc", "transient")
        return self.result


class TestRetryPolicy:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3
        assert policy.delay_before_attempt(0) == 0.0

    def test_backoff_schedule(self):
        policy = RetryPolicy(max_attempts=4, backoff=0.1, backoff_multiplier=2.0)
        assert policy.delay_before_attempt(1) == pytest.approx(0.1)
        assert policy.delay_before_attempt(2) == pytest.approx(0.2)
        assert policy.delay_before_attempt(3) == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=-1.0)

    def test_retryable_classification(self):
        policy = RetryPolicy()
        assert policy.is_retryable(RemoteServiceError("s", "x"))
        assert not policy.is_retryable(ValueError())


class TestInvokeWithRetry:
    def test_succeeds_after_transient_failures(self):
        flaky = Flaky(failures=2)
        result = invoke_with_retry(flaky, RetryPolicy(max_attempts=3))
        assert result == "ok"
        assert flaky.calls == 3

    def test_exhausts_budget(self):
        flaky = Flaky(failures=10)
        with pytest.raises(RetriesExhaustedError) as excinfo:
            invoke_with_retry(flaky, RetryPolicy(max_attempts=2), service="svc")
        assert excinfo.value.attempts == 2
        assert flaky.calls == 2

    def test_non_retryable_propagates_immediately(self):
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("logic bug")

        with pytest.raises(ValueError):
            invoke_with_retry(broken, RetryPolicy(max_attempts=5))
        assert len(calls) == 1

    def test_backoff_charged_to_clock(self):
        clock = ManualClock()
        flaky = Flaky(failures=2)
        invoke_with_retry(flaky, RetryPolicy(max_attempts=3, backoff=0.1),
                          clock=clock)
        # delays before attempts 1 and 2: 0.1 + 0.2
        assert clock.now() == pytest.approx(0.3)

    def test_attempt_log(self):
        log = []
        flaky = Flaky(failures=1)
        invoke_with_retry(flaky, RetryPolicy(max_attempts=3), service="svc", log=log)
        assert len(log) == 2
        assert log[0].error is not None
        assert log[1].error is None


class TestFailoverInvoker:
    def test_first_service_wins_when_healthy(self):
        invoker = FailoverInvoker(RetryPolicy(max_attempts=2))
        served, result, attempts = invoker.invoke(
            ["a", "b"], lambda name: f"result-from-{name}")
        assert served == "a"
        assert result == "result-from-a"
        assert len(attempts) == 1

    def test_fails_over_down_the_ranking(self):
        down = {"a", "b"}

        def call(name):
            if name in down:
                raise RemoteServiceError(name, "down")
            return name

        invoker = FailoverInvoker(RetryPolicy(max_attempts=2))
        served, result, attempts = invoker.invoke(["a", "b", "c"], call)
        assert served == "c"
        # a tried twice, b tried twice, c once.
        assert [log.service for log in attempts] == ["a", "a", "b", "b", "c"]

    def test_per_service_budgets(self):
        """'The number of times to retry each service ... may be
        different for different services.'"""
        def call(name):
            raise RemoteServiceError(name, "down")

        invoker = FailoverInvoker(
            default_policy=RetryPolicy(max_attempts=1),
            per_service={"a": RetryPolicy(max_attempts=3)},
        )
        with pytest.raises(AllServicesFailedError) as excinfo:
            invoker.invoke(["a", "b"], call)
        attempts = [log.service for log in excinfo.value.attempts]
        assert attempts == ["a", "a", "a", "b"]

    def test_all_failed_raises_with_log(self):
        invoker = FailoverInvoker(RetryPolicy(max_attempts=1))
        with pytest.raises(AllServicesFailedError):
            invoker.invoke(["a"], lambda name: (_ for _ in ()).throw(
                RemoteServiceError(name, "down")))

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            FailoverInvoker().invoke([], lambda name: name)

    def test_retry_then_succeed_within_one_service(self):
        flaky = Flaky(failures=1)
        invoker = FailoverInvoker(RetryPolicy(max_attempts=3))
        served, result, attempts = invoker.invoke(["a", "b"],
                                                  lambda name: flaky())
        assert served == "a"
        assert len(attempts) == 2
