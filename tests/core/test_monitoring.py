"""Tests for the service monitor."""

import pytest

from repro.core.monitoring import InvocationRecord, ServiceMonitor


def record(service="svc", latency=0.1, success=True, cost=0.01, quality=None,
           params=None, cached=False, timestamp=0.0, error=None):
    return InvocationRecord(
        service=service, operation="op", timestamp=timestamp, latency=latency,
        cost=cost, success=success, error=error,
        latency_params=params or {}, quality=quality, cached=cached,
    )


@pytest.fixture
def monitor():
    return ServiceMonitor()


class TestRecording:
    def test_records_accumulate(self, monitor):
        monitor.record(record())
        monitor.record(record())
        assert monitor.call_count("svc") == 2
        assert monitor.services() == ["svc"]

    def test_bounded_history(self):
        monitor = ServiceMonitor(max_records=3)
        for index in range(10):
            monitor.record(record(latency=float(index)))
        latencies = monitor.latencies("svc")
        assert latencies == [7.0, 8.0, 9.0]

    def test_cached_records_excluded_by_default(self, monitor):
        monitor.record(record(latency=0.2))
        monitor.record(record(latency=0.0, cached=True))
        assert monitor.call_count("svc") == 1
        assert monitor.records("svc", include_cached=True)[1].cached

    def test_unknown_service_empty(self, monitor):
        assert monitor.records("ghost") == []
        assert monitor.mean_latency("ghost") is None
        assert monitor.availability("ghost") is None


class TestPerformance:
    def test_mean_latency(self, monitor):
        monitor.record(record(latency=0.1))
        monitor.record(record(latency=0.3))
        assert monitor.mean_latency("svc") == pytest.approx(0.2)

    def test_failures_excluded_from_latency(self, monitor):
        monitor.record(record(latency=0.1))
        monitor.record(record(latency=None, success=False, error="boom"))
        assert monitor.mean_latency("svc") == pytest.approx(0.1)

    def test_latency_stats_percentiles(self, monitor):
        for value in (0.1, 0.2, 0.3, 0.4, 1.0):
            monitor.record(record(latency=value))
        stats = monitor.latency_stats("svc")
        assert stats.count == 5
        assert stats.p95 > stats.p50

    def test_latency_histogram(self, monitor):
        for value in (0.1, 0.1, 0.9):
            monitor.record(record(latency=value))
        histogram = monitor.latency_histogram("svc", bins=4)
        assert histogram.total == 3

    def test_latency_observations_pair_params(self, monitor):
        monitor.record(record(latency=0.1, params={"size": 100.0}))
        monitor.record(record(latency=0.2, params={"size": 200.0}))
        monitor.record(record(latency=0.5))  # no param -> excluded
        assert monitor.latency_observations("svc", "size") == [
            (100.0, 0.1), (200.0, 0.2),
        ]


class TestAvailabilityCostQuality:
    def test_availability(self, monitor):
        monitor.record(record(success=True))
        monitor.record(record(success=False, latency=None))
        monitor.record(record(success=True))
        assert monitor.availability("svc") == pytest.approx(2 / 3)
        assert monitor.failure_count("svc") == 1

    def test_cost_tracking(self, monitor):
        monitor.record(record(cost=0.01))
        monitor.record(record(cost=0.03))
        assert monitor.mean_cost("svc") == pytest.approx(0.02)
        assert monitor.total_cost("svc") == pytest.approx(0.04)

    def test_quality_from_records(self, monitor):
        monitor.record(record(quality=0.8))
        monitor.record(record(quality=0.6))
        monitor.record(record())  # unrated
        assert monitor.mean_quality("svc") == pytest.approx(0.7)

    def test_standalone_ratings(self, monitor):
        monitor.record(record())
        monitor.rate_quality("svc", 0.9)
        monitor.rate_quality("svc", 0.7)
        assert monitor.mean_quality("svc") == pytest.approx(0.8)
        # Ratings do not distort availability or call counts.
        assert monitor.call_count("svc") == 1
        assert monitor.availability("svc") == 1.0

    def test_no_quality_is_none(self, monitor):
        monitor.record(record())
        assert monitor.mean_quality("svc") is None

    def test_summary_shape(self, monitor):
        monitor.record(record())
        summary = monitor.summary("svc")
        assert summary["service"] == "svc"
        assert summary["calls"] == 1
        assert summary["availability"] == 1.0
        assert summary["mean_latency"] == pytest.approx(0.1)
