"""Tests for admission control: bulkheads, queueing, shedding, 429s."""

import threading

import pytest

from repro import RichClient, build_world
from repro.core.admission import (
    REASON_QUEUE_FULL,
    REASON_QUEUE_TIMEOUT,
    AdmissionController,
    AdmissionLimit,
    AdmissionRejectedError,
    Bulkhead,
)
from repro.core.gateway import SdkGateway
from repro.util.clock import ManualClock, RealClock

TEXT = "IBM announced excellent results while Initech struggled badly."


class TestAdmissionLimit:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionLimit(max_concurrent=0)
        with pytest.raises(ValueError):
            AdmissionLimit(max_queue=-1)
        with pytest.raises(ValueError):
            AdmissionLimit(queue_timeout=-0.1)


class TestBulkhead:
    def test_try_acquire_until_full(self):
        bulkhead = Bulkhead(ManualClock(), "svc",
                            AdmissionLimit(max_concurrent=2))
        assert bulkhead.try_acquire()
        assert bulkhead.try_acquire()
        assert not bulkhead.try_acquire()
        assert bulkhead.inflight == 2
        bulkhead.release()
        assert bulkhead.try_acquire()
        assert bulkhead.stats.peak_inflight == 2

    def test_fast_fail_when_queue_full(self):
        clock = ManualClock()
        bulkhead = Bulkhead(clock, "svc", AdmissionLimit(
            max_concurrent=1, max_queue=0, queue_timeout=0.5))
        bulkhead.acquire()
        with pytest.raises(AdmissionRejectedError) as exc_info:
            bulkhead.acquire()
        assert exc_info.value.reason == REASON_QUEUE_FULL
        assert exc_info.value.service == "svc"
        assert exc_info.value.retry_after == 0.5
        # Fast fail: no simulated time was spent.
        assert clock.now() == 0.0
        assert bulkhead.stats.shed_queue_full == 1

    def test_queue_timeout_charges_the_manual_clock(self):
        clock = ManualClock()
        bulkhead = Bulkhead(clock, "svc", AdmissionLimit(
            max_concurrent=1, max_queue=1, queue_timeout=0.25))
        bulkhead.acquire()
        with pytest.raises(AdmissionRejectedError) as exc_info:
            bulkhead.acquire()
        assert exc_info.value.reason == REASON_QUEUE_TIMEOUT
        # The caller really waited the whole queue window.
        assert clock.now() == pytest.approx(0.25)
        assert bulkhead.stats.queued == 1
        assert bulkhead.stats.shed_timeout == 1
        assert bulkhead.stats.total_queue_wait == pytest.approx(0.25)
        assert bulkhead.queue_depth == 0

    def test_queued_caller_admitted_on_release_real_clock(self):
        clock = RealClock(time_scale=0.01)
        bulkhead = Bulkhead(clock, "svc", AdmissionLimit(
            max_concurrent=1, max_queue=1, queue_timeout=5.0))
        bulkhead.acquire()
        admitted = threading.Event()

        def waiter():
            bulkhead.acquire()
            admitted.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        # Give the waiter time to enter the queue, then free the permit.
        deadline = 50
        while bulkhead.queue_depth == 0 and deadline:
            deadline -= 1
            threading.Event().wait(0.005)
        bulkhead.release()
        thread.join(timeout=2.0)
        assert admitted.is_set()
        assert bulkhead.stats.queued == 1
        assert bulkhead.stats.shed == 0

    def test_release_without_acquire_raises(self):
        bulkhead = Bulkhead(ManualClock(), "svc")
        with pytest.raises(RuntimeError, match="release without acquire"):
            bulkhead.release()

    def test_admit_context_manager_releases(self):
        bulkhead = Bulkhead(ManualClock(), "svc",
                            AdmissionLimit(max_concurrent=1))
        with bulkhead.admit():
            assert bulkhead.inflight == 1
        assert bulkhead.inflight == 0


class TestAdmissionController:
    def test_unconfigured_service_is_unlimited_by_default(self):
        controller = AdmissionController(ManualClock())
        assert controller.bulkhead_for("anything") is None

    def test_default_limit_applies_to_every_service(self):
        controller = AdmissionController(
            ManualClock(), default_limit=AdmissionLimit(max_concurrent=3))
        bulkhead = controller.bulkhead_for("svc")
        assert bulkhead is not None
        assert bulkhead.limit.max_concurrent == 3
        # Same bulkhead instance on repeat lookups.
        assert controller.bulkhead_for("svc") is bulkhead

    def test_configure_overrides_and_shed_total_sums(self):
        controller = AdmissionController(ManualClock())
        bulkhead = controller.configure("svc", AdmissionLimit(
            max_concurrent=1, max_queue=0))
        bulkhead.acquire()
        with pytest.raises(AdmissionRejectedError):
            bulkhead.acquire()
        assert controller.shed_total() == 1


class TestClientIntegration:
    @pytest.fixture
    def guarded(self):
        world = build_world(seed=42, corpus_size=20)
        admission = AdmissionController(world.clock, limits={
            "glotta": AdmissionLimit(max_concurrent=1, max_queue=0,
                                     queue_timeout=0.5),
        })
        client = RichClient(world.registry, admission=admission)
        yield world, admission, client
        client.close()

    def test_invoke_sheds_when_bulkhead_is_full(self, guarded):
        world, admission, client = guarded
        bulkhead = admission.bulkhead_for("glotta")
        bulkhead.acquire()  # an in-flight call holds the only permit
        with pytest.raises(AdmissionRejectedError):
            client.invoke("glotta", "analyze", {"text": TEXT},
                          use_cache=False)
        # The shed request never reached the wire.
        assert world.service("glotta").stats.calls == 0
        bulkhead.release()
        result = client.invoke("glotta", "analyze", {"text": TEXT},
                               use_cache=False)
        assert result.service == "glotta"
        assert bulkhead.inflight == 0  # invoke released its permit

    def test_shed_counter_mirrored_to_metrics(self, guarded):
        _, admission, client = guarded
        bulkhead = admission.bulkhead_for("glotta")
        bulkhead.acquire()
        with pytest.raises(AdmissionRejectedError):
            client.invoke("glotta", "analyze", {"text": TEXT},
                          use_cache=False)
        snapshot = client.obs.metrics.snapshot()
        values = snapshot["admission_shed_total"]["values"]
        assert values == [{
            "labels": {"service": "glotta", "reason": REASON_QUEUE_FULL},
            "value": 1,
        }]

    def test_gateway_maps_shed_to_429_with_retry_after(self, guarded):
        _, admission, client = guarded
        gateway = SdkGateway(client)
        admission.bulkhead_for("glotta").acquire()
        envelope = gateway.handle({
            "method": "invoke",
            "params": {"service": "glotta", "operation": "analyze",
                       "payload": {"text": TEXT}, "use_cache": False},
        })
        assert envelope["status"] == 429
        assert envelope["error_type"] == "AdmissionRejectedError"
        assert envelope["retry_after"] == pytest.approx(0.5)

    def test_cache_hits_bypass_admission(self, guarded):
        _, admission, client = guarded
        client.invoke("glotta", "analyze", {"text": TEXT})
        admission.bulkhead_for("glotta").acquire()
        hit = client.invoke("glotta", "analyze", {"text": TEXT})
        assert hit.cached
