"""Tests for circuit breakers."""

import pytest

from repro.core.circuitbreaker import (
    LEGAL_TRANSITIONS,
    CircuitBreaker,
    CircuitBreakerRegistry,
    CircuitOpenError,
    CircuitState,
)
from repro.simnet.errors import RemoteServiceError
from repro.util.clock import ManualClock


@pytest.fixture
def clock():
    return ManualClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker(clock, "svc", failure_threshold=3, cooldown=10.0)


def boom():
    raise RemoteServiceError("svc", "down")


class TestStateMachine:
    def test_starts_closed(self, breaker):
        assert breaker.state is CircuitState.CLOSED
        assert breaker.allow()

    def test_opens_after_threshold(self, breaker):
        for _ in range(3):
            with pytest.raises(RemoteServiceError):
                breaker.call(boom)
        assert breaker.state is CircuitState.OPEN
        assert breaker.stats.opens == 1

    def test_open_circuit_rejects_fast(self, breaker, clock):
        for _ in range(3):
            with pytest.raises(RemoteServiceError):
                breaker.call(boom)
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.call(lambda: "never runs")
        assert excinfo.value.retry_at == pytest.approx(10.0)
        assert clock.now() == 0.0  # no time spent on the rejected call

    def test_success_resets_failure_count(self, breaker):
        for _ in range(2):
            with pytest.raises(RemoteServiceError):
                breaker.call(boom)
        breaker.call(lambda: "fine")
        for _ in range(2):
            with pytest.raises(RemoteServiceError):
                breaker.call(boom)
        assert breaker.state is CircuitState.CLOSED  # never hit 3 in a row

    def test_half_open_after_cooldown(self, breaker, clock):
        for _ in range(3):
            with pytest.raises(RemoteServiceError):
                breaker.call(boom)
        clock.advance(10.0)
        assert breaker.state is CircuitState.HALF_OPEN

    def test_successful_probe_closes(self, breaker, clock):
        for _ in range(3):
            with pytest.raises(RemoteServiceError):
                breaker.call(boom)
        clock.advance(10.0)
        assert breaker.call(lambda: "recovered") == "recovered"
        assert breaker.state is CircuitState.CLOSED
        assert breaker.stats.closes == 1

    def test_failed_probe_reopens(self, breaker, clock):
        for _ in range(3):
            with pytest.raises(RemoteServiceError):
                breaker.call(boom)
        clock.advance(10.0)
        with pytest.raises(RemoteServiceError):
            breaker.call(boom)  # the single half-open probe fails
        assert breaker.state is CircuitState.OPEN
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: "still rejected")

    def test_validation(self, clock):
        with pytest.raises(ValueError):
            CircuitBreaker(clock, failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(clock, cooldown=0.0)


class TestHalfOpenProbeCap:
    def test_only_the_first_half_open_caller_probes(self, breaker, clock):
        for _ in range(3):
            with pytest.raises(RemoteServiceError):
                breaker.call(boom)
        clock.advance(10.0)
        assert breaker.state is CircuitState.HALF_OPEN
        assert breaker.allow()          # this caller becomes the probe
        assert not breaker.allow()      # a second concurrent probe: rejected
        assert not breaker.allow()
        assert breaker.stats.probe_rejections == 2

    def test_probe_slot_frees_after_the_outcome(self, breaker, clock):
        for _ in range(3):
            with pytest.raises(RemoteServiceError):
                breaker.call(boom)
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()        # probe failed -> OPEN again
        assert breaker.state is CircuitState.OPEN
        clock.advance(10.0)
        assert breaker.allow()          # next cooldown: a fresh probe slot
        breaker.record_success()
        assert breaker.state is CircuitState.CLOSED
        assert breaker.allow()          # closed circuit has no probe cap
        assert breaker.allow()


class TestTransitionLog:
    def test_full_walk_is_recorded_with_timestamps(self, breaker, clock):
        for _ in range(3):
            with pytest.raises(RemoteServiceError):
                breaker.call(boom)
        clock.advance(10.0)
        with pytest.raises(RemoteServiceError):
            breaker.call(boom)          # probe fails: back to OPEN
        clock.advance(10.0)
        breaker.call(lambda: "ok")      # probe succeeds: CLOSED
        edges = [(t.source, t.target) for t in breaker.transitions]
        assert edges == [
            (CircuitState.CLOSED, CircuitState.OPEN),
            (CircuitState.OPEN, CircuitState.HALF_OPEN),
            (CircuitState.HALF_OPEN, CircuitState.OPEN),
            (CircuitState.OPEN, CircuitState.HALF_OPEN),
            (CircuitState.HALF_OPEN, CircuitState.CLOSED),
        ]
        assert [t.at for t in breaker.transitions] == [
            0.0, 10.0, 10.0, 20.0, 20.0]

    def test_every_recorded_transition_is_legal(self, breaker, clock):
        for _ in range(3):
            with pytest.raises(RemoteServiceError):
                breaker.call(boom)
        clock.advance(10.0)
        breaker.call(lambda: "ok")
        assert all((t.source, t.target) in LEGAL_TRANSITIONS
                   for t in breaker.transitions)

    def test_repeated_successes_do_not_spam_the_log(self, breaker):
        for _ in range(5):
            breaker.call(lambda: "fine")
        assert breaker.transitions == []  # CLOSED -> CLOSED is not a change

    def test_transition_metrics_mirrored(self, clock):
        from repro.obs.metrics import MetricsRegistry

        registry = CircuitBreakerRegistry(clock, failure_threshold=1,
                                          cooldown=5.0)
        metrics = MetricsRegistry()
        registry.bind_metrics(metrics)
        with pytest.raises(RemoteServiceError):
            registry.call("svc", boom)
        with pytest.raises(CircuitOpenError):
            registry.call("svc", lambda: 1)
        snapshot = metrics.snapshot()
        transitions = snapshot["circuit_transitions_total"]["values"]
        assert sum(value["value"] for value in transitions) == 1
        rejected = snapshot["circuit_rejected_total"]["values"]
        assert rejected[0]["value"] == 1


class TestRegistry:
    def test_breakers_are_per_service(self, clock):
        registry = CircuitBreakerRegistry(clock, failure_threshold=1,
                                          cooldown=5.0)
        with pytest.raises(RemoteServiceError):
            registry.call("a", boom)
        with pytest.raises(CircuitOpenError):
            registry.call("a", lambda: 1)
        assert registry.call("b", lambda: 2) == 2  # 'b' unaffected
        assert registry.open_circuits() == ["a"]

    def test_overrides(self, clock):
        registry = CircuitBreakerRegistry(
            clock, failure_threshold=5, cooldown=5.0,
            overrides={"fragile": (1, 60.0)})
        assert registry.breaker("fragile").failure_threshold == 1
        assert registry.breaker("fragile").cooldown == 60.0
        assert registry.breaker("normal").failure_threshold == 5


class TestWithRealServices:
    def test_breaker_saves_simulated_time_during_outage(self, world):
        """During a sustained outage the breaker answers instantly
        instead of paying a network round trip per attempt."""
        from repro import RichClient
        from repro.services.base import ScriptedFailures

        client = RichClient(world.registry)
        world.service("glotta").failures = ScriptedFailures(set(range(1000)))
        registry = CircuitBreakerRegistry(world.clock, failure_threshold=3,
                                          cooldown=60.0)

        def attempt():
            return client.invoke("glotta", "analyze",
                                 {"text": "is anyone there"}, use_cache=False)

        failures = rejections = 0
        time_before_open = None
        for _ in range(20):
            try:
                registry.call("glotta", attempt)
            except CircuitOpenError:
                rejections += 1
            except RemoteServiceError:
                failures += 1
                time_before_open = world.clock.now()
        assert failures == 3           # only the threshold-worth hit the wire
        assert rejections == 17
        assert world.clock.now() == time_before_open  # rejections were free
        client.close()
