"""Tests for service scoring and ranking (Equations 1 and 2)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.latency import LatencyPredictor
from repro.core.monitoring import InvocationRecord, ServiceMonitor
from repro.core.ranking import (
    Estimate,
    ServiceRanker,
    Weights,
    normalized_score,
    weighted_score,
)
from repro.util.errors import ConfigurationError

non_negative = st.floats(min_value=0, max_value=1e6, allow_nan=False)


class TestEquationOne:
    def test_formula(self):
        weights = Weights(response_time=2.0, cost=3.0, quality=4.0)
        assert weighted_score(0.5, 0.1, 0.8, weights) == pytest.approx(
            2.0 * 0.5 + 3.0 * 0.1 - 4.0 * 0.8)

    def test_lower_latency_scores_better(self):
        assert weighted_score(0.1, 0.0, 0.0) < weighted_score(0.5, 0.0, 0.0)

    def test_higher_quality_scores_better(self):
        assert weighted_score(0.1, 0.0, 0.9) < weighted_score(0.1, 0.0, 0.1)

    @given(non_negative, non_negative, non_negative, non_negative)
    def test_monotone_in_each_dimension(self, r, c, q, delta):
        base = weighted_score(r, c, q)
        assert weighted_score(r + delta, c, q) >= base
        assert weighted_score(r, c + delta, q) >= base
        assert weighted_score(r, c, q + delta) <= base


class TestEquationTwo:
    def test_formula(self):
        score = normalized_score(0.5, 0.1, 0.8, 1.0, 0.2, 1.0)
        assert score == pytest.approx(0.5 / 1.0 + 0.1 / 0.2 - 0.8 / 1.0)

    def test_terms_bounded_by_weights(self):
        """With unit weights every term of Sn is in [0, 1]."""
        score = normalized_score(1.0, 1.0, 0.0, 1.0, 1.0, 1.0)
        assert score == pytest.approx(2.0)
        score = normalized_score(0.0, 0.0, 1.0, 1.0, 1.0, 1.0)
        assert score == pytest.approx(-1.0)

    def test_zero_max_vanishes_term(self):
        assert normalized_score(0.5, 0.0, 0.0, 1.0, 0.0, 0.0) == pytest.approx(0.5)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            normalized_score(-0.1, 0.0, 0.0, 1.0, 1.0, 1.0)

    @given(non_negative, non_negative, non_negative)
    def test_bounded_for_unit_weights(self, r, c, q):
        rmax = max(r, 1.0)
        cmax = max(c, 1.0)
        qmax = max(q, 1.0)
        score = normalized_score(r, c, q, rmax, cmax, qmax)
        assert -1.0 <= score <= 2.0 + 1e-9


def seeded_monitor():
    """History: fast/expensive 'a', slow/cheap 'b', unknown 'c'."""
    monitor = ServiceMonitor()
    for _ in range(5):
        monitor.record(InvocationRecord("a", "op", 0.0, 0.1, 0.02, True))
        monitor.record(InvocationRecord("b", "op", 0.0, 0.4, 0.001, True))
    monitor.rate_quality("a", 0.9)
    monitor.rate_quality("b", 0.5)
    return monitor


class TestEstimates:
    def test_estimates_from_history(self):
        ranker = ServiceRanker(seeded_monitor())
        estimates = {e.service: e for e in ranker.estimates(["a", "b"])}
        assert estimates["a"].response_time == pytest.approx(0.1)
        assert estimates["a"].cost == pytest.approx(0.02)
        assert estimates["a"].quality == pytest.approx(0.9)
        assert estimates["a"].defaults_used == ()

    def test_mean_fallback_for_unknown_service(self):
        ranker = ServiceRanker(seeded_monitor(), fallback="mean")
        estimates = {e.service: e for e in ranker.estimates(["a", "b", "c"])}
        unknown = estimates["c"]
        assert unknown.response_time == pytest.approx(0.25)  # mean of peers
        assert set(unknown.defaults_used) == {"response_time", "cost", "quality"}

    def test_median_fallback(self):
        monitor = seeded_monitor()
        for _ in range(5):
            monitor.record(InvocationRecord("x", "op", 0.0, 10.0, 0.0, True))
        ranker = ServiceRanker(monitor, fallback="median")
        estimates = {e.service: e for e in ranker.estimates(["a", "b", "x", "c"])}
        assert estimates["c"].response_time == pytest.approx(0.4)  # median

    def test_user_fallback(self):
        ranker = ServiceRanker(
            seeded_monitor(), fallback="user",
            user_defaults={"response_time": 9.0, "cost": 0.5, "quality": 0.1},
        )
        estimates = {e.service: e for e in ranker.estimates(["a", "c"])}
        assert estimates["c"].response_time == 9.0
        assert estimates["c"].cost == 0.5

    def test_invalid_fallback_rejected(self):
        with pytest.raises(ConfigurationError):
            ServiceRanker(seeded_monitor(), fallback="guess")


class TestRanking:
    def test_latency_dominant_ranking(self):
        ranker = ServiceRanker(seeded_monitor())
        ranked = ranker.rank(["a", "b"],
                             weights=Weights(response_time=1, cost=0, quality=0))
        assert [name for name, _ in ranked] == ["a", "b"]

    def test_cost_dominant_ranking(self):
        ranker = ServiceRanker(seeded_monitor())
        ranked = ranker.rank(["a", "b"],
                             weights=Weights(response_time=0, cost=1, quality=0))
        assert [name for name, _ in ranked] == ["b", "a"]

    def test_quality_dominant_ranking(self):
        ranker = ServiceRanker(seeded_monitor())
        ranked = ranker.rank(["a", "b"],
                             weights=Weights(response_time=0, cost=0, quality=1))
        assert [name for name, _ in ranked] == ["a", "b"]

    def test_scores_ascending(self):
        ranker = ServiceRanker(seeded_monitor())
        ranked = ranker.rank(["a", "b"])
        scores = [score for _, score in ranked]
        assert scores == sorted(scores)

    def test_normalized_formula_ranking(self):
        ranker = ServiceRanker(seeded_monitor())
        ranked = ranker.rank(["a", "b"], formula="normalized",
                             weights=Weights(response_time=1, cost=0, quality=0))
        assert ranked[0][0] == "a"

    def test_custom_formula(self):
        ranker = ServiceRanker(seeded_monitor())

        def prefer_expensive(estimate: Estimate, candidates):
            return -estimate.cost

        ranked = ranker.rank(["a", "b"], formula=prefer_expensive)
        assert ranked[0][0] == "a"

    def test_unknown_formula_rejected(self):
        ranker = ServiceRanker(seeded_monitor())
        with pytest.raises(ConfigurationError):
            ranker.rank(["a", "b"], formula="alchemy")

    def test_best(self):
        ranker = ServiceRanker(seeded_monitor())
        assert ranker.best(["a", "b"],
                           weights=Weights(1, 0, 0)) == "a"

    def test_best_of_none_rejected(self):
        with pytest.raises(ValueError):
            ServiceRanker(seeded_monitor()).best([])

    def test_empty_rank(self):
        assert ServiceRanker(seeded_monitor()).rank([]) == []

    def test_rank_uses_latency_params(self):
        """With size-dependent history, ranking flips at the crossover."""
        monitor = ServiceMonitor()
        for size in (100, 1000, 10_000, 50_000, 100_000):
            monitor.record(InvocationRecord(
                "s1", "put", 0.0, 0.02 + 2e-5 * size, 0.0, True,
                latency_params={"size": size}))
            monitor.record(InvocationRecord(
                "s2", "put", 0.0, 0.25 + 1e-6 * size, 0.0, True,
                latency_params={"size": size}))
        ranker = ServiceRanker(monitor, LatencyPredictor(monitor))
        weights = Weights(response_time=1, cost=0, quality=0)
        assert ranker.best(["s1", "s2"], {"size": 100.0}, weights=weights) == "s1"
        assert ranker.best(["s1", "s2"], {"size": 90_000.0}, weights=weights) == "s2"
