"""Tests for client-side quota/budget tracking."""

import threading

import pytest

from repro.core.quota import BudgetExceededError, ClientQuotaTracker


@pytest.fixture
def tracker():
    return ClientQuotaTracker()


class TestSpendTracking:
    def test_record_accumulates(self, tracker):
        tracker.record("svc", 0.01)
        tracker.record("svc", 0.02)
        assert tracker.calls("svc") == 2
        assert tracker.cost("svc") == pytest.approx(0.03)

    def test_total_cost_across_services(self, tracker):
        tracker.record("a", 0.01)
        tracker.record("b", 0.04)
        assert tracker.total_cost() == pytest.approx(0.05)

    def test_unknown_service_is_zero(self, tracker):
        assert tracker.calls("ghost") == 0
        assert tracker.cost("ghost") == 0.0


class TestBudgets:
    def test_no_budget_never_blocks(self, tracker):
        for _ in range(1000):
            tracker.check("svc")
            tracker.record("svc", 1.0)

    def test_call_budget_enforced(self, tracker):
        tracker.set_budget("svc", max_calls=2)
        tracker.check("svc"); tracker.record("svc", 0)
        tracker.check("svc"); tracker.record("svc", 0)
        with pytest.raises(BudgetExceededError):
            tracker.check("svc")

    def test_cost_budget_enforced(self, tracker):
        tracker.set_budget("svc", max_cost=0.05)
        tracker.record("svc", 0.04)
        tracker.check("svc", upcoming_cost=0.005)
        with pytest.raises(BudgetExceededError):
            tracker.check("svc", upcoming_cost=0.02)

    def test_remaining_calls(self, tracker):
        tracker.set_budget("svc", max_calls=3)
        tracker.record("svc", 0)
        assert tracker.remaining_calls("svc") == 2
        assert tracker.remaining_calls("unbudgeted") is None

    def test_budget_per_service(self, tracker):
        tracker.set_budget("a", max_calls=1)
        tracker.record("a", 0)
        with pytest.raises(BudgetExceededError):
            tracker.check("a")
        tracker.check("b")  # other services unaffected


class TestReservations:
    def test_reserve_charges_up_front(self, tracker):
        reservation = tracker.reserve("svc", estimated_cost=0.05)
        assert tracker.calls("svc") == 1
        assert tracker.cost("svc") == pytest.approx(0.05)
        assert reservation.open

    def test_settle_trues_up_to_actual(self, tracker):
        reservation = tracker.reserve("svc", estimated_cost=0.05)
        tracker.settle(reservation, 0.02)
        assert tracker.calls("svc") == 1
        assert tracker.cost("svc") == pytest.approx(0.02)

    def test_cancel_refunds_slot_and_estimate(self, tracker):
        reservation = tracker.reserve("svc", estimated_cost=0.05)
        tracker.cancel(reservation)
        assert tracker.calls("svc") == 0
        assert tracker.cost("svc") == 0.0

    def test_reservation_cannot_be_closed_twice(self, tracker):
        reservation = tracker.reserve("svc")
        tracker.settle(reservation, 0.01)
        with pytest.raises(ValueError):
            tracker.settle(reservation, 0.01)
        with pytest.raises(ValueError):
            tracker.cancel(reservation)

    def test_reserve_refuses_over_call_budget(self, tracker):
        tracker.set_budget("svc", max_calls=1)
        tracker.reserve("svc")
        with pytest.raises(BudgetExceededError):
            tracker.reserve("svc")

    def test_reserve_counts_estimate_against_cost_budget(self, tracker):
        tracker.set_budget("svc", max_cost=0.10)
        tracker.reserve("svc", estimated_cost=0.08)
        with pytest.raises(BudgetExceededError):
            tracker.reserve("svc", estimated_cost=0.05)

    def test_has_cost_limit(self, tracker):
        assert not tracker.has_cost_limit("svc")
        tracker.set_budget("svc", max_calls=5)
        assert not tracker.has_cost_limit("svc")
        tracker.set_budget("svc", max_cost=1.0)
        assert tracker.has_cost_limit("svc")

    def test_concurrent_burst_cannot_overshoot_max_calls(self, tracker):
        # Regression: the check()/record() pair was racy — a burst of
        # threads could all pass check() before any record()ed.  The
        # atomic reserve path must admit exactly max_calls of them.
        tracker.set_budget("svc", max_calls=10)
        admitted, refused = [], []
        barrier = threading.Barrier(32)

        def worker():
            barrier.wait()
            try:
                admitted.append(tracker.reserve("svc"))
            except BudgetExceededError:
                refused.append(1)

        threads = [threading.Thread(target=worker) for _ in range(32)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(admitted) == 10
        assert len(refused) == 22
        assert tracker.calls("svc") == 10
