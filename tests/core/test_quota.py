"""Tests for client-side quota/budget tracking."""

import pytest

from repro.core.quota import BudgetExceededError, ClientQuotaTracker


@pytest.fixture
def tracker():
    return ClientQuotaTracker()


class TestSpendTracking:
    def test_record_accumulates(self, tracker):
        tracker.record("svc", 0.01)
        tracker.record("svc", 0.02)
        assert tracker.calls("svc") == 2
        assert tracker.cost("svc") == pytest.approx(0.03)

    def test_total_cost_across_services(self, tracker):
        tracker.record("a", 0.01)
        tracker.record("b", 0.04)
        assert tracker.total_cost() == pytest.approx(0.05)

    def test_unknown_service_is_zero(self, tracker):
        assert tracker.calls("ghost") == 0
        assert tracker.cost("ghost") == 0.0


class TestBudgets:
    def test_no_budget_never_blocks(self, tracker):
        for _ in range(1000):
            tracker.check("svc")
            tracker.record("svc", 1.0)

    def test_call_budget_enforced(self, tracker):
        tracker.set_budget("svc", max_calls=2)
        tracker.check("svc"); tracker.record("svc", 0)
        tracker.check("svc"); tracker.record("svc", 0)
        with pytest.raises(BudgetExceededError):
            tracker.check("svc")

    def test_cost_budget_enforced(self, tracker):
        tracker.set_budget("svc", max_cost=0.05)
        tracker.record("svc", 0.04)
        tracker.check("svc", upcoming_cost=0.005)
        with pytest.raises(BudgetExceededError):
            tracker.check("svc", upcoming_cost=0.02)

    def test_remaining_calls(self, tracker):
        tracker.set_budget("svc", max_calls=3)
        tracker.record("svc", 0)
        assert tracker.remaining_calls("svc") == 2
        assert tracker.remaining_calls("unbudgeted") is None

    def test_budget_per_service(self, tracker):
        tracker.set_budget("a", max_calls=1)
        tracker.record("a", 0)
        with pytest.raises(BudgetExceededError):
            tracker.check("a")
        tracker.check("b")  # other services unaffected
