"""Self-gate: the repository ships clean under its own analyzer.

This is the test-suite twin of CI's ``analysis`` job and docs_check's
``check_analysis_clean`` pass: if a change introduces an unsuppressed
finding anywhere under ``src/repro``, this fails locally first.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import ALL_RULE_IDS, analyze_paths

ROOT = Path(__file__).resolve().parents[2]


def test_src_repro_is_analysis_clean_in_strict_mode():
    report = analyze_paths([ROOT / "src" / "repro"], root=ROOT)
    rendered = "\n".join(finding.render() for finding in report.findings)
    assert report.findings == [], f"unsuppressed findings:\n{rendered}"
    assert report.errors == []
    assert report.unknown_suppressions == []
    assert report.ok(strict=True)
    assert sorted(report.rules_run) == sorted(ALL_RULE_IDS)
    assert report.files_scanned > 100


def test_every_suppression_carries_a_justification():
    # A waiver without a why is a finding in disguise.
    for path in sorted((ROOT / "src" / "repro").rglob("*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if "repro: ignore" not in line:
                continue
            comment = line.split("repro: ignore", 1)[1]
            trailing = comment.split("]", 1)[-1].strip(" -—#")
            assert trailing, (
                f"{path.relative_to(ROOT)}:{lineno}: suppression without "
                "a justifying comment")


def test_rule_catalog_is_documented():
    doc = (ROOT / "docs" / "static-analysis.md").read_text(encoding="utf-8")
    for rule_id in ALL_RULE_IDS:
        assert f"`{rule_id}`" in doc, f"{rule_id} missing from the catalog"


def test_registry_names_all_documented():
    from repro.obs import names

    doc = (ROOT / "docs" / "observability.md").read_text(encoding="utf-8")
    for constant, value in names.all_names().items():
        assert value in doc, f"{constant} = {value!r} not documented"
    assert len(names.all_values()) == len(names.all_names())
