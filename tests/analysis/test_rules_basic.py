"""RA001 (clock discipline), RA002 (swallowed exceptions), RA003
(exception chaining): true positives, true negatives, suppressions."""

from __future__ import annotations

from tests.analysis.conftest import rule_ids

# -- RA001 --------------------------------------------------------------------


def test_ra001_flags_time_import_and_naive_now(analyze):
    report = analyze({"app.py": """\
        import time
        from datetime import datetime

        def stamp():
            return time.time(), datetime.now()
        """}, select=["RA001"])
    assert rule_ids(report) == ["RA001", "RA001"]
    lines = sorted(finding.line for finding in report.findings)
    assert lines == [1, 5]


def test_ra001_flags_from_time_import(analyze):
    report = analyze({"app.py": "from time import sleep\n"}, select=["RA001"])
    assert rule_ids(report) == ["RA001"]


def test_ra001_allows_clock_module_and_injected_clocks(analyze):
    report = analyze({
        "util/clock.py": "import time\n",
        "app.py": """\
            def wait(clock):
                clock.charge(1.0)
                return clock.now()
            """,
    }, select=["RA001"])
    assert report.findings == []


def test_ra001_line_suppression(analyze):
    report = analyze({"bench.py": (
        "import time  # repro: ignore[RA001] benchmark needs wall time\n"
    )}, select=["RA001"])
    assert report.findings == []
    assert [finding.rule_id for finding in report.suppressed] == ["RA001"]


# -- RA002 --------------------------------------------------------------------


def test_ra002_flags_filler_only_handler_bodies(analyze):
    report = analyze({"app.py": """\
        def probe(items):
            try:
                risky()
            except ValueError:
                pass
            for item in items:
                try:
                    risky()
                except OSError:
                    continue
        """}, select=["RA002"])
    assert rule_ids(report) == ["RA002", "RA002"]


def test_ra002_allows_handlers_that_do_something(analyze):
    report = analyze({"app.py": """\
        def convert(text, log):
            try:
                return int(text)
            except ValueError:
                log.warning("not an int: %r", text)
                return None
        """}, select=["RA002"])
    assert report.findings == []


def test_ra002_file_suppression(analyze):
    report = analyze({"app.py": """\
        # repro: ignore-file[RA002]
        def probe():
            try:
                risky()
            except ValueError:
                pass
        """}, select=["RA002"])
    assert report.findings == []
    assert len(report.suppressed) == 1


# -- RA003 --------------------------------------------------------------------


def test_ra003_flags_unchained_raise_in_handler(analyze):
    report = analyze({"app.py": """\
        def load(path):
            try:
                return parse(path)
            except OSError:
                raise RuntimeError(f"cannot load {path}")
        """}, select=["RA003"])
    assert rule_ids(report) == ["RA003"]


def test_ra003_allows_chained_bare_and_from_none(analyze):
    report = analyze({"app.py": """\
        def load(path):
            try:
                return parse(path)
            except OSError as exc:
                raise RuntimeError("boom") from exc
            except ValueError:
                raise
            except KeyError:
                raise RuntimeError("unrelated") from None
        """}, select=["RA003"])
    assert report.findings == []


def test_ra003_ignores_raises_in_nested_defs(analyze):
    report = analyze({"app.py": """\
        def load(retry):
            try:
                return parse()
            except OSError:
                def callback():
                    raise RuntimeError("runs later, outside the handler")
                retry(callback)
                return None
        """}, select=["RA003"])
    assert report.findings == []
