"""Shared fixture: run the analyzer over an inline fixture tree."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import analyze_paths


@pytest.fixture
def analyze(tmp_path):
    """``analyze({relpath: source, ...})`` -> Report over a temp tree."""

    def run(files: dict[str, str], **kwargs):
        for name, text in files.items():
            path = tmp_path / name
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(text), encoding="utf-8")
        kwargs.setdefault("root", tmp_path)
        return analyze_paths([tmp_path], **kwargs)

    run.root = tmp_path
    return run


def rule_ids(report) -> list[str]:
    """Sorted rule ids of a report's unsuppressed findings."""
    return sorted(finding.rule_id for finding in report.findings)
