"""RA011 — contextvar scope at bare thread hand-offs."""

from __future__ import annotations

from tests.analysis.conftest import rule_ids

# -- true positives -----------------------------------------------------------


def test_ra011_flags_bare_executor_submit(analyze):
    report = analyze({"svc.py": """\
        from concurrent.futures import ThreadPoolExecutor

        class Service:
            def __init__(self):
                self._pool = ThreadPoolExecutor(max_workers=2)

            def handle(self, fn):
                return self._pool.submit(fn)
        """}, select=["RA011"])
    assert rule_ids(report) == ["RA011"]
    assert "drops contextvars" in report.findings[0].message


def test_ra011_flags_bare_thread_target(analyze):
    report = analyze({"svc.py": """\
        import threading

        def spawn(fn):
            worker = threading.Thread(target=fn)
            worker.start()
            return worker
        """}, select=["RA011"])
    assert rule_ids(report) == ["RA011"]
    assert "threading.Thread" in report.findings[0].message


def test_ra011_flags_pool_obtained_from_factory_return_type(analyze):
    """Interprocedural: the receiver type comes from a callee's return."""
    report = analyze({"svc.py": """\
        from concurrent.futures import ThreadPoolExecutor

        def make_pool():
            return ThreadPoolExecutor(max_workers=2)

        def handle(fn):
            return make_pool().submit(fn)
        """}, select=["RA011"])
    assert rule_ids(report) == ["RA011"]


# -- true negatives -----------------------------------------------------------


def test_ra011_context_run_submission_passes(analyze):
    report = analyze({"svc.py": """\
        import contextvars
        from concurrent.futures import ThreadPoolExecutor

        class Service:
            def __init__(self):
                self._pool = ThreadPoolExecutor(max_workers=2)

            def handle(self, fn):
                context = contextvars.copy_context()
                return self._pool.submit(context.run, fn)
        """}, select=["RA011"])
    assert report.findings == []


def test_ra011_propagating_wrapper_class_exempts_users(analyze):
    report = analyze({"svc.py": """\
        import contextvars
        from concurrent.futures import ThreadPoolExecutor

        class SafeExecutor(ThreadPoolExecutor):
            def submit(self, fn, *args):
                context = contextvars.copy_context()
                return super().submit(context.run, fn, *args)

        class Service:
            def __init__(self):
                self._pool = SafeExecutor(max_workers=2)

            def handle(self, fn):
                return self._pool.submit(fn)
        """}, select=["RA011"])
    findings = [f for f in report.findings if f.line > 7]
    assert findings == []


def test_ra011_unrelated_submit_receivers_pass(analyze):
    report = analyze({"svc.py": """\
        class Batcher:
            def submit(self, item):
                return item

        def handle(batcher, item):
            return batcher.submit(item)
        """}, select=["RA011"])
    assert report.findings == []


# -- suppression --------------------------------------------------------------


def test_ra011_line_suppression_is_honored(analyze):
    report = analyze({"svc.py": """\
        import threading

        def spawn(fn):
            worker = threading.Thread(target=fn)  # repro: ignore[RA011] -- service thread must not inherit tenant scope
            worker.start()
            return worker
        """}, select=["RA011"])
    assert report.findings == []
    assert [f.rule_id for f in report.suppressed] == ["RA011"]
