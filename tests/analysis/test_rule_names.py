"""RA005 — metric/span name registry consistency."""

from __future__ import annotations

from tests.analysis.conftest import rule_ids

_REGISTRY = """\
    FOO_TOTAL = "foo_total"
    BAR_SECONDS = "bar_seconds"
    """


def test_ra005_flags_literal_names_at_sinks(analyze):
    report = analyze({
        "obs/names.py": _REGISTRY,
        "app.py": """\
            def bind(registry, tracer):
                counter = registry.counter("foo_total", "doc")
                with tracer.span("bar_span"):
                    pass
                return counter
            """,
    }, select=["RA005"])
    assert rule_ids(report) == ["RA005", "RA005"]
    assert all("literal" in finding.message for finding in report.findings)


def test_ra005_registry_constants_are_clean(analyze):
    report = analyze({
        "obs/names.py": _REGISTRY,
        "app.py": """\
            from repro.obs import names

            def bind(registry):
                return registry.counter(names.FOO_TOTAL, "doc")
            """,
    }, select=["RA005"])
    assert report.findings == []


def test_ra005_registry_itself_may_hold_literals(analyze):
    # The registry module is where the strings live; counter() calls in
    # other files are sinks, plain UPPER = "literal" assignments are not.
    report = analyze({"obs/names.py": _REGISTRY}, select=["RA005"])
    assert report.findings == []


def test_ra005_duplicate_registry_values(analyze):
    report = analyze({"obs/names.py": """\
        FOO_TOTAL = "foo_total"
        FOO_ALIAS = "foo_total"
        """}, select=["RA005"])
    assert rule_ids(report) == ["RA005"]
    assert "defined twice" in report.findings[0].message


def test_ra005_doc_drift(analyze):
    report = analyze({
        "obs/names.py": _REGISTRY,
        "docs/observability.md": "Only `foo_total` is documented here.\n",
    }, select=["RA005"])
    assert rule_ids(report) == ["RA005"]
    assert "bar_seconds" in report.findings[0].message
    assert "not documented" in report.findings[0].message


def test_ra005_doc_coverage_clears_the_drift_finding(analyze):
    report = analyze({
        "obs/names.py": _REGISTRY,
        "docs/observability.md": "`foo_total` and `bar_seconds`.\n",
    }, select=["RA005"])
    assert report.findings == []
