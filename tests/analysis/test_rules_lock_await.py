"""RA009 — sync locks held across ``await``."""

from __future__ import annotations

from tests.analysis.conftest import rule_ids

# -- true positives -----------------------------------------------------------


def test_ra009_flags_await_inside_sync_with_block(analyze):
    report = analyze({"svc.py": """\
        import asyncio
        import threading

        class Store:
            def __init__(self):
                self._lock = threading.Lock()

            async def refresh(self):
                with self._lock:
                    await asyncio.sleep(0.1)
        """}, select=["RA009"])
    assert rule_ids(report) == ["RA009"]
    assert "held across await" in report.findings[0].message


def test_ra009_flags_async_with_on_sync_lock(analyze):
    report = analyze({"svc.py": """\
        import threading

        class Store:
            def __init__(self):
                self._lock = threading.Lock()

            async def refresh(self):
                async with self._lock:
                    return 1
        """}, select=["RA009"])
    assert rule_ids(report) == ["RA009"]
    assert "`async with` on sync lock" in report.findings[0].message


def test_ra009_flags_lock_acquired_via_helper_call(analyze):
    """Interprocedural: the acquire happens two frames away."""
    report = analyze({"svc.py": """\
        import asyncio
        import threading

        class Store:
            def __init__(self):
                self._lock = threading.Lock()

            def _pin(self):
                self._lock.acquire()

            def _unpin(self):
                self._lock.release()

            async def refresh(self):
                self._pin()
                await asyncio.sleep(0.1)
                self._unpin()
        """}, select=["RA009"])
    assert rule_ids(report) == ["RA009"]
    assert "acquired via" in report.findings[0].message


# -- true negatives -----------------------------------------------------------


def test_ra009_async_lock_across_await_passes(analyze):
    report = analyze({"svc.py": """\
        import asyncio

        class Store:
            def __init__(self):
                self._lock = asyncio.Lock()

            async def refresh(self):
                async with self._lock:
                    await asyncio.sleep(0.1)
        """}, select=["RA009"])
    assert report.findings == []


def test_ra009_await_after_release_passes(analyze):
    report = analyze({"svc.py": """\
        import asyncio
        import threading

        class Store:
            def __init__(self):
                self._lock = threading.Lock()

            async def refresh(self):
                with self._lock:
                    value = 1
                await asyncio.sleep(value)
        """}, select=["RA009"])
    assert report.findings == []


# -- suppression --------------------------------------------------------------


def test_ra009_line_suppression_is_honored(analyze):
    report = analyze({"svc.py": """\
        import asyncio
        import threading

        class Store:
            def __init__(self):
                self._lock = threading.Lock()

            async def refresh(self):
                with self._lock:
                    await asyncio.sleep(0)  # repro: ignore[RA009] -- zero-tick yield, lock hold is intentional
        """}, select=["RA009"])
    assert report.findings == []
    assert [f.rule_id for f in report.suppressed] == ["RA009"]
