"""Runtime lock-order watchdog: OrderedLock + LockOrderWatchdog.

The headline test seeds the classic ABBA deadlock across two threads
and asserts it is detected *deterministically* — by accumulated order,
not by timing — and only when the watchdog is enabled.
"""

from __future__ import annotations

import threading

import pytest

from repro.analysis.runtime import (
    LockOrderViolation,
    LockOrderWatchdog,
    OrderedLock,
)


def _locks(dog: LockOrderWatchdog) -> tuple[OrderedLock, OrderedLock]:
    return OrderedLock("A", watchdog=dog), OrderedLock("B", watchdog=dog)


def _run_abba(dog: LockOrderWatchdog) -> list[BaseException]:
    """Thread one takes A then B; thread two later takes B then A.

    The phases are sequenced with events, so the two threads never
    actually contend — a timing-based detector would see nothing.
    Returns the exceptions raised in thread two.
    """
    lock_a, lock_b = _locks(dog)
    phase_one_done = threading.Event()
    failures: list[BaseException] = []

    def first():
        with lock_a:
            with lock_b:
                pass
        phase_one_done.set()

    def second():
        assert phase_one_done.wait(timeout=5.0)
        try:
            with lock_b:
                with lock_a:
                    pass
        except LockOrderViolation as violation:
            failures.append(violation)

    threads = [threading.Thread(target=first), threading.Thread(target=second)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=5.0)
        assert not thread.is_alive(), "watchdog failed: threads wedged"
    return failures


def test_abba_across_threads_is_detected():
    failures = _run_abba(LockOrderWatchdog())
    assert len(failures) == 1
    violation = failures[0]
    assert violation.wanted == "A" and violation.held == "B"
    assert "lock-order violation" in str(violation)


def test_abba_goes_unnoticed_with_watchdog_disabled():
    # The seeded deadlock pattern must NOT raise when detection is off:
    # this is the control proving the detector (not luck) catches it.
    assert _run_abba(LockOrderWatchdog(enabled=False)) == []


def test_same_thread_order_reversal_is_detected():
    dog = LockOrderWatchdog()
    lock_a, lock_b = _locks(dog)
    with lock_a:
        with lock_b:
            pass
    with lock_b:
        with pytest.raises(LockOrderViolation) as excinfo:
            lock_a.acquire()
    assert excinfo.value.cycle[0] == "B"
    # The failed acquisition must not leave A on the held stack.
    assert dog.held_by_current_thread() == ()


def test_reacquiring_the_same_lock_raises_immediately():
    dog = LockOrderWatchdog()
    lock_a = OrderedLock("A", watchdog=dog)
    with lock_a:
        with pytest.raises(LockOrderViolation):
            lock_a.acquire()
    assert not lock_a.locked()


def test_consistent_order_never_raises():
    dog = LockOrderWatchdog()
    lock_a, lock_b = _locks(dog)
    for _ in range(3):
        with lock_a:
            with lock_b:
                pass
    assert dog.edges() == {"A": {"B"}}


def test_reset_forgets_recorded_edges():
    dog = LockOrderWatchdog()
    lock_a, lock_b = _locks(dog)
    with lock_a:
        with lock_b:
            pass
    dog.reset()
    with lock_b:
        with lock_a:  # no longer a known reversal
            pass
    assert dog.edges() == {"B": {"A"}}


def test_ordered_lock_is_a_lock():
    lock = OrderedLock("solo", watchdog=LockOrderWatchdog())
    assert not lock.locked()
    with lock:
        assert lock.locked()
    assert not lock.locked()
    assert lock.acquire(blocking=False)
    lock.release()
    assert "solo" in repr(lock)


def test_ordered_lock_requires_a_name():
    with pytest.raises(ValueError):
        OrderedLock("")
