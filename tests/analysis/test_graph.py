"""The shared whole-program layer: call graph, types, dataflow."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis.dataflow import (
    affected_by,
    collect_transitive,
    reachable,
    reverse,
)
from repro.analysis.project import Project, collect_files


def _project(tmp_path, files: dict[str, str]) -> Project:
    for name, text in files.items():
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")
    sources, errors = collect_files([tmp_path], tmp_path)
    assert errors == []
    return Project(sources)


# -- call resolution ----------------------------------------------------------


def test_resolves_imported_function_across_files(tmp_path):
    project = _project(tmp_path, {
        "util.py": """\
            def helper(value):
                return value
            """,
        "app.py": """\
            from util import helper

            def run():
                return helper(1)
            """,
    })
    graph = project.call_graph()
    assert "util.helper" in graph.callees("app.run")


def test_resolves_method_through_base_class(tmp_path):
    project = _project(tmp_path, {
        "shapes.py": """\
            class Base:
                def area(self):
                    return 0

            class Square(Base):
                def describe(self):
                    return self.area()
            """,
    })
    graph = project.call_graph()
    assert "shapes.Base.area" in graph.callees("shapes.Square.describe")


def test_resolves_receiver_via_constructor_assignment(tmp_path):
    project = _project(tmp_path, {
        "svc.py": """\
            class Engine:
                def start(self):
                    return 1

            def boot():
                engine = Engine()
                return engine.start()
            """,
    })
    graph = project.call_graph()
    assert "svc.Engine.start" in graph.callees("svc.boot")


def test_resolves_receiver_via_callee_return_type(tmp_path):
    project = _project(tmp_path, {
        "svc.py": """\
            class Engine:
                def start(self):
                    return 1

            def make_engine():
                return Engine()

            def boot():
                return make_engine().start()
            """,
    })
    graph = project.call_graph()
    assert "svc.Engine.start" in graph.callees("svc.boot")


def test_file_deps_record_cross_file_resolution(tmp_path):
    project = _project(tmp_path, {
        "util.py": "def helper():\n    return 1\n",
        "app.py": "from util import helper\n\n\ndef run():\n"
                  "    return helper()\n",
        "solo.py": "def alone():\n    return 2\n",
    })
    graph = project.call_graph()
    assert "util.py" in graph.file_deps["app.py"]
    assert graph.file_deps["solo.py"] == set()


def test_qualified_name_follows_import_aliases(tmp_path):
    project = _project(tmp_path, {
        "app.py": """\
            import asyncio
            from asyncio import ensure_future as keep

            def run(coro):
                return keep(coro)
            """,
    })
    graph = project.call_graph()
    source = project.files[0]
    import ast

    call = next(node for node in ast.walk(source.tree)
                if isinstance(node, ast.Call))
    assert graph.qualified_name(call.func, source) == "asyncio.ensure_future"


# -- dataflow fixpoints -------------------------------------------------------


def test_collect_transitive_reaches_across_frames():
    facts = collect_transitive(
        initial={"a": set(), "b": set(), "c": {"lock"}},
        successors={"a": ["b"], "b": ["c"], "c": []})
    assert facts["a"] == {"lock"}


def test_collect_transitive_handles_cycles():
    facts = collect_transitive(
        initial={"a": {"x"}, "b": {"y"}},
        successors={"a": ["b"], "b": ["a"]})
    assert facts["a"] == facts["b"] == {"x", "y"}


def test_reverse_and_affected_by_invalidation():
    deps = {"app.py": ["util.py"], "solo.py": [], "util.py": []}
    dependents = reverse(deps)
    dirty = affected_by({"util.py"}, dependents)
    assert dirty == {"util.py", "app.py"}
    assert "solo.py" not in dirty


def test_reachable_includes_starts():
    assert reachable({"a": ["b"], "b": []}, ["a"]) == {"a", "b"}
