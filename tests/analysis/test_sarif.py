"""SARIF 2.1.0 output: schema shape and determinism."""

from __future__ import annotations

import json

from repro.analysis import Analyzer, default_rules
from repro.analysis.engine import Finding, Report
from repro.analysis.sarif import render_sarif


def _report() -> Report:
    return Report(
        findings=[Finding("pkg/app.py", 9, 4, "RA002", "swallowed")],
        suppressed=[Finding("pkg/app.py", 12, 0, "RA001", "raw time")],
        baselined=[Finding("pkg/old.py", 3, 0, "RA002", "legacy")],
        files_scanned=2,
        rules_run=["RA001", "RA002"],
    )


def _document() -> dict:
    rules = default_rules(select={"RA001", "RA002"})
    return json.loads(render_sarif(_report(), rules))


def test_sarif_envelope_declares_the_standard():
    document = _document()
    assert document["version"] == "2.1.0"
    assert "sarif-2.1.0" in document["$schema"]
    assert len(document["runs"]) == 1


def test_sarif_driver_carries_the_rule_catalog():
    driver = _document()["runs"][0]["tool"]["driver"]
    assert driver["name"] == "repro.analysis"
    ids = [rule["id"] for rule in driver["rules"]]
    assert ids == ["RA001", "RA002"]
    assert all(rule["shortDescription"]["text"] for rule in driver["rules"])


def test_sarif_results_cover_live_suppressed_and_baselined():
    results = _document()["runs"][0]["results"]
    kinds = [result.get("suppressions", [{}])[0].get("kind")
             for result in results]
    assert kinds == [None, "inSource", "external"]
    live = results[0]
    location = live["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "pkg/app.py"
    assert location["region"] == {"startLine": 9, "startColumn": 5}
    assert live["ruleId"] == "RA002"
    assert live["ruleIndex"] == 1
    assert live["level"] == "error"


def test_sarif_invocation_reports_parse_errors():
    report = _report()
    report.errors = ["broken.py: cannot parse: bad syntax"]
    rules = default_rules(select={"RA001", "RA002"})
    invocation = json.loads(render_sarif(report, rules))["runs"][0][
        "invocations"][0]
    assert invocation["executionSuccessful"] is False
    assert "cannot parse" in invocation[
        "toolExecutionNotifications"][0]["message"]["text"]


def test_sarif_is_deterministic():
    rules = default_rules(select={"RA001", "RA002"})
    assert render_sarif(_report(), rules) == render_sarif(_report(), rules)


def test_sarif_end_to_end_over_a_tree(tmp_path):
    (tmp_path / "dirty.py").write_text("import time\n")
    analyzer = Analyzer(default_rules(select={"RA001"}, root=tmp_path))
    report = analyzer.run([tmp_path], root=tmp_path)
    document = json.loads(render_sarif(report, analyzer.rules))
    results = document["runs"][0]["results"]
    assert len(results) == 1
    assert results[0]["locations"][0]["physicalLocation"][
        "artifactLocation"]["uri"] == "dirty.py"
