"""Accepted-debt baselines: fingerprints, application, line drift."""

from __future__ import annotations

import json

import pytest

from repro.analysis.baseline import (
    apply_baseline,
    fingerprints_for,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import Finding, Report


def _finding(line=9, message="swallowed", path="pkg/app.py") -> Finding:
    return Finding(path, line, 4, "RA002", message)


def test_fingerprint_survives_line_drift():
    before = fingerprints_for([_finding(line=9)])[0][1]
    after = fingerprints_for([_finding(line=42)])[0][1]
    assert before == after


def test_duplicate_messages_get_distinct_occurrence_indexes():
    pair = fingerprints_for([_finding(line=9), _finding(line=20)])
    assert pair[0][1] != pair[1][1]


def test_round_trip_write_then_load(tmp_path):
    path = tmp_path / "baseline.json"
    count = write_baseline([_finding()], path)
    assert count == 1
    accepted = load_baseline(path)
    assert accepted == {fingerprints_for([_finding()])[0][1]}
    payload = json.loads(path.read_text())
    entry = next(iter(payload["fingerprints"].values()))
    assert entry == {"path": "pkg/app.py", "rule": "RA002",
                     "message": "swallowed"}


def test_apply_moves_accepted_findings_to_baselined(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline([_finding()], path)
    report = Report(findings=[_finding(line=50),
                              _finding(message="fresh debt")])
    apply_baseline(report, load_baseline(path))
    assert [f.message for f in report.baselined] == ["swallowed"]
    assert [f.message for f in report.findings] == ["fresh debt"]
    assert not report.ok()


def test_baselined_findings_do_not_fail_ok(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline([_finding()], path)
    report = Report(findings=[_finding()])
    apply_baseline(report, load_baseline(path))
    assert report.findings == []
    assert report.ok(strict=True)
    assert ", 1 baselined" in report.render_text()


def test_second_identical_finding_is_not_covered(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline([_finding()], path)
    report = Report(findings=[_finding(line=9), _finding(line=80)])
    apply_baseline(report, load_baseline(path))
    assert len(report.baselined) == 1
    assert len(report.findings) == 1


def test_bad_baseline_file_raises(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"schema": 999, "fingerprints": {}}))
    with pytest.raises(ValueError):
        load_baseline(path)
    path.write_text("[]")
    with pytest.raises(ValueError):
        load_baseline(path)
