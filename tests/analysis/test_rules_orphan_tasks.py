"""RA008 — un-awaited coroutines and orphaned asyncio tasks."""

from __future__ import annotations

from tests.analysis.conftest import rule_ids

# -- true positives -----------------------------------------------------------


def test_ra008_flags_discarded_create_task(analyze):
    report = analyze({"svc.py": """\
        import asyncio

        async def work():
            return 1

        async def fire_and_forget():
            asyncio.create_task(work())
        """}, select=["RA008"])
    assert rule_ids(report) == ["RA008"]
    assert "discarded" in report.findings[0].message


def test_ra008_flags_task_bound_but_never_read(analyze):
    report = analyze({"svc.py": """\
        import asyncio

        async def work():
            return 1

        async def leaky():
            task = asyncio.create_task(work())
            return None
        """}, select=["RA008"])
    assert rule_ids(report) == ["RA008"]
    assert "never" in report.findings[0].message


def test_ra008_flags_cross_module_dropped_coroutine(analyze):
    """The interprocedural case: the async def lives in another file."""
    report = analyze({
        "jobs.py": """\
            async def flush(batch):
                return len(batch)
            """,
        "svc.py": """\
            from jobs import flush

            async def handle(batch):
                flush(batch)
            """,
    }, select=["RA008"])
    assert rule_ids(report) == ["RA008"]
    finding = report.findings[0]
    assert finding.relpath == "svc.py"
    assert "never awaited" in finding.message


# -- true negatives -----------------------------------------------------------


def test_ra008_kept_awaited_and_managed_tasks_pass(analyze):
    report = analyze({"svc.py": """\
        import asyncio

        async def work():
            return 1

        async def good():
            task = asyncio.create_task(work())
            await task

        async def stored(self):
            self._tasks.add(asyncio.create_task(work()))

        async def grouped(group):
            group.create_task(work())
        """}, select=["RA008"])
    assert report.findings == []


def test_ra008_sync_call_with_same_name_passes(analyze):
    report = analyze({"svc.py": """\
        def flush(batch):
            return len(batch)

        async def handle(batch):
            flush(batch)
        """}, select=["RA008"])
    assert report.findings == []


# -- suppression --------------------------------------------------------------


def test_ra008_line_suppression_is_honored(analyze):
    report = analyze({"svc.py": """\
        import asyncio

        async def work():
            return 1

        async def fire_and_forget():
            asyncio.create_task(work())  # repro: ignore[RA008] -- telemetry flush, loss is acceptable
        """}, select=["RA008"])
    assert report.findings == []
    assert rule_ids(report) == []
    assert [f.rule_id for f in report.suppressed] == ["RA008"]
