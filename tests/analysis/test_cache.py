"""The incremental analysis cache: reuse, invalidation, determinism."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.analysis import Analyzer, default_rules
from repro.analysis.cache import AnalysisCache

_FILES = {
    "pkg/util.py": """\
        def helper(value):
            return value * 2
        """,
    "pkg/app.py": """\
        from pkg.util import helper

        def run():
            try:
                return helper(1)
            except Exception:
                pass
        """,
    "pkg/solo.py": """\
        def alone():
            return 1
        """,
}


def _write_tree(root: Path, files=_FILES) -> None:
    for name, text in files.items():
        path = root / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")


def _run(root: Path, cache: AnalysisCache | None, select={"RA002"}):
    analyzer = Analyzer(default_rules(select=set(select), root=root))
    return analyzer.run([root / "pkg"], root=root, cache=cache)


def test_warm_run_analyzes_zero_files_and_matches_cold(tmp_path):
    _write_tree(tmp_path)
    cache = AnalysisCache(tmp_path / ".cache")
    cold = _run(tmp_path, cache)
    warm = _run(tmp_path, cache)
    assert cold.stats == {"files_analyzed": 3, "cache_hits": 0}
    assert warm.stats == {"files_analyzed": 0, "cache_hits": 3}
    assert warm.render_text() == cold.render_text()
    assert warm.to_json() == cold.to_json()


def test_edit_invalidates_file_and_its_dependents(tmp_path):
    _write_tree(tmp_path)
    cache = AnalysisCache(tmp_path / ".cache")
    _run(tmp_path, cache)
    util = tmp_path / "pkg/util.py"
    util.write_text(util.read_text() + "\n\ndef extra():\n    return 3\n")
    report = _run(tmp_path, cache)
    # util.py changed; app.py depends on it; solo.py stays cached.
    assert report.stats == {"files_analyzed": 2, "cache_hits": 1}


def test_incremental_report_matches_fresh_run(tmp_path):
    _write_tree(tmp_path)
    cache = AnalysisCache(tmp_path / ".cache")
    _run(tmp_path, cache)
    solo = tmp_path / "pkg/solo.py"
    solo.write_text("def alone():\n    try:\n        return 1\n"
                    "    except Exception:\n        pass\n")
    incremental = _run(tmp_path, cache)
    fresh = _run(tmp_path, None)
    assert incremental.render_text() == fresh.render_text()
    assert incremental.to_json() == fresh.to_json()
    assert [f.relpath for f in incremental.findings] == [
        "pkg/app.py", "pkg/solo.py"]


def test_rule_set_change_invalidates_everything(tmp_path):
    _write_tree(tmp_path)
    cache = AnalysisCache(tmp_path / ".cache")
    _run(tmp_path, cache, select={"RA002"})
    report = _run(tmp_path, cache, select={"RA002", "RA001"})
    assert report.stats["files_analyzed"] == 3


def test_added_file_forces_a_full_run(tmp_path):
    _write_tree(tmp_path)
    cache = AnalysisCache(tmp_path / ".cache")
    _run(tmp_path, cache)
    (tmp_path / "pkg/new.py").write_text("def fresh():\n    return 4\n")
    report = _run(tmp_path, cache)
    assert report.stats == {"files_analyzed": 4, "cache_hits": 0}


def test_corrupt_cache_degrades_to_full_run(tmp_path):
    _write_tree(tmp_path)
    cache = AnalysisCache(tmp_path / ".cache")
    _run(tmp_path, cache)
    cache.path.write_text("{ not json")
    report = _run(tmp_path, cache)
    assert report.stats["files_analyzed"] == 3
    # ...and the cache heals itself for the next run.
    assert _run(tmp_path, cache).stats["files_analyzed"] == 0


def test_cached_suppressions_and_unknown_warnings_round_trip(tmp_path):
    files = dict(_FILES)
    files["pkg/waived.py"] = """\
        def waived():
            try:
                return 1
            except Exception:  # repro: ignore[RA002] -- probe result, failure means absent
                pass
            value = 1  # repro: ignore[RA999] -- typo'd rule id
            return value
        """
    _write_tree(tmp_path, files)
    cache = AnalysisCache(tmp_path / ".cache")
    cold = _run(tmp_path, cache)
    warm = _run(tmp_path, cache)
    assert [f.rule_id for f in warm.suppressed] == ["RA002"]
    assert warm.unknown_suppressions == cold.unknown_suppressions != []
    assert warm.render_text(verbose=True) == cold.render_text(verbose=True)


def test_cache_document_records_digests_and_deps(tmp_path):
    _write_tree(tmp_path)
    cache = AnalysisCache(tmp_path / ".cache")
    _run(tmp_path, cache)
    payload = json.loads(cache.path.read_text())
    assert set(payload["files"]) == {"pkg/util.py", "pkg/app.py",
                                     "pkg/solo.py"}
    assert "pkg/util.py" in payload["files"]["pkg/app.py"]["deps"]
    assert all(len(meta["digest"]) == 64
               for meta in payload["files"].values())
