"""RA010 — received deadlines must be threaded to deadline-aware callees."""

from __future__ import annotations

from tests.analysis.conftest import rule_ids

# -- true positives -----------------------------------------------------------


def test_ra010_flags_deadline_dropped_at_call(analyze):
    report = analyze({"svc.py": """\
        def backend(payload, deadline=None):
            return payload

        def frontend(payload, deadline=None):
            return backend(payload)
        """}, select=["RA010"])
    assert rule_ids(report) == ["RA010"]
    assert "without" in report.findings[0].message


def test_ra010_flags_cross_module_deadline_drop(analyze):
    """Interprocedural: caller and callee live in different files."""
    report = analyze({
        "transport.py": """\
            def send(request, deadline=None):
                return request
            """,
        "client.py": """\
            from transport import send

            def invoke(request, deadline=None):
                return send(request)
            """,
    }, select=["RA010"])
    assert rule_ids(report) == ["RA010"]
    assert report.findings[0].relpath == "client.py"


def test_ra010_flags_method_chain_drop(analyze):
    report = analyze({"svc.py": """\
        class Transport:
            def send(self, request, deadline=None):
                return request

        class Client:
            def __init__(self):
                self._transport = Transport()

            def invoke(self, request, deadline=None):
                return self._transport.send(request)
        """}, select=["RA010"])
    assert rule_ids(report) == ["RA010"]


# -- true negatives -----------------------------------------------------------


def test_ra010_threading_forms_pass(analyze):
    report = analyze({"svc.py": """\
        def backend(payload, deadline=None):
            return payload

        def by_keyword(payload, deadline=None):
            return backend(payload, deadline=deadline)

        def by_position(payload, deadline=None):
            return backend(payload, deadline)

        def by_kwargs(payload, **kwargs):
            return backend(payload, **kwargs)

        def explicit_opt_out(payload, deadline=None):
            return backend(payload, deadline=None)

        def derived(payload, deadline=None):
            return backend(payload, deadline=deadline.remaining())
        """}, select=["RA010"])
    assert report.findings == []


def test_ra010_callers_without_deadline_are_out_of_scope(analyze):
    report = analyze({"svc.py": """\
        def backend(payload, deadline=None):
            return payload

        def no_deadline_here(payload):
            return backend(payload)
        """}, select=["RA010"])
    assert report.findings == []


# -- suppression --------------------------------------------------------------


def test_ra010_line_suppression_is_honored(analyze):
    report = analyze({"svc.py": """\
        def backend(payload, deadline=None):
            return payload

        def frontend(payload, deadline=None):
            return backend(payload)  # repro: ignore[RA010] -- backend is fire-and-forget, no deadline applies
        """}, select=["RA010"])
    assert report.findings == []
    assert [f.rule_id for f in report.suppressed] == ["RA010"]
