"""RA004 (blocking under lock) and RA006 (static lock-order cycles)."""

from __future__ import annotations

from tests.analysis.conftest import rule_ids

# -- RA004 --------------------------------------------------------------------


def test_ra004_flags_sleep_charge_and_result_under_lock(analyze):
    report = analyze({"worker.py": """\
        import threading

        class Worker:
            def __init__(self):
                self._lock = threading.Lock()

            def bad_charge(self, clock):
                with self._lock:
                    clock.charge(1.0)

            def bad_result(self, future):
                with self._lock:
                    return future.result()
        """}, select=["RA004"])
    assert rule_ids(report) == ["RA004", "RA004"]
    assert all("Worker._lock" in finding.message
               for finding in report.findings)


def test_ra004_allows_blocking_outside_the_critical_section(analyze):
    report = analyze({"worker.py": """\
        import threading

        class Worker:
            def __init__(self):
                self._lock = threading.Lock()

            def good(self, clock, future):
                with self._lock:
                    pending = future
                clock.charge(1.0)
                return pending.result()
        """}, select=["RA004"])
    assert report.findings == []


def test_ra004_condition_wait_on_held_lock_is_exempt(analyze):
    report = analyze({"worker.py": """\
        import threading

        class Worker:
            def __init__(self):
                self._cond = threading.Condition()
                self._lock = threading.Lock()
                self._done = threading.Event()

            def ok_wait(self):
                with self._cond:
                    self._cond.wait()

            def bad_wait(self):
                with self._lock:
                    self._done.wait()
        """}, select=["RA004"])
    assert rule_ids(report) == ["RA004"]
    assert "foreign waiter" in report.findings[0].message


def test_ra004_nested_defs_do_not_count_as_under_lock(analyze):
    report = analyze({"worker.py": """\
        import threading

        class Worker:
            def __init__(self):
                self._lock = threading.Lock()

            def schedule(self, clock, pool):
                with self._lock:
                    def later():
                        clock.charge(1.0)
                    pool.submit(later)
        """}, select=["RA004"])
    assert report.findings == []


def test_ra004_suppression(analyze):
    report = analyze({"worker.py": """\
        import threading

        class Worker:
            def __init__(self):
                self._lock = threading.Lock()

            def shutdown(self, clock):
                with self._lock:
                    clock.charge(1.0)  # repro: ignore[RA004] drain path
        """}, select=["RA004"])
    assert report.findings == []
    assert len(report.suppressed) == 1


# -- RA006 --------------------------------------------------------------------

_ABBA = """\
    import threading

    class Beta:
        def __init__(self):
            self._lock = threading.Lock()
            self.alpha: "Alpha" = None

        def poke(self):
            with self._lock:
                pass

        def run(self):
            with self._lock:
                self.alpha.poke()

    class Alpha:
        def __init__(self):
            self._lock = threading.Lock()
            self.beta: Beta = None

        def poke(self):
            with self._lock:
                pass

        def run(self):
            with self._lock:
                self.beta.poke()
    """


def test_ra006_detects_abba_cycle_through_calls(analyze):
    report = analyze({"abba.py": _ABBA}, select=["RA006"])
    assert rule_ids(report) == ["RA006"]
    message = report.findings[0].message
    assert "lock-order cycle" in message
    assert "Alpha._lock" in message and "Beta._lock" in message


def test_ra006_one_directional_nesting_is_clean(analyze):
    # Same shape, but only Alpha ever calls into Beta: a DAG, no cycle.
    clean = _ABBA.replace("self.alpha.poke()", "pass")
    report = analyze({"dag.py": clean}, select=["RA006"])
    assert report.findings == []


def test_ra006_direct_nested_with_cycle(analyze):
    report = analyze({"nested.py": """\
        import threading

        A = threading.Lock()
        B = threading.Lock()

        class Runner:
            def forward(self):
                with A:
                    with B:
                        pass

            def backward(self):
                with B:
                    with A:
                        pass
        """}, select=["RA006"])
    assert rule_ids(report) == ["RA006"]


def test_ra006_self_deadlock_on_plain_lock_only(analyze):
    source = """\
        import threading

        class Selfie:
            def __init__(self):
                self._lock = threading.{factory}()

            def outer(self):
                with self._lock:
                    self.inner()

            def inner(self):
                with self._lock:
                    pass
        """
    bad = analyze({"plain.py": source.format(factory="Lock")},
                  select=["RA006"])
    assert rule_ids(bad) == ["RA006"]
    assert "self-deadlock" in bad.findings[0].message


def test_ra006_reentrant_self_acquire_is_legal(analyze):
    report = analyze({"reentrant.py": """\
        import threading

        class Selfie:
            def __init__(self):
                self._lock = threading.RLock()

            def outer(self):
                with self._lock:
                    self.inner()

            def inner(self):
                with self._lock:
                    pass
        """}, select=["RA006"])
    assert report.findings == []
