"""RA007 — blocking calls inside ``async def`` bodies."""

from __future__ import annotations

from tests.analysis.conftest import rule_ids

# -- true positives -----------------------------------------------------------


def test_ra007_flags_sleep_charge_and_acquire_in_coroutines(analyze):
    report = analyze({"worker.py": """\
        import time

        class Worker:
            async def bad_sleep(self):
                time.sleep(1.0)

            async def bad_charge(self, clock):
                clock.charge(1.0)

            async def bad_acquire(self):
                self._lock.acquire()
        """}, select=["RA007"])
    assert rule_ids(report) == ["RA007", "RA007", "RA007"]
    assert all("stalls the event loop" in finding.message
               for finding in report.findings)


def test_ra007_flags_future_waits_and_sync_transport(analyze):
    report = analyze({"worker.py": """\
        async def bad_result(future):
            return future.result()

        async def bad_get(queue):
            return queue.get()

        async def bad_wire(transport, request):
            return transport.call("svc", request)
        """}, select=["RA007"])
    assert rule_ids(report) == ["RA007", "RA007", "RA007"]
    assert any("acall" in finding.message for finding in report.findings)


def test_ra007_flags_nested_coroutines_too(analyze):
    report = analyze({"worker.py": """\
        async def outer(clock):
            async def inner():
                clock.charge(1.0)
            await inner()
        """}, select=["RA007"])
    assert rule_ids(report) == ["RA007"]


# -- true negatives -----------------------------------------------------------


def test_ra007_awaited_calls_and_asyncio_receivers_are_exempt(analyze):
    report = analyze({"worker.py": """\
        import asyncio

        async def good(bulkhead, tasks):
            await asyncio.sleep(0.1)
            await bulkhead.acquire()
            done, pending = await asyncio.wait(tasks)
            return done, pending
        """}, select=["RA007"])
    assert report.findings == []


def test_ra007_sync_functions_and_nested_defs_are_out_of_scope(analyze):
    report = analyze({"worker.py": """\
        import time

        def plain(clock):
            clock.charge(1.0)
            time.sleep(0.5)

        async def schedules_off_loop(pool, clock):
            def later():
                clock.charge(1.0)
            pool.submit(later)
        """}, select=["RA007"])
    assert report.findings == []


def test_ra007_dict_get_with_key_is_not_a_queue_wait(analyze):
    report = analyze({"worker.py": """\
        async def lookup(future_cache, key):
            return future_cache.get(key)
        """}, select=["RA007"])
    assert report.findings == []


# -- suppression --------------------------------------------------------------


def test_ra007_suppression(analyze):
    report = analyze({"worker.py": """\
        async def acharge(clock, seconds):
            clock.charge(seconds)  # repro: ignore[RA007] virtual clock
        """}, select=["RA007"])
    assert report.findings == []
    assert len(report.suppressed) == 1
