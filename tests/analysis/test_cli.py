"""The ``python -m repro.analysis`` command line: exit codes, formats."""

from __future__ import annotations

import json

from repro.analysis.__main__ import main

_CLEAN = "def add(left, right):\n    return left + right\n"
_DIRTY = "import time\n"


def _write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text, encoding="utf-8")
    return path


def test_exit_zero_on_clean_tree(tmp_path, capsys):
    _write(tmp_path, "clean.py", _CLEAN)
    assert main([str(tmp_path), "--root", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_exit_one_on_findings(tmp_path, capsys):
    _write(tmp_path, "dirty.py", _DIRTY)
    assert main([str(tmp_path), "--root", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "RA001" in out and "dirty.py:1" in out


def test_json_format(tmp_path, capsys):
    _write(tmp_path, "dirty.py", _DIRTY)
    assert main([str(tmp_path), "--root", str(tmp_path),
                 "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_scanned"] == 1
    assert [finding["rule"] for finding in payload["findings"]] == ["RA001"]


def test_select_and_ignore_filter_rules(tmp_path):
    _write(tmp_path, "dirty.py", _DIRTY)
    root = ["--root", str(tmp_path)]
    assert main([str(tmp_path), "--select", "RA002", *root]) == 0
    assert main([str(tmp_path), "--ignore", "RA001", *root]) == 0
    assert main([str(tmp_path), "--select", "ra001", *root]) == 1


def test_unknown_select_is_a_usage_error(tmp_path, capsys):
    _write(tmp_path, "clean.py", _CLEAN)
    assert main([str(tmp_path), "--select", "RA999",
                 "--root", str(tmp_path)]) == 2
    assert "RA999" in capsys.readouterr().err


def test_parse_error_fails_the_run(tmp_path, capsys):
    _write(tmp_path, "broken.py", "def (:\n")
    assert main([str(tmp_path), "--root", str(tmp_path)]) == 1
    assert "cannot parse" in capsys.readouterr().out


def test_unknown_suppression_only_fails_under_strict(tmp_path):
    _write(tmp_path, "waived.py",
           "VALUE = 1  # repro: ignore[RA999]\n")
    root = ["--root", str(tmp_path)]
    assert main([str(tmp_path), *root]) == 0
    assert main([str(tmp_path), "--strict", *root]) == 1


def test_list_rules_prints_the_catalog(capsys):
    from repro.analysis import ALL_RULE_IDS

    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ALL_RULE_IDS:
        assert rule_id in out


def test_sarif_format(tmp_path, capsys):
    _write(tmp_path, "dirty.py", _DIRTY)
    assert main([str(tmp_path), "--root", str(tmp_path),
                 "--format", "sarif"]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["version"] == "2.1.0"
    results = document["runs"][0]["results"]
    assert [result["ruleId"] for result in results] == ["RA001"]


def test_stats_go_to_stderr_not_the_report(tmp_path, capsys):
    _write(tmp_path, "clean.py", _CLEAN)
    assert main([str(tmp_path), "--root", str(tmp_path), "--stats"]) == 0
    captured = capsys.readouterr()
    assert "files_analyzed=" not in captured.out
    assert "files_analyzed=1" in captured.err
    assert "wall_time=" in captured.err


def test_cache_flag_warm_run_reports_hits(tmp_path, capsys):
    _write(tmp_path, "clean.py", _CLEAN)
    base = [str(tmp_path), "--root", str(tmp_path),
            "--cache", str(tmp_path / ".cache"), "--stats"]
    assert main(base) == 0
    cold = capsys.readouterr()
    assert main(base) == 0
    warm = capsys.readouterr()
    assert warm.out == cold.out
    assert "files_analyzed=0 cache_hits=1" in warm.err


def test_write_then_apply_baseline(tmp_path, capsys):
    _write(tmp_path, "dirty.py", _DIRTY)
    baseline = tmp_path / "baseline.json"
    root = ["--root", str(tmp_path)]
    assert main([str(tmp_path), *root,
                 "--write-baseline", str(baseline)]) == 0
    capsys.readouterr()
    assert main([str(tmp_path), *root, "--strict",
                 "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out and "0 finding(s)" in out


def test_missing_baseline_is_a_usage_error(tmp_path, capsys):
    _write(tmp_path, "clean.py", _CLEAN)
    assert main([str(tmp_path), "--root", str(tmp_path),
                 "--baseline", str(tmp_path / "absent.json")]) == 2
    assert "cannot load baseline" in capsys.readouterr().err


def _git(tmp_path, *argv):
    import subprocess

    subprocess.run(["git", "-C", str(tmp_path),
                    "-c", "user.email=ci@test", "-c", "user.name=ci",
                    *argv], check=True, capture_output=True)


def test_changed_only_filters_to_working_tree_edits(tmp_path, capsys):
    _write(tmp_path, "dirty.py", _DIRTY)
    _write(tmp_path, "clean.py", _CLEAN)
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", "-A")
    _git(tmp_path, "commit", "-qm", "seed")
    root = ["--root", str(tmp_path)]
    # Committed finding, clean working tree: filtered out.
    assert main([str(tmp_path), *root, "--changed-only"]) == 0
    capsys.readouterr()
    # Touch the dirty file: its finding comes back.
    _write(tmp_path, "dirty.py", _DIRTY + "VALUE = 1\n")
    assert main([str(tmp_path), *root, "--changed-only"]) == 1
    assert "dirty.py:1" in capsys.readouterr().out


def test_since_ref_filters_to_the_commit_range(tmp_path, capsys):
    _write(tmp_path, "clean.py", _CLEAN)
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", "-A")
    _git(tmp_path, "commit", "-qm", "seed")
    _write(tmp_path, "dirty.py", _DIRTY)
    _git(tmp_path, "add", "-A")
    _git(tmp_path, "commit", "-qm", "regress")
    root = ["--root", str(tmp_path)]
    assert main([str(tmp_path), *root, "--since", "HEAD~1"]) == 1
    assert "dirty.py:1" in capsys.readouterr().out
    assert main([str(tmp_path), *root, "--since", "HEAD"]) == 0
