"""The ``python -m repro.analysis`` command line: exit codes, formats."""

from __future__ import annotations

import json

from repro.analysis.__main__ import main

_CLEAN = "def add(left, right):\n    return left + right\n"
_DIRTY = "import time\n"


def _write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text, encoding="utf-8")
    return path


def test_exit_zero_on_clean_tree(tmp_path, capsys):
    _write(tmp_path, "clean.py", _CLEAN)
    assert main([str(tmp_path), "--root", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_exit_one_on_findings(tmp_path, capsys):
    _write(tmp_path, "dirty.py", _DIRTY)
    assert main([str(tmp_path), "--root", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "RA001" in out and "dirty.py:1" in out


def test_json_format(tmp_path, capsys):
    _write(tmp_path, "dirty.py", _DIRTY)
    assert main([str(tmp_path), "--root", str(tmp_path),
                 "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_scanned"] == 1
    assert [finding["rule"] for finding in payload["findings"]] == ["RA001"]


def test_select_and_ignore_filter_rules(tmp_path):
    _write(tmp_path, "dirty.py", _DIRTY)
    root = ["--root", str(tmp_path)]
    assert main([str(tmp_path), "--select", "RA002", *root]) == 0
    assert main([str(tmp_path), "--ignore", "RA001", *root]) == 0
    assert main([str(tmp_path), "--select", "ra001", *root]) == 1


def test_unknown_select_is_a_usage_error(tmp_path, capsys):
    _write(tmp_path, "clean.py", _CLEAN)
    assert main([str(tmp_path), "--select", "RA999",
                 "--root", str(tmp_path)]) == 2
    assert "RA999" in capsys.readouterr().err


def test_parse_error_fails_the_run(tmp_path, capsys):
    _write(tmp_path, "broken.py", "def (:\n")
    assert main([str(tmp_path), "--root", str(tmp_path)]) == 1
    assert "cannot parse" in capsys.readouterr().out


def test_unknown_suppression_only_fails_under_strict(tmp_path):
    _write(tmp_path, "waived.py",
           "VALUE = 1  # repro: ignore[RA999]\n")
    root = ["--root", str(tmp_path)]
    assert main([str(tmp_path), *root]) == 0
    assert main([str(tmp_path), "--strict", *root]) == 1


def test_list_rules_prints_the_catalog(capsys):
    from repro.analysis import ALL_RULE_IDS

    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ALL_RULE_IDS:
        assert rule_id in out
