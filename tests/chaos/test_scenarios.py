"""Tests for the chaos scenario suite (repro.chaos.scenarios).

The heart of the acceptance criteria lives here:

* with protections ON every applicable invariant passes;
* with protections OFF (the naive-caller control) the deadline and
  lost-update invariants demonstrably FAIL;
* same seed => byte-identical invariant reports.
"""

import pytest

from repro.chaos.scenarios import SCENARIOS, run_all, run_scenario

#: Scenario -> invariants its protections-off control must fail.
EXPECTED_CONTROL_FAILURES = {
    "error_burst": {"deadline-honored"},
    "latency_spike": {"deadline-honored"},
    "partition_sync": {"no-lost-updates"},
    "flapping_link": {"no-lost-updates"},
    "burst_partition": {"deadline-honored"},
    "clock_skew_sync": {"no-lost-updates"},
    "deadline_storm": {"deadline-honored"},
}


@pytest.fixture(scope="module")
def protected_results():
    return run_all(seed=7, protections=True)


@pytest.fixture(scope="module")
def control_results():
    return run_all(seed=7, protections=False)


class TestProtectionsOn:
    def test_suite_has_at_least_six_scenarios(self):
        assert len(SCENARIOS) >= 6

    def test_every_scenario_passes_every_applicable_invariant(
            self, protected_results):
        failing = {result.name: [failure.name for failure
                                 in result.report.failures()]
                   for result in protected_results if not result.passed}
        assert failing == {}

    def test_every_invariant_is_exercised_somewhere(self, protected_results):
        passed_names = {
            check.name
            for result in protected_results
            for check in result.report.results
            if check.applicable and check.passed}
        assert passed_names == {
            "deadline-honored", "no-lost-updates", "breaker-conformance",
            "bounded-staleness", "counter-consistency"}

    def test_faults_actually_fired(self, protected_results):
        by_name = {result.name: result for result in protected_results}
        assert by_name["error_burst"].report.injected["errors"] > 0
        assert by_name["latency_spike"].report.injected["latency"] > 0
        assert by_name["partition_sync"].report.injected["partitions"] > 0
        assert by_name["corrupt_payload"].report.injected["corruptions"] > 0

    def test_degradation_served_answers_under_fire(self, protected_results):
        by_name = {result.name: result for result in protected_results}
        assert by_name["error_burst"].metrics["degraded"] > 0
        assert by_name["burst_partition"].metrics["success_rate"] > 0.9

    def test_metrics_are_consistent(self, protected_results):
        for result in protected_results:
            metrics = result.metrics
            accounted = (metrics["successes"] + metrics["degraded"]
                         + metrics["failures"] + metrics["sheds"])
            assert accounted == metrics["requests"]
            assert 0.0 <= metrics["success_rate"] <= 1.0
            assert metrics["p99_latency"] >= 0.0


class TestProtectionsOffControl:
    def test_expected_invariants_fail(self, control_results):
        by_name = {result.name: result for result in control_results}
        for name, expected in EXPECTED_CONTROL_FAILURES.items():
            failed = {failure.name
                      for failure in by_name[name].report.failures()}
            assert expected <= failed, (
                f"{name}: expected {expected} to fail, got {failed}")

    def test_controls_never_fail_counter_consistency(self, control_results):
        # The control is naive, not mis-instrumented: its ledger still
        # balances, which is what isolates the deadline/lost-update
        # failures as genuine.
        for result in control_results:
            failed = {failure.name for failure in result.report.failures()}
            assert "counter-consistency" not in failed


class TestDeterminism:
    def test_same_seed_renders_byte_identical_reports(self):
        first = [result.render() for result in run_all(seed=7)]
        second = [result.render() for result in run_all(seed=7)]
        assert first == second

    def test_different_seed_changes_at_least_one_report(self):
        baseline = [result.render() for result in run_all(seed=7)]
        other = [result.render() for result in run_all(seed=13)]
        assert baseline != other

    def test_control_replays_byte_identically_too(self):
        first = run_scenario("partition_sync", seed=7, protections=False)
        second = run_scenario("partition_sync", seed=7, protections=False)
        assert first.render() == second.render()


class TestRunScenario:
    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_scenario("not-a-scenario")

    def test_single_scenario_roundtrip(self):
        result = run_scenario("deadline_storm", seed=7)
        assert result.passed
        assert result.name == "deadline_storm"
        assert "deadline_storm" in result.render()
