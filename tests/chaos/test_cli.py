"""Tests for the ``python -m repro.chaos`` entry point."""

from repro.chaos.__main__ import main
from repro.chaos.scenarios import SCENARIOS


class TestCli:
    def test_list_prints_scenario_names(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines() == list(SCENARIOS)

    def test_single_scenario_strict_passes(self, capsys):
        exit_code = main(["--scenario", "partition_sync",
                          "--seed", "7", "--strict"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "chaos scenario=partition_sync seed=7 protections=on" in out
        assert out.strip().endswith(
            "chaos: 1/1 scenarios passed (seed=7 protections=on)")

    def test_strict_control_failure_exits_nonzero(self, capsys):
        exit_code = main(["--scenario", "partition_sync", "--seed", "7",
                          "--strict", "--no-protections"])
        out = capsys.readouterr().out
        assert exit_code == 1
        assert "protections=off" in out
        assert "0/1 scenarios passed" in out

    def test_control_without_strict_reports_but_exits_zero(self, capsys):
        exit_code = main(["--scenario", "clock_skew_sync",
                          "--no-protections"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "invariant no-lost-updates .............. FAIL" in out

    def test_repeatable_scenario_flag(self, capsys):
        exit_code = main(["--scenario", "partition_sync",
                          "--scenario", "deadline_storm", "--strict"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "2/2 scenarios passed" in out
