"""Chaos injection for the SQLite storage backend.

The invariant under test: a write-error burst landing *mid-transaction*
(between executemany chunks of one batch) must never leave partial
state — no triple from the failed batch visible, no interned term
leaked, version untouched, store still usable.  This mirrors the
FaultyStore pattern used for the KV store, but aimed at the one place
the KV wrapper cannot reach: inside an open transaction.
"""

import pytest

from repro.chaos import SqliteWriteBurst, StorageFaultError, Window
from repro.stores.backends.sqlite import SqliteTripleStore
from repro.stores.rdf.shard import ShardedGraph
from repro.util.clock import ManualClock


def burst_store(batch_size=4, chunk_cost=1.0, windows=None, start=0.0,
                path=":memory:"):
    clock = ManualClock(start=start)
    burst = SqliteWriteBurst(
        clock,
        windows if windows is not None else [Window(2.5, 10.0)],
        chunk_cost=chunk_cost)
    store = SqliteTripleStore(path, batch_size=batch_size, fault_hook=burst)
    return store, burst, clock


def test_burst_fires_mid_transaction_and_rolls_back_fully():
    store, burst, clock = burst_store()
    store.add(("seed", "p", -1))
    version = store.version
    # Chunks cost 1.0s each from t=0; the window [2.5, 10) opens after
    # chunk 3's charge → chunks 0..1 execute, chunk 2 faults with the
    # transaction open.
    with pytest.raises(StorageFaultError) as excinfo:
        store.add_all((f"s{i}", "p", i) for i in range(16))
    assert excinfo.value.status == 503
    assert burst.faults_raised == 1
    assert burst.chunks_seen == 3
    # Invariant: nothing from the failed batch is visible.
    assert len(store) == 1
    assert store.to_list() == [["seed", "p", -1]]
    assert store.version == version
    # Interned terms from the rolled-back chunks were unwound: a fresh
    # reopen of the same data sees a consistent dictionary.
    assert "s0" not in store._term_ids
    assert "s5" not in store._term_ids


def test_store_recovers_after_window_closes():
    store, burst, clock = burst_store()
    with pytest.raises(StorageFaultError):
        store.add_all((f"s{i}", "p", i) for i in range(16))
    clock.advance(20.0)  # past the fault window
    assert store.add_all((f"s{i}", "p", i) for i in range(16)) == 16
    assert len(store) == 16
    assert store.version == 16


def test_file_backed_rollback_survives_reopen(tmp_path):
    path = tmp_path / "burst.sqlite"
    store, burst, clock = burst_store(path=path)
    store.add(("seed", "p", -1))
    with pytest.raises(StorageFaultError):
        store.add_all((f"s{i}", "p", i) for i in range(16))
    store.close()
    with SqliteTripleStore(path) as reopened:
        assert reopened.to_list() == [["seed", "p", -1]]
        assert len(reopened._term_ids) == 3  # seed, p, -1 — nothing leaked
        assert reopened.version == 1


def test_add_many_flags_never_partial():
    store, burst, clock = burst_store()
    with pytest.raises(StorageFaultError):
        store.add_many([(f"s{i}", "p", i) for i in range(16)])
    assert len(store) == 0
    clock.advance(20.0)
    flags = store.add_many([("a", "p", 1), ("a", "p", 1), ("b", "p", 2)])
    assert flags == [True, False, True]


def test_sharded_writes_survive_single_shard_burst():
    # Only the last shard is faulty: a router-level bulk write fails
    # loudly, earlier shards keep their committed slices, and the
    # faulty shard's slice rolls back as a unit (per-shard
    # transactionality — partial *shards*, never torn *batches*).
    clock = ManualClock(start=0.0)
    burst = SqliteWriteBurst(clock, [Window(0.0, 100.0)], chunk_cost=1.0)

    def factory(index):
        hook = burst if index == 2 else None
        return SqliteTripleStore(batch_size=4, fault_hook=hook)

    sharded = ShardedGraph(shards=3, backend_factory=factory)
    triples = [(f"s{i}", "p", i) for i in range(30)]
    with pytest.raises(StorageFaultError):
        sharded.add_all(triples)
    assert len(sharded.shards[2]) == 0
    assert len(sharded.shards[0]) + len(sharded.shards[1]) > 0
    # Router statistics only count what actually landed, and queries
    # still answer consistently over the partial (but never torn) data.
    total = sum(len(shard) for shard in sharded.shards)
    assert len(sharded) == total
    rows = sharded.select([("?s", "p", "?v")])
    assert len(rows) == total
    sharded.close()
