"""Tests for live fault injection (repro.chaos.inject)."""

import pytest

from repro import RichClient, build_world
from repro.chaos.inject import (
    CORRUPTION_MARKER,
    FaultyStore,
    SkewedClock,
    StorageFaultError,
)
from repro.chaos.plan import (
    ErrorBurst,
    FaultPlan,
    LatencySpike,
    Partition,
    PayloadCorruption,
    Window,
)
from repro.simnet.errors import ConnectivityError, RemoteServiceError
from repro.stores.kvstore import InMemoryKeyValueStore
from repro.util.clock import ManualClock


def _armed_world(plan, seed=42):
    world = build_world(seed=seed, corpus_size=10)
    injector = plan.injector().install(world.transport)
    return world, injector


class TestUnitDecisions:
    def test_error_status_only_inside_window(self):
        plan = FaultPlan((ErrorBurst(Window(1.0, 2.0), status=503),), seed=1)
        injector = plan.injector()
        assert injector.error_status("svc", 0.5) is None
        assert injector.error_status("svc", 1.5) == 503
        assert injector.error_status("svc", 2.0) is None
        assert injector.stats.errors == 1

    def test_latency_shaping_composes_factor_and_extra(self):
        plan = FaultPlan((
            LatencySpike(Window(0.0, 10.0), factor=2.0),
            LatencySpike(Window(0.0, 10.0), extra=0.5),
        ))
        injector = plan.injector()
        assert injector.shape_latency("svc", 1.0, 0.25) == pytest.approx(1.0)
        assert injector.stats.latency_spikes == 1
        assert injector.shape_latency("svc", 20.0, 0.25) == 0.25

    def test_corruption_replaces_payload(self):
        plan = FaultPlan((PayloadCorruption(Window(0.0, 1.0)),))
        injector = plan.injector()
        mangled = injector.corrupt("svc", 0.5, {"entities": []})
        assert mangled[CORRUPTION_MARKER] is True
        intact = injector.corrupt("svc", 2.0, {"entities": []})
        assert intact == {"entities": []}

    def test_flaky_burst_replays_identically(self):
        plan = FaultPlan(
            (ErrorBurst(Window(0.0, 100.0), probability=0.4),), seed=99)
        injector_a = plan.injector()
        injector_b = plan.injector()
        draws_a = [injector_a.error_status("svc", float(t))
                   for t in range(50)]
        draws_b = [injector_b.error_status("svc", float(t))
                   for t in range(50)]
        assert draws_a == draws_b          # same seed, same schedule
        assert any(status is not None for status in draws_a)
        assert any(status is None for status in draws_a)


class TestTransportIntegration:
    def test_error_burst_surfaces_as_remote_error(self):
        plan = FaultPlan(
            (ErrorBurst(Window(0.0, 60.0), endpoint="glotta", status=500),),
            seed=7)
        world, injector = _armed_world(plan)
        client = RichClient(world.registry)
        try:
            with pytest.raises(RemoteServiceError):
                client.invoke("glotta", "analyze", {"text": "hi"})
            # Unfaulted endpoints are untouched.
            client.invoke("lexica-prime", "analyze", {"text": "hi"})
        finally:
            client.close()
        assert injector.stats.errors == 1

    def test_partition_surfaces_as_connectivity_error(self):
        plan = FaultPlan((Partition(Window(0.0, 5.0)),), seed=7)
        world, injector = _armed_world(plan)
        client = RichClient(world.registry)
        try:
            before = world.clock.now()
            with pytest.raises(ConnectivityError):
                client.invoke("glotta", "analyze", {"text": "hi"})
            assert world.clock.now() == before  # offline calls are free
            world.clock.charge(5.0 - world.clock.now())
            client.invoke("glotta", "analyze", {"text": "hi"})
        finally:
            client.close()
        assert injector.stats.partitions == 1

    def test_corruption_surfaces_as_retryable_502(self):
        plan = FaultPlan(
            (PayloadCorruption(Window(0.0, 5.0), endpoint="glotta"),), seed=7)
        world, _ = _armed_world(plan)
        client = RichClient(world.registry)
        try:
            with pytest.raises(RemoteServiceError) as excinfo:
                client.invoke("glotta", "analyze", {"text": "hi"})
            assert excinfo.value.status == 502
        finally:
            client.close()

    def test_injection_does_not_perturb_latency_stream(self):
        """Arming a plan must not change what unfaulted calls sample."""
        def timings(plan):
            world = build_world(seed=5, corpus_size=10)
            if plan is not None:
                plan.injector().install(world.transport)
            client = RichClient(world.registry)
            try:
                stamps = []
                for index in range(3):
                    client.invoke("glotta", "analyze",
                                  {"text": f"t{index}"}, use_cache=False)
                    stamps.append(world.clock.now())
                return stamps
            finally:
                client.close()

        # The burst window is far in the future: never fires.
        armed = FaultPlan(
            (ErrorBurst(Window(1000.0, 2000.0), probability=0.5),), seed=3)
        assert timings(None) == timings(armed)


class TestSkewedClock:
    def test_observation_shifts_but_charges_share_time(self):
        inner = ManualClock()
        skewed = SkewedClock(inner, -45.0)
        assert skewed.now() == -45.0
        skewed.charge(2.0)
        assert inner.now() == 2.0
        assert skewed.now() == -43.0


class TestFaultyStore:
    def test_operations_fail_only_inside_windows(self):
        clock = ManualClock()
        store = FaultyStore(InMemoryKeyValueStore(), clock,
                            [Window(1.0, 2.0)])
        store.put("k", 1)
        clock.charge(1.5)
        with pytest.raises(StorageFaultError):
            store.put("k", 2)
        with pytest.raises(StorageFaultError):
            store.get("k")
        clock.charge(1.0)
        assert store.get("k") == 1
        assert store.faults_raised == 2

    def test_missing_key_semantics_preserved(self):
        store = FaultyStore(InMemoryKeyValueStore(), ManualClock(), [])
        sentinel = object()
        assert store.get("absent", sentinel) is sentinel
