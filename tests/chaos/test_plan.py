"""Tests for declarative fault plans (repro.chaos.plan)."""

import pytest

from repro.chaos.plan import (
    ClockSkew,
    ErrorBurst,
    FaultPlan,
    FlappingLink,
    LatencySpike,
    Partition,
    PayloadCorruption,
    Window,
    offline_transitions,
)


class TestWindow:
    def test_half_open_interval(self):
        window = Window(1.0, 3.0)
        assert not window.contains(0.999)
        assert window.contains(1.0)
        assert window.contains(2.999)
        assert not window.contains(3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Window(5.0, 4.0)

    def test_describe_is_stable(self):
        assert Window(0.5, 2.0).describe() == "[0.5, 2)"


class TestSpecValidation:
    def test_error_burst_probability_bounds(self):
        with pytest.raises(ValueError):
            ErrorBurst(Window(0, 1), probability=0.0)
        with pytest.raises(ValueError):
            ErrorBurst(Window(0, 1), probability=1.5)

    def test_error_burst_status_bounds(self):
        with pytest.raises(ValueError):
            ErrorBurst(Window(0, 1), status=200)

    def test_latency_spike_bounds(self):
        with pytest.raises(ValueError):
            LatencySpike(Window(0, 1), extra=-0.1)
        with pytest.raises(ValueError):
            LatencySpike(Window(0, 1), factor=0.5)

    def test_flapping_bounds(self):
        with pytest.raises(ValueError):
            FlappingLink(Window(0, 1), period=0.0)
        with pytest.raises(ValueError):
            FlappingLink(Window(0, 1), period=1.0, duty_offline=1.0)


class TestSpecScoping:
    def test_endpoint_scope(self):
        burst = ErrorBurst(Window(0.0, 10.0), endpoint="glotta")
        assert burst.active("glotta", 5.0)
        assert not burst.active("lexica-prime", 5.0)
        assert not burst.active("glotta", 10.0)  # window is half-open

    def test_unscoped_spec_hits_every_endpoint(self):
        partition = Partition(Window(1.0, 2.0))
        assert partition.active("anything", 1.5)

    def test_flapping_duty_cycle(self):
        # period 2s, first half offline: [1,2) down, [2,3) up, [3,4) down...
        flap = FlappingLink(Window(1.0, 9.0), period=2.0, duty_offline=0.5)
        assert flap.active("svc", 1.5)
        assert not flap.active("svc", 2.5)
        assert flap.active("svc", 3.5)
        assert not flap.active("svc", 9.5)  # outside the envelope

    def test_flapping_offline_windows_expand_duty_cycle(self):
        flap = FlappingLink(Window(1.0, 9.0), period=2.0, duty_offline=0.5)
        assert flap.offline_windows() == [
            Window(1.0, 2.0), Window(3.0, 4.0),
            Window(5.0, 6.0), Window(7.0, 8.0)]


class TestFaultPlan:
    def test_offline_windows_merges_partitions_and_flaps(self):
        plan = FaultPlan((
            Partition(Window(10.0, 12.0)),
            FlappingLink(Window(0.0, 4.0), period=2.0, duty_offline=0.5),
            Partition(Window(20.0, 21.0), endpoint="other"),
        ), seed=7)
        assert plan.offline_windows() == [
            Window(0.0, 1.0), Window(2.0, 3.0), Window(10.0, 12.0)]
        # Endpoint-scoped query also sees the endpoint's own partitions.
        assert Window(20.0, 21.0) in plan.offline_windows("other")

    def test_skew_at_sums_active_skews(self):
        plan = FaultPlan((
            ClockSkew(Window(0.0, 10.0), offset=-45.0),
            ClockSkew(Window(5.0, 10.0), offset=2.0),
        ))
        assert plan.skew_at(1.0) == -45.0
        assert plan.skew_at(6.0) == -43.0
        assert plan.skew_at(10.0) == 0.0

    def test_describe_is_stable_and_ordered(self):
        plan = FaultPlan((
            ErrorBurst(Window(5.0, 60.0), endpoint="lexica-prime"),
            PayloadCorruption(Window(0.0, 1.0)),
        ), seed=13)
        assert plan.describe() == (
            "fault-plan seed=13 specs=2\n"
            "  - error-burst lexica-prime [5, 60) status=500 p=1\n"
            "  - corruption * [0, 1) p=1")

    def test_of_type_preserves_order(self):
        first = Partition(Window(0.0, 1.0))
        second = Partition(Window(2.0, 3.0))
        plan = FaultPlan((first, ErrorBurst(Window(0, 1)), second))
        assert plan.of_type(Partition) == [first, second]


class TestOfflineTransitions:
    def test_merges_overlapping_and_touching_windows(self):
        transitions = offline_transitions([
            Window(5.0, 7.0), Window(1.0, 2.0), Window(2.0, 3.0),
            Window(6.0, 8.0)])
        assert transitions == [1.0, 3.0, 5.0, 8.0]

    def test_empty(self):
        assert offline_transitions([]) == []
