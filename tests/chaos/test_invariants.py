"""Tests for the resilience invariants (repro.chaos.invariants)."""

import pytest

from repro.chaos.invariants import (
    CallOutcome,
    InvariantReport,
    ScenarioRun,
    check_all,
    check_bounded_staleness,
    check_breaker_conformance,
    check_counter_consistency,
    check_deadline_honored,
    check_no_lost_updates,
)
from repro.core.circuitbreaker import CircuitBreaker
from repro.simnet.errors import RemoteServiceError
from repro.util.clock import ManualClock


def _run(**overrides):
    run = ScenarioRun("unit", seed=1, protections=True)
    for key, value in overrides.items():
        setattr(run, key, value)
    return run


class TestCallOutcome:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            CallOutcome("mystery", 0.0, 1.0)


class TestDeadlineHonored:
    def test_skips_without_deadlined_calls(self):
        run = _run()
        run.issue()
        run.record("success", 0.0, 1.0)
        assert check_deadline_honored(run).verdict == "SKIP"

    def test_passes_within_one_transport_step(self):
        run = _run(max_transport_step=0.5)
        run.record("success", 0.0, 1.4, deadline_expires=1.0)
        assert check_deadline_honored(run).verdict == "PASS"

    def test_fails_past_the_allowed_step(self):
        run = _run(max_transport_step=0.5)
        run.record("success", 0.0, 1.6, deadline_expires=1.0)
        result = check_deadline_honored(run)
        assert result.verdict == "FAIL"
        assert "0.600000" in result.detail


class TestNoLostUpdates:
    def test_skips_without_replicated_state(self):
        assert check_no_lost_updates(_run()).verdict == "SKIP"

    def test_passes_on_convergence(self):
        run = _run(expected_state={"a": 1}, remote_state={"a": 1})
        assert check_no_lost_updates(run).verdict == "PASS"

    def test_fails_on_missing_stale_or_extra_keys(self):
        run = _run(expected_state={"a": 2, "b": 1},
                   remote_state={"a": 1, "c": 9})
        result = check_no_lost_updates(run)
        assert result.verdict == "FAIL"
        assert "['a', 'b']" in result.detail and "['c']" in result.detail


class TestBreakerConformance:
    def test_skips_without_breakers(self):
        assert check_breaker_conformance(_run()).verdict == "SKIP"

    def test_real_breaker_walk_is_legal(self):
        clock = ManualClock()
        breaker = CircuitBreaker(clock, "svc", failure_threshold=1,
                                 cooldown=1.0)
        with pytest.raises(RemoteServiceError):
            breaker.call(lambda: (_ for _ in ()).throw(
                RemoteServiceError("svc", "down")))
        clock.advance(1.0)
        breaker.call(lambda: "ok")  # half-open probe closes it
        run = _run(breakers=[breaker])
        result = check_breaker_conformance(run)
        assert result.verdict == "PASS"
        assert "3 transition(s)" in result.detail


class TestBoundedStaleness:
    def test_skips_without_bound_or_ages(self):
        assert check_bounded_staleness(_run()).verdict == "SKIP"
        assert check_bounded_staleness(
            _run(staleness_bound=5.0)).verdict == "SKIP"

    def test_pass_and_fail_around_the_bound(self):
        assert check_bounded_staleness(
            _run(staleness_bound=5.0, stale_ages=[4.9])).verdict == "PASS"
        assert check_bounded_staleness(
            _run(staleness_bound=5.0, stale_ages=[4.9, 5.1])).verdict == "FAIL"


class TestCounterConsistency:
    def test_skips_with_no_requests(self):
        assert check_counter_consistency(_run()).verdict == "SKIP"

    def test_detects_unaccounted_requests(self):
        run = _run()
        run.issue()
        run.issue()
        run.record("success", 0.0, 1.0)
        result = check_counter_consistency(run)
        assert result.verdict == "FAIL"

    def test_balances_across_all_kinds(self):
        run = _run()
        for kind in ("success", "degraded", "failure", "shed"):
            run.issue()
            run.record(kind, 0.0, 1.0)
        assert check_counter_consistency(run).verdict == "PASS"


class TestReport:
    def _report(self) -> InvariantReport:
        run = _run(max_transport_step=0.5,
                   injected={"errors": 2, "latency_spikes": 1,
                             "partitions": 0, "corruptions": 0})
        run.issue()
        run.record("success", 0.0, 0.4, deadline_expires=1.0)
        run.note("unit-test note")
        return check_all(run)

    def test_passed_ignores_skipped_checks(self):
        report = self._report()
        assert report.passed
        assert report.failures() == []

    def test_render_is_byte_stable(self):
        first = self._report().render()
        second = self._report().render()
        assert first == second
        assert first.splitlines()[0] == (
            "chaos scenario=unit seed=1 protections=on")
        assert "requests=1 successes=1 degraded=0 failures=0 sheds=0" in first
        assert "injected: errors=2 latency=1 partitions=0 corruptions=0" in first
        assert "note: unit-test note" in first
        assert first.splitlines()[-1] == "verdict: PASS"

    def test_failing_report_renders_fail_verdict(self):
        run = _run(expected_state={"a": 1}, remote_state={})
        run.issue()
        run.record("success", 0.0, 0.1)
        report = check_all(run)
        assert not report.passed
        assert [result.name for result in report.failures()] == [
            "no-lost-updates"]
        assert report.render().splitlines()[-1] == "verdict: FAIL"
