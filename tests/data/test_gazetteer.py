"""Tests for the entity gazetteer."""

import pytest

from repro.data.gazetteer import Entity, Gazetteer, default_gazetteer


@pytest.fixture
def gazetteer():
    return default_gazetteer()


class TestDefaultGazetteer:
    def test_nonempty_and_typed(self, gazetteer):
        assert len(gazetteer) >= 40
        types = {entity.entity_type for entity in gazetteer}
        assert {"Country", "Company", "Person", "City", "Disease", "Technology"} <= types

    def test_paper_us_alias_example(self, gazetteer):
        """The §3 running example: every US alias resolves to one entity."""
        target = gazetteer.resolve("United States of America")
        assert target is not None
        for alias in ("USA", "US", "United States", "America", "the States"):
            assert gazetteer.resolve(alias) is target

    def test_links_mirror_paper_url_bundle(self, gazetteer):
        links = gazetteer.resolve("USA").links
        assert links["dbpedia"] == "http://dbpedia.org/resource/United_States_of_America"
        assert links["yago"].startswith("http://yago-knowledge.org/resource/")
        assert "wikidata" in links

    def test_resolution_case_insensitive(self, gazetteer):
        assert gazetteer.resolve("usa") is gazetteer.resolve("USA")

    def test_resolution_strips_whitespace(self, gazetteer):
        assert gazetteer.resolve("  USA  ") is not None

    def test_unknown_surface(self, gazetteer):
        assert gazetteer.resolve("Atlantis") is None

    def test_get_by_id(self, gazetteer):
        assert gazetteer.get("Q30").name == "United States of America"
        assert gazetteer.get("nope") is None

    def test_entities_of_type(self, gazetteer):
        countries = gazetteer.entities_of_type("Country")
        assert len(countries) >= 10
        assert all(entity.entity_type == "Country" for entity in countries)

    def test_disease_synonyms(self, gazetteer):
        assert gazetteer.resolve("flu").entity_id == "D_influenza"
        assert gazetteer.resolve("high blood pressure").entity_id == "D_hypertension"

    def test_surface_forms_longest_first(self, gazetteer):
        forms = gazetteer.surface_forms()
        lengths = [len(form) for form in forms]
        assert lengths == sorted(lengths, reverse=True)


class TestGazetteerConstruction:
    def test_duplicate_id_rejected(self):
        entity = Entity("X1", "Thing One", "Test")
        with pytest.raises(ValueError):
            Gazetteer([entity, Entity("X1", "Thing Two", "Test")])

    def test_alias_collision_rejected(self):
        with pytest.raises(ValueError):
            Gazetteer([
                Entity("A", "Alpha", "Test", ("shared",)),
                Entity("B", "Beta", "Test", ("SHARED",)),
            ])

    def test_all_surface_forms(self):
        entity = Entity("A", "Alpha", "Test", ("Al", "Alph"))
        assert entity.all_surface_forms() == ("Alpha", "Al", "Alph")
