"""Tests for the synthetic corpus generator."""

import pytest

from repro.data.corpus import generate_corpus
from repro.data.gazetteer import default_gazetteer
from repro.textproc.html import extract_title, strip_html


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(size=50, seed=42)


class TestDeterminism:
    def test_same_seed_same_corpus(self):
        first = generate_corpus(size=10, seed=1)
        second = generate_corpus(size=10, seed=1)
        assert [doc.text for doc in first] == [doc.text for doc in second]
        assert [doc.url for doc in first] == [doc.url for doc in second]

    def test_different_seed_differs(self):
        first = generate_corpus(size=10, seed=1)
        second = generate_corpus(size=10, seed=2)
        assert [doc.text for doc in first] != [doc.text for doc in second]


class TestStructure:
    def test_requested_size(self, corpus):
        assert len(corpus) == 50

    def test_unique_ids_and_urls(self, corpus):
        assert len({doc.doc_id for doc in corpus}) == 50
        assert len({doc.url for doc in corpus}) == 50

    def test_lookup_by_id_and_url(self, corpus):
        doc = corpus.documents[3]
        assert corpus.by_id(doc.doc_id) is doc
        assert corpus.by_url(doc.url) is doc
        assert corpus.by_url("http://nowhere.example/") is None

    def test_doc_types_mixed(self, corpus):
        types = {doc.doc_type for doc in corpus}
        assert types == {"news", "blog", "reference"}

    def test_of_type_filter(self, corpus):
        news = corpus.of_type("news")
        assert news
        assert all(doc.doc_type == "news" for doc in news)

    def test_timestamps_increase(self, corpus):
        stamps = [doc.timestamp for doc in corpus]
        assert stamps == sorted(stamps)

    def test_html_well_formed(self, corpus):
        doc = corpus.documents[0]
        assert extract_title(doc.html) == doc.title
        assert doc.title in doc.text


class TestGoldAnnotations:
    def test_every_document_has_entities(self, corpus):
        assert all(doc.gold_entities for doc in corpus)

    def test_gold_aliases_appear_in_text(self, corpus):
        for doc in corpus.documents[:20]:
            for aliases in doc.gold_aliases.values():
                for alias in aliases:
                    assert alias in doc.text

    def test_single_surface_per_entity_per_doc(self, corpus):
        """A document refers to an entity by one consistent surface form."""
        for doc in corpus:
            for aliases in doc.gold_aliases.values():
                assert len(set(aliases)) == 1

    def test_gold_sentiment_matches_entity_set(self, corpus):
        for doc in corpus:
            assert set(doc.gold_sentiment) == set(doc.gold_entities)

    def test_reference_documents_are_neutral(self, corpus):
        for doc in corpus.of_type("reference"):
            assert all(stance == 0 for stance in doc.gold_sentiment.values())

    def test_mentioning_index(self, corpus):
        doc = corpus.documents[0]
        entity_id = next(iter(doc.gold_entities))
        assert doc in corpus.mentioning(entity_id)

    def test_overall_sentiment_sign(self, corpus):
        for doc in corpus:
            total = sum(doc.gold_sentiment.values())
            expected = 0 if total == 0 else (1 if total > 0 else -1)
            assert doc.overall_gold_sentiment == expected

    def test_stance_wording_matches_gold(self, corpus):
        """Positive-stance text should contain positive lexicon words."""
        from repro.data.lexicon import default_sentiment_lexicon
        from repro.textproc.tokenizer import tokenize

        lexicon = default_sentiment_lexicon()
        for doc in corpus.documents[:15]:
            text = strip_html(doc.html)
            score = lexicon.score_tokens(tokenize(text))
            if doc.overall_gold_sentiment > 0:
                assert score > 0
            elif doc.overall_gold_sentiment < 0:
                assert score < 0

    def test_entities_come_from_gazetteer(self, corpus):
        gazetteer = default_gazetteer()
        for doc in corpus:
            for entity_id in doc.gold_entities:
                assert gazetteer.get(entity_id) is not None
