"""Tests for the concept taxonomy."""

import pytest

from repro.data.taxonomy import ConceptTaxonomy, default_taxonomy


@pytest.fixture
def taxonomy():
    return default_taxonomy()


class TestStructure:
    def test_paths_are_rooted(self, taxonomy):
        path = taxonomy.path("machine learning")
        assert path == ["technology", "artificial intelligence", "machine learning"]

    def test_root_path(self, taxonomy):
        assert taxonomy.path("technology") == ["technology"]

    def test_ancestors(self, taxonomy):
        assert taxonomy.ancestors("machine learning") == [
            "artificial intelligence", "technology",
        ]

    def test_subclass_pairs_cover_non_roots(self, taxonomy):
        pairs = taxonomy.subclass_pairs()
        children = {child for child, _ in pairs}
        roots = {concept for concept in taxonomy if taxonomy.parent(concept) is None}
        assert children | roots == set(iter(taxonomy))

    def test_triggers(self, taxonomy):
        assert "machine learning" in taxonomy.concepts_for_token("training")
        assert taxonomy.concepts_for_token("xyzzy") == set()

    def test_trigger_case_insensitive(self, taxonomy):
        assert taxonomy.concepts_for_token("Training") == taxonomy.concepts_for_token("training")


class TestConstruction:
    def test_unknown_parent_rejected(self):
        taxonomy = ConceptTaxonomy()
        with pytest.raises(ValueError):
            taxonomy.add_concept("child", parent="ghost")

    def test_duplicate_concept_rejected(self):
        taxonomy = ConceptTaxonomy()
        taxonomy.add_concept("root")
        with pytest.raises(ValueError):
            taxonomy.add_concept("root")

    def test_contains(self):
        taxonomy = ConceptTaxonomy()
        taxonomy.add_concept("root")
        assert "root" in taxonomy
        assert "leaf" not in taxonomy
