"""Tests for the sentiment lexicon."""

import pytest

from repro.data.lexicon import SentimentLexicon, default_sentiment_lexicon
from repro.textproc.tokenizer import tokenize


@pytest.fixture
def lexicon():
    return default_sentiment_lexicon()


class TestValence:
    def test_positive_words(self, lexicon):
        assert lexicon.valence("excellent") > 0
        assert lexicon.valence("great") > 0

    def test_negative_words(self, lexicon):
        assert lexicon.valence("terrible") < 0
        assert lexicon.valence("fraud") < 0

    def test_neutral_unknown_word(self, lexicon):
        assert lexicon.valence("table") == 0

    def test_case_insensitive(self, lexicon):
        assert lexicon.valence("Excellent") == lexicon.valence("excellent")

    def test_contains(self, lexicon):
        assert "excellent" in lexicon
        assert "zebra" not in lexicon


class TestScoring:
    def test_positive_sentence(self, lexicon):
        assert lexicon.score_tokens(tokenize("the results were excellent")) > 0

    def test_negative_sentence(self, lexicon):
        assert lexicon.score_tokens(tokenize("a terrible and costly disaster")) < 0

    def test_negation_flips_sign(self, lexicon):
        plain = lexicon.score_tokens(tokenize("this is good"))
        negated = lexicon.score_tokens(tokenize("this is not good"))
        assert plain > 0
        assert negated < 0
        assert abs(negated) < plain  # damped, not fully inverted

    def test_intensifier_amplifies(self, lexicon):
        plain = lexicon.score_tokens(tokenize("it was good"))
        intense = lexicon.score_tokens(tokenize("it was extremely good"))
        assert intense > plain

    def test_downtoner_dampens(self, lexicon):
        plain = lexicon.score_tokens(tokenize("it was good"))
        damped = lexicon.score_tokens(tokenize("it was slightly good"))
        assert 0 < damped < plain

    def test_neutral_text_scores_zero(self, lexicon):
        assert lexicon.score_tokens(tokenize("the meeting is on tuesday")) == 0


class TestRestriction:
    def test_restricted_is_subset(self, lexicon):
        small = lexicon.restricted(0.5)
        assert set(small.scores) <= set(lexicon.scores)
        assert 0 < len(small) < len(lexicon)

    def test_restriction_deterministic(self, lexicon):
        assert lexicon.restricted(0.5).scores == lexicon.restricted(0.5).scores

    def test_different_seeds_differ(self, lexicon):
        assert lexicon.restricted(0.5, seed=1).scores != lexicon.restricted(0.5, seed=2).scores

    def test_fraction_validated(self, lexicon):
        with pytest.raises(ValueError):
            lexicon.restricted(0.0)
        with pytest.raises(ValueError):
            lexicon.restricted(1.5)

    def test_tiny_fraction_keeps_at_least_one(self, lexicon):
        assert len(lexicon.restricted(0.0001)) >= 1

    def test_full_fraction_keeps_everything(self, lexicon):
        assert lexicon.restricted(1.0).scores == lexicon.scores
