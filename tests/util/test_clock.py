"""Tests for the clock abstraction."""

import threading
import time

import pytest

from repro.util.clock import ManualClock, RealClock


class TestManualClock:
    def test_starts_at_zero_by_default(self):
        assert ManualClock().now() == 0.0

    def test_starts_at_given_time(self):
        assert ManualClock(start=100.0).now() == 100.0

    def test_advance_moves_time_forward(self):
        clock = ManualClock()
        clock.advance(2.5)
        clock.advance(1.5)
        assert clock.now() == 4.0

    def test_charge_is_advance(self):
        clock = ManualClock()
        clock.charge(0.75)
        assert clock.now() == 0.75

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            ManualClock().advance(-1.0)

    def test_charge_parallel_takes_maximum(self):
        clock = ManualClock()
        clock.charge_parallel([0.1, 0.5, 0.3])
        assert clock.now() == 0.5

    def test_charge_parallel_empty_is_noop(self):
        clock = ManualClock()
        clock.charge_parallel([])
        assert clock.now() == 0.0

    def test_elapsed_since(self):
        clock = ManualClock()
        start = clock.now()
        clock.advance(3.0)
        assert clock.elapsed_since(start) == 3.0

    def test_thread_safe_charging(self):
        clock = ManualClock()

        def worker():
            for _ in range(1000):
                clock.charge(0.001)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert clock.now() == pytest.approx(4.0)


class TestRealClock:
    def test_time_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            RealClock(time_scale=0.0)

    def test_now_advances_with_wall_time(self):
        clock = RealClock(time_scale=1.0)
        first = clock.now()
        time.sleep(0.01)
        assert clock.now() > first

    def test_charge_sleeps_scaled(self):
        clock = RealClock(time_scale=0.01)
        before = time.monotonic()
        clock.charge(1.0)  # should sleep ~10 ms
        elapsed = time.monotonic() - before
        assert 0.005 <= elapsed < 0.5

    def test_now_reports_simulated_seconds(self):
        clock = RealClock(time_scale=0.01)
        clock.charge(1.0)
        # 1 simulated second was charged; now() is in simulated units.
        assert clock.now() >= 0.9

    def test_zero_charge_does_not_sleep(self):
        clock = RealClock(time_scale=1.0)
        before = time.monotonic()
        clock.charge(0.0)
        assert time.monotonic() - before < 0.05
