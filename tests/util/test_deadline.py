"""Tests for end-to-end deadlines (repro.util.deadline)."""

import pytest

from repro.simnet.errors import NetworkError
from repro.util.deadline import Deadline, DeadlineExceededError
from repro.util.clock import ManualClock


class TestDeadline:
    def test_after_sets_absolute_expiry(self, clock):
        clock.advance(3.0)
        deadline = Deadline.after(clock, 2.0)
        assert deadline.expires_at == 5.0
        assert deadline.remaining() == 2.0
        assert not deadline.expired()

    def test_budget_is_shared_down_the_stack(self, clock):
        deadline = Deadline.after(clock, 2.0)
        clock.advance(1.5)  # some layer consumed 1.5s
        assert deadline.remaining() == pytest.approx(0.5)
        clock.advance(1.0)
        assert deadline.remaining() == 0.0  # never negative
        assert deadline.expired()

    def test_check_raises_with_context(self, clock):
        deadline = Deadline.after(clock, 1.0)
        deadline.check("warm-up")  # in budget: no raise
        clock.advance(1.0)
        with pytest.raises(DeadlineExceededError) as excinfo:
            deadline.check("kb sync")
        assert excinfo.value.context == "kb sync"
        assert excinfo.value.expires_at == 1.0
        assert excinfo.value.now == 1.0

    def test_clamp_tightens_the_wire_timeout(self, clock):
        deadline = Deadline.after(clock, 2.0)
        assert deadline.clamp(5.0) == 2.0   # budget is the binding limit
        assert deadline.clamp(0.5) == 0.5   # explicit timeout is tighter
        assert deadline.clamp(None) == 2.0  # no timeout: budget alone

    def test_negative_budget_rejected(self, clock):
        with pytest.raises(ValueError):
            Deadline.after(clock, -0.1)

    def test_zero_budget_is_immediately_expired(self, clock):
        deadline = Deadline.after(clock, 0.0)
        assert deadline.expired()
        with pytest.raises(DeadlineExceededError):
            deadline.check()

    def test_not_a_network_error_so_never_retried(self):
        # Retry policies retry NetworkError; an exhausted budget must
        # never qualify — retrying it only digs the hole deeper.
        assert not issubclass(DeadlineExceededError, NetworkError)

    def test_deadline_is_frozen(self, clock):
        deadline = Deadline.after(clock, 1.0)
        with pytest.raises(AttributeError):
            deadline.expires_at = 99.0


class TestDeadlineAcrossClocks:
    def test_manual_clock_charges_count_against_budget(self):
        clock = ManualClock()
        deadline = Deadline.after(clock, 1.0)
        clock.charge(0.25)
        assert deadline.remaining() == pytest.approx(0.75)
