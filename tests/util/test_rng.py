"""Tests for deterministic random generation."""

import pytest
from hypothesis import given, strategies as st

from repro.util.rng import SeededRng, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a") == derive_seed(42, "a")

    def test_label_changes_seed(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_parent_changes_seed(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    @given(st.integers(min_value=0, max_value=2**62), st.text(max_size=30))
    def test_always_in_63_bit_range(self, parent, label):
        seed = derive_seed(parent, label)
        assert 0 <= seed < 2**63


class TestSeededRng:
    def test_same_seed_same_stream(self):
        first = [SeededRng(7).random() for _ in range(5)]
        second = [SeededRng(7).random() for _ in range(5)]
        # Each constructor restarts the stream.
        assert first[0] == second[0]

    def test_children_are_independent(self):
        parent = SeededRng(7)
        child_a = parent.child("a")
        child_b = parent.child("b")
        assert child_a.random() != child_b.random()

    def test_children_are_reproducible(self):
        assert SeededRng(7).child("x").random() == SeededRng(7).child("x").random()

    def test_bernoulli_bounds_checked(self):
        with pytest.raises(ValueError):
            SeededRng(1).bernoulli(1.5)

    def test_bernoulli_extremes(self):
        rng = SeededRng(1)
        assert all(not rng.bernoulli(0.0) for _ in range(20))
        assert all(rng.bernoulli(1.0) for _ in range(20))

    def test_bernoulli_rate_roughly_matches(self):
        rng = SeededRng(99)
        hits = sum(rng.bernoulli(0.3) for _ in range(5000))
        assert 0.25 < hits / 5000 < 0.35

    def test_exponential_requires_positive_rate(self):
        with pytest.raises(ValueError):
            SeededRng(1).exponential(0.0)

    def test_lognormal_positive(self):
        rng = SeededRng(5)
        assert all(rng.lognormal(0.0, 0.5) > 0 for _ in range(100))

    def test_randint_inclusive(self):
        rng = SeededRng(3)
        draws = {rng.randint(1, 3) for _ in range(200)}
        assert draws == {1, 2, 3}

    def test_shuffled_preserves_elements(self):
        rng = SeededRng(3)
        items = list(range(20))
        shuffled = rng.shuffled(items)
        assert sorted(shuffled) == items
        assert items == list(range(20))  # input untouched

    def test_sample_unique(self):
        rng = SeededRng(3)
        picked = rng.sample(range(100), 10)
        assert len(set(picked)) == 10

    def test_zipf_prefers_low_indexes(self):
        rng = SeededRng(11)
        draws = [rng.zipf_index(100, exponent=1.2) for _ in range(3000)]
        head = sum(1 for draw in draws if draw < 10)
        tail = sum(1 for draw in draws if draw >= 50)
        assert head > tail

    def test_zipf_size_validated(self):
        with pytest.raises(ValueError):
            SeededRng(1).zipf_index(0)

    def test_weighted_choice_respects_weights(self):
        rng = SeededRng(13)
        draws = [rng.weighted_choice(["a", "b"], [0.99, 0.01]) for _ in range(500)]
        assert draws.count("a") > 400
