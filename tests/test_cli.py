"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


@pytest.fixture
def small(monkeypatch):
    """Keep CLI worlds small so the tests stay fast."""
    return ["--corpus-size", "20"]


class TestCli:
    def test_services_lists_catalog(self, capsys, small):
        assert main(small + ["services"]) == 0
        out = capsys.readouterr().out
        assert "lexica-prime" in out
        assert "goggle" in out
        assert "storage" in out

    def test_analyze_prints_json(self, capsys, small):
        assert main(small + ["analyze", "IBM had excellent results."]) == 0
        out = capsys.readouterr().out
        import json

        payload = json.loads(out)
        assert any(entity["id"] == "C_ibm" for entity in payload["entities"])

    def test_analyze_with_other_service(self, capsys, small):
        assert main(small + ["analyze", "Globex thrives.",
                             "--service", "glotta"]) == 0

    def test_search_prints_hits(self, capsys, small):
        assert main(small + ["search", "thrives results", "--limit", "3"]) == 0
        out = capsys.readouterr().out
        assert "http://" in out

    def test_search_no_results(self, capsys, small):
        assert main(small + ["search", "zzzqqqxxx"]) == 0
        assert "(no results)" in capsys.readouterr().out

    def test_rank_nlu(self, capsys, small):
        assert main(small + ["rank", "nlu", "--warmup", "2",
                             "--cost-weight", "100"]) == 0
        out = capsys.readouterr().out
        for provider in ("lexica-prime", "glotta", "wordsmith-lite"):
            assert provider in out

    def test_rank_unknown_kind_fails(self, capsys, small):
        assert main(small + ["rank", "teleportation"]) == 1

    def test_demo_runs_end_to_end(self, capsys, small):
        assert main(small + ["demo"]) == 0
        out = capsys.readouterr().out
        assert "cached=True" in out
        assert "served by" in out

    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            main([])
