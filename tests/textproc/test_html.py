"""Tests for HTML rendering and stripping."""

from repro.textproc.html import extract_title, render_html, strip_html


class TestRenderHtml:
    def test_roundtrip_title(self):
        html = render_html("My Title", ["Paragraph one.", "Paragraph two."])
        assert extract_title(html) == "My Title"

    def test_escapes_content(self):
        html = render_html("A < B", ["x & y"])
        assert "A &lt; B" in html
        assert "x &amp; y" in html

    def test_metadata_embedded(self):
        html = render_html("T", ["p"], metadata={"doc-type": "news"})
        assert 'name="doc-type"' in html
        assert 'content="news"' in html


class TestStripHtml:
    def test_removes_tags(self):
        assert strip_html("<p>Hello <b>world</b></p>") == "Hello world"

    def test_removes_scripts_and_styles(self):
        html = "<style>.x{color:red}</style><script>alert(1)</script><p>Body</p>"
        assert strip_html(html) == "Body"

    def test_block_tags_become_line_breaks(self):
        text = strip_html("<p>First.</p><p>Second.</p>")
        assert text.splitlines() == ["First.", "Second."]

    def test_entities_unescaped(self):
        assert strip_html("<p>a &amp; b</p>") == "a & b"

    def test_render_strip_roundtrip_preserves_text(self):
        paragraphs = ["IBM thrived this quarter.", "Analysts were impressed."]
        text = strip_html(render_html("Report", paragraphs))
        for paragraph in paragraphs:
            assert paragraph in text

    def test_whitespace_collapsed(self):
        assert strip_html("<p>a    b\t\tc</p>") == "a b c"


class TestExtractTitle:
    def test_missing_title(self):
        assert extract_title("<html><body>x</body></html>") == ""

    def test_title_with_entities(self):
        assert extract_title("<title>A &amp; B</title>") == "A & B"

    def test_case_insensitive_tag(self):
        assert extract_title("<TITLE>Loud</TITLE>") == "Loud"
