"""Tests for tokenization and sentence splitting."""

from repro.textproc.tokenizer import split_sentences, tokenize, word_tokens


class TestTokenize:
    def test_basic_words(self):
        assert tokenize("Hello world") == ["hello", "world"]

    def test_punctuation_dropped(self):
        assert tokenize("Hello, world!") == ["hello", "world"]

    def test_keeps_case_when_asked(self):
        assert tokenize("Hello World", lowercase=False) == ["Hello", "World"]

    def test_numbers_tokenized(self):
        assert tokenize("pi is 3.14 and e is 2") == ["pi", "is", "3.14", "and", "e", "is", "2"]

    def test_apostrophes_kept_inside_words(self):
        assert tokenize("don't stop") == ["don't", "stop"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_whitespace_only(self):
        assert tokenize("   \n\t ") == []


class TestWordTokens:
    def test_filters_numbers(self):
        assert word_tokens("room 42 is open") == ["room", "is", "open"]


class TestSplitSentences:
    def test_basic_split(self):
        assert split_sentences("One. Two. Three.") == ["One.", "Two.", "Three."]

    def test_question_and_exclamation(self):
        sentences = split_sentences("Really? Yes! Good.")
        assert sentences == ["Really?", "Yes!", "Good."]

    def test_abbreviations_do_not_split(self):
        sentences = split_sentences("Mr. Smith arrived. He sat down.")
        assert sentences == ["Mr. Smith arrived.", "He sat down."]

    def test_corporate_abbreviation(self):
        sentences = split_sentences("Acme Inc. reported gains. Shares rose.")
        assert len(sentences) == 2

    def test_trailing_text_without_period(self):
        sentences = split_sentences("First sentence. trailing fragment")
        assert sentences == ["First sentence.", "trailing fragment"]

    def test_empty_input(self):
        assert split_sentences("") == []

    def test_single_sentence(self):
        assert split_sentences("Just one sentence.") == ["Just one sentence."]

    def test_multiple_terminators(self):
        assert split_sentences("What?! No way.") == ["What?!", "No way."]
