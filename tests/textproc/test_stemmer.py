"""Tests for the Porter stemmer."""

import pytest
from hypothesis import given, strategies as st

from repro.textproc.stemmer import porter_stem

# Classic examples from Porter's paper and the reference vocabulary.
KNOWN_STEMS = [
    ("caresses", "caress"),
    ("ponies", "poni"),
    ("ties", "ti"),
    ("caress", "caress"),
    ("cats", "cat"),
    ("feed", "feed"),
    ("agreed", "agre"),
    ("plastered", "plaster"),
    ("bled", "bled"),
    ("motoring", "motor"),
    ("sing", "sing"),
    ("conflated", "conflat"),
    ("troubled", "troubl"),
    ("sized", "size"),
    ("hopping", "hop"),
    ("tanned", "tan"),
    ("falling", "fall"),
    ("hissing", "hiss"),
    ("fizzed", "fizz"),
    ("failing", "fail"),
    ("filing", "file"),
    ("happy", "happi"),
    ("sky", "sky"),
    ("relational", "relat"),
    ("conditional", "condit"),
    ("rational", "ration"),
    ("valenci", "valenc"),
    ("hesitanci", "hesit"),
    ("digitizer", "digit"),
    ("conformabli", "conform"),
    ("radicalli", "radic"),
    ("differentli", "differ"),
    ("vileli", "vile"),
    ("analogousli", "analog"),
    ("vietnamization", "vietnam"),
    ("predication", "predic"),
    ("operator", "oper"),
    ("feudalism", "feudal"),
    ("decisiveness", "decis"),
    ("hopefulness", "hope"),
    ("callousness", "callous"),
    ("formaliti", "formal"),
    ("sensitiviti", "sensit"),
    ("sensibiliti", "sensibl"),
    ("triplicate", "triplic"),
    ("formative", "form"),
    ("formalize", "formal"),
    ("electriciti", "electr"),
    ("electrical", "electr"),
    ("hopeful", "hope"),
    ("goodness", "good"),
    ("revival", "reviv"),
    ("allowance", "allow"),
    ("inference", "infer"),
    ("airliner", "airlin"),
    ("gyroscopic", "gyroscop"),
    ("adjustable", "adjust"),
    ("defensible", "defens"),
    ("irritant", "irrit"),
    ("replacement", "replac"),
    ("adjustment", "adjust"),
    ("dependent", "depend"),
    ("adoption", "adopt"),
    ("homologou", "homolog"),
    ("communism", "commun"),
    ("activate", "activ"),
    ("angulariti", "angular"),
    ("homologous", "homolog"),
    ("effective", "effect"),
    ("bowdlerize", "bowdler"),
    ("probate", "probat"),
    ("rate", "rate"),
    ("cease", "ceas"),
    ("controll", "control"),
    ("roll", "roll"),
]


@pytest.mark.parametrize("word,expected", KNOWN_STEMS)
def test_known_stems(word, expected):
    assert porter_stem(word) == expected


def test_short_words_untouched():
    assert porter_stem("a") == "a"
    assert porter_stem("is") == "is"


def test_idempotent_on_common_words():
    for word in ("connection", "running", "flies", "analysis", "happily"):
        once = porter_stem(word)
        assert porter_stem(once) == porter_stem(once)


def test_morphological_variants_collapse():
    assert porter_stem("connect") == porter_stem("connected")
    assert porter_stem("connect") == porter_stem("connecting")
    assert porter_stem("connect") == porter_stem("connection")
    assert porter_stem("connect") == porter_stem("connections")


@given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=0, max_size=20))
def test_never_longer_than_input(word):
    assert len(porter_stem(word)) <= max(len(word), 1) or word == ""


@given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=20))
def test_always_returns_nonempty(word):
    assert porter_stem(word)
