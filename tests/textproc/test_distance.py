"""Tests for edit distances, including metric properties."""

import pytest
from hypothesis import given, strategies as st

from repro.textproc.distance import damerau_levenshtein, levenshtein, similarity_ratio

words = st.text(alphabet="abcdef", max_size=12)


class TestLevenshtein:
    @pytest.mark.parametrize(
        "first,second,expected",
        [
            ("", "", 0),
            ("a", "", 1),
            ("", "abc", 3),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("same", "same", 0),
            ("abc", "abd", 1),
        ],
    )
    def test_known_distances(self, first, second, expected):
        assert levenshtein(first, second) == expected

    def test_limit_early_exit(self):
        assert levenshtein("completely", "different", limit=2) == 3  # limit + 1

    def test_limit_respected_when_under(self):
        assert levenshtein("abc", "abd", limit=2) == 1

    def test_limit_length_gap_shortcut(self):
        assert levenshtein("a", "abcdefgh", limit=3) == 4

    @given(words, words)
    def test_symmetry(self, first, second):
        assert levenshtein(first, second) == levenshtein(second, first)

    @given(words)
    def test_identity(self, word):
        assert levenshtein(word, word) == 0

    @given(words, words, words)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(words, words)
    def test_bounded_by_longer_length(self, first, second):
        assert levenshtein(first, second) <= max(len(first), len(second))


class TestDamerauLevenshtein:
    def test_transposition_costs_one(self):
        assert damerau_levenshtein("abcd", "abdc") == 1
        assert levenshtein("abcd", "abdc") == 2

    def test_plain_edits_match_levenshtein(self):
        assert damerau_levenshtein("kitten", "sitting") == 3

    @given(words, words)
    def test_never_exceeds_levenshtein(self, first, second):
        assert damerau_levenshtein(first, second) <= levenshtein(first, second)

    @given(words, words)
    def test_symmetry(self, first, second):
        assert damerau_levenshtein(first, second) == damerau_levenshtein(second, first)


class TestSimilarityRatio:
    def test_identical(self):
        assert similarity_ratio("abc", "abc") == 1.0

    def test_empty_pair(self):
        assert similarity_ratio("", "") == 1.0

    def test_disjoint(self):
        assert similarity_ratio("abc", "xyz") == 0.0

    @given(words, words)
    def test_in_unit_interval(self, first, second):
        assert 0.0 <= similarity_ratio(first, second) <= 1.0
