"""Tests for the TF-IDF index and BM25 scoring."""

import pytest

from repro.textproc.tfidf import TfidfIndex, cosine_similarity, term_frequencies


@pytest.fixture
def index():
    idx = TfidfIndex()
    idx.add_document("d1", "the cat sat on the mat and the cat purred")
    idx.add_document("d2", "dogs chase cats in the park")
    idx.add_document("d3", "stock markets rallied as investors cheered earnings")
    return idx


class TestTermFrequencies:
    def test_counts_content_terms(self):
        counts = term_frequencies("the cat and the cat")
        assert counts["cat"] == 2
        assert "the" not in counts  # stopword

    def test_stemming_folds_variants(self):
        counts = term_frequencies("connect connected connecting")
        assert len(counts) == 1
        assert counts.most_common(1)[0][1] == 3


class TestIndexMaintenance:
    def test_len_and_contains(self, index):
        assert len(index) == 3
        assert "d1" in index
        assert "missing" not in index

    def test_readd_replaces(self, index):
        index.add_document("d1", "completely new content about quantum physics")
        assert len(index) == 3
        assert index.bm25_scores("quantum")[0][0] == "d1"
        assert index.bm25_scores("cat purred") == [] or all(
            doc != "d1" for doc, _ in index.bm25_scores("purred")
        )

    def test_remove_document(self, index):
        index.remove_document("d3")
        assert len(index) == 2
        assert index.bm25_scores("stock") == []

    def test_remove_unknown_is_noop(self, index):
        index.remove_document("nope")
        assert len(index) == 3

    def test_document_frequency_tracks_removal(self, index):
        # "cat"/"cats" stem together and appear in d1 and d2.
        stem = "cat"
        assert index.document_frequency(stem) == 2
        index.remove_document("d2")
        assert index.document_frequency(stem) == 1


class TestScoring:
    def test_idf_decreases_with_commonness(self, index):
        rare = index.inverse_document_frequency("quantum")
        common = index.inverse_document_frequency("cat")
        assert rare > common

    def test_top_terms_ranked(self, index):
        top = index.top_terms("d1", limit=3)
        assert top[0][0] == "cat"  # most frequent content term

    def test_bm25_ranks_matching_doc_first(self, index):
        scores = index.bm25_scores("cat mat")
        assert scores[0][0] == "d1"

    def test_bm25_empty_query(self, index):
        assert index.bm25_scores("the and of") == []

    def test_bm25_no_match(self, index):
        assert index.bm25_scores("xylophone") == []

    def test_bm25_scores_positive_and_sorted(self, index):
        scores = index.bm25_scores("cats park stock")
        values = [score for _, score in scores]
        assert values == sorted(values, reverse=True)
        assert all(value > 0 for value in values)

    def test_bm25_parameters_change_ranking_scores(self, index):
        default = dict(index.bm25_scores("cat"))
        flat = dict(index.bm25_scores("cat", k1=0.1, b=0.0))
        assert default != flat

    def test_candidates(self, index):
        assert index.candidates(["cat"]) == {"d1", "d2"}


class TestCosineSimilarity:
    def test_identical_vectors(self):
        vector = {"a": 1.0, "b": 2.0}
        assert cosine_similarity(vector, vector) == pytest.approx(1.0)

    def test_orthogonal_vectors(self):
        assert cosine_similarity({"a": 1.0}, {"b": 1.0}) == 0.0

    def test_empty_vector(self):
        assert cosine_similarity({}, {"a": 1.0}) == 0.0

    def test_symmetry(self):
        first = {"a": 1.0, "b": 0.5}
        second = {"b": 2.0, "c": 1.0}
        assert cosine_similarity(first, second) == pytest.approx(
            cosine_similarity(second, first)
        )
