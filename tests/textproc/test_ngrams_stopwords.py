"""Tests for n-grams and stop words."""

import pytest

from repro.textproc.ngrams import bigrams, ngram_strings, ngrams
from repro.textproc.stopwords import STOPWORDS, is_stopword, remove_stopwords


class TestNgrams:
    def test_bigrams(self):
        assert bigrams(["a", "b", "c"]) == [("a", "b"), ("b", "c")]

    def test_trigram(self):
        assert ngrams(["a", "b", "c", "d"], 3) == [("a", "b", "c"), ("b", "c", "d")]

    def test_n_equal_to_length(self):
        assert ngrams(["a", "b"], 2) == [("a", "b")]

    def test_n_longer_than_sequence(self):
        assert ngrams(["a"], 3) == []

    def test_n_must_be_positive(self):
        with pytest.raises(ValueError):
            ngrams(["a"], 0)

    def test_ngram_strings(self):
        assert ngram_strings(["new", "york", "city"], 2) == ["new york", "york city"]


class TestStopwords:
    def test_common_words_are_stopwords(self):
        for word in ("the", "and", "is", "of"):
            assert is_stopword(word)

    def test_case_insensitive(self):
        assert is_stopword("The")

    def test_content_words_are_not(self):
        for word in ("quantum", "ibm", "sentiment"):
            assert not is_stopword(word)

    def test_remove_stopwords(self):
        assert remove_stopwords(["the", "cat", "is", "fast"]) == ["cat", "fast"]

    def test_stopword_list_is_frozen(self):
        assert isinstance(STOPWORDS, frozenset)
