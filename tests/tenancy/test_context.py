"""Tests for tenant context propagation."""

import pytest

from repro.core.futures import CallbackExecutor
from repro.tenancy.context import current_tenant, tenant_scope


class TestTenantScope:
    def test_default_is_none(self):
        assert current_tenant() is None

    def test_scope_sets_and_restores(self):
        with tenant_scope("acme") as tenant:
            assert tenant == "acme"
            assert current_tenant() == "acme"
        assert current_tenant() is None

    def test_scopes_nest_innermost_wins(self):
        with tenant_scope("outer"):
            with tenant_scope("inner"):
                assert current_tenant() == "inner"
            assert current_tenant() == "outer"

    def test_restored_on_error(self):
        with pytest.raises(RuntimeError):
            with tenant_scope("acme"):
                raise RuntimeError("boom")
        assert current_tenant() is None

    def test_empty_tenant_rejected(self):
        with pytest.raises(ValueError):
            with tenant_scope(""):
                pass


class TestThreadPoolPropagation:
    def test_executor_carries_tenant_to_worker(self):
        # CallbackExecutor submits inside a copied context, so async
        # invokes issued under a tenant scope execute as that tenant.
        with CallbackExecutor(max_workers=2) as executor:
            with tenant_scope("acme"):
                future = executor.submit(current_tenant)
            assert future.get(timeout=5.0) == "acme"
            # Outside the scope, submissions are untenanted again.
            assert executor.submit(current_tenant).get(timeout=5.0) is None
