"""Tests for the tenant model and registry."""

import pytest

from repro.tenancy.model import (
    GUEST_PROFILE,
    Tenant,
    TenantRegistry,
    TenantSuspendedError,
    UnknownTenantError,
)


class TestTenantValidation:
    def test_minimal_tenant(self):
        tenant = Tenant("acme")
        assert tenant.weight == 1.0
        assert tenant.max_calls is None
        assert tenant.isolated_cache is True

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            Tenant("")

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            Tenant("acme", weight=0.0)
        with pytest.raises(ValueError):
            Tenant("acme", weight=-1.0)

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ValueError):
            Tenant("acme", rate=0.0)

    def test_burst_floor(self):
        with pytest.raises(ValueError):
            Tenant("acme", rate=1.0, burst=0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Tenant("acme").weight = 2.0


class TestRegistry:
    def test_register_and_get(self):
        registry = TenantRegistry()
        registry.register(Tenant("acme", weight=3.0))
        assert registry.get("acme").weight == 3.0
        assert "acme" in registry
        assert len(registry) == 1

    def test_get_unknown_raises(self):
        with pytest.raises(UnknownTenantError):
            TenantRegistry().get("ghost")

    def test_register_replaces(self):
        registry = TenantRegistry()
        registry.register(Tenant("acme", weight=1.0))
        registry.register(Tenant("acme", weight=5.0))
        assert registry.get("acme").weight == 5.0
        assert len(registry) == 1

    def test_resolve_auto_registers_guest(self):
        registry = TenantRegistry()
        tenant = registry.resolve("walk-in")
        assert tenant.tenant_id == "walk-in"
        assert tenant.weight == GUEST_PROFILE.weight
        assert "walk-in" in registry

    def test_resolve_closed_registry_raises(self):
        registry = TenantRegistry(auto_register=False)
        with pytest.raises(UnknownTenantError):
            registry.resolve("walk-in")
        assert "walk-in" not in registry

    def test_guest_profile_override(self):
        registry = TenantRegistry(
            guest_profile=Tenant("guest", weight=0.5, max_calls=10))
        tenant = registry.resolve("drive-by")
        assert tenant.weight == 0.5
        assert tenant.max_calls == 10

    def test_suspend_refuses_at_resolve_only(self):
        registry = TenantRegistry()
        registry.register(Tenant("acme"))
        registry.suspend("acme")
        # get() still returns the record (operators need to see it) ...
        assert registry.get("acme").suspended
        # ... but the serving path's resolve() refuses.
        with pytest.raises(TenantSuspendedError):
            registry.resolve("acme")

    def test_suspend_unknown_raises(self):
        with pytest.raises(UnknownTenantError):
            TenantRegistry().suspend("ghost")

    def test_weight_of(self):
        registry = TenantRegistry()
        registry.register(Tenant("heavy", weight=4.0))
        assert registry.weight_of("heavy") == 4.0
        # Unknown tenants weigh what a guest would.
        assert registry.weight_of("stranger") == GUEST_PROFILE.weight

    def test_iter_lists_tenants(self):
        registry = TenantRegistry()
        registry.register(Tenant("a"))
        registry.register(Tenant("b"))
        assert {tenant.tenant_id for tenant in registry} == {"a", "b"}
