"""End-to-end tenancy tests: RichClient + gateway over the real stack."""

import pytest

from repro.core.admission import AdmissionController, AdmissionLimit
from repro.core.gateway import SdkGateway
from repro.core.invoker import RichClient
from repro.obs import Observability, names
from repro.tenancy import Tenancy, Tenant, TenantRegistry

TEXT = "Shares of Vantora Systems rallied in Meridian City."


@pytest.fixture
def tenancy():
    registry = TenantRegistry()
    registry.register(Tenant("alpha", weight=2.0))
    registry.register(Tenant("bravo", max_calls=2))
    registry.register(Tenant("charlie", rate=0.5, burst=1))
    registry.register(Tenant("shared", isolated_cache=False))
    registry.register(Tenant("mallory"))
    registry.suspend("mallory")
    return Tenancy(registry)


@pytest.fixture
def tenant_client(world, tenancy):
    admission = AdmissionController(
        world.clock, default_limit=AdmissionLimit(max_concurrent=4),
        fair=True, weight_of=tenancy.weight_of)
    client = RichClient(world.registry, admission=admission, tenancy=tenancy,
                        obs=Observability(clock=world.clock))
    yield client
    client.close()


@pytest.fixture
def gateway(tenant_client):
    return SdkGateway(tenant_client)


def invoke(gateway, tenant, text=TEXT):
    envelope = {"method": "invoke",
                "params": {"service": "lexica-prime", "operation": "analyze",
                           "payload": {"text": text}}}
    if tenant is not None:
        envelope["tenant"] = tenant
    return gateway.handle(envelope)


class TestCacheIsolation:
    def test_same_tenant_hits_its_own_cache(self, gateway):
        assert invoke(gateway, "alpha")["status"] == 200
        assert invoke(gateway, "alpha")["result"]["cached"] is True

    def test_tenants_never_share_cache_entries(self, gateway):
        invoke(gateway, "alpha")
        other = invoke(gateway, "bravo")
        assert other["status"] == 200
        assert other["result"]["cached"] is False

    def test_untenanted_namespace_is_separate(self, gateway):
        invoke(gateway, "alpha")
        legacy = invoke(gateway, None)
        assert legacy["result"]["cached"] is False

    def test_opt_out_tenant_shares_the_global_namespace(self, gateway):
        # isolated_cache=False keeps the historical shared-cache
        # behaviour for tenants that want dedup over isolation.
        invoke(gateway, None)
        shared = invoke(gateway, "shared")
        assert shared["result"]["cached"] is True


class TestPolicyRefusals:
    def test_budget_exhaustion_maps_to_429(self, gateway):
        assert invoke(gateway, "bravo", "First call.")["status"] == 200
        assert invoke(gateway, "bravo", "Second call.")["status"] == 200
        refused = invoke(gateway, "bravo", "Third call.")
        assert refused["status"] == 429
        assert refused["error_type"] == "TenantBudgetExceededError"

    def test_rate_limit_maps_to_429_with_retry_after(self, gateway):
        assert invoke(gateway, "charlie")["status"] == 200
        throttled = invoke(gateway, "charlie", "Again, immediately.")
        assert throttled["status"] == 429
        assert throttled["error_type"] == "TenantRateLimitedError"
        assert throttled["retry_after"] > 0

    def test_suspended_tenant_maps_to_403(self, gateway):
        assert invoke(gateway, "mallory")["status"] == 403

    def test_failed_policy_call_is_not_cached(self, gateway):
        invoke(gateway, "mallory")
        # Unsuspending later must not reveal a cached refusal; the
        # request never reached the cache or the wire.
        assert invoke(gateway, None)["result"]["cached"] is False

    def test_non_string_tenant_is_a_400(self, gateway):
        response = gateway.handle({"method": "invoke", "tenant": 7,
                                   "params": {}})
        assert response["status"] == 400


class TestAccounting:
    def test_ledger_and_metrics_count_the_call(self, gateway, tenant_client):
        invoke(gateway, "alpha")
        usage = gateway.handle({"method": "tenant_usage",
                                "params": {"tenant": "alpha"}})
        assert usage["status"] == 200
        assert usage["result"]["calls"] == 1
        assert usage["result"]["cost"] > 0
        metrics = tenant_client.obs.metrics
        assert metrics.get(names.TENANT_REQUESTS_TOTAL).value(
            tenant="alpha", outcome="ok") == 1

    def test_cache_hits_are_not_charged(self, gateway):
        invoke(gateway, "alpha")
        invoke(gateway, "alpha")  # served from cache
        usage = gateway.handle({"method": "tenant_usage",
                                "params": {"tenant": "alpha"}})
        assert usage["result"]["calls"] == 1

    def test_usage_report_lists_every_tenant(self, gateway):
        report = gateway.handle({"method": "tenant_usage", "params": {}})
        assert report["status"] == 200
        listed = [entry["tenant"] for entry in report["result"]["tenants"]]
        assert listed == sorted(listed)
        assert "alpha" in listed and "mallory" in listed

    def test_tenant_usage_without_tenancy_is_a_400(self, world):
        client = RichClient(world.registry)
        try:
            response = SdkGateway(client).handle(
                {"method": "tenant_usage", "params": {}})
            assert response["status"] == 400
        finally:
            client.close()

    def test_batch_is_one_tenant_charge(self, gateway, tenant_client):
        response = gateway.handle({
            "method": "invoke",  # prime the tenant so the batch path runs
            "tenant": "alpha",
            "params": {"service": "wordsmith-lite", "operation": "analyze",
                       "payload": {"text": "Batch primer."}},
        })
        assert response["status"] == 200
        from repro.tenancy.context import tenant_scope
        with tenant_scope("alpha"):
            results = tenant_client.invoke_batched(
                "wordsmith-lite", "analyze",
                [{"text": f"Item {index}."} for index in range(3)],
                use_cache=False)
        assert all(not isinstance(result, Exception) for result in results)
        usage = gateway.handle({"method": "tenant_usage",
                                "params": {"tenant": "alpha"}})
        # One primer call + ONE batch call slot (not three).
        assert usage["result"]["calls"] == 2

    def test_invoke_span_carries_the_tenant(self, gateway, tenant_client):
        invoke(gateway, "alpha", "Span attribution check.")
        spans = [span for span in tenant_client.obs.collector.spans()
                 if span.name == names.SPAN_SDK_INVOKE]
        assert spans and spans[-1].attributes.get("tenant") == "alpha"
