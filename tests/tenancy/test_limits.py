"""Tests for per-tenant budgets and rate limits."""

import pytest

from repro.core.quota import BudgetExceededError
from repro.core.ratelimit import RateLimitExceededError
from repro.tenancy.limits import (
    TenantBudgetExceededError,
    TenantLimiter,
    TenantRateLimitedError,
)
from repro.tenancy.model import Tenant


@pytest.fixture
def limiter(clock):
    return TenantLimiter(clock)


class TestBudgets:
    def test_call_budget_exhausts(self, limiter):
        tenant = Tenant("acme", max_calls=2)
        for _ in range(2):
            charge = limiter.authorize(tenant)
            limiter.settle(tenant, charge, 0.01)
        with pytest.raises(TenantBudgetExceededError) as excinfo:
            limiter.authorize(tenant)
        assert excinfo.value.tenant_id == "acme"

    def test_budget_error_is_a_budget_error(self, limiter):
        # Subclassing keeps the gateway's existing 429 mapping working.
        tenant = Tenant("acme", max_calls=0)
        with pytest.raises(BudgetExceededError):
            limiter.authorize(tenant)

    def test_cost_budget_checks_the_estimate(self, limiter):
        tenant = Tenant("acme", max_cost=0.05)
        charge = limiter.authorize(tenant, estimated_cost=0.04)
        limiter.settle(tenant, charge, 0.04)
        with pytest.raises(TenantBudgetExceededError):
            limiter.authorize(tenant, estimated_cost=0.02)

    def test_settle_trues_up_to_actual_cost(self, limiter):
        tenant = Tenant("acme", max_cost=0.05)
        charge = limiter.authorize(tenant, estimated_cost=0.04)
        # The call billed far less than estimated; the refund must
        # free budget for the next call.
        limiter.settle(tenant, charge, 0.01)
        limiter.authorize(tenant, estimated_cost=0.03)

    def test_cancel_refunds_the_slot(self, limiter):
        tenant = Tenant("acme", max_calls=1)
        charge = limiter.authorize(tenant)
        limiter.cancel(tenant, charge)
        # The failed call must not consume the only slot.
        limiter.authorize(tenant)

    def test_unbudgeted_tenant_never_refused(self, limiter):
        tenant = Tenant("acme")
        for _ in range(100):
            limiter.settle(tenant, limiter.authorize(tenant), 1.0)


class TestRateLimits:
    def test_bucket_refuses_past_burst(self, limiter):
        tenant = Tenant("acme", rate=1.0, burst=1)
        limiter.authorize(tenant)
        with pytest.raises(TenantRateLimitedError) as excinfo:
            limiter.authorize(tenant)
        assert excinfo.value.tenant_id == "acme"
        assert excinfo.value.wait_needed > 0

    def test_rate_error_is_a_rate_limit_error(self, limiter):
        tenant = Tenant("acme", rate=1.0, burst=1)
        limiter.authorize(tenant)
        with pytest.raises(RateLimitExceededError):
            limiter.authorize(tenant)

    def test_bucket_refills_with_the_clock(self, limiter, clock):
        tenant = Tenant("acme", rate=2.0, burst=1)
        limiter.authorize(tenant)
        with pytest.raises(TenantRateLimitedError):
            limiter.authorize(tenant)
        clock.advance(0.5)  # one token at 2/s
        limiter.authorize(tenant)

    def test_unthrottled_tenant_has_no_bucket(self, limiter):
        tenant = Tenant("acme")
        for _ in range(50):
            limiter.authorize(tenant)
        assert limiter.usage(tenant)["throttled"] == 0


class TestUsage:
    def test_ledger_adds_up(self, limiter):
        tenant = Tenant("acme", max_calls=10)
        limiter.settle(tenant, limiter.authorize(tenant), 0.02)
        limiter.settle(tenant, limiter.authorize(tenant), 0.03)
        usage = limiter.usage(tenant)
        assert usage["tenant"] == "acme"
        assert usage["calls"] == 2
        assert usage["cost"] == pytest.approx(0.05)
        assert usage["remaining_calls"] == 8

    def test_tenants_do_not_share_ledgers(self, limiter):
        alpha, bravo = Tenant("alpha", max_calls=1), Tenant("bravo", max_calls=1)
        limiter.settle(alpha, limiter.authorize(alpha), 0.01)
        # Alpha is exhausted; bravo's budget is untouched.
        with pytest.raises(TenantBudgetExceededError):
            limiter.authorize(alpha)
        limiter.authorize(bravo)
