"""Tests for the deficit-round-robin scheduler."""

import pytest

from repro.tenancy.scheduling import DEFAULT_TENANT, DrrScheduler


def drain(scheduler):
    items = []
    while scheduler:
        items.append(scheduler.pop_next())
    return items


class TestBasics:
    def test_empty_pops_none(self):
        assert DrrScheduler().pop_next() is None

    def test_single_tenant_is_fifo(self):
        scheduler = DrrScheduler()
        for item in ("a", "b", "c"):
            scheduler.push("t1", item)
        assert drain(scheduler) == ["a", "b", "c"]

    def test_none_tenant_uses_default_queue(self):
        scheduler = DrrScheduler()
        scheduler.push(None, "x")
        assert scheduler.tenants() == [DEFAULT_TENANT]
        assert scheduler.pop_next() == "x"

    def test_depth_and_len(self):
        scheduler = DrrScheduler()
        scheduler.push("t1", "a")
        scheduler.push("t1", "b")
        scheduler.push("t2", "c")
        assert scheduler.depth("t1") == 2
        assert scheduler.depth("t2") == 1
        assert scheduler.depth("ghost") == 0
        assert len(scheduler) == 3
        assert bool(scheduler)

    def test_invalid_quantum(self):
        with pytest.raises(ValueError):
            DrrScheduler(quantum=0)


class TestFairness:
    def test_equal_weights_round_robin(self):
        scheduler = DrrScheduler()
        for index in range(3):
            scheduler.push("t1", f"a{index}")
            scheduler.push("t2", f"b{index}")
        # One item per tenant per cycle: perfect interleave.
        assert drain(scheduler) == ["a0", "b0", "a1", "b1", "a2", "b2"]

    def test_weighted_tenant_drains_proportionally(self):
        weights = {"heavy": 2.0, "light": 1.0}
        scheduler = DrrScheduler(weight_of=weights.__getitem__)
        for index in range(30):
            scheduler.push("heavy", ("heavy", index))
            scheduler.push("light", ("light", index))
        first_cycle = [scheduler.pop_next() for _ in range(9)]
        heavy = sum(1 for tenant, _ in first_cycle if tenant == "heavy")
        assert heavy == 6  # 2:1 share while both stay backlogged

    def test_heavy_head_yields_the_ring(self):
        # Regression: crediting the head in place let a high-weight
        # tenant re-earn deficit after every serve and starve the ring.
        # Credit happens at rotation, so weight-5 serves its burst and
        # then must yield one slot to weight-1.
        weights = {"big": 5.0, "small": 1.0}
        scheduler = DrrScheduler(weight_of=weights.__getitem__)
        for index in range(10):
            scheduler.push("big", ("big", index))
            scheduler.push("small", ("small", index))
        served = [scheduler.pop_next()[0] for _ in range(12)]
        assert served[:6] == ["big"] * 5 + ["small"]
        assert served[6:12] == ["big"] * 5 + ["small"]

    def test_idle_tenant_forfeits_deficit(self):
        scheduler = DrrScheduler()
        scheduler.push("t1", "a")
        scheduler.push("t2", "b")
        assert drain(scheduler) == ["a", "b"]
        # t1 re-arrives alone with no banked credit: exactly one cycle
        # of credit is needed again (no instant multi-serve from the
        # previous round's residue).
        scheduler.push("t1", "c")
        assert scheduler.pop_next() == "c"

    def test_determinism(self):
        def build():
            scheduler = DrrScheduler(
                weight_of={"x": 3.0, "y": 1.0, "z": 2.0}.__getitem__)
            for index in range(20):
                scheduler.push("x", ("x", index))
                scheduler.push("y", ("y", index))
                scheduler.push("z", ("z", index))
            return drain(scheduler)

        assert build() == build()


class TestRemoval:
    def test_remove_withdraws_item(self):
        scheduler = DrrScheduler()
        scheduler.push("t1", "a")
        scheduler.push("t1", "b")
        assert scheduler.remove("t1", "a")
        assert drain(scheduler) == ["b"]

    def test_remove_missing_is_false(self):
        scheduler = DrrScheduler()
        scheduler.push("t1", "a")
        assert not scheduler.remove("t1", "ghost")
        assert not scheduler.remove("ghost", "a")

    def test_stale_ring_entry_is_skipped(self):
        scheduler = DrrScheduler()
        scheduler.push("t1", "a")
        scheduler.push("t2", "b")
        # Draining t1 via remove leaves its ring slot stale; pop_next
        # must skip it and serve t2.
        assert scheduler.remove("t1", "a")
        assert scheduler.pop_next() == "b"
        assert scheduler.pop_next() is None

    def test_push_after_remove_does_not_duplicate_ring_slot(self):
        scheduler = DrrScheduler()
        scheduler.push("t1", "a")
        scheduler.push("t2", "b")
        scheduler.remove("t1", "a")
        # Re-push while the stale slot is still in the ring: the tenant
        # must not gain a second slot (double service per cycle).
        scheduler.push("t1", "a2")
        assert sorted(scheduler.tenants()) == ["t1", "t2"]
        served = drain(scheduler)
        assert sorted(served) == ["a2", "b"]


class TestWeights:
    def test_default_weight_is_one(self):
        assert DrrScheduler().weight("anyone") == 1.0

    def test_weight_floor_guards_bad_callables(self):
        scheduler = DrrScheduler(weight_of=lambda tenant: 0.0)
        assert scheduler.weight("t1") == pytest.approx(1e-9)
