"""Tests for per-tenant knowledge bases (repro.tenancy.resources)."""

import pytest

from repro.tenancy.context import current_tenant
from repro.tenancy.model import (
    Tenant,
    TenantRegistry,
    TenantSuspendedError,
    UnknownTenantError,
)
from repro.tenancy.resources import TenantPkbManager


class TestLazyConstruction:
    def test_no_kbs_before_first_access(self):
        mgr = TenantPkbManager()
        assert len(mgr) == 0
        assert mgr.tenants() == []

    def test_first_access_builds_then_reuses(self):
        mgr = TenantPkbManager()
        kb = mgr.pkb_for("acme")
        assert mgr.pkb_for("acme") is kb
        assert len(mgr) == 1
        assert mgr.tenants() == ["acme"]

    def test_tenants_are_isolated(self):
        mgr = TenantPkbManager()
        kb_a = mgr.pkb_for("acme")
        kb_b = mgr.pkb_for("bravo")
        assert kb_a is not kb_b
        assert kb_a.graph is not kb_b.graph
        assert kb_a.kv is not kb_b.kv
        assert mgr.tenants() == ["acme", "bravo"]

    def test_data_dir_roots_each_tenant(self, tmp_path):
        mgr = TenantPkbManager(data_dir=tmp_path)
        kb = mgr.pkb_for("acme")
        assert kb.data_dir == tmp_path / "acme"
        assert kb.data_dir.is_dir()
        other = mgr.pkb_for("bravo")
        assert other.data_dir == tmp_path / "bravo"


class TestRegistryEnforcement:
    def test_closed_registry_refuses_unknown_tenants(self):
        registry = TenantRegistry(auto_register=False)
        registry.register(Tenant(tenant_id="acme"))
        mgr = TenantPkbManager(registry=registry)
        assert mgr.pkb_for("acme") is not None
        with pytest.raises(UnknownTenantError):
            mgr.pkb_for("nobody")
        assert mgr.tenants() == ["acme"]

    def test_suspended_tenant_refused(self):
        registry = TenantRegistry()
        registry.register(Tenant(tenant_id="mallory"))
        registry.suspend("mallory")
        mgr = TenantPkbManager(registry=registry)
        with pytest.raises(TenantSuspendedError):
            mgr.pkb_for("mallory")
        assert len(mgr) == 0


class TestScope:
    def test_scope_activates_tenant_context(self):
        mgr = TenantPkbManager()
        assert current_tenant() is None
        with mgr.scope("acme") as kb:
            assert current_tenant() == "acme"
            assert kb is mgr.pkb_for("acme")
        assert current_tenant() is None

    def test_scope_restores_on_error(self):
        mgr = TenantPkbManager()
        with pytest.raises(RuntimeError):
            with mgr.scope("acme"):
                raise RuntimeError("boom")
        assert current_tenant() is None
