"""Tests for the Tenancy runtime (registry + limiter + metrics)."""

import pytest

from repro.obs import names
from repro.obs.metrics import MetricsRegistry
from repro.tenancy.context import tenant_scope
from repro.tenancy.limits import TenantBudgetExceededError, TenantRateLimitedError
from repro.tenancy.model import Tenant, TenantRegistry, TenantSuspendedError
from repro.tenancy.runtime import (
    OUTCOME_ERROR,
    OUTCOME_OK,
    REASON_BUDGET,
    REASON_RATE,
    REASON_SUSPENDED,
    Tenancy,
)


@pytest.fixture
def tenancy(clock):
    tenancy = Tenancy(clock=clock)
    tenancy.registry.register(Tenant("acme", max_calls=5))
    return tenancy


class TestResolve:
    def test_no_scope_resolves_to_none(self, tenancy):
        assert tenancy.resolve() is None

    def test_scope_resolves_the_tenant(self, tenancy):
        with tenant_scope("acme"):
            assert tenancy.resolve().tenant_id == "acme"

    def test_unknown_tenant_auto_registers(self, tenancy):
        with tenant_scope("walk-in"):
            assert tenancy.resolve().tenant_id == "walk-in"

    def test_suspended_tenant_refused_and_counted(self, tenancy):
        metrics = MetricsRegistry()
        tenancy.bind_metrics(metrics)
        tenancy.registry.suspend("acme")
        with tenant_scope("acme"):
            with pytest.raises(TenantSuspendedError):
                tenancy.resolve()
        rejected = metrics.get(names.TENANT_REJECTED_TOTAL)
        assert rejected.value(tenant="acme", reason=REASON_SUSPENDED) == 1


class TestClockBinding:
    def test_authorize_without_clock_raises(self):
        tenancy = Tenancy()
        with pytest.raises(RuntimeError):
            tenancy.authorize(Tenant("acme"))

    def test_attach_clock_builds_the_limiter(self, clock):
        tenancy = Tenancy()
        tenancy.attach_clock(clock)
        tenancy.authorize(Tenant("acme"))

    def test_attach_clock_is_idempotent(self, clock):
        tenancy = Tenancy(clock=clock)
        limiter = tenancy.limiter
        tenancy.attach_clock(clock)
        assert tenancy.limiter is limiter


class TestMetrics:
    def test_settle_counts_ok_and_cost(self, tenancy):
        metrics = MetricsRegistry()
        tenancy.bind_metrics(metrics)
        tenant = tenancy.registry.get("acme")
        charge = tenancy.authorize(tenant, estimated_cost=0.01)
        tenancy.settle(tenant, charge, 0.02)
        requests = metrics.get(names.TENANT_REQUESTS_TOTAL)
        assert requests.value(tenant="acme", outcome=OUTCOME_OK) == 1
        cost = metrics.get(names.TENANT_COST_TOTAL)
        assert cost.value(tenant="acme") == pytest.approx(0.02)

    def test_cancel_counts_error(self, tenancy):
        metrics = MetricsRegistry()
        tenancy.bind_metrics(metrics)
        tenant = tenancy.registry.get("acme")
        charge = tenancy.authorize(tenant)
        tenancy.cancel(tenant, charge)
        requests = metrics.get(names.TENANT_REQUESTS_TOTAL)
        assert requests.value(tenant="acme", outcome=OUTCOME_ERROR) == 1

    def test_rejections_count_by_reason(self, tenancy):
        metrics = MetricsRegistry()
        tenancy.bind_metrics(metrics)
        budgeted = tenancy.registry.register(Tenant("tight", max_calls=0))
        with pytest.raises(TenantBudgetExceededError):
            tenancy.authorize(budgeted)
        limited = tenancy.registry.register(Tenant("slow", rate=1.0, burst=1))
        tenancy.authorize(limited)
        with pytest.raises(TenantRateLimitedError):
            tenancy.authorize(limited)
        rejected = metrics.get(names.TENANT_REJECTED_TOTAL)
        assert rejected.value(tenant="tight", reason=REASON_BUDGET) == 1
        assert rejected.value(tenant="slow", reason=REASON_RATE) == 1

    def test_unbound_metrics_are_optional(self, tenancy):
        # No bind_metrics call: the whole protocol still works.
        tenant = tenancy.registry.get("acme")
        tenancy.settle(tenant, tenancy.authorize(tenant), 0.01)
        tenancy.count_rejection("acme", REASON_BUDGET)


class TestUsage:
    def test_usage_reads_the_ledger(self, tenancy):
        tenant = tenancy.registry.get("acme")
        tenancy.settle(tenant, tenancy.authorize(tenant), 0.03)
        usage = tenancy.usage("acme")
        assert usage["calls"] == 1
        assert usage["cost"] == pytest.approx(0.03)
        assert usage["remaining_calls"] == 4

    def test_usage_report_covers_all_tenants_sorted(self, tenancy):
        tenancy.registry.register(Tenant("zeta"))
        tenancy.registry.register(Tenant("beta"))
        report = tenancy.usage_report()
        assert [entry["tenant"] for entry in report] == ["acme", "beta", "zeta"]

    def test_weight_of_delegates_to_registry(self, tenancy):
        tenancy.registry.register(Tenant("heavy", weight=7.0))
        assert tenancy.weight_of("heavy") == 7.0
