"""Tests for hedged requests as cancellable event-loop tasks."""

import asyncio

import pytest

from repro import RichClient, build_world
from repro.core.aio.hedging import AsyncHedgedInvoker
from repro.core.aio.invoker import AsyncInvoker
from repro.core.ranking import Weights
from repro.util.clock import RealClock

TIME_SCALE = 0.02
TEXT = "Globex thrives while Initech struggles."


@pytest.fixture
def rt_client():
    world = build_world(seed=59, corpus_size=20,
                        clock=RealClock(time_scale=TIME_SCALE))
    client = RichClient(world.registry)
    yield client
    client.close()


class TestDeadlines:
    def test_default_deadline_without_history(self, rt_client):
        hedger = AsyncHedgedInvoker(AsyncInvoker(rt_client),
                                    default_deadline=0.42)
        assert hedger.deadline_for("lexica-prime") == 0.42

    def test_percentile_validated(self, rt_client):
        with pytest.raises(ValueError):
            AsyncHedgedInvoker(AsyncInvoker(rt_client),
                               deadline_percentile=1.0)


class TestHedgedInvocation:
    def test_fast_primary_never_hedges(self, rt_client):
        async def scenario():
            hedger = AsyncHedgedInvoker(
                AsyncInvoker(rt_client),
                weights=Weights(response_time=1, cost=0, quality=0))
            hedger.deadline_for = lambda service: 10.0
            return hedger, await hedger.ainvoke(
                "nlu", "analyze", {"text": TEXT}, use_cache=False)

        hedger, result = asyncio.run(scenario())
        assert result.value["sentiment"]
        assert hedger.stats.hedges_fired == 0
        assert hedger.stats.primary_wins == 1

    def test_slow_primary_fires_a_hedge_and_cancels_the_loser(self, rt_client):
        async def scenario():
            invoker = AsyncInvoker(rt_client)
            hedger = AsyncHedgedInvoker(invoker)
            hedger.deadline_for = lambda service: 0.0
            original = invoker.ainvoke
            cancelled = set()

            async def instrumented(service, operation, payload=None, **kwargs):
                try:
                    if service == "lexica-prime":
                        await asyncio.sleep(0.5)
                    return await original(service, operation, payload, **kwargs)
                except asyncio.CancelledError:
                    cancelled.add(service)
                    raise

            invoker.ainvoke = instrumented
            result = await hedger.ainvoke(
                "nlu", "analyze", {"text": TEXT}, use_cache=False,
                candidates=["lexica-prime", "glotta"])
            return hedger, result, cancelled

        hedger, result, cancelled = asyncio.run(scenario())
        assert result.service == "glotta"
        assert hedger.stats.hedges_fired == 1
        assert hedger.stats.hedge_wins == 1
        assert cancelled == {"lexica-prime"}

    def test_single_candidate_cannot_hedge(self, rt_client):
        async def scenario():
            hedger = AsyncHedgedInvoker(AsyncInvoker(rt_client))
            hedger.deadline_for = lambda service: 0.0
            return hedger, await hedger.ainvoke(
                "nlu", "analyze", {"text": TEXT}, use_cache=False,
                candidates=["glotta"])

        hedger, result = asyncio.run(scenario())
        assert result.service == "glotta"
        assert hedger.stats.hedges_fired == 0

    def test_cancelling_the_caller_cancels_both_legs(self, rt_client):
        async def scenario():
            invoker = AsyncInvoker(rt_client)
            hedger = AsyncHedgedInvoker(invoker)
            hedger.deadline_for = lambda service: 0.0
            original = invoker.ainvoke
            cancelled = set()

            async def instrumented(service, operation, payload=None, **kwargs):
                try:
                    await asyncio.sleep(0.5)
                    return await original(service, operation, payload, **kwargs)
                except asyncio.CancelledError:
                    cancelled.add(service)
                    raise

            invoker.ainvoke = instrumented
            call = asyncio.ensure_future(hedger.ainvoke(
                "nlu", "analyze", {"text": TEXT}, use_cache=False,
                candidates=["lexica-prime", "glotta"]))
            await asyncio.sleep(0.1)
            call.cancel()
            with pytest.raises(asyncio.CancelledError):
                await call
            await asyncio.sleep(0.05)
            return cancelled

        cancelled = asyncio.run(scenario())
        assert cancelled == {"lexica-prime", "glotta"}
