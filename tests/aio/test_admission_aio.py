"""Tests for the async bulkhead: awaitable admission with DRR fairness."""

import asyncio

import pytest

from repro.core.admission import (
    REASON_DEADLINE,
    REASON_QUEUE_FULL,
    REASON_QUEUE_TIMEOUT,
    AdmissionController,
    AdmissionLimit,
    AdmissionRejectedError,
)
from repro.core.aio.admission import AsyncAdmissionController, AsyncBulkhead
from repro.util.clock import ManualClock, RealClock
from repro.util.deadline import Deadline

TIME_SCALE = 0.02


class TestFastPath:
    def test_acquire_and_release(self):
        async def scenario():
            bulkhead = AsyncBulkhead(ManualClock(), "svc",
                                     AdmissionLimit(max_concurrent=2))
            assert await bulkhead.acquire() == 0.0
            assert await bulkhead.acquire() == 0.0
            assert bulkhead.inflight == 2
            bulkhead.release()
            assert bulkhead.inflight == 1
            assert bulkhead.stats.peak_inflight == 2

        asyncio.run(scenario())

    def test_try_acquire_never_waits(self):
        async def scenario():
            bulkhead = AsyncBulkhead(ManualClock(), "svc",
                                     AdmissionLimit(max_concurrent=1))
            assert bulkhead.try_acquire()
            assert not bulkhead.try_acquire()

        asyncio.run(scenario())

    def test_release_without_acquire_is_a_bug(self):
        bulkhead = AsyncBulkhead(ManualClock(), "svc", AdmissionLimit())
        with pytest.raises(RuntimeError, match="release without acquire"):
            bulkhead.release()


class TestShedding:
    def test_queue_full_sheds_fast(self):
        async def scenario():
            bulkhead = AsyncBulkhead(ManualClock(), "svc", AdmissionLimit(
                max_concurrent=1, max_queue=0, queue_timeout=0.5))
            await bulkhead.acquire()
            with pytest.raises(AdmissionRejectedError) as exc_info:
                await bulkhead.acquire()
            assert exc_info.value.reason == REASON_QUEUE_FULL
            assert exc_info.value.retry_after == 0.5
            assert bulkhead.stats.shed_queue_full == 1

        asyncio.run(scenario())

    def test_spent_deadline_sheds_before_queueing(self):
        async def scenario():
            clock = ManualClock()
            bulkhead = AsyncBulkhead(clock, "svc",
                                     AdmissionLimit(max_concurrent=1))
            await bulkhead.acquire()
            deadline = Deadline.after(clock, 0.1)
            clock.advance(0.2)
            with pytest.raises(AdmissionRejectedError) as exc_info:
                await bulkhead.acquire(deadline=deadline, tenant="acme")
            assert exc_info.value.reason == REASON_DEADLINE
            assert bulkhead.stats.shed_by_tenant == {"acme": 1}

        asyncio.run(scenario())

    def test_virtual_clock_charges_the_window_then_sheds(self):
        async def scenario():
            clock = ManualClock()
            bulkhead = AsyncBulkhead(clock, "svc", AdmissionLimit(
                max_concurrent=1, max_queue=4, queue_timeout=0.25))
            await bulkhead.acquire()
            before = clock.now()
            with pytest.raises(AdmissionRejectedError) as exc_info:
                await bulkhead.acquire()
            assert exc_info.value.reason == REASON_QUEUE_TIMEOUT
            assert clock.now() - before == pytest.approx(0.25)
            assert bulkhead.stats.total_queue_wait == pytest.approx(0.25)

        asyncio.run(scenario())


class TestRealClockQueueing:
    def test_fifo_waiter_wakes_when_a_permit_frees(self):
        async def scenario():
            clock = RealClock(time_scale=TIME_SCALE)
            bulkhead = AsyncBulkhead(clock, "svc", AdmissionLimit(
                max_concurrent=1, max_queue=4, queue_timeout=5.0))
            await bulkhead.acquire()

            async def holder():
                await asyncio.sleep(0.05)
                bulkhead.release()

            release_task = asyncio.ensure_future(holder())
            waited = await bulkhead.acquire()
            await release_task
            assert waited > 0.0
            assert bulkhead.inflight == 1
            assert bulkhead.stats.queued == 1

        asyncio.run(scenario())

    def test_fifo_waiters_admit_in_arrival_order(self):
        async def scenario():
            clock = RealClock(time_scale=TIME_SCALE)
            bulkhead = AsyncBulkhead(clock, "svc", AdmissionLimit(
                max_concurrent=1, max_queue=8, queue_timeout=5.0))
            await bulkhead.acquire()
            admitted = []

            async def waiter(tag):
                await bulkhead.acquire()
                admitted.append(tag)
                bulkhead.release()

            tasks = [asyncio.ensure_future(waiter(index)) for index in range(3)]
            await asyncio.sleep(0.05)
            bulkhead.release()
            await asyncio.gather(*tasks)
            assert admitted == [0, 1, 2]

        asyncio.run(scenario())

    def test_queue_timeout_sheds_under_a_real_clock(self):
        async def scenario():
            clock = RealClock(time_scale=TIME_SCALE)
            bulkhead = AsyncBulkhead(clock, "svc", AdmissionLimit(
                max_concurrent=1, max_queue=4, queue_timeout=0.4))
            await bulkhead.acquire()
            with pytest.raises(AdmissionRejectedError) as exc_info:
                await bulkhead.acquire()
            assert exc_info.value.reason == REASON_QUEUE_TIMEOUT
            assert bulkhead.stats.shed_timeout == 1

        asyncio.run(scenario())

    def test_cancelled_waiter_withdraws_cleanly(self):
        async def scenario():
            clock = RealClock(time_scale=TIME_SCALE)
            bulkhead = AsyncBulkhead(clock, "svc", AdmissionLimit(
                max_concurrent=1, max_queue=4, queue_timeout=5.0))
            await bulkhead.acquire()
            waiter = asyncio.ensure_future(bulkhead.acquire())
            await asyncio.sleep(0.02)
            assert bulkhead.queue_depth == 1
            waiter.cancel()
            await asyncio.gather(waiter, return_exceptions=True)
            assert bulkhead.queue_depth == 0
            # The permit is still grantable to the next arrival.
            bulkhead.release()
            assert await bulkhead.acquire() == 0.0

        asyncio.run(scenario())


class TestFairness:
    def test_drr_spreads_grants_across_tenants(self):
        async def scenario():
            clock = RealClock(time_scale=TIME_SCALE)
            bulkhead = AsyncBulkhead(clock, "svc", AdmissionLimit(
                max_concurrent=1, max_queue=16, queue_timeout=5.0),
                fair=True)
            await bulkhead.acquire()
            admitted = []

            async def waiter(tenant, tag):
                await bulkhead.acquire(tenant=tenant)
                admitted.append((tenant, tag))
                await asyncio.sleep(0.01)
                bulkhead.release()

            tasks = [asyncio.ensure_future(waiter("hog", tag))
                     for tag in range(3)]
            tasks += [asyncio.ensure_future(waiter("mouse", 0))]
            await asyncio.sleep(0.05)
            bulkhead.release()
            await asyncio.gather(*tasks)
            assert len(admitted) == 4
            # Round-robin: the lone "mouse" item is served before the
            # hog's queue drains, not after it.
            assert admitted.index(("mouse", 0)) < 3
            assert bulkhead.stats.fair_grants == 4

        asyncio.run(scenario())

    def test_cancelled_granted_ticket_regrants(self):
        async def scenario():
            clock = RealClock(time_scale=TIME_SCALE)
            bulkhead = AsyncBulkhead(clock, "svc", AdmissionLimit(
                max_concurrent=1, max_queue=8, queue_timeout=5.0),
                fair=True)
            await bulkhead.acquire()
            first = asyncio.ensure_future(bulkhead.acquire(tenant="a"))
            second = asyncio.ensure_future(bulkhead.acquire(tenant="b"))
            await asyncio.sleep(0.02)
            first.cancel()
            await asyncio.gather(first, return_exceptions=True)
            bulkhead.release()
            await second
            assert bulkhead.inflight == 1

        asyncio.run(scenario())


class TestController:
    def test_from_sync_clones_policy(self):
        sync = AdmissionController(
            ManualClock(), default_limit=AdmissionLimit(max_concurrent=3))
        sync.configure("svc", AdmissionLimit(max_concurrent=1))
        cloned = AsyncAdmissionController.from_sync(sync)
        assert cloned.bulkhead_for("svc").limit.max_concurrent == 1
        assert cloned.bulkhead_for("other").limit.max_concurrent == 3

    def test_unlimited_when_no_limit_configured(self):
        controller = AsyncAdmissionController(ManualClock())
        assert controller.bulkhead_for("svc") is None
