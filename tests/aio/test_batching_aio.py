"""Tests for the asyncio micro-batcher."""

import asyncio

import pytest

from repro import RichClient, build_world
from repro.simnet.connectivity import ScriptedConnectivity
from repro.simnet.errors import ConnectivityError

TEXT = "IBM announced excellent results while Initech struggled badly."
OTHER = "Globex thrives while Vandelay Industries imports nothing."


@pytest.fixture
def client():
    world = build_world(seed=42, corpus_size=30)
    rich_client = RichClient(world.registry)
    yield rich_client
    rich_client.close()


class TestSubmitAndFlush:
    def test_window_fills_then_flushes_as_one_batch(self, client):
        async def scenario():
            batcher = client.aio.batcher(max_batch_size=2)
            first = await batcher.submit("glotta", "analyze", {"text": TEXT},
                                         use_cache=False)
            assert not first.done()
            assert batcher.pending() == 1
            second = await batcher.submit("glotta", "analyze", {"text": OTHER},
                                          use_cache=False)
            # The second submit crossed the size limit: flushed inline.
            assert batcher.pending() == 0
            results = [await first, await second]
            assert [r.batched for r in results] == [True, True]
            assert batcher.stats.size_flushes == 1
            assert batcher.stats.items_flushed == 2

        asyncio.run(scenario())

    def test_flush_all_drains_open_windows(self, client):
        async def scenario():
            batcher = client.aio.batcher(max_batch_size=8)
            future = await batcher.submit("glotta", "analyze", {"text": TEXT},
                                          use_cache=False)
            sent = await batcher.flush_all()
            assert sent == 1
            return (await future).value

        assert asyncio.run(scenario())["entities"]

    def test_cache_hit_resolves_without_a_window(self, client):
        async def scenario():
            client.invoke("glotta", "analyze", {"text": TEXT})
            batcher = client.aio.batcher()
            future = await batcher.submit("glotta", "analyze", {"text": TEXT})
            assert future.done()
            assert batcher.pending() == 0
            return await future

        assert asyncio.run(scenario()).cached

    def test_validation(self, client):
        batcher = client.aio
        with pytest.raises(ValueError):
            batcher.batcher(max_batch_size=0)
        with pytest.raises(ValueError):
            batcher.batcher(max_wait=-1.0)

    def test_whole_batch_failure_fails_every_rider(self, client):
        async def scenario():
            batcher = client.aio.batcher(max_batch_size=8)
            futures = [
                await batcher.submit("glotta", "analyze", {"text": text},
                                     use_cache=False)
                for text in (TEXT, OTHER)
            ]
            client.registry.get("glotta").transport.connectivity = \
                ScriptedConnectivity([], initially_online=False)
            # The flush itself returns: the shared failure lands on
            # every rider's future instead of the flushing caller.
            assert await batcher.flush_all() == 2
            for future in futures:
                assert isinstance(future.exception(), ConnectivityError)

        asyncio.run(scenario())
