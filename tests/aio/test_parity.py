"""Sync/async parity: both cores must be observably identical.

Each test builds two worlds from the same seed — one served by the
thread-pool core (``client.invoke*``), one by the event-loop core
(``await client.aio.ainvoke*`` or the ``use_async_core=True`` facade) —
and asserts results, error types, monitor records and stats match
field-for-field.
"""

import asyncio

import pytest

from repro import RichClient, build_world
from repro.core.quota import BudgetExceededError
from repro.services.base import ScriptedFailures
from repro.simnet.errors import RemoteServiceError, ServiceTimeoutError
from repro.util.deadline import Deadline, DeadlineExceededError

TEXT = "IBM announced excellent results while Initech struggled badly."
OTHER = "Globex thrives while Vandelay Industries imports nothing."


@pytest.fixture
def pair():
    """Two identical worlds: (sync world, sync client, async world, async client)."""
    sync_world = build_world(seed=42, corpus_size=30)
    async_world = build_world(seed=42, corpus_size=30)
    sync_client = RichClient(sync_world.registry)
    async_client = RichClient(async_world.registry)
    yield sync_world, sync_client, async_world, async_client
    sync_client.close()
    async_client.close()


def arun(coro):
    return asyncio.run(coro)


class TestResultParity:
    def test_invoke_results_are_byte_identical(self, pair):
        _, sync_client, _, async_client = pair
        sync_result = sync_client.invoke("lexica-prime", "analyze",
                                         {"text": TEXT})
        async_result = arun(async_client.aio.ainvoke(
            "lexica-prime", "analyze", {"text": TEXT}))
        assert async_result.value == sync_result.value
        assert async_result.latency == sync_result.latency
        assert async_result.cost == sync_result.cost
        assert async_result.service == sync_result.service

    def test_cache_hits_match(self, pair):
        _, sync_client, _, async_client = pair
        sync_client.invoke("lexica-prime", "analyze", {"text": TEXT})
        async_first = arun(async_client.aio.ainvoke(
            "lexica-prime", "analyze", {"text": TEXT}))
        sync_hit = sync_client.invoke("lexica-prime", "analyze", {"text": TEXT})
        async_hit = arun(async_client.aio.ainvoke(
            "lexica-prime", "analyze", {"text": TEXT}))
        assert not async_first.cached
        assert sync_hit.cached and async_hit.cached
        assert async_hit.latency == sync_hit.latency == 0.0
        assert async_hit.value == sync_hit.value

    def test_monitor_records_match(self, pair):
        _, sync_client, _, async_client = pair
        for text in (TEXT, OTHER):
            sync_client.invoke("lexica-prime", "analyze", {"text": text},
                               use_cache=False)
            arun(async_client.aio.ainvoke(
                "lexica-prime", "analyze", {"text": text}, use_cache=False))
        assert (async_client.monitor.call_count("lexica-prime")
                == sync_client.monitor.call_count("lexica-prime") == 2)
        assert (async_client.monitor.latencies("lexica-prime")
                == sync_client.monitor.latencies("lexica-prime"))
        assert (async_client.monitor.availability("lexica-prime")
                == sync_client.monitor.availability("lexica-prime") == 1.0)


class TestErrorParity:
    def test_remote_failures_raise_the_same_type(self, pair):
        sync_world, sync_client, async_world, async_client = pair
        sync_world.service("glotta").failures = ScriptedFailures({0})
        async_world.service("glotta").failures = ScriptedFailures({0})
        with pytest.raises(RemoteServiceError) as sync_error:
            sync_client.invoke("glotta", "analyze", {"text": TEXT},
                               use_cache=False)
        with pytest.raises(RemoteServiceError) as async_error:
            arun(async_client.aio.ainvoke("glotta", "analyze", {"text": TEXT},
                                          use_cache=False))
        assert str(async_error.value) == str(sync_error.value)
        assert (async_client.monitor.failure_count("glotta")
                == sync_client.monitor.failure_count("glotta") == 1)

    def test_timeouts_raise_the_same_type(self, pair):
        _, sync_client, _, async_client = pair
        with pytest.raises(ServiceTimeoutError):
            sync_client.invoke("lexica-prime", "analyze", {"text": TEXT},
                               timeout=1e-6, use_cache=False)
        with pytest.raises(ServiceTimeoutError):
            arun(async_client.aio.ainvoke(
                "lexica-prime", "analyze", {"text": TEXT},
                timeout=1e-6, use_cache=False))

    def test_budget_exhaustion_raises_the_same_type(self, pair):
        _, sync_client, _, async_client = pair
        sync_client.quota.set_budget("lexica-prime", max_calls=1)
        async_client.quota.set_budget("lexica-prime", max_calls=1)
        sync_client.invoke("lexica-prime", "analyze", {"text": TEXT},
                           use_cache=False)
        arun(async_client.aio.ainvoke("lexica-prime", "analyze",
                                      {"text": TEXT}, use_cache=False))
        with pytest.raises(BudgetExceededError):
            sync_client.invoke("lexica-prime", "analyze", {"text": OTHER},
                               use_cache=False)
        with pytest.raises(BudgetExceededError):
            arun(async_client.aio.ainvoke("lexica-prime", "analyze",
                                          {"text": OTHER}, use_cache=False))

    def test_spent_deadlines_raise_the_same_type(self, pair):
        sync_world, sync_client, async_world, async_client = pair
        sync_deadline = Deadline.after(sync_world.clock, 0.0)
        async_deadline = Deadline.after(async_world.clock, 0.0)
        sync_world.clock.advance(0.1)
        async_world.clock.advance(0.1)
        with pytest.raises(DeadlineExceededError):
            sync_client.invoke("lexica-prime", "analyze", {"text": TEXT},
                               use_cache=False, deadline=sync_deadline)
        with pytest.raises(DeadlineExceededError):
            arun(async_client.aio.ainvoke(
                "lexica-prime", "analyze", {"text": TEXT},
                use_cache=False, deadline=async_deadline))


class TestCompositeParity:
    def test_failover_walks_the_same_ranking(self, pair):
        sync_world, sync_client, async_world, async_client = pair
        sync_world.service("glotta").failures = ScriptedFailures({0, 1, 2, 3})
        async_world.service("glotta").failures = ScriptedFailures({0, 1, 2, 3})
        sync_result = sync_client.invoke_with_failover(
            "nlu", "analyze", {"text": TEXT}, use_cache=False)
        async_result = arun(async_client.aio.ainvoke_with_failover(
            "nlu", "analyze", {"text": TEXT}, use_cache=False))
        assert async_result.service == sync_result.service
        assert async_result.value == sync_result.value
        assert len(async_result.attempts) == len(sync_result.attempts)
        assert [(a.service, a.error is None) for a in async_result.attempts] \
            == [(a.service, a.error is None) for a in sync_result.attempts]

    def test_invoke_batched_outcomes_match(self, pair):
        _, sync_client, _, async_client = pair
        payloads = [{"text": TEXT}, {"text": OTHER}]
        sync_outcomes = sync_client.invoke_batched("glotta", "analyze",
                                                   payloads)
        async_outcomes = arun(async_client.aio.ainvoke_batched(
            "glotta", "analyze", payloads))
        assert len(async_outcomes) == len(sync_outcomes) == 2
        for sync_out, async_out in zip(sync_outcomes, async_outcomes):
            assert async_out.value == sync_out.value
            assert async_out.latency == sync_out.latency
            assert async_out.batched and sync_out.batched

    def test_invoke_many_dedup_and_results_match(self, pair):
        _, sync_client, _, async_client = pair
        payloads = [{"text": TEXT}, {"text": OTHER}, {"text": TEXT}]
        sync_results = sync_client.invoke_many("glotta", "analyze", payloads)
        async_results = arun(async_client.aio.ainvoke_many(
            "glotta", "analyze", payloads))
        assert len(async_results) == len(sync_results) == 3
        for sync_out, async_out in zip(sync_results, async_results):
            assert async_out.value == sync_out.value
        assert async_results[2].coalesced and sync_results[2].coalesced
        assert (async_client.aio.coalescer.stats.coalesced
                == sync_client.coalescer.stats.coalesced == 1)

    def test_invoke_all_fans_out_identically(self, pair):
        _, sync_client, _, async_client = pair
        calls = [("lexica-prime", "analyze", {"text": TEXT}),
                 ("glotta", "analyze", {"text": OTHER})]
        sync_results = sync_client.invoke_all(calls, use_cache=False)
        async_results = arun(async_client.aio.ainvoke_all(
            calls, use_cache=False))
        assert [r.value for r in async_results] \
            == [r.value for r in sync_results]
        assert [r.service for r in async_results] \
            == [r.service for r in sync_results]


class TestFacadeParity:
    """RichClient(use_async_core=True) must be indistinguishable."""

    def test_invoke_through_the_shim_matches_the_thread_core(self):
        thread_world = build_world(seed=42, corpus_size=30)
        loop_world = build_world(seed=42, corpus_size=30)
        thread_client = RichClient(thread_world.registry)
        loop_client = RichClient(loop_world.registry, use_async_core=True)
        try:
            thread_result = thread_client.invoke("lexica-prime", "analyze",
                                                 {"text": TEXT})
            loop_result = loop_client.invoke("lexica-prime", "analyze",
                                             {"text": TEXT})
            assert loop_result.value == thread_result.value
            assert loop_result.latency == thread_result.latency
            assert loop_result.cost == thread_result.cost
            assert loop_client.invoke("lexica-prime", "analyze",
                                      {"text": TEXT}).cached
        finally:
            thread_client.close()
            loop_client.close()

    def test_invoke_async_through_the_shim_returns_a_listenable(self):
        world = build_world(seed=42, corpus_size=30)
        client = RichClient(world.registry, use_async_core=True)
        try:
            future = client.invoke_async("lexica-prime", "analyze",
                                         {"text": TEXT})
            result = future.get(timeout=10)
            assert result.service == "lexica-prime"
            assert result.value["entities"]
        finally:
            client.close()

    def test_error_types_cross_the_shim_unchanged(self):
        world = build_world(seed=42, corpus_size=30)
        world.service("glotta").failures = ScriptedFailures({0})
        client = RichClient(world.registry, use_async_core=True)
        try:
            with pytest.raises(RemoteServiceError):
                client.invoke("glotta", "analyze", {"text": TEXT},
                              use_cache=False)
            with pytest.raises(ServiceTimeoutError):
                client.invoke("lexica-prime", "analyze", {"text": TEXT},
                              timeout=1e-6, use_cache=False)
        finally:
            client.close()

    def test_invoke_batched_through_the_shim(self):
        world = build_world(seed=42, corpus_size=30)
        client = RichClient(world.registry, use_async_core=True)
        try:
            outcomes = client.invoke_batched(
                "glotta", "analyze", [{"text": TEXT}, {"text": OTHER}])
            assert len(outcomes) == 2
            assert all(outcome.batched for outcome in outcomes)
        finally:
            client.close()
