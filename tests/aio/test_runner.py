"""Tests for the LoopRunner shim (sync callers driving the async core)."""

import asyncio
import contextvars
import threading

import pytest

from repro.core.aio import LoopRunner
from repro.core.futures import ListenableFuture


@pytest.fixture
def runner():
    with LoopRunner() as active:
        yield active


class TestRun:
    def test_returns_the_coroutine_result(self, runner):
        async def forty_two():
            return 42

        assert runner.run(forty_two()) == 42

    def test_exceptions_propagate_unchanged(self, runner):
        marker = ValueError("boom")

        async def explode():
            raise marker

        with pytest.raises(ValueError) as exc_info:
            runner.run(explode())
        assert exc_info.value is marker

    def test_coroutines_run_on_the_loop_thread(self, runner):
        async def my_thread():
            return threading.current_thread().name

        assert runner.run(my_thread()) == "repro-aio"
        assert runner.run(my_thread()) != threading.current_thread().name

    def test_run_from_the_loop_thread_is_rejected(self, runner):
        async def nested():
            async def inner():
                return 1

            coro = inner()
            try:
                runner.run(coro)
            finally:
                coro.close()

        with pytest.raises(RuntimeError, match="loop thread"):
            runner.run(nested())


class TestSubmit:
    def test_submit_returns_a_concurrent_future(self, runner):
        async def value():
            return "ok"

        assert runner.submit(value()).result(timeout=5) == "ok"

    def test_many_submissions_interleave_on_one_loop(self, runner):
        started = []

        async def leg(index):
            started.append(index)
            await asyncio.sleep(0)
            return index

        futures = [runner.submit(leg(index)) for index in range(20)]
        assert sorted(future.result(timeout=5) for future in futures) == list(
            range(20))
        assert sorted(started) == list(range(20))

    def test_contextvars_cross_the_thread_boundary(self, runner):
        var = contextvars.ContextVar("tenant", default=None)

        async def observed():
            return var.get()

        token = var.set("acme")
        try:
            assert runner.run(observed()) == "acme"
        finally:
            var.reset(token)
        assert runner.run(observed()) is None

    def test_submit_listenable_settles_with_result_and_error(self, runner):
        async def value():
            return 7

        listenable = runner.submit_listenable(value())
        assert isinstance(listenable, ListenableFuture)
        assert listenable.get(timeout=5) == 7

        async def explode():
            raise KeyError("gone")

        failed = runner.submit_listenable(explode())
        with pytest.raises(KeyError):
            failed.get(timeout=5)


class TestShutdown:
    def test_submit_after_shutdown_is_rejected(self):
        runner = LoopRunner()
        runner.shutdown()

        async def late():
            return 1

        coro = late()
        with pytest.raises(RuntimeError, match="shut down"):
            runner.submit(coro)
        coro.close()

    def test_shutdown_cancels_pending_tasks(self):
        runner = LoopRunner()
        cancelled = threading.Event()

        async def hang():
            try:
                await asyncio.sleep(3600)
            except asyncio.CancelledError:
                cancelled.set()
                raise

        future = runner.submit(hang())
        # Give the task a chance to reach its sleep before stopping.
        runner.run(asyncio.sleep(0))
        runner.shutdown()
        assert cancelled.wait(timeout=5)
        with pytest.raises(asyncio.CancelledError):
            future.result(timeout=5)

    def test_shutdown_is_idempotent(self):
        runner = LoopRunner()
        runner.shutdown()
        runner.shutdown()
