"""Tests for single-flight coalescing on asyncio futures."""

import asyncio

import pytest

from repro.core.aio.coalesce import AsyncCoalescer, AsyncFlight


class TestAsyncFlight:
    def test_complete_settles_once(self):
        async def scenario():
            flight = AsyncFlight("k")
            assert flight.complete("first")
            assert not flight.complete("second")
            assert not flight.fail(ValueError("late"))
            return await flight.result()

        assert asyncio.run(scenario()) == "first"

    def test_timeout_bounds_the_wait_without_killing_the_flight(self):
        async def scenario():
            flight = AsyncFlight("k")
            with pytest.raises(asyncio.TimeoutError):
                await flight.result(timeout=0.01)
            flight.complete("still alive")
            return await flight.result()

        assert asyncio.run(scenario()) == "still alive"


class TestAsyncCoalescer:
    def test_leader_then_followers_share_one_outcome(self):
        async def scenario():
            coalescer = AsyncCoalescer()
            leader, flight = coalescer.lead_or_join("k")
            assert leader
            follower, joined = coalescer.lead_or_join("k")
            assert not follower
            assert joined is flight

            async def follow():
                return await joined.result()

            waiters = [asyncio.ensure_future(follow()) for _ in range(3)]
            await asyncio.sleep(0)
            coalescer.complete(flight, {"answer": 42})
            results = await asyncio.gather(*waiters)
            assert results == [{"answer": 42}] * 3
            assert coalescer.stats.flights == 1
            assert coalescer.stats.coalesced == 1
            assert len(coalescer) == 0

        asyncio.run(scenario())

    def test_settlement_clears_the_table_for_fresh_flights(self):
        async def scenario():
            coalescer = AsyncCoalescer()
            _, first = coalescer.lead_or_join("k")
            coalescer.complete(first, 1)
            leader, second = coalescer.lead_or_join("k")
            assert leader
            assert second is not first

        asyncio.run(scenario())

    def test_failed_leader_shares_the_error(self):
        async def scenario():
            coalescer = AsyncCoalescer()
            _, flight = coalescer.lead_or_join("k")

            follower = asyncio.ensure_future(flight.result())
            await asyncio.sleep(0)
            coalescer.fail(flight, RuntimeError("upstream died"))
            with pytest.raises(RuntimeError, match="upstream died"):
                await follower

        asyncio.run(scenario())

    def test_cancelled_leader_counts_as_cancelled_flight(self):
        async def scenario():
            coalescer = AsyncCoalescer()
            _, flight = coalescer.lead_or_join("k")
            coalescer.fail(flight, asyncio.CancelledError())
            assert coalescer.stats.cancelled == 1
            assert len(coalescer) == 0
            flight.future.exception()  # retrieve, silencing the loop

        asyncio.run(scenario())

    def test_cancelled_follower_detaches_without_killing_the_flight(self):
        async def scenario():
            coalescer = AsyncCoalescer()
            _, flight = coalescer.lead_or_join("k")

            follower = asyncio.ensure_future(flight.result())
            survivor = asyncio.ensure_future(flight.result())
            await asyncio.sleep(0)
            follower.cancel()
            await asyncio.gather(follower, return_exceptions=True)
            coalescer.complete(flight, "shared")
            assert await survivor == "shared"

        asyncio.run(scenario())
