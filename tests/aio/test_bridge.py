"""Tests for the ListenableFuture <-> asyncio bridges."""

import asyncio

import pytest

from repro.core.aio import listenable_to_asyncio, task_to_listenable
from repro.core.futures import ListenableFuture


class TestListenableToAsyncio:
    def test_result_crosses(self):
        async def scenario():
            listenable = ListenableFuture()
            mirrored = listenable_to_asyncio(listenable)
            listenable.set_result("payload")
            return await mirrored

        assert asyncio.run(scenario()) == "payload"

    def test_already_settled_listenable_crosses(self):
        async def scenario():
            listenable = ListenableFuture()
            listenable.set_result(5)
            return await listenable_to_asyncio(listenable)

        assert asyncio.run(scenario()) == 5

    def test_error_crosses(self):
        async def scenario():
            listenable = ListenableFuture()
            mirrored = listenable_to_asyncio(listenable)
            listenable.set_exception(KeyError("missing"))
            await mirrored

        with pytest.raises(KeyError):
            asyncio.run(scenario())

    def test_cancelling_the_mirror_detaches_only(self):
        async def scenario():
            listenable = ListenableFuture()
            mirrored = listenable_to_asyncio(listenable)
            mirrored.cancel()
            listenable.set_result("survives")
            await asyncio.sleep(0)
            return listenable.get(timeout=0)

        assert asyncio.run(scenario()) == "survives"


class TestTaskToListenable:
    def test_result_crosses(self):
        async def scenario():
            async def work():
                return 11

            listenable = task_to_listenable(asyncio.ensure_future(work()))
            await asyncio.sleep(0)
            return listenable

        listenable = asyncio.run(scenario())
        assert listenable.get(timeout=0) == 11

    def test_cancelled_task_settles_with_cancellation(self):
        async def scenario():
            async def hang():
                await asyncio.sleep(3600)

            task = asyncio.ensure_future(hang())
            listenable = task_to_listenable(task)
            await asyncio.sleep(0)
            task.cancel()
            await asyncio.gather(task, return_exceptions=True)
            return listenable

        listenable = asyncio.run(scenario())
        with pytest.raises(asyncio.CancelledError):
            listenable.get(timeout=0)
