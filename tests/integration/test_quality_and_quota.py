"""Integration: measurable provider quality and quota-driven caching."""

import pytest

from repro import RichClient, Weights, build_world
from repro.core.aggregation import MultiServiceCombiner
from repro.services.base import Quota, QuotaExceededError


@pytest.fixture
def world():
    return build_world(seed=55, corpus_size=50)


@pytest.fixture
def client(world):
    rich_client = RichClient(world.registry)
    yield rich_client
    rich_client.close()


def measure_f1(client, world, provider, docs=20):
    scores = []
    for doc in world.corpus.documents[:docs]:
        analysis = client.invoke(provider, "analyze", {"text": doc.text},
                                 use_cache=False).value
        score = MultiServiceCombiner.score_against_gold(
            analysis, list(doc.gold_entities), doc.gold_sentiment)
        scores.append(score["f1"])
        client.monitor.rate_quality(provider, score["f1"])
    return sum(scores) / len(scores)


class TestQualityEvaluation:
    def test_providers_have_distinct_measured_quality(self, world, client):
        premium = measure_f1(client, world, "lexica-prime")
        budget = measure_f1(client, world, "wordsmith-lite")
        assert premium > budget

    def test_quality_feeds_ranking(self, world, client):
        for provider in ("lexica-prime", "glotta", "wordsmith-lite"):
            measure_f1(client, world, provider, docs=15)
        # Quality-dominant weights rank the premium provider first even
        # though it is the slowest and most expensive.
        ranked = client.rank_services(
            "nlu", weights=Weights(response_time=0, cost=0, quality=1))
        assert ranked[0][0] == "lexica-prime"
        # Latency-dominant weights invert the decision.
        ranked = client.rank_services(
            "nlu", weights=Weights(response_time=1, cost=0, quality=0))
        assert ranked[0][0] == "wordsmith-lite"


class TestQuotaAndPersistence:
    def test_server_quota_enforced_and_cache_stretches_it(self, world, client):
        """§2.2: a limited quota of invocations per period is an
        incentive to persist analysis results."""
        service = world.service("lexica-prime")
        service.quota = Quota(limit=3, window=3600.0)
        texts = [doc.text for doc in world.corpus.documents[:3]]
        for text in texts:
            client.invoke("lexica-prime", "analyze", {"text": text})
        # A fourth *distinct* request exceeds the quota...
        with pytest.raises(QuotaExceededError):
            client.invoke("lexica-prime", "analyze", {"text": "fresh text"})
        # ...but every already-analyzed document is still available.
        for text in texts:
            assert client.invoke("lexica-prime", "analyze", {"text": text}).cached

    def test_cache_persists_across_client_restarts(self, world, client):
        from repro.core.caching import ServiceCache
        from repro.stores.kvstore import InMemoryKeyValueStore

        text = world.corpus.documents[0].text
        client.invoke("lexica-prime", "analyze", {"text": text})
        store = InMemoryKeyValueStore()
        client.cache.save_to(store)

        second_client = RichClient(world.registry,
                                   cache=ServiceCache(capacity=1024))
        second_client.cache.load_from(store)
        result = second_client.invoke("lexica-prime", "analyze", {"text": text})
        assert result.cached
        second_client.close()
