"""Integration: disconnected operation on the shared simulation clock."""

import pytest

from repro import PersonalKnowledgeBase, RichClient, build_world
from repro.crypto.cipher import StreamCipher, derive_key
from repro.kb.secure import SecureRemoteStore
from repro.kb.spellcheck import LocalSpellChecker
from repro.kb.sync import OfflineSyncStore
from repro.simnet.connectivity import ScriptedConnectivity
from repro.simnet.errors import ConnectivityError


@pytest.fixture
def world():
    # Online during [0, 5), offline during [5, 10), online again after.
    return build_world(seed=33, corpus_size=30,
                       connectivity=ScriptedConnectivity([5.0, 10.0]))


@pytest.fixture
def client(world):
    rich_client = RichClient(world.registry)
    yield rich_client
    rich_client.close()


class TestScriptedOutage:
    def test_calls_fail_during_the_window(self, world, client):
        text = world.corpus.documents[0].text
        client.invoke("lexica-prime", "analyze", {"text": text}, use_cache=False)
        world.clock.advance(6.0)  # into the outage
        with pytest.raises(ConnectivityError):
            client.invoke("lexica-prime", "analyze", {"text": "new text"},
                          use_cache=False)
        world.clock.advance(10.0)  # well past the outage
        client.invoke("lexica-prime", "analyze", {"text": "new text"},
                      use_cache=False)

    def test_cache_serves_during_outage(self, world, client):
        """'Caching can also help an application to continue executing
        if the application has poor connectivity.'"""
        text = world.corpus.documents[0].text
        online_result = client.invoke("lexica-prime", "analyze", {"text": text})
        world.clock.advance(6.0)
        cached = client.invoke("lexica-prime", "analyze", {"text": text})
        assert cached.cached
        assert cached.value == online_result.value

    def test_kb_keeps_working_offline_then_syncs(self, world, client):
        cipher = StreamCipher(derive_key("integration", iterations=500))
        remote = SecureRemoteStore(client, "store-standard", cipher)
        kb = PersonalKnowledgeBase(client=client,
                                   remote=OfflineSyncStore(remote=remote))
        kb.add_fact("home", "repro:rooms", 5, disambiguate=False)
        kb.backup_remote("snap")

        world.clock.advance(6.0)  # offline now
        kb.add_fact("garden", "repro:trees", 3, disambiguate=False)
        kb.backup_remote("snap")  # queued, not lost
        assert kb.remote.pending_count == 1

        world.clock.advance(10.0)  # back online
        assert kb.remote.sync() == 1

        replica = PersonalKnowledgeBase(
            client=client, remote=OfflineSyncStore(remote=remote))
        replica.restore_remote("snap")
        assert ("garden", "repro:trees", 3) in replica.graph

    def test_local_spellcheck_unaffected_by_outage(self, world, client):
        checker = LocalSpellChecker.from_texts(
            (doc.text for doc in world.corpus.documents), world.gazetteer)
        world.clock.advance(6.0)  # offline
        result = checker.correct_text("excellnt resluts")
        assert result["replacements"]
        # The remote spell service, by contrast, is unreachable.
        with pytest.raises(ConnectivityError):
            client.invoke("orthografix", "suggest", {"word": "excellnt"},
                          use_cache=False)

    def test_local_analytics_run_offline(self, world, client):
        """'The personalized knowledge base has data analytics
        capabilities which it can execute locally.'"""
        kb = PersonalKnowledgeBase()
        world.clock.advance(6.0)  # offline; nothing below touches the net
        kb.ingest_csv_text("data", "x,y\n0,1\n1,3\n2,5\n")
        result = kb.analyze_numeric_table("data", "x", "y", subject="series")
        assert result["slope"] == pytest.approx(2.0)
        assert kb.pipeline.infer() >= 0
