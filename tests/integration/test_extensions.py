"""Integration tests across the extension features."""

import json

import pytest

from repro import RichClient, build_world
from repro.core.circuitbreaker import CircuitBreakerRegistry, CircuitOpenError
from repro.core.gateway import SdkGateway
from repro.core.imagery import ImageSearchAnalyzer
from repro.kb.trust import TrustAwarePipeline
from repro.services.speech import generate_utterances, rover_vote, word_error_rate
from repro.stores.rdf.graph import REPRO, Triple


@pytest.fixture
def world():
    return build_world(seed=121, corpus_size=40)


@pytest.fixture
def client(world):
    rich_client = RichClient(world.registry)
    yield rich_client
    rich_client.close()


class TestSpeechToKnowledge:
    def test_dictation_becomes_facts(self, world, client):
        """Voice note → ASR → NLU → trusted knowledge base."""
        note = ("Acme Analytics delivered excellent results and analysts "
                "praised the innovative company")
        utterance = generate_utterances([note], seed=3, char_error=0.10)[0]
        hypotheses = [
            client.invoke(provider, "transcribe",
                          {"signal": utterance.signal_words}).value["words"]
            for provider in ("dictaphone-pro", "mumblecorder")
        ]
        transcript = " ".join(rover_vote(hypotheses))
        assert word_error_rate(transcript.split(), utterance.gold_words) < 0.2

        analysis = client.invoke("lexica-prime", "analyze",
                                 {"text": transcript}).value
        pipeline = TrustAwarePipeline()
        for entity in analysis["entities"]:
            if not entity["disambiguated"]:
                continue
            sentiment = analysis["entity_sentiment"].get(entity["id"])
            if sentiment is None:
                continue
            stance = ("positive" if sentiment["score"] > 0 else "negative")
            # Voice-note provenance: trust it like web sentiment.
            pipeline.assert_from_source(
                Triple(entity["id"], REPRO("voice_sentiment"), stance),
                "web-sentiment", confidence=abs(sentiment["score"]))
        facts = pipeline.store.match(None, REPRO("voice_sentiment"), None)
        assert facts
        assert all(0 < confidence <= 0.6 for _, confidence in facts)


class TestGatewayDrivesMediaPipelines:
    def test_image_pipeline_over_the_wire(self, world, client):
        """A non-Python client can run the image flow via the gateway."""
        gateway = SdkGateway(client)
        search = json.loads(gateway.handle_json(json.dumps({
            "method": "invoke",
            "params": {"service": "pixfinder", "operation": "search_images",
                       "payload": {"query": "cat", "limit": 4}},
        })))
        assert search["status"] == 200
        hits = search["result"]["value"]["results"]
        assert hits
        classify = gateway.handle({
            "method": "invoke",
            "params": {"service": "visionary", "operation": "classify",
                       "payload": {"descriptor": hits[0]["descriptor"]}},
        })
        assert classify["status"] == 200
        assert classify["result"]["value"]["classes"]

    def test_transcription_over_the_wire(self, world, client):
        gateway = SdkGateway(client)
        utterance = generate_utterances(
            [world.corpus.documents[0].text], seed=5)[0]
        response = gateway.handle({
            "method": "invoke",
            "params": {"service": "dictaphone-pro", "operation": "transcribe",
                       "payload": {"signal": utterance.signal_words}},
        })
        assert response["status"] == 200
        assert response["result"]["value"]["words"]


class TestBreakerPlusFailover:
    def test_breaker_feeds_ranking_decision(self, world, client):
        """Circuit state and monitoring cooperate: during the outage the
        broken provider's availability collapses, so even after the
        circuit half-opens, ranking has learned to prefer the others."""
        from repro.core.ranking import Weights
        from repro.services.base import NeverFails, ScriptedFailures

        world.service("glotta").failures = ScriptedFailures(set(range(6)))
        registry = CircuitBreakerRegistry(world.clock, failure_threshold=3,
                                          cooldown=30.0)

        def attempt():
            return client.invoke("glotta", "analyze", {"text": "ping"},
                                 use_cache=False)

        outcomes = []
        for _ in range(6):
            try:
                registry.call("glotta", attempt)
                outcomes.append("ok")
            except CircuitOpenError:
                outcomes.append("rejected")
            except Exception:
                outcomes.append("failed")
        assert outcomes == ["failed", "failed", "failed",
                            "rejected", "rejected", "rejected"]
        assert client.monitor.availability("glotta") == 0.0

        # After the cooldown the service recovered; the probe closes it.
        world.service("glotta").failures = NeverFails()
        world.clock.advance(31.0)
        result = registry.call("glotta", attempt)
        assert result.value["language"] == "en"

    def test_imagery_and_breakers_share_the_clock(self, world, client):
        analyzer = ImageSearchAnalyzer(client)
        registry = CircuitBreakerRegistry(world.clock)
        before = world.clock.now()
        registry.call("pixfinder", lambda: analyzer.search_images("dog", 3))
        assert world.clock.now() > before  # the search cost simulated time
