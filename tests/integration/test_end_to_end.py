"""Integration: a cognitive data-analytics application, end to end.

Exercises the paper's Figure-1 shape: one application, one Rich SDK,
many heterogeneous services — search, web, NLU, knowledge bases, market
data, storage — with monitoring, caching, ranking and failover all
engaged at once.
"""

import pytest

from repro import PersonalKnowledgeBase, RichClient, Weights, WebSearchAnalyzer, build_world
from repro.core.aggregation import MultiServiceCombiner
from repro.kb.disambiguation import EntityDisambiguator, ServiceBackedStrategy
from repro.services.base import ScriptedFailures
from repro.services.datasources import StockDataService


@pytest.fixture
def world():
    return build_world(seed=21, corpus_size=60)


@pytest.fixture
def client(world):
    rich_client = RichClient(world.registry)
    yield rich_client
    rich_client.close()


class TestAnalyticsApplication:
    def test_full_scenario(self, world, client):
        analyzer = WebSearchAnalyzer(client)
        kb = PersonalKnowledgeBase(
            client=client,
            disambiguator=EntityDisambiguator(
                [ServiceBackedStrategy(client, "lexica-prime")]),
        )

        # 1. Research a company across the web.
        aggregate = analyzer.analyze_search_results(
            "IBM excellent results", limit=5, nlu_service="lexica-prime")
        assert aggregate.documents_analyzed > 0

        # 2. Store the sentiment verdicts as facts.
        for row in aggregate.entity_sentiment_report():
            if row["mean_sentiment"] is not None:
                kb.add_fact(row["name"], "repro:web_favorability",
                            row["favorability"])
        assert len(kb.graph) > 0

        # 3. Pull public facts and market data for the lead entity.
        kb.ingest_entity("IBM")
        history = client.invoke(
            "tickerfeed", "history",
            {"symbol": StockDataService.symbol_for("IBM"), "days": 90}).value
        kb.pipeline.analyze_series("C_ibm", history["days"], history["closes"],
                                   entity_type="Company")
        kb.pipeline.infer()

        # 4. The knowledge base now holds fused knowledge about IBM.
        facts = kb.facts_about("Big Blue")  # via alias
        predicates = {fact.predicate for fact in facts}
        assert "repro:trend" in predicates           # from analysis
        assert any(p.startswith("repro:source_") for p in predicates)  # ingest

        # 5. Monitoring saw every service the app touched.
        seen = set(client.monitor.services())
        assert {"lexica-prime", "worldwide-web", "tickerfeed"} <= seen

    def test_caching_reduces_spend_on_repeat_analysis(self, world, client):
        analyzer = WebSearchAnalyzer(client)
        analyzer.analyze_search_results("excellent results", limit=4,
                                        nlu_service="lexica-prime")
        spend_after_first = client.quota.total_cost()
        calls_after_first = client.monitor.call_count("lexica-prime")
        analyzer.analyze_search_results("excellent results", limit=4,
                                        nlu_service="lexica-prime")
        # Search, fetch and analysis responses were all cached.
        assert client.monitor.call_count("lexica-prime") == calls_after_first
        assert client.quota.total_cost() == pytest.approx(spend_after_first)

    def test_multi_provider_agreement_beats_weakest(self, world, client):
        """Combining three providers recovers entities the weakest one
        misses, with confidence reflecting agreement."""
        providers = ("lexica-prime", "glotta", "wordsmith-lite")
        mismatches = 0
        for doc in world.corpus.documents[:10]:
            analyses = {
                name: client.invoke(name, "analyze", {"text": doc.text},
                                    use_cache=False).value
                for name in providers
            }
            combined = MultiServiceCombiner.combine_entities(analyses)
            combined_ids = {entry["id"] for entry in combined}
            weakest_ids = {
                entity["id"] for entity in analyses["wordsmith-lite"]["entities"]
                if entity["disambiguated"]
            }
            assert weakest_ids <= combined_ids
            mismatches += len(combined_ids - weakest_ids)
        assert mismatches > 0  # the union really added something

    def test_failover_keeps_the_app_running(self, world, client):
        ranked = [name for name, _ in client.rank_services(
            "nlu", weights=Weights(response_time=1, cost=100, quality=0))]
        world.service(ranked[0]).failures = ScriptedFailures(set(range(1000)))
        for doc in world.corpus.documents[:5]:
            result = client.invoke_with_failover(
                "nlu", "analyze", {"text": doc.text},
                weights=Weights(response_time=1, cost=100, quality=0),
                use_cache=False)
            assert result.service != ranked[0]
        assert client.monitor.availability(ranked[0]) == 0.0

    def test_simulated_time_accounts_for_everything(self, world, client):
        start = client.clock.now()
        client.invoke("lexica-prime", "analyze",
                      {"text": world.corpus.documents[0].text})
        client.invoke("goggle", "search", {"query": "results"})
        elapsed = client.clock.now() - start
        recorded = (client.monitor.latencies("lexica-prime")
                    + client.monitor.latencies("goggle"))
        assert elapsed == pytest.approx(sum(recorded))
