"""Tests for the authenticated stream cipher."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.cipher import (
    DecryptionError,
    KEY_BYTES,
    NONCE_BYTES,
    StreamCipher,
    derive_key,
)

FIXED_NONCE = b"n" * NONCE_BYTES


@pytest.fixture(scope="module")
def cipher():
    return StreamCipher(derive_key("test passphrase", iterations=1_000))


class TestKeyDerivation:
    def test_deterministic(self):
        assert derive_key("pw", iterations=500) == derive_key("pw", iterations=500)

    def test_passphrase_matters(self):
        assert derive_key("a", iterations=500) != derive_key("b", iterations=500)

    def test_salt_matters(self):
        assert derive_key("pw", salt=b"s1", iterations=500) != derive_key(
            "pw", salt=b"s2", iterations=500)

    def test_key_length(self):
        assert len(derive_key("pw", iterations=500)) == KEY_BYTES

    def test_empty_passphrase_rejected(self):
        with pytest.raises(ValueError):
            derive_key("")


class TestRoundtrip:
    def test_basic(self, cipher):
        message = b"attack at dawn"
        assert cipher.decrypt(cipher.encrypt(message)) == message

    def test_empty_plaintext(self, cipher):
        assert cipher.decrypt(cipher.encrypt(b"")) == b""

    def test_large_plaintext(self, cipher):
        message = bytes(range(256)) * 500
        assert cipher.decrypt(cipher.encrypt(message)) == message

    @settings(max_examples=30)
    @given(st.binary(max_size=2000))
    def test_roundtrip_property(self, cipher, message):
        assert cipher.decrypt(cipher.encrypt(message)) == message

    def test_ciphertext_differs_from_plaintext(self, cipher):
        message = b"x" * 100
        sealed = cipher.encrypt(message, nonce=FIXED_NONCE)
        assert message not in sealed

    def test_random_nonce_randomizes_ciphertext(self, cipher):
        message = b"same message"
        assert cipher.encrypt(message) != cipher.encrypt(message)

    def test_fixed_nonce_is_deterministic(self, cipher):
        message = b"same message"
        assert cipher.encrypt(message, nonce=FIXED_NONCE) == cipher.encrypt(
            message, nonce=FIXED_NONCE)


class TestAuthentication:
    def test_flipped_ciphertext_byte_detected(self, cipher):
        sealed = bytearray(cipher.encrypt(b"important data", nonce=FIXED_NONCE))
        sealed[NONCE_BYTES + 2] ^= 0x01
        with pytest.raises(DecryptionError):
            cipher.decrypt(bytes(sealed))

    def test_flipped_nonce_byte_detected(self, cipher):
        sealed = bytearray(cipher.encrypt(b"important data"))
        sealed[0] ^= 0x01
        with pytest.raises(DecryptionError):
            cipher.decrypt(bytes(sealed))

    def test_flipped_tag_byte_detected(self, cipher):
        sealed = bytearray(cipher.encrypt(b"important data"))
        sealed[-1] ^= 0x01
        with pytest.raises(DecryptionError):
            cipher.decrypt(bytes(sealed))

    def test_truncated_ciphertext_detected(self, cipher):
        sealed = cipher.encrypt(b"important data")
        with pytest.raises(DecryptionError):
            cipher.decrypt(sealed[:10])

    def test_wrong_key_fails(self, cipher):
        other = StreamCipher(derive_key("different", iterations=500))
        with pytest.raises(DecryptionError):
            other.decrypt(cipher.encrypt(b"secret"))


class TestValidation:
    def test_key_length_checked(self):
        with pytest.raises(ValueError):
            StreamCipher(b"short")

    def test_nonce_length_checked(self, cipher):
        with pytest.raises(ValueError):
            cipher.encrypt(b"x", nonce=b"tiny")
