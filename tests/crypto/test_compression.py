"""Tests for the compression codecs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.compression import (
    HuffmanCodec,
    IdentityCodec,
    ZlibCodec,
    compression_ratio,
)

CODECS = [IdentityCodec(), ZlibCodec(), HuffmanCodec()]


@pytest.mark.parametrize("codec", CODECS, ids=lambda codec: codec.name)
class TestRoundtrip:
    def test_simple(self, codec):
        data = b"hello world " * 20
        assert codec.decode(codec.encode(data)) == data

    def test_empty(self, codec):
        assert codec.decode(codec.encode(b"")) == b""

    def test_single_byte(self, codec):
        assert codec.decode(codec.encode(b"a")) == b"a"

    def test_single_symbol_run(self, codec):
        data = b"a" * 1000
        assert codec.decode(codec.encode(data)) == data

    def test_all_byte_values(self, codec):
        data = bytes(range(256)) * 4
        assert codec.decode(codec.encode(data)) == data

    @settings(max_examples=25)
    @given(data=st.binary(max_size=1500))
    def test_roundtrip_property(self, codec, data):
        assert codec.decode(codec.encode(data)) == data


class TestCompressionBehaviour:
    def test_zlib_compresses_redundancy(self):
        data = b"abcabcabc" * 200
        assert compression_ratio(ZlibCodec(), data) < 0.2

    def test_huffman_compresses_skewed_text(self):
        data = (b"e" * 500) + (b"t" * 300) + (b"z" * 10)
        assert compression_ratio(HuffmanCodec(), data) < 0.7

    def test_identity_ratio_is_one(self):
        assert compression_ratio(IdentityCodec(), b"anything") == 1.0

    def test_empty_ratio_is_one(self):
        assert compression_ratio(ZlibCodec(), b"") == 1.0

    def test_zlib_levels_trade_size(self):
        data = bytes(i % 251 for i in range(20_000))
        fast = len(ZlibCodec(level=1).encode(data))
        best = len(ZlibCodec(level=9).encode(data))
        assert best <= fast

    def test_zlib_level_validated(self):
        with pytest.raises(ValueError):
            ZlibCodec(level=11)

    def test_huffman_beats_identity_on_english(self):
        text = (b"the quick brown fox jumps over the lazy dog and then "
                b"the dog chases the fox around the quiet meadow ") * 30
        assert compression_ratio(HuffmanCodec(), text) < 1.0
