"""Tests for sealed envelopes (compress-then-encrypt)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.cipher import DecryptionError, StreamCipher, derive_key
from repro.crypto.compression import HuffmanCodec, IdentityCodec
from repro.crypto.envelope import SealedEnvelope, seal, unseal

json_values = st.recursive(
    st.one_of(st.none(), st.booleans(), st.integers(min_value=-10**6, max_value=10**6),
              st.text(max_size=20)),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)


@pytest.fixture(scope="module")
def cipher():
    return StreamCipher(derive_key("envelope tests", iterations=1_000))


class TestSealUnseal:
    def test_roundtrip(self, cipher):
        value = {"facts": [1, 2, 3], "note": "confidential"}
        assert unseal(seal(value, cipher), cipher) == value

    def test_roundtrip_via_dict_form(self, cipher):
        """The envelope survives a trip through a JSON store."""
        envelope = seal([1, "two", None], cipher)
        restored = unseal(envelope.as_dict(), cipher)
        assert restored == [1, "two", None]

    @settings(max_examples=25)
    @given(value=json_values)
    def test_roundtrip_property(self, cipher, value):
        assert unseal(seal(value, cipher), cipher) == value

    def test_alternate_codec(self, cipher):
        value = {"data": "x" * 500}
        envelope = seal(value, cipher, codec=HuffmanCodec())
        assert envelope.codec == "huffman"
        assert unseal(envelope, cipher, codec=HuffmanCodec()) == value

    def test_compression_shrinks_redundant_payloads(self, cipher):
        value = {"data": "abc" * 2000}
        compressed = seal(value, cipher)
        raw = seal(value, cipher, codec=IdentityCodec())
        assert compressed.sealed_bytes < raw.sealed_bytes

    def test_size_accounting(self, cipher):
        envelope = seal({"k": "v"}, cipher)
        assert envelope.plaintext_bytes == len(b'{"k":"v"}')
        assert envelope.sealed_bytes > 0

    def test_wrong_key_rejected(self, cipher):
        envelope = seal({"secret": 1}, cipher)
        other = StreamCipher(derive_key("other", iterations=500))
        with pytest.raises(DecryptionError):
            unseal(envelope, other)

    def test_tampered_envelope_rejected(self, cipher):
        envelope = seal({"secret": 1}, cipher)
        payload = envelope.as_dict()
        tampered = dict(payload)
        ciphertext = payload["ciphertext"]
        flipped_char = "A" if ciphertext[10] != "A" else "B"
        tampered["ciphertext"] = (
            ciphertext[:10] + flipped_char + ciphertext[11:]
        )
        with pytest.raises(DecryptionError):
            unseal(SealedEnvelope.from_dict(tampered), cipher)

    def test_plaintext_absent_from_wire_form(self, cipher):
        envelope = seal({"secret": "tell-no-one"}, cipher)
        assert "tell-no-one" not in envelope.ciphertext_b64
