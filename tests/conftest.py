"""Shared fixtures for the whole test suite."""

import pytest

from repro import RichClient, build_world
from repro.simnet.transport import Transport
from repro.util.clock import ManualClock
from repro.util.rng import SeededRng


@pytest.fixture
def world():
    """A small, fully deterministic simulated world."""
    return build_world(seed=42, corpus_size=30)


@pytest.fixture
def client(world):
    """A RichClient over the world's registry (closed after the test)."""
    rich_client = RichClient(world.registry)
    yield rich_client
    rich_client.close()


@pytest.fixture
def clock():
    return ManualClock()


@pytest.fixture
def rng():
    return SeededRng(123)


@pytest.fixture
def transport(clock, rng):
    return Transport(clock=clock, rng=rng)
