"""Tests for histograms and time-series helpers."""

import pytest

from repro.analytics.histogram import Histogram
from repro.analytics.timeseries import detect_trend, linear_forecast, moving_average


class TestHistogram:
    def test_counts_land_in_bins(self):
        histogram = Histogram(0.0, 10.0, bins=10)
        for value in (0.5, 1.5, 1.6, 9.99):
            histogram.add(value)
        assert histogram.counts[0] == 1
        assert histogram.counts[1] == 2
        assert histogram.counts[9] == 1
        assert histogram.total == 4

    def test_underflow_overflow(self):
        histogram = Histogram(0.0, 1.0, bins=2)
        histogram.add(-5.0)
        histogram.add(5.0)
        assert histogram.underflow == 1
        assert histogram.overflow == 1
        assert sum(histogram.counts) == 0

    def test_max_value_lands_in_last_bin(self):
        histogram = Histogram(0.0, 1.0, bins=4)
        histogram.add(1.0)
        assert histogram.counts[-1] == 1

    def test_from_values_spans_range(self):
        histogram = Histogram.from_values([1.0, 2.0, 3.0], bins=4)
        assert histogram.low == 1.0
        assert histogram.high == 3.0
        assert histogram.total == 3
        assert sum(histogram.counts) == 3

    def test_from_values_constant_series(self):
        histogram = Histogram.from_values([2.0, 2.0], bins=4)
        assert histogram.total == 2

    def test_densities_sum_to_one(self):
        histogram = Histogram.from_values([1.0, 2.0, 3.0, 4.0], bins=4)
        assert sum(histogram.densities()) == pytest.approx(1.0)

    def test_bin_edges_count(self):
        histogram = Histogram(0.0, 1.0, bins=5)
        assert len(histogram.bin_edges()) == 6

    def test_render_produces_rows(self):
        histogram = Histogram.from_values([1.0, 1.1, 5.0], bins=3)
        rendered = histogram.render()
        assert len(rendered.splitlines()) == 3
        assert "#" in rendered

    def test_validation(self):
        with pytest.raises(ValueError):
            Histogram(1.0, 1.0)
        with pytest.raises(ValueError):
            Histogram(0.0, 1.0, bins=0)
        with pytest.raises(ValueError):
            Histogram.from_values([])


class TestMovingAverage:
    def test_window_average(self):
        assert moving_average([1, 2, 3, 4], 2) == [1.0, 1.5, 2.5, 3.5]

    def test_window_one_is_identity(self):
        assert moving_average([3, 1, 4], 1) == [3.0, 1.0, 4.0]

    def test_window_longer_than_series(self):
        assert moving_average([2, 4], 10) == [2.0, 3.0]

    def test_window_validated(self):
        with pytest.raises(ValueError):
            moving_average([1], 0)


class TestForecastAndTrend:
    def test_linear_forecast_extends_line(self):
        forecast = linear_forecast([1, 2, 3, 4], horizon=2)
        assert forecast == [pytest.approx(5.0), pytest.approx(6.0)]

    def test_zero_horizon(self):
        assert linear_forecast([1, 2], horizon=0) == []

    def test_negative_horizon_rejected(self):
        with pytest.raises(ValueError):
            linear_forecast([1, 2], horizon=-1)

    def test_detect_trend(self):
        assert detect_trend([1, 2, 3, 4]) == "rising"
        assert detect_trend([4, 3, 2, 1]) == "falling"
        assert detect_trend([2, 2, 2, 2]) == "flat"

    def test_threshold_damps_noise(self):
        noisy_flat = [1.0, 1.01, 0.99, 1.02, 1.0]
        assert detect_trend(noisy_flat, threshold=0.05) == "flat"
