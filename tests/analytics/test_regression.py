"""Tests for regression models."""

import pytest
from hypothesis import given, strategies as st

from repro.analytics.regression import (
    LinearRegression,
    MultipleLinearRegression,
    PolynomialRegression,
)


class TestLinearRegression:
    def test_perfect_line(self):
        model = LinearRegression([0, 1, 2, 3], [1, 3, 5, 7])
        assert model.slope == pytest.approx(2.0)
        assert model.intercept == pytest.approx(1.0)
        assert model.r_squared == pytest.approx(1.0)
        assert model.predict(10) == pytest.approx(21.0)

    def test_noisy_line_recovers_trend(self):
        xs = list(range(50))
        ys = [3.0 * x + 5.0 + ((-1) ** x) * 0.5 for x in xs]
        model = LinearRegression(xs, ys)
        assert model.slope == pytest.approx(3.0, abs=0.05)
        assert model.r_squared > 0.99

    def test_constant_x_degenerates_to_mean(self):
        model = LinearRegression([2, 2, 2], [1, 3, 5])
        assert model.slope == 0.0
        assert model.predict(100) == pytest.approx(3.0)

    def test_constant_y(self):
        model = LinearRegression([1, 2, 3], [7, 7, 7])
        assert model.slope == pytest.approx(0.0)
        assert model.r_squared == pytest.approx(1.0)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            LinearRegression([1], [1])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            LinearRegression([1, 2], [1])

    def test_residual_stddev_zero_for_perfect_fit(self):
        model = LinearRegression([0, 1, 2, 3], [0, 2, 4, 6])
        assert model.residual_stddev() == pytest.approx(0.0, abs=1e-9)

    def test_predict_many(self):
        model = LinearRegression([0, 1], [0, 2])
        assert model.predict_many([2, 3]) == [pytest.approx(4), pytest.approx(6)]

    @given(st.floats(min_value=-100, max_value=100),
           st.floats(min_value=-100, max_value=100))
    def test_recovers_arbitrary_line(self, slope, intercept):
        xs = [0.0, 1.0, 2.0, 5.0, 10.0]
        ys = [slope * x + intercept for x in xs]
        model = LinearRegression(xs, ys)
        assert model.slope == pytest.approx(slope, abs=1e-6)
        assert model.intercept == pytest.approx(intercept, abs=1e-6)


class TestPolynomialRegression:
    def test_quadratic_fit(self):
        xs = [-2, -1, 0, 1, 2, 3]
        ys = [x**2 for x in xs]
        model = PolynomialRegression(xs, ys, degree=2)
        assert model.r_squared == pytest.approx(1.0)
        assert model.predict(4) == pytest.approx(16.0, abs=1e-6)

    def test_degree_validated(self):
        with pytest.raises(ValueError):
            PolynomialRegression([1, 2], [1, 2], degree=0)

    def test_needs_enough_points(self):
        with pytest.raises(ValueError):
            PolynomialRegression([1, 2], [1, 2], degree=2)


class TestMultipleLinearRegression:
    def test_two_features(self):
        rows = [[1, 2], [2, 1], [3, 3], [4, 5], [5, 4], [0, 1]]
        ys = [10 + 2 * a + 3 * b for a, b in rows]
        model = MultipleLinearRegression(rows, ys)
        assert model.intercept == pytest.approx(10.0, abs=1e-6)
        assert model.coefficients[0] == pytest.approx(2.0, abs=1e-6)
        assert model.coefficients[1] == pytest.approx(3.0, abs=1e-6)
        assert model.predict([10, 10]) == pytest.approx(60.0, abs=1e-5)

    def test_feature_width_checked_on_predict(self):
        rows = [[1, 2], [2, 1], [3, 3], [0, 1]]
        model = MultipleLinearRegression(rows, [1, 2, 3, 4])
        with pytest.raises(ValueError):
            model.predict([1])

    def test_inconsistent_rows_rejected(self):
        with pytest.raises(ValueError):
            MultipleLinearRegression([[1, 2], [1]], [1, 2])

    def test_needs_more_rows_than_features(self):
        with pytest.raises(ValueError):
            MultipleLinearRegression([[1, 2], [3, 4]], [1, 2])
