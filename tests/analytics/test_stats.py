"""Tests for descriptive statistics."""

import pytest
from hypothesis import given, strategies as st

from repro.analytics.stats import (
    correlation,
    describe,
    mean,
    median,
    percentile,
    stddev,
    variance,
)

floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestBasics:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_median_odd(self):
        assert median([3, 1, 2]) == 2

    def test_median_even(self):
        assert median([4, 1, 3, 2]) == 2.5

    def test_variance_sample_vs_population(self):
        values = [2, 4, 4, 4, 5, 5, 7, 9]
        assert variance(values, sample=False) == pytest.approx(4.0)
        assert variance(values, sample=True) == pytest.approx(32 / 7)

    def test_stddev(self):
        assert stddev([2, 4, 4, 4, 5, 5, 7, 9], sample=False) == pytest.approx(2.0)

    def test_variance_needs_two_points(self):
        with pytest.raises(ValueError):
            variance([1.0])


class TestPercentile:
    def test_bounds(self):
        values = [1, 2, 3, 4, 5]
        assert percentile(values, 0.0) == 1
        assert percentile(values, 1.0) == 5
        assert percentile(values, 0.5) == 3

    def test_interpolation(self):
        assert percentile([1, 2], 0.5) == 1.5

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            percentile([1], 1.5)

    @given(st.lists(floats, min_size=1, max_size=50),
           st.floats(min_value=0, max_value=1))
    def test_within_range(self, values, fraction):
        result = percentile(values, fraction)
        assert min(values) <= result <= max(values)

    @given(st.lists(floats, min_size=1, max_size=50))
    def test_monotone_in_fraction(self, values):
        assert percentile(values, 0.25) <= percentile(values, 0.75)


class TestCorrelation:
    def test_perfect_positive(self):
        assert correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_series_is_zero(self):
        assert correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            correlation([1, 2], [1])

    @given(st.lists(st.tuples(floats, floats), min_size=2, max_size=40))
    def test_bounded(self, pairs):
        xs = [pair[0] for pair in pairs]
        ys = [pair[1] for pair in pairs]
        assert -1.0001 <= correlation(xs, ys) <= 1.0001


class TestDescribe:
    def test_summary_fields(self):
        stats = describe([1.0, 2.0, 3.0, 4.0, 100.0])
        assert stats.count == 5
        assert stats.mean == 22.0
        assert stats.median == 3.0
        assert stats.minimum == 1.0
        assert stats.maximum == 100.0
        assert stats.p50 == 3.0
        assert stats.p99 <= 100.0

    def test_single_value(self):
        stats = describe([5.0])
        assert stats.stddev == 0.0
        assert stats.mean == 5.0

    def test_as_dict(self):
        payload = describe([1.0, 2.0]).as_dict()
        assert set(payload) == {"count", "mean", "median", "stddev", "min",
                                "max", "p50", "p90", "p95", "p99"}

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            describe([])
