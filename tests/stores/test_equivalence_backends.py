"""Property-based equivalence: every backend ≡ the in-memory Graph.

Hypothesis generates random triple sets and random SELECT queries
(joins, optionals, range filters, order_by, distinct, limit, union)
and asserts that a ShardedGraph (several shard counts) and the SQLite
backend answer each query identically to a single in-memory
:class:`Graph` over the same triples.  Order-insensitive comparisons
canonicalize bindings; ordered queries check the order key sequence
(ties are unordered between equal keys); limited-unordered queries
check count + subset.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stores.backends.sqlite import SqliteTripleStore
from repro.stores.rdf.graph import Graph
from repro.stores.rdf.query import RangeFilter, _order_key, select, union
from repro.stores.rdf.shard import ShardedGraph

SUBJECTS = [f"s{i}" for i in range(8)]
PREDICATES = ["type", "score", "owner", "tag"]
OBJECTS = ["Item", "Widget", "u1", "u2", 0, 1, 2.5, 7, 10.0, True]

triples_strategy = st.lists(
    st.tuples(st.sampled_from(SUBJECTS), st.sampled_from(PREDICATES),
              st.sampled_from(OBJECTS)),
    min_size=0, max_size=40)

# Star-shaped and join-shaped pattern lists over a shared vocabulary.
pattern_strategy = st.lists(
    st.tuples(st.sampled_from(["?s", "?a", "s0", "s3"]),
              st.sampled_from(PREDICATES),
              st.sampled_from(["?v", "?w", "Item", 1, "u1"])),
    min_size=1, max_size=3)

query_strategy = st.fixed_dictionaries({
    "patterns": pattern_strategy,
    "optional": st.one_of(st.just([]), pattern_strategy),
    "range": st.one_of(
        st.none(),
        st.tuples(st.sampled_from(["?v", "?w"]),
                  st.integers(-1, 5), st.integers(2, 12))),
    "distinct": st.booleans(),
    "order_by": st.sampled_from([None, "?s", "?v"]),
    "descending": st.booleans(),
    "limit": st.sampled_from([None, 0, 1, 3, 100]),
})


def build_query(spec) -> dict:
    filters = []
    if spec["range"] is not None:
        variable, low, high = spec["range"]
        filters.append(RangeFilter(variable, low, high))
    return dict(patterns=spec["patterns"], optional=spec["optional"],
                filters=filters, distinct=spec["distinct"],
                order_by=spec["order_by"], descending=spec["descending"],
                limit=spec["limit"])


def canon(rows):
    return sorted(
        sorted((k, type(v).__name__, str(v)) for k, v in binding.items())
        for binding in rows)


def assert_equivalent(reference_rows, got_rows, query):
    if query["order_by"] is not None and query["limit"] is None:
        # Full ordered result: same multiset and same key sequence.
        assert canon(got_rows) == canon(reference_rows)
        keys = [_order_key(b.get(query["order_by"])) for b in got_rows]
        ref_keys = [_order_key(b.get(query["order_by"]))
                    for b in reference_rows]
        assert keys == ref_keys
    elif query["order_by"] is not None:
        # Ordered + limited: same key sequence; each row must exist in
        # the reference's full result (ties may resolve differently).
        keys = [_order_key(b.get(query["order_by"])) for b in got_rows]
        ref_keys = [_order_key(b.get(query["order_by"]))
                    for b in reference_rows]
        assert keys == ref_keys
        full = canon(select_reference(query, limitless=True))
        for row in canon(got_rows):
            assert row in full
    elif query["limit"] is not None:
        assert len(got_rows) == len(reference_rows)
        full = canon(select_reference(query, limitless=True))
        for row in canon(got_rows):
            assert row in full
    else:
        assert canon(got_rows) == canon(reference_rows)


_REFERENCE_GRAPH = None


def select_reference(query, limitless=False):
    kwargs = dict(query)
    if limitless:
        kwargs["limit"] = None
    return select(_REFERENCE_GRAPH, **kwargs)


@settings(max_examples=120, deadline=None)
@given(triples=triples_strategy, spec=query_strategy,
       shards=st.sampled_from([1, 2, 4, 7]))
def test_sharded_select_equivalent_to_single_store(triples, spec, shards):
    global _REFERENCE_GRAPH
    reference = Graph()
    reference.add_all(triples)
    _REFERENCE_GRAPH = reference
    sharded = ShardedGraph(shards=shards)
    sharded.add_all(triples)
    query = build_query(spec)
    assert_equivalent(select(reference, **query), sharded.select(**query),
                      query)


@settings(max_examples=60, deadline=None)
@given(triples=triples_strategy, spec=query_strategy)
def test_sqlite_select_equivalent_to_single_store(triples, spec):
    global _REFERENCE_GRAPH
    reference = Graph()
    reference.add_all(triples)
    _REFERENCE_GRAPH = reference
    store = SqliteTripleStore()
    store.add_all(triples)
    query = build_query(spec)
    assert_equivalent(select(reference, **query), select(store, **query),
                      query)
    store.close()


@settings(max_examples=50, deadline=None)
@given(triples=triples_strategy,
       groups=st.lists(pattern_strategy, min_size=1, max_size=3),
       shards=st.sampled_from([2, 5]))
def test_union_equivalent_across_backends(triples, groups, shards):
    reference = Graph()
    reference.add_all(triples)
    sharded = ShardedGraph(shards=shards)
    sharded.add_all(triples)
    store = SqliteTripleStore()
    store.add_all(triples)
    want = canon(union(reference, groups))
    assert canon(union(sharded, groups)) == want
    assert canon(union(store, groups)) == want
    store.close()


@settings(max_examples=60, deadline=None)
@given(triples=triples_strategy, spec=query_strategy,
       shards=st.sampled_from([1, 3]))
def test_optimize_off_still_equivalent(triples, spec, shards):
    global _REFERENCE_GRAPH
    reference = Graph()
    reference.add_all(triples)
    _REFERENCE_GRAPH = reference
    sharded = ShardedGraph(shards=shards)
    sharded.add_all(triples)
    query = build_query(spec)
    want = select(reference, optimize=False, **query)
    got = sharded.select(optimize=False, **query)
    assert_equivalent(want, got, query)
