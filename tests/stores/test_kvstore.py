"""Tests for key-value stores."""

import json

import pytest
from hypothesis import given, strategies as st

from repro.stores.kvstore import FileKeyValueStore, InMemoryKeyValueStore
from repro.util.errors import NotFoundError, SerializationError


@pytest.fixture(params=["memory", "file"])
def store(request, tmp_path):
    if request.param == "memory":
        return InMemoryKeyValueStore()
    return FileKeyValueStore(tmp_path / "store.json")


class TestBasicOperations:
    def test_put_get(self, store):
        store.put("a", {"x": 1})
        assert store.get("a") == {"x": 1}

    def test_get_missing_raises(self, store):
        with pytest.raises(NotFoundError):
            store.get("missing")

    def test_get_with_default(self, store):
        assert store.get("missing", default="fallback") == "fallback"

    def test_overwrite(self, store):
        store.put("a", 1)
        store.put("a", 2)
        assert store.get("a") == 2

    def test_delete(self, store):
        store.put("a", 1)
        assert store.delete("a") is True
        assert store.delete("a") is False
        assert "a" not in store

    def test_contains(self, store):
        store.put("a", 1)
        assert "a" in store
        assert "b" not in store

    def test_keys_sorted_with_prefix(self, store):
        for key in ("b", "a", "ab"):
            store.put(key, 0)
        assert store.keys() == ["a", "ab", "b"]
        assert store.keys("a") == ["a", "ab"]

    def test_len_and_items(self, store):
        store.put("a", 1)
        store.put("b", 2)
        assert len(store) == 2
        assert store.items() == [("a", 1), ("b", 2)]

    def test_clear(self, store):
        store.put("a", 1)
        store.clear()
        assert len(store) == 0

    def test_none_value_is_storable(self, store):
        store.put("a", None)
        assert "a" in store
        assert store.get("a") is None


class TestFilePersistence:
    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "kv.json"
        store = FileKeyValueStore(path)
        store.put("greeting", "hello")
        reopened = FileKeyValueStore(path)
        assert reopened.get("greeting") == "hello"

    def test_file_is_valid_json(self, tmp_path):
        path = tmp_path / "kv.json"
        store = FileKeyValueStore(path)
        store.put("a", [1, 2])
        assert json.loads(path.read_text()) == {"a": [1, 2]}

    def test_unserializable_value_rejected_without_corruption(self, tmp_path):
        path = tmp_path / "kv.json"
        store = FileKeyValueStore(path)
        store.put("good", 1)
        with pytest.raises(SerializationError):
            store.put("bad", object())
        assert FileKeyValueStore(path).get("good") == 1

    def test_delete_persists(self, tmp_path):
        path = tmp_path / "kv.json"
        store = FileKeyValueStore(path)
        store.put("a", 1)
        store.delete("a")
        assert "a" not in FileKeyValueStore(path)

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "kv.json"
        store = FileKeyValueStore(path)
        store.put("a", 1)
        assert path.exists()


class TestPropertyBased:
    @given(st.dictionaries(st.text(min_size=1, max_size=10),
                           st.integers(), max_size=20))
    def test_contents_match_inserts(self, mapping):
        store = InMemoryKeyValueStore()
        for key, value in mapping.items():
            store.put(key, value)
        assert dict(store.items()) == mapping

    @given(st.lists(st.tuples(st.text(min_size=1, max_size=5), st.integers()),
                    max_size=30))
    def test_last_write_wins(self, writes):
        store = InMemoryKeyValueStore()
        expected = {}
        for key, value in writes:
            store.put(key, value)
            expected[key] = value
        for key, value in expected.items():
            assert store.get(key) == value
