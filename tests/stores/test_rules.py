"""Tests for the generic (user-defined) rule reasoner."""

import pytest

from repro.stores.rdf.graph import Graph
from repro.stores.rdf.rules import GenericRuleReasoner, Rule

PARENT = "repro:parent"
GRANDPARENT = "repro:grandparent"
ANCESTOR = "repro:ancestor"
SIBLING = "repro:sibling"


@pytest.fixture
def family():
    return Graph([
        ("tom", PARENT, "bob"),
        ("tom", PARENT, "liz"),
        ("bob", PARENT, "ann"),
        ("ann", PARENT, "sue"),
    ])


GRANDPARENT_RULE = Rule(
    premises=[("?x", PARENT, "?y"), ("?y", PARENT, "?z")],
    conclusions=[("?x", GRANDPARENT, "?z")],
    name="grandparent",
)

ANCESTOR_RULES = [
    Rule([("?x", PARENT, "?y")], [("?x", ANCESTOR, "?y")], name="anc-base"),
    Rule([("?x", PARENT, "?y"), ("?y", ANCESTOR, "?z")],
         [("?x", ANCESTOR, "?z")], name="anc-rec"),
]


class TestRuleValidation:
    def test_unbound_conclusion_variable_rejected(self):
        with pytest.raises(ValueError):
            Rule([("?x", PARENT, "?y")], [("?x", GRANDPARENT, "?z")])

    def test_ground_conclusions_allowed(self):
        Rule([("?x", PARENT, "?y")], [("someone", "repro:hasChildren", "yes")])


class TestForwardChaining:
    def test_simple_join_rule(self, family):
        reasoner = GenericRuleReasoner([GRANDPARENT_RULE])
        added = reasoner.forward(family)
        assert added == 2
        assert ("tom", GRANDPARENT, "ann") in family
        assert ("bob", GRANDPARENT, "sue") in family

    def test_recursive_rules_reach_fixpoint(self, family):
        reasoner = GenericRuleReasoner(ANCESTOR_RULES)
        reasoner.forward(family)
        ancestors_of_tom = {t.object for t in family.match("tom", ANCESTOR, None)}
        assert ancestors_of_tom == {"bob", "liz", "ann", "sue"}

    def test_forward_idempotent(self, family):
        reasoner = GenericRuleReasoner(ANCESTOR_RULES)
        reasoner.forward(family)
        assert reasoner.forward(family) == 0

    def test_guards_filter_bindings(self, family):
        family.add(("bob", "repro:age", 60))
        family.add(("ann", "repro:age", 30))
        rule = Rule(
            premises=[("?x", "repro:age", "?a")],
            conclusions=[("?x", "repro:senior", "true")],
            guards=[lambda binding: binding["?a"] >= 50],
        )
        GenericRuleReasoner([rule]).forward(family)
        assert ("bob", "repro:senior", "true") in family
        assert ("ann", "repro:senior", "true") not in family

    def test_multiple_conclusions(self, family):
        rule = Rule(
            premises=[("?x", PARENT, "?y")],
            conclusions=[("?y", "repro:child_of", "?x"),
                         ("?x", "repro:has_child", "true")],
        )
        GenericRuleReasoner([rule]).forward(family)
        assert ("bob", "repro:child_of", "tom") in family
        assert ("tom", "repro:has_child", "true") in family

    def test_max_rounds_bounds_iteration(self, family):
        reasoner = GenericRuleReasoner(ANCESTOR_RULES)
        reasoner.forward(family, max_rounds=1)
        # Only one round: base facts derived, deep recursion not yet.
        assert ("tom", ANCESTOR, "bob") in family
        assert ("tom", ANCESTOR, "sue") not in family

    def test_cyclic_data_terminates(self):
        graph = Graph([("a", PARENT, "b"), ("b", PARENT, "a")])
        reasoner = GenericRuleReasoner(ANCESTOR_RULES)
        reasoner.forward(graph)
        assert ("a", ANCESTOR, "a") in graph  # cycles make you your own ancestor

    def test_semi_naive_matches_naive(self, family):
        """The frontier optimization must not change the result."""
        fast = family.copy()
        GenericRuleReasoner(ANCESTOR_RULES + [GRANDPARENT_RULE]).forward(fast)

        slow = family.copy()
        # Naive fixpoint: re-run single rounds from scratch until stable.
        reasoner = GenericRuleReasoner(ANCESTOR_RULES + [GRANDPARENT_RULE])
        while True:
            before = len(slow)
            reasoner.forward(slow, max_rounds=1)
            if len(slow) == before:
                break
        assert set(fast) == set(slow)


class TestBackwardChaining:
    def test_prove_ground_fact(self, family):
        reasoner = GenericRuleReasoner([GRANDPARENT_RULE])
        assert reasoner.holds(family, ("tom", GRANDPARENT, "ann"))
        assert not reasoner.holds(family, ("tom", GRANDPARENT, "sue"))

    def test_prove_with_variables(self, family):
        reasoner = GenericRuleReasoner([GRANDPARENT_RULE])
        answers = reasoner.prove(family, ("?g", GRANDPARENT, "?c"))
        assert {(a["?g"], a["?c"]) for a in answers} == {("tom", "ann"), ("bob", "sue")}

    def test_prove_recursive_goal(self, family):
        reasoner = GenericRuleReasoner(ANCESTOR_RULES)
        answers = reasoner.prove(family, ("tom", ANCESTOR, "?who"))
        assert {a["?who"] for a in answers} == {"bob", "liz", "ann", "sue"}

    def test_prove_does_not_mutate_graph(self, family):
        reasoner = GenericRuleReasoner(ANCESTOR_RULES)
        before = set(family)
        reasoner.prove(family, ("tom", ANCESTOR, "?who"))
        assert set(family) == before

    def test_tabling_handles_cycles(self):
        graph = Graph([("a", PARENT, "b"), ("b", PARENT, "a")])
        reasoner = GenericRuleReasoner(ANCESTOR_RULES)
        answers = reasoner.prove(graph, ("a", ANCESTOR, "?x"))
        assert {a["?x"] for a in answers} == {"a", "b"}

    def test_facts_provable_without_rules(self, family):
        reasoner = GenericRuleReasoner([])
        assert reasoner.holds(family, ("tom", PARENT, "bob"))

    def test_backward_agrees_with_forward(self, family):
        reasoner = GenericRuleReasoner(ANCESTOR_RULES + [GRANDPARENT_RULE])
        materialized = family.copy()
        reasoner.forward(materialized)
        for predicate in (ANCESTOR, GRANDPARENT):
            forward_facts = {
                (t.subject, t.object) for t in materialized.match(None, predicate, None)
            }
            backward_facts = {
                (a["?x"], a["?y"])
                for a in reasoner.prove(family, ("?x", predicate, "?y"))
            }
            assert forward_facts == backward_facts


class TestHybrid:
    def test_hybrid_materializes_then_answers(self, family):
        reasoner = GenericRuleReasoner([GRANDPARENT_RULE])
        answers = reasoner.hybrid(family, ("?g", GRANDPARENT, "ann"))
        assert ("tom", GRANDPARENT, "ann") in family  # forward pass ran
        assert answers and answers[0]["?g"] == "tom"
