"""SQLite backend specifics: persistence, WAL, batching, index scans.

The contract suite (test_backend_contract.py) already proves
byte-for-byte parity with the in-memory Graph; these tests cover what
is unique to the file-backed implementation.
"""

import pytest

from repro.stores.backends.sqlite import SqliteTripleStore
from repro.stores.rdf.graph import Graph


def test_persistence_across_reopen(tmp_path):
    path = tmp_path / "kb.sqlite"
    with SqliteTripleStore(path) as store:
        store.add_all([("s1", "p", 1), ("s2", "p", 2.5), ("s3", "q", "x"),
                       ("s4", "flag", False)])
        dumped = store.to_list()
        version = store.version

    with SqliteTripleStore(path) as reopened:
        assert reopened.to_list() == dumped
        assert len(reopened) == 4
        # The version counter survives reopen (monotonic across runs).
        assert reopened.version == version
        # Term kinds round-trip exactly, not as strings.
        [t] = reopened.match("s4", "flag", None)
        assert t.object is False
        [t] = reopened.match("s2", "p", None)
        assert type(t.object) is float and t.object == 2.5
        # First-seen collapsing survives reopen: 1 was interned before
        # any equal representation, so True still resolves to it.
        assert ("s1", "p", True) in reopened


def test_wal_mode_for_file_stores(tmp_path):
    with SqliteTripleStore(tmp_path / "kb.sqlite") as store:
        [(mode,)] = store._conn.execute("PRAGMA journal_mode").fetchall()
        assert mode.lower() == "wal"


def test_batched_writes_use_one_transaction(tmp_path):
    chunks = []
    store = SqliteTripleStore(batch_size=10, fault_hook=chunks.append)
    added = store.add_all((f"s{i}", "p", i) for i in range(35))
    assert added == 35
    # ceil(35 / 10) = 4 chunk callbacks, single batch → indexes 0..3.
    assert chunks == [0, 1, 2, 3]
    assert store.version == 35


def test_prefix_scans_are_index_backed():
    store = SqliteTripleStore()
    store.add_all((f"s{i}", "p", i) for i in range(50))
    plans = {
        ("s1", None, None): "PRIMARY KEY",  # WITHOUT ROWID PK (s,p,o)
        (None, "p", None): "idx_triples_pos",
        (None, None, 7): "idx_triples_osp",
    }
    for probe, index_name in plans.items():
        where = []
        params = []
        resolved = [None if term is None else store._term_ids[term]
                    for term in probe]
        for column, term_id in zip("spo", resolved):
            if term_id is not None:
                where.append(f"{column} = ?")
                params.append(term_id)
        sql = "SELECT s, p, o FROM triples WHERE " + " AND ".join(where)
        rows = store._conn.execute("EXPLAIN QUERY PLAN " + sql,
                                   params).fetchall()
        detail = " ".join(str(row) for row in rows)
        assert index_name in detail, (probe, detail)


def test_scan_numeric_orders_and_limits():
    store = SqliteTripleStore()
    store.add_all([("a", "score", 3), ("b", "score", 1.5), ("c", "score", 9),
                   ("d", "score", 3), ("e", "score", "not-numeric"),
                   ("f", "other", 2)])
    rows = store.scan_numeric("score")
    assert [(t.subject, t.object) for t in rows] == [
        ("b", 1.5), ("a", 3), ("d", 3), ("c", 9)]
    rows = store.scan_numeric("score", low=2, high=5)
    assert [t.subject for t in rows] == ["a", "d"]
    rows = store.scan_numeric("score", low=3, low_inclusive=False)
    assert [t.subject for t in rows] == ["c"]
    # Descending orders by value only; ties stay subject-ascending.
    rows = store.scan_numeric("score", descending=True, limit=2)
    assert [t.subject for t in rows] == ["c", "a"]


def test_failed_batch_leaves_no_partial_state():
    calls = []

    def hook(chunk_index):
        calls.append(chunk_index)
        if chunk_index == 2:
            raise RuntimeError("mid-batch crash")

    store = SqliteTripleStore(batch_size=5, fault_hook=hook)
    store.add(("existing", "p", 0))
    with pytest.raises(RuntimeError):
        store.add_all((f"s{i}", "p", i) for i in range(20))
    # Total rollback: the pre-existing triple survives, nothing from the
    # failed batch is visible, and the interned-term dictionary was
    # unwound too (no ghost ids that would desync a future reopen).
    assert len(store) == 1
    assert store.match(None, "p", None)[0].subject == "existing"
    assert store.version == 1
    assert calls == [0, 1, 2]
    # The store remains usable and re-adding succeeds cleanly.
    store.fault_hook = None
    assert store.add_all((f"s{i}", "p", i) for i in range(20)) == 20
    assert len(store) == 21


def test_large_graph_round_trip_matches_memory(tmp_path):
    triples = [(f"s{i % 97}", f"p{i % 7}", i * 0.5) for i in range(2000)]
    reference = Graph()
    reference.add_all(triples)
    with SqliteTripleStore(tmp_path / "big.sqlite", batch_size=64) as store:
        store.add_all(triples)
        assert store.to_list() == reference.to_list()
        assert store.predicate_statistics() == reference.predicate_statistics()
