"""Tests for the SPARQL-like SELECT engine."""

import pytest

from repro.stores.rdf.graph import Graph
from repro.stores.rdf.query import is_variable, select, solve


@pytest.fixture
def graph():
    return Graph([
        ("japan", "rdf:type", "Country"),
        ("france", "rdf:type", "Country"),
        ("tokyo", "rdf:type", "City"),
        ("tokyo", "inCountry", "japan"),
        ("paris", "inCountry", "france"),
        ("paris", "rdf:type", "City"),
        ("japan", "population", 125),
        ("france", "population", 67),
        ("tokyo", "population", 14),
        ("paris", "population", 2),
    ])


class TestIsVariable:
    def test_variables(self):
        assert is_variable("?x")
        assert not is_variable("x")
        assert not is_variable(42)


class TestSolve:
    def test_single_pattern(self, graph):
        bindings = solve(graph, [("?c", "rdf:type", "Country")])
        assert {binding["?c"] for binding in bindings} == {"japan", "france"}

    def test_join_across_patterns(self, graph):
        bindings = solve(graph, [
            ("?city", "inCountry", "?country"),
            ("?country", "population", "?pop"),
        ])
        pairs = {(b["?city"], b["?pop"]) for b in bindings}
        assert pairs == {("tokyo", 125), ("paris", 67)}

    def test_shared_variable_consistency(self, graph):
        # ?x both a City and having population — joins on the same binding.
        bindings = solve(graph, [
            ("?x", "rdf:type", "City"),
            ("?x", "population", "?p"),
        ])
        assert {(b["?x"], b["?p"]) for b in bindings} == {("tokyo", 14), ("paris", 2)}

    def test_unsatisfiable(self, graph):
        assert solve(graph, [("?x", "rdf:type", "Planet")]) == []

    def test_ground_pattern_acts_as_check(self, graph):
        assert solve(graph, [("japan", "rdf:type", "Country")]) == [{}]
        assert solve(graph, [("japan", "rdf:type", "City")]) == []

    def test_repeated_variable_in_one_pattern(self):
        graph = Graph([("a", "knows", "a"), ("a", "knows", "b")])
        bindings = solve(graph, [("?x", "knows", "?x")])
        assert bindings == [{"?x": "a"}]


class TestSelect:
    def test_projection(self, graph):
        rows = select(graph, [("?c", "rdf:type", "Country")], variables=["?c"])
        assert all(set(row) == {"?c"} for row in rows)

    def test_filters(self, graph):
        rows = select(
            graph,
            [("?p", "population", "?n")],
            filters=[lambda binding: binding["?n"] > 50],
        )
        assert {row["?p"] for row in rows} == {"japan", "france"}

    def test_order_by_and_limit(self, graph):
        rows = select(
            graph,
            [("?p", "population", "?n")],
            order_by="?n",
            descending=True,
            limit=2,
        )
        assert [row["?p"] for row in rows] == ["japan", "france"]

    def test_distinct(self, graph):
        graph.add(("osaka", "inCountry", "japan"))
        rows = select(
            graph,
            [("?city", "inCountry", "?country")],
            variables=["?country"],
            distinct=True,
        )
        assert sorted(row["?country"] for row in rows) == ["france", "japan"]

    def test_invalid_projection_rejected(self, graph):
        with pytest.raises(ValueError):
            select(graph, [("?x", "rdf:type", "City")], variables=["x"])

    def test_malformed_pattern_rejected(self, graph):
        with pytest.raises(ValueError):
            select(graph, [("?x", "rdf:type")])

    def test_default_projects_all_variables(self, graph):
        rows = select(graph, [("?x", "inCountry", "?y")])
        assert all(set(row) == {"?x", "?y"} for row in rows)
