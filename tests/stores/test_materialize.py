"""Incrementally maintained materialized views and the result cache."""

import pytest

from repro.obs import Observability
from repro.stores.rdf.graph import Graph, RDF, RDFS, Triple
from repro.stores.rdf.materialize import MaterializedGraph, QueryResultCache
from repro.stores.rdf.reasoner import RdfsReasoner, TransitiveReasoner
from repro.stores.rdf.rules import GenericRuleReasoner, Rule
from repro.util.clock import ManualClock


SCHEMA = [
    ("Cat", RDFS.subClassOf, "Mammal"),
    ("Mammal", RDFS.subClassOf, "Animal"),
    ("hasPet", RDFS.domain, "Person"),
    ("hasPet", RDFS.range, "Animal"),
]


def materialized_copy(base_facts):
    """A freshly, fully materialized graph over the same base facts."""
    graph = Graph(base_facts)
    RdfsReasoner().apply(graph)
    return graph


class TestQueryResultCache:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            QueryResultCache(capacity=0)

    def test_hit_requires_matching_version(self):
        cache = QueryResultCache()
        cache.put(1, ("k",), [{"?x": 1}])
        assert cache.get(1, ("k",)) == [{"?x": 1}]
        assert cache.get(2, ("k",)) is None  # stale entry dropped
        assert cache.get(1, ("k",)) is None  # ...and gone for good
        assert cache.hits == 1
        assert cache.misses == 2

    def test_lru_eviction(self):
        cache = QueryResultCache(capacity=2)
        cache.put(1, ("a",), [])
        cache.put(1, ("b",), [])
        cache.get(1, ("a",))  # refresh "a"
        cache.put(1, ("c",), [])  # evicts "b"
        assert cache.get(1, ("b",)) is None
        assert cache.get(1, ("a",)) == []


class TestMaterializedGraph:
    def test_construction_materializes(self):
        view = MaterializedGraph(Graph(SCHEMA + [("tom", RDF.type, "Cat")]))
        assert Triple("tom", RDF.type, "Animal") in view
        assert Triple("Cat", RDFS.subClassOf, "Animal") in view

    def test_incremental_add_equals_full(self):
        view = MaterializedGraph(Graph(SCHEMA))
        facts = [
            ("tom", RDF.type, "Cat"),
            ("alice", "hasPet", "tom"),
            ("Animal", RDFS.subClassOf, "LivingThing"),
        ]
        for fact in facts:
            view.add(fact)
        expected = materialized_copy(SCHEMA + facts)
        assert set(view.graph) == set(expected)
        assert view.base_facts() == {Graph._coerce(t) for t in SCHEMA + facts}

    def test_add_reports_novelty(self):
        view = MaterializedGraph(Graph(SCHEMA))
        assert view.add(("tom", RDF.type, "Cat"))
        assert not view.add(("tom", RDF.type, "Cat"))
        # Asserting an already-derived fact is not "new"...
        assert not view.add(("tom", RDF.type, "Mammal"))
        # ...but it becomes a base fact, so deleting the premise keeps it.
        view.remove(("tom", RDF.type, "Cat"))
        assert Triple("tom", RDF.type, "Mammal") in view

    def test_delete_retracts_stale_derivations(self):
        view = MaterializedGraph(Graph(SCHEMA + [("tom", RDF.type, "Cat")]))
        assert Triple("tom", RDF.type, "Animal") in view
        assert view.remove(("tom", RDF.type, "Cat"))
        assert Triple("tom", RDF.type, "Animal") not in view
        assert Triple("Mammal", RDFS.subClassOf, "Animal") in view  # schema-only

    def test_delete_of_unknown_fact_is_noop(self):
        view = MaterializedGraph(Graph(SCHEMA))
        version = view.version
        assert not view.remove(("nobody", RDF.type, "Cat"))
        assert view.version == version

    def test_multiple_reasoners_reach_joint_fixpoint(self):
        # The custom rule produces a subClassOf edge; the transitive
        # reasoner must then extend the closure from it, and vice versa.
        promote = Rule(
            premises=[("?c", "promoted", "?d")],
            conclusions=[("?c", RDFS.subClassOf, "?d")],
            name="promote",
        )
        view = MaterializedGraph(
            Graph([("Cat", RDFS.subClassOf, "Mammal")]),
            reasoners=[TransitiveReasoner(), GenericRuleReasoner([promote])],
        )
        view.add(("Mammal", "promoted", "Animal"))
        assert Triple("Cat", RDFS.subClassOf, "Animal") in view

    def test_inferred_count(self):
        view = MaterializedGraph(Graph(SCHEMA + [("tom", RDF.type, "Cat")]))
        assert view.inferred_count == len(view) - len(SCHEMA) - 1
        assert view.inferred_count > 0

    def test_select_caches_until_mutation(self):
        obs = Observability(clock=ManualClock())
        view = MaterializedGraph(
            Graph(SCHEMA + [("tom", RDF.type, "Cat")]), obs=obs)
        patterns = [("?x", RDF.type, "Animal")]
        first = view.select(patterns)
        again = view.select(patterns)
        assert first == again
        assert view.cache.hits == 1
        assert obs.metrics.counter("rdf_query_cache_hits_total").total() == 1.0
        # A mutation (and its derivations) invalidates via the version.
        view.add(("jerry", RDF.type, "Cat"))
        third = view.select(patterns)
        assert {b["?x"] for b in third} == {"tom", "jerry"}
        assert view.cache.hits == 1

    def test_cached_results_are_copies(self):
        view = MaterializedGraph(Graph([("a", "p", "b")]))
        first = view.select([("?x", "p", "?y")])
        first[0]["?x"] = "mutated"
        assert view.select([("?x", "p", "?y")]) == [{"?x": "a", "?y": "b"}]

    def test_filtered_queries_bypass_cache(self):
        view = MaterializedGraph(Graph([("a", "p", 1), ("b", "p", 2)]))
        patterns = [("?x", "p", "?v")]
        view.select(patterns, filters=[lambda b: b["?v"] > 1])
        view.select(patterns, filters=[lambda b: b["?v"] > 1])
        assert view.cache.hits == 0
        assert len(view.cache) == 0

    def test_version_is_monotonic_across_rebuild(self):
        view = MaterializedGraph(Graph(SCHEMA + [("tom", RDF.type, "Cat")]))
        before = view.version
        view.remove(("tom", RDF.type, "Cat"))  # clear + rebuild inside
        assert view.version > before
