"""Tests for the transitive and RDFS reasoners."""

import pytest
from hypothesis import given, strategies as st

from repro.stores.rdf.graph import Graph, RDF, RDFS
from repro.stores.rdf.reasoner import RdfsReasoner, TransitiveReasoner


class TestTransitiveReasoner:
    def test_chain_closure(self):
        graph = Graph([
            ("a", RDFS.subClassOf, "b"),
            ("b", RDFS.subClassOf, "c"),
            ("c", RDFS.subClassOf, "d"),
        ])
        added = TransitiveReasoner().apply(graph)
        assert added == 3  # a-c, a-d, b-d
        assert ("a", RDFS.subClassOf, "d") in graph

    def test_idempotent(self):
        graph = Graph([("a", RDFS.subClassOf, "b"), ("b", RDFS.subClassOf, "c")])
        reasoner = TransitiveReasoner()
        reasoner.apply(graph)
        assert reasoner.apply(graph) == 0

    def test_cycle_terminates(self):
        graph = Graph([
            ("a", RDFS.subClassOf, "b"),
            ("b", RDFS.subClassOf, "a"),
        ])
        TransitiveReasoner().apply(graph)
        # Mutual subclass edges exist; no self-loops added.
        assert ("a", RDFS.subClassOf, "a") not in graph

    def test_custom_predicate(self):
        graph = Graph([
            ("tokyo", "locatedIn", "japan"),
            ("japan", "locatedIn", "asia"),
        ])
        TransitiveReasoner(predicates=["locatedIn"]).apply(graph)
        assert ("tokyo", "locatedIn", "asia") in graph

    def test_unrelated_predicates_untouched(self):
        graph = Graph([("a", "likes", "b"), ("b", "likes", "c")])
        TransitiveReasoner().apply(graph)
        assert ("a", "likes", "c") not in graph


class TestRdfsReasoner:
    def test_rdfs9_instance_inheritance(self):
        graph = Graph([
            ("Dog", RDFS.subClassOf, "Animal"),
            ("rex", RDF.type, "Dog"),
        ])
        RdfsReasoner().apply(graph)
        assert ("rex", RDF.type, "Animal") in graph

    def test_rdfs11_subclass_transitivity(self):
        graph = Graph([
            ("Dog", RDFS.subClassOf, "Mammal"),
            ("Mammal", RDFS.subClassOf, "Animal"),
        ])
        RdfsReasoner().apply(graph)
        assert ("Dog", RDFS.subClassOf, "Animal") in graph

    def test_rdfs2_domain(self):
        graph = Graph([
            ("employs", RDFS.domain, "Company"),
            ("ibm", "employs", "ann"),
        ])
        RdfsReasoner().apply(graph)
        assert ("ibm", RDF.type, "Company") in graph

    def test_rdfs3_range(self):
        graph = Graph([
            ("employs", RDFS.range, "Person"),
            ("ibm", "employs", "ann"),
        ])
        RdfsReasoner().apply(graph)
        assert ("ann", RDF.type, "Person") in graph

    def test_rdfs7_property_inheritance(self):
        graph = Graph([
            ("employs", RDFS.subPropertyOf, "knows"),
            ("ibm", "employs", "ann"),
        ])
        RdfsReasoner().apply(graph)
        assert ("ibm", "knows", "ann") in graph

    def test_rules_compose_transitively(self):
        """Inheritance through a chain needs several rules cooperating."""
        graph = Graph([
            ("Dog", RDFS.subClassOf, "Mammal"),
            ("Mammal", RDFS.subClassOf, "Animal"),
            ("rex", RDF.type, "Dog"),
        ])
        RdfsReasoner().apply(graph)
        assert ("rex", RDF.type, "Animal") in graph

    def test_configurable_subset(self):
        graph = Graph([
            ("Dog", RDFS.subClassOf, "Animal"),
            ("rex", RDF.type, "Dog"),
        ])
        RdfsReasoner(rules=("rdfs11",)).apply(graph)
        # Without rdfs9, no instance inheritance.
        assert ("rex", RDF.type, "Animal") not in graph

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError):
            RdfsReasoner(rules=("rdfs99",))

    def test_idempotent(self):
        graph = Graph([
            ("Dog", RDFS.subClassOf, "Animal"),
            ("rex", RDF.type, "Dog"),
        ])
        reasoner = RdfsReasoner()
        reasoner.apply(graph)
        assert reasoner.apply(graph) == 0

    def test_monotonic(self):
        """Reasoning never removes triples."""
        graph = Graph([
            ("Dog", RDFS.subClassOf, "Animal"),
            ("rex", RDF.type, "Dog"),
        ])
        before = set(graph)
        RdfsReasoner().apply(graph)
        assert before <= set(graph)


class TestClosureProperties:
    @given(st.lists(
        st.tuples(st.sampled_from("abcdef"), st.just(RDFS.subClassOf),
                  st.sampled_from("abcdef")),
        max_size=15,
    ))
    def test_closure_is_idempotent_and_monotonic(self, edges):
        graph = Graph(edges)
        before = set(graph)
        reasoner = TransitiveReasoner()
        reasoner.apply(graph)
        after_once = set(graph)
        assert before <= after_once
        assert reasoner.apply(graph) == 0
        assert set(graph) == after_once

    @given(st.lists(
        st.tuples(st.sampled_from("abcde"), st.just(RDFS.subClassOf),
                  st.sampled_from("abcde")),
        max_size=12,
    ))
    def test_closure_matches_reachability(self, edges):
        graph = Graph(edges)
        TransitiveReasoner().apply(graph)
        # Reference: reachability by BFS over the original edges.
        adjacency = {}
        for subject, _, obj in edges:
            adjacency.setdefault(subject, set()).add(obj)
        for start in adjacency:
            reachable = set()
            frontier = list(adjacency[start])
            while frontier:
                node = frontier.pop()
                if node in reachable:
                    continue
                reachable.add(node)
                frontier.extend(adjacency.get(node, ()))
            for target in reachable:
                if target != start:
                    assert (start, RDFS.subClassOf, target) in graph


class TestApplyDelta:
    def test_transitive_delta_extends_closure(self):
        graph = Graph([("a", RDFS.subClassOf, "b"), ("b", RDFS.subClassOf, "c")])
        reasoner = TransitiveReasoner()
        reasoner.apply(graph)
        delta = ("c", RDFS.subClassOf, "d")
        graph.add(delta)
        # Only consequences of the delta: a-d and b-d.
        assert reasoner.apply_delta(graph, [delta]) == 2
        assert ("a", RDFS.subClassOf, "d") in graph

    def test_empty_delta_is_free(self):
        graph = Graph([("a", RDFS.subClassOf, "b")])
        reasoner = TransitiveReasoner()
        reasoner.apply(graph)
        assert reasoner.apply_delta(graph, []) == 0

    def test_rdfs_delta_matches_full_closure(self):
        schema = [
            ("hasPet", RDFS.domain, "Person"),
            ("Cat", RDFS.subClassOf, "Mammal"),
            ("Mammal", RDFS.subClassOf, "Animal"),
        ]
        graph = Graph(schema)
        reasoner = RdfsReasoner()
        reasoner.apply(graph)
        delta = [("alice", "hasPet", "tom"), ("tom", RDF.type, "Cat")]
        for triple in delta:
            graph.add(triple)
        reasoner.apply_delta(graph, delta)
        reference = Graph(schema + delta)
        RdfsReasoner().apply(reference)
        assert set(graph) == set(reference)
        assert ("tom", RDF.type, "Animal") in graph
        assert ("alice", RDF.type, "Person") in graph

    @given(st.lists(
        st.tuples(st.sampled_from("abcde"), st.just(RDFS.subClassOf),
                  st.sampled_from("abcde")),
        max_size=10,
    ), st.tuples(st.sampled_from("abcde"), st.just(RDFS.subClassOf),
                 st.sampled_from("abcde")))
    def test_delta_closure_equals_full_closure(self, edges, new_edge):
        graph = Graph(edges)
        reasoner = TransitiveReasoner()
        reasoner.apply(graph)
        graph.add(new_edge)
        reasoner.apply_delta(graph, [new_edge])
        reference = Graph(edges + [new_edge])
        TransitiveReasoner().apply(reference)
        assert set(graph) == set(reference)
