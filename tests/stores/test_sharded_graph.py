"""ShardedGraph behavior: routing, global stats, fan-out execution.

Equivalence of *results* with the single store is covered by the
contract suite and the Hypothesis suite; these tests pin down the
router's decisions — which shard serves what, when queries scatter vs
broadcast, that the native numeric pushdown engages, and that the
async path and observability wiring work.
"""

import asyncio

import pytest

from repro.obs import Observability, names
from repro.stores.backends.sqlite import SqliteTripleStore
from repro.stores.rdf.graph import Graph
from repro.stores.rdf.plan import build_plan, build_sharded_plan
from repro.stores.rdf.query import RangeFilter, select
from repro.stores.rdf.shard import (
    ROUTE_BROADCAST,
    ROUTE_SCATTER,
    ROUTE_SINGLE,
    ShardedGraph,
    shard_of,
)


def populated(shards=4, factory=None, **kwargs) -> ShardedGraph:
    sharded = ShardedGraph(shards=shards, backend_factory=factory, **kwargs)
    triples = []
    for i in range(40):
        s = f"repro:item{i}"
        triples.append((s, "rdf:type", "repro:Item"))
        triples.append((s, "repro:score", i))
        triples.append((s, "repro:owner", f"repro:user{i % 5}"))
    sharded.add_all(triples)
    return sharded


def test_subject_routing_is_stable_and_partitioning():
    sharded = populated()
    for i in range(40):
        subject = f"repro:item{i}"
        index = shard_of(subject, 4)
        shard = sharded.shards[index]
        assert shard.match(subject, None, None), subject
        for other_index, other in enumerate(sharded.shards):
            if other_index != index:
                assert not other.match(subject, None, None)
    # Shard sizes partition the total.
    assert sum(len(shard) for shard in sharded.shards) == len(sharded)


def test_concrete_subject_operations_touch_one_shard():
    sharded = populated()
    route, target = sharded.route_select(
        [("repro:item3", "repro:score", "?v")])
    assert route == ROUTE_SINGLE
    assert target == shard_of("repro:item3", 4)
    rows = sharded.select([("repro:item3", "repro:score", "?v")])
    assert rows == [{"?v": 3}]


def test_star_queries_scatter():
    patterns = [("?s", "rdf:type", "repro:Item"),
                ("?s", "repro:score", "?v")]
    sharded = populated()
    assert sharded.route_select(patterns)[0] == ROUTE_SCATTER
    # Subject variable reused in object position → cannot colocate.
    assert sharded.route_select(
        [("?s", "repro:knows", "?s")])[0] == ROUTE_BROADCAST
    # Two different subject variables → cross-shard join → broadcast.
    assert sharded.route_select(
        [("?a", "repro:owner", "?u"),
         ("?b", "repro:owner", "?u")])[0] == ROUTE_BROADCAST


def test_scatter_results_match_single_store():
    sharded = populated()
    single = Graph()
    single.add_all(sharded)
    patterns = [("?s", "rdf:type", "repro:Item"), ("?s", "repro:score", "?v")]
    kwargs = dict(order_by="?v", descending=True, limit=7)
    assert sharded.select(patterns, **kwargs) == select(
        single, patterns, **kwargs)


def test_broadcast_join_matches_single_store():
    sharded = populated()
    single = Graph()
    single.add_all(sharded)
    patterns = [("?a", "repro:owner", "?u"), ("?b", "repro:owner", "?u")]

    def canon(rows):
        return sorted(tuple(sorted(b.items())) for b in rows)

    assert canon(sharded.select(patterns)) == canon(select(single, patterns))


def test_native_numeric_pushdown_detection():
    sharded = populated()
    patterns = [("?s", "repro:score", "?v")]
    in_range = [RangeFilter("?v", 10, 20)]
    assert sharded.native_numeric_pushdown(patterns, in_range) is not None
    assert sharded.native_numeric_pushdown(
        patterns, in_range, order_by="?v") is not None
    # Disqualifiers: no filters, a non-range filter, ordering on the
    # subject, multiple patterns, optional patterns.
    assert sharded.native_numeric_pushdown(patterns, []) is None
    assert sharded.native_numeric_pushdown(
        patterns, [lambda b: True]) is None
    assert sharded.native_numeric_pushdown(
        patterns, in_range, order_by="?s") is None
    assert sharded.native_numeric_pushdown(
        patterns + [("?s", "rdf:type", "repro:Item")], in_range) is None
    assert sharded.native_numeric_pushdown(
        patterns, in_range, optional=[("?s", "repro:owner", "?u")]) is None


@pytest.mark.parametrize("factory", [None, lambda i: SqliteTripleStore()],
                         ids=["memory", "sqlite"])
def test_native_numeric_scan_matches_generic_path(factory):
    sharded = populated(factory=factory)
    single = Graph()
    single.add_all(sharded)
    patterns = [("?s", "repro:score", "?v")]
    filters = [RangeFilter("?v", 5, 30, high_inclusive=False)]
    got = sharded.select(patterns, filters=filters, order_by="?v",
                         descending=True, limit=9)
    want = select(single, patterns, filters=filters, order_by="?v",
                  descending=True, limit=9)
    assert got == want
    if factory is not None:
        sharded.close()


def test_global_statistics_exactness_through_mutation():
    sharded = populated()
    single = Graph()
    single.add_all(sharded)
    for victim in ["repro:item0", "repro:item17", "repro:item39"]:
        sharded.remove((victim, "repro:owner",
                        f"repro:user{int(victim[10:]) % 5}"))
        single.remove((victim, "repro:owner",
                       f"repro:user{int(victim[10:]) % 5}"))
    assert sharded.predicate_statistics() == single.predicate_statistics()
    assert len(sharded) == len(single)
    sharded.clear()
    assert sharded.predicate_statistics() == {}
    assert sharded.estimate_cardinality(None, None, None) == 0.0


def test_rehydrates_statistics_from_reopened_shards(tmp_path):
    paths = [tmp_path / f"shard{i}.sqlite" for i in range(3)]
    first = ShardedGraph(shards=3,
                         backend_factory=lambda i: SqliteTripleStore(paths[i]))
    first.add_all([(f"s{i}", "p", i) for i in range(20)])
    stats = first.predicate_statistics()
    first.close()
    reopened = ShardedGraph(
        shards=3, backend_factory=lambda i: SqliteTripleStore(paths[i]))
    assert len(reopened) == 20
    assert reopened.predicate_statistics() == stats
    reopened.close()


def test_aselect_matches_select():
    sharded = populated(parallel_threshold=0)
    patterns = [("?s", "repro:score", "?v")]
    filters = [RangeFilter("?v", 12, 25)]

    async def main():
        scatter = await sharded.aselect(patterns, filters=filters,
                                        order_by="?v")
        routed = await sharded.aselect([("repro:item3", "repro:score", "?v")])
        return scatter, routed

    scatter, routed = asyncio.run(main())
    assert scatter == sharded.select(patterns, filters=filters, order_by="?v")
    assert routed == [{"?v": 3}]


def test_observability_wiring():
    obs = Observability(enabled=True)
    sharded = populated(obs=obs, parallel_threshold=0)
    sharded.select([("?s", "repro:score", "?v")],
                   filters=[RangeFilter("?v", 0, 10)])
    scans = obs.metrics.counter(names.KB_SHARD_SCANS_TOTAL)
    assert scans.value() == 4.0
    fanout = obs.metrics.get(names.KB_SHARD_FANOUT_MS)
    assert fanout is not None


def test_per_shard_materialized_views_cache_scatter_reads():
    sharded = populated(shard_reasoners=[])
    patterns = [("?s", "repro:score", "?v")]
    first = sharded.select(patterns, order_by="?v", limit=5)
    again = sharded.select(patterns, order_by="?v", limit=5)
    assert first == again
    hits = sum(shard.cache.hits for shard in sharded.shards)
    assert hits >= sharded.shard_count
    # Writes through the router invalidate the per-shard caches.
    sharded.add(("repro:new", "repro:score", -1))
    bumped = sharded.select(patterns, order_by="?v", limit=5)
    assert bumped[0] == {"?s": "repro:new", "?v": -1}


def test_fanout_plan_envelope():
    sharded = populated()
    single = Graph()
    single.add_all(sharded)
    patterns = [("?s", "repro:score", "?v")]
    filters = [RangeFilter("?v", 10, None)]
    plan = build_sharded_plan(sharded, patterns, filters)
    info = plan.explain()
    assert info["strategy"] == "shard-fanout"
    assert info["route"] == "scatter"
    assert info["shards"] == 4
    assert info["native_numeric"] is True
    assert info["plan"] == build_plan(single, patterns, filters).explain()
    assert "scatter" in plan.describe()
    # Non-sharded graphs still plan (single-shard envelope).
    flat = build_sharded_plan(single, patterns, filters)
    assert flat.explain()["route"] == "single-shard"
    assert flat.explain()["shards"] == 1
