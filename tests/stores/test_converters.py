"""Tests for CSV ↔ table ↔ RDF conversion."""

import pytest
from hypothesis import given, strategies as st

from repro.stores.converters import (
    csv_text_to_table,
    rows_to_table,
    table_to_csv_text,
    table_to_triples,
    triples_to_rows,
)
from repro.stores.rdf.graph import Graph, RDF, REPRO


@pytest.fixture
def table():
    return rows_to_table(
        "cities",
        ["name", "country", "population"],
        [["tokyo", "japan", 14], ["paris", "france", 2], ["lyon", "france", None]],
    )


class TestRowsToTable:
    def test_type_inference(self, table):
        types = {column.name: column.type for column in table.columns}
        assert types == {"name": "str", "country": "str", "population": "int"}

    def test_mixed_int_float_widens(self):
        table = rows_to_table("t", ["v"], [[1], [2.5]])
        assert table.columns[0].type == "float"
        assert table.rows[0]["v"] == 1.0

    def test_all_null_column_is_any(self):
        table = rows_to_table("t", ["v"], [[None], [None]])
        assert table.columns[0].type == "any"

    def test_short_rows_padded(self):
        table = rows_to_table("t", ["a", "b"], [[1]])
        assert table.rows[0]["b"] is None


class TestCsvTableRoundtrip:
    def test_roundtrip(self, table):
        csv_text = table_to_csv_text(table)
        reparsed = csv_text_to_table("cities", csv_text)
        assert reparsed.select() == table.select()

    @given(st.lists(
        st.tuples(st.text(alphabet="abcxyz", min_size=1, max_size=6),
                  st.integers(min_value=-1000, max_value=1000)),
        min_size=1, max_size=20,
    ))
    def test_roundtrip_property(self, pairs):
        table = rows_to_table("t", ["k", "v"], [list(pair) for pair in pairs])
        reparsed = csv_text_to_table("t", table_to_csv_text(table))
        assert reparsed.select() == table.select()


class TestTableToTriples:
    def test_row_subjects_and_type(self, table):
        triples = table_to_triples(table, subject_column="name")
        graph = Graph(triples)
        assert ("repro:cities/tokyo", RDF.type, REPRO("table/cities")) in graph
        assert ("repro:cities/tokyo", "repro:population", 14) in graph

    def test_index_subjects_without_key_column(self, table):
        triples = table_to_triples(table)
        subjects = {t.subject for t in triples}
        assert "repro:cities/0" in subjects

    def test_nulls_skipped(self, table):
        triples = table_to_triples(table, subject_column="name")
        assert all(
            not (t.subject == "repro:cities/lyon" and t.predicate == "repro:population")
            for t in triples
        )

    def test_null_key_rejected(self):
        table = rows_to_table("t", ["k", "v"], [[None, 1]])
        with pytest.raises(ValueError):
            table_to_triples(table, subject_column="k")


class TestTriplesToRows:
    def test_roundtrip_table_rdf_table(self, table):
        graph = Graph(table_to_triples(table, subject_column="name"))
        header, rows = triples_to_rows(graph, "cities")
        assert header == ["country", "name", "population"]
        by_name = {row[header.index("name")]: row for row in rows}
        assert by_name["tokyo"][header.index("population")] == 14
        assert by_name["lyon"][header.index("population")] is None

    def test_only_matching_table_extracted(self, table):
        graph = Graph(table_to_triples(table, subject_column="name"))
        graph.add(("unrelated", "repro:population", 99))
        header, rows = triples_to_rows(graph, "cities")
        assert len(rows) == 3

    def test_inferred_facts_included(self, table):
        """Facts added *after* conversion show up when pivoting back —
        the Figure-5 'convert inferred facts to other formats' flow."""
        graph = Graph(table_to_triples(table, subject_column="name"))
        graph.add(("repro:cities/tokyo", "repro:crowded", True))
        header, rows = triples_to_rows(graph, "cities")
        assert "crowded" in header
        tokyo = next(row for row in rows if row[header.index("name")] == "tokyo")
        assert tokyo[header.index("crowded")] is True

    def test_multivalued_predicate_deterministic(self, table):
        graph = Graph(table_to_triples(table, subject_column="name"))
        graph.add(("repro:cities/tokyo", "repro:nickname", "big-mikan"))
        graph.add(("repro:cities/tokyo", "repro:nickname", "edo"))
        _, first = triples_to_rows(graph, "cities")
        _, second = triples_to_rows(graph, "cities")
        assert first == second

    def test_empty_table_name(self):
        graph = Graph()
        assert triples_to_rows(graph, "ghost") == ([], [])
