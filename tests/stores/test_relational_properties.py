"""Property-based test: the relational engine vs a naive oracle.

Random sequences of insert/update/delete/select are applied both to a
:class:`Table` (with an index on one column, so the indexed fast path
is exercised) and to a plain list of dicts; every select must agree.
"""

from hypothesis import given, settings, strategies as st

from repro.stores.relational import Column, Table

CATEGORIES = ["red", "green", "blue"]

operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.sampled_from(CATEGORIES),
                  st.integers(min_value=0, max_value=50)),
        st.tuples(st.just("update"), st.sampled_from(CATEGORIES),
                  st.integers(min_value=0, max_value=50)),
        st.tuples(st.just("delete"), st.sampled_from(CATEGORIES), st.none()),
        st.tuples(st.just("select"), st.sampled_from(CATEGORIES), st.none()),
    ),
    max_size=40,
)


def fresh_table() -> Table:
    table = Table("t", [Column("category", "str"), Column("value", "int")])
    table.create_index("category")
    return table


@settings(max_examples=60, deadline=None)
@given(ops=operations)
def test_table_matches_oracle(ops):
    table = fresh_table()
    oracle: list[dict] = []
    for operation, category, value in ops:
        if operation == "insert":
            row = {"category": category, "value": value}
            table.insert(row)
            oracle.append(dict(row))
        elif operation == "update":
            table.update({"value": value}, where={"category": category})
            for row in oracle:
                if row["category"] == category:
                    row["value"] = value
        elif operation == "delete":
            table.delete(where={"category": category})
            oracle = [row for row in oracle if row["category"] != category]
        else:  # select — the invariant check
            got = table.select(where={"category": category})
            expected = [row for row in oracle if row["category"] == category]
            assert got == expected

    # Final full-state agreement, both via scan and via the index.
    assert table.select() == oracle
    for category in CATEGORIES:
        assert table.select(where={"category": category}) == [
            row for row in oracle if row["category"] == category
        ]
    assert table.aggregate("count") == len(oracle)


@settings(max_examples=40, deadline=None)
@given(ops=operations)
def test_indexed_and_unindexed_tables_agree(ops):
    indexed = fresh_table()
    plain = Table("t", [Column("category", "str"), Column("value", "int")])
    for operation, category, value in ops:
        if operation == "insert":
            row = {"category": category, "value": value}
            indexed.insert(row)
            plain.insert(dict(row))
        elif operation == "update":
            indexed.update({"value": value}, where={"category": category})
            plain.update({"value": value}, where={"category": category})
        elif operation == "delete":
            indexed.delete(where={"category": category})
            plain.delete(where={"category": category})
        else:
            assert indexed.select(where={"category": category}) == plain.select(
                where={"category": category})
    assert indexed.select() == plain.select()
