"""Tests for the relational engine."""

import pytest

from repro.stores.relational import Column, Database, SchemaError, Table
from repro.util.errors import ConfigurationError, NotFoundError


@pytest.fixture
def people():
    table = Table("people", [
        Column("name", "str", nullable=False),
        Column("age", "int"),
        Column("city", "str"),
        Column("score", "float"),
    ])
    table.insert_many([
        {"name": "ann", "age": 34, "city": "tokyo", "score": 8.5},
        {"name": "bob", "age": 28, "city": "paris", "score": 6.0},
        {"name": "cal", "age": 41, "city": "tokyo", "score": 9.1},
        {"name": "dee", "age": None, "city": "paris", "score": 7.2},
    ])
    return table


class TestSchema:
    def test_unknown_type_rejected(self):
        with pytest.raises(ConfigurationError):
            Column("x", "varchar")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ConfigurationError):
            Table("t", [Column("a"), Column("a")])

    def test_empty_schema_rejected(self):
        with pytest.raises(ConfigurationError):
            Table("t", [])

    def test_type_enforced_on_insert(self, people):
        with pytest.raises(SchemaError):
            people.insert({"name": "eve", "age": "forty"})

    def test_not_null_enforced(self, people):
        with pytest.raises(SchemaError):
            people.insert({"age": 10})

    def test_unknown_column_rejected(self, people):
        with pytest.raises(SchemaError):
            people.insert({"name": "eve", "height": 170})

    def test_int_widens_to_float(self, people):
        people.insert({"name": "eve", "score": 7})
        row = people.select(where={"name": "eve"})[0]
        assert row["score"] == 7.0
        assert isinstance(row["score"], float)

    def test_bool_not_accepted_as_int(self, people):
        with pytest.raises(SchemaError):
            people.insert({"name": "eve", "age": True})


class TestSelect:
    def test_where_dict(self, people):
        rows = people.select(where={"city": "tokyo"})
        assert {row["name"] for row in rows} == {"ann", "cal"}

    def test_where_callable(self, people):
        rows = people.select(where=lambda row: row["age"] is not None and row["age"] > 30)
        assert {row["name"] for row in rows} == {"ann", "cal"}

    def test_projection(self, people):
        rows = people.select(columns=["name"], limit=1)
        assert list(rows[0].keys()) == ["name"]

    def test_order_by_descending(self, people):
        rows = people.select(order_by="score", descending=True)
        assert [row["name"] for row in rows] == ["cal", "ann", "dee", "bob"]

    def test_order_by_with_nulls(self, people):
        rows = people.select(order_by="age")
        assert rows[0]["name"] == "dee"  # NULL sorts first

    def test_limit(self, people):
        assert len(people.select(limit=2)) == 2

    def test_unknown_order_column(self, people):
        with pytest.raises(SchemaError):
            people.select(order_by="height")

    def test_select_returns_copies(self, people):
        rows = people.select()
        rows[0]["name"] = "mutated"
        assert people.select()[0]["name"] != "mutated"


class TestMutation:
    def test_update(self, people):
        updated = people.update({"city": "osaka"}, where={"city": "tokyo"})
        assert updated == 2
        assert len(people.select(where={"city": "osaka"})) == 2

    def test_update_validates_types(self, people):
        with pytest.raises(SchemaError):
            people.update({"age": "old"}, where={"name": "ann"})

    def test_delete(self, people):
        deleted = people.delete(where={"city": "paris"})
        assert deleted == 2
        assert len(people) == 2

    def test_delete_all(self, people):
        assert people.delete() == 4
        assert len(people) == 0


class TestAggregates:
    def test_count(self, people):
        assert people.aggregate("count") == 4

    def test_count_column_skips_nulls(self, people):
        assert people.aggregate("count", "age") == 3

    def test_sum_avg_min_max(self, people):
        assert people.aggregate("sum", "age") == 103
        assert people.aggregate("avg", "age") == pytest.approx(103 / 3)
        assert people.aggregate("min", "score") == 6.0
        assert people.aggregate("max", "score") == 9.1

    def test_group_by(self, people):
        by_city = people.aggregate("avg", "score", group_by="city")
        assert by_city["tokyo"] == pytest.approx(8.8)
        assert by_city["paris"] == pytest.approx(6.6)

    def test_aggregate_over_empty_selection(self, people):
        assert people.aggregate("avg", "age", where={"city": "berlin"}) is None
        assert people.aggregate("count", where={"city": "berlin"}) == 0

    def test_unknown_aggregate(self, people):
        with pytest.raises(SchemaError):
            people.aggregate("median", "age")

    def test_sum_needs_column(self, people):
        with pytest.raises(SchemaError):
            people.aggregate("sum")


class TestDatabase:
    def test_create_and_get(self, people):
        db = Database()
        db.create_table("t", [Column("a")])
        assert db.table("t").name == "t"
        assert "t" in db

    def test_duplicate_table_rejected(self):
        db = Database()
        db.create_table("t", [Column("a")])
        with pytest.raises(ConfigurationError):
            db.create_table("t", [Column("a")])

    def test_replace_table(self, people):
        db = Database()
        db.create_table("people", [Column("x")])
        db.replace_table(people)
        assert len(db.table("people")) == 4

    def test_drop(self):
        db = Database()
        db.create_table("t", [Column("a")])
        db.drop_table("t")
        with pytest.raises(NotFoundError):
            db.table("t")

    def test_join(self, people):
        db = Database()
        db.replace_table(people)
        cities = db.create_table("cities", [
            Column("city", "str"), Column("country", "str"),
        ])
        cities.insert_many([
            {"city": "tokyo", "country": "japan"},
            {"city": "paris", "country": "france"},
        ])
        joined = db.join("people", "cities", on=("city", "city"))
        assert len(joined) == 4
        sample = next(row for row in joined if row["people.name"] == "ann")
        assert sample["cities.country"] == "japan"

    def test_join_with_projection_and_where(self, people):
        db = Database()
        db.replace_table(people)
        cities = db.create_table("cities", [
            Column("city", "str"), Column("country", "str"),
        ])
        cities.insert({"city": "tokyo", "country": "japan"})
        joined = db.join(
            "people", "cities", on=("city", "city"),
            columns=["people.name", "cities.country"],
            where=lambda row: row["people.age"] > 35,
        )
        assert joined == [{"people.name": "cal", "cities.country": "japan"}]

    def test_join_no_matches(self, people):
        db = Database()
        db.replace_table(people)
        db.create_table("empty", [Column("city", "str")])
        assert db.join("people", "empty", on=("city", "city")) == []


class TestPersistence:
    def test_roundtrip(self, people):
        db = Database()
        db.replace_table(people)
        restored = Database.from_dict(db.to_dict())
        assert restored.table_names() == ["people"]
        assert restored.table("people").select() == people.select()

    def test_schema_survives(self, people):
        restored = Table.from_dict(people.to_dict())
        with pytest.raises(SchemaError):
            restored.insert({"name": None})


class TestIndexDirtyTracking:
    def test_noop_update_keeps_indexes_fresh(self, people):
        people.create_index("city")
        people.select(where={"city": "tokyo"})  # force a rebuild
        assert not people._indexes_dirty
        # Writing the same values back changes nothing: no rebuild due.
        assert people.update({"city": "tokyo"}, where={"city": "tokyo"}) == 2
        assert not people._indexes_dirty

    def test_update_of_unindexed_column_keeps_indexes_fresh(self, people):
        people.create_index("city")
        people.select(where={"city": "tokyo"})
        # Buckets hold row references, so an in-place edit to an
        # unindexed column leaves every bucket correct.
        people.update({"score": 1.0}, where={"city": "tokyo"})
        assert not people._indexes_dirty
        rows = people.select(where={"city": "tokyo"})
        assert all(row["score"] == 1.0 for row in rows)

    def test_update_of_indexed_column_marks_dirty(self, people):
        people.create_index("city")
        people.select(where={"city": "tokyo"})
        people.update({"city": "osaka"}, where={"city": "tokyo"})
        assert people._indexes_dirty
        assert len(people.select(where={"city": "osaka"})) == 2

    def test_matching_delete_marks_dirty_but_miss_does_not(self, people):
        people.create_index("city")
        people.select(where={"city": "tokyo"})
        assert people.delete(where={"city": "atlantis"}) == 0
        assert not people._indexes_dirty
        assert people.delete(where={"city": "paris"}) == 2
        assert people._indexes_dirty
