"""Tests for Turtle-style graph serialization."""

import pytest
from hypothesis import given, strategies as st

from repro.stores.rdf.graph import Graph
from repro.stores.rdf.serialization import from_turtle, to_turtle
from repro.util.errors import SerializationError

names = st.text(alphabet="abcxyz:_/0123456789", min_size=1, max_size=12).filter(
    lambda s: not s.replace(".", "").replace("-", "").isdigit()
    and s not in ("true", "false")
)
literals = st.one_of(
    names,
    st.integers(min_value=-10**9, max_value=10**9),
    st.booleans(),
    st.text(max_size=20),
)


class TestRoundtrip:
    def test_simple_graph(self):
        graph = Graph([
            ("ibm", "rdf:type", "Company"),
            ("ibm", "repro:founded", 1911),
            ("ibm", "repro:public", True),
            ("ibm", "rdfs:label", "International Business Machines"),
        ])
        restored = from_turtle(to_turtle(graph))
        assert set(restored) == set(graph)

    def test_empty_graph(self):
        assert to_turtle(Graph()) == ""
        assert len(from_turtle("")) == 0

    def test_deterministic_output(self):
        graph = Graph([("b", "p", 2), ("a", "p", 1)])
        assert to_turtle(graph) == to_turtle(graph.copy())

    def test_strings_with_spaces_and_quotes(self):
        graph = Graph([("doc", "repro:title", 'He said "hello" there')])
        restored = from_turtle(to_turtle(graph))
        assert restored.match("doc", "repro:title", None)[0].object == \
            'He said "hello" there'

    def test_newlines_escaped(self):
        graph = Graph([("doc", "repro:body", "line one\nline two")])
        restored = from_turtle(to_turtle(graph))
        assert restored.match("doc", "repro:body", None)[0].object == \
            "line one\nline two"

    def test_numeric_looking_strings_stay_strings(self):
        graph = Graph([("x", "p", "42"), ("x", "q", 42), ("x", "r", "true")])
        restored = from_turtle(to_turtle(graph))
        assert restored.match("x", "p", None)[0].object == "42"
        assert restored.match("x", "q", None)[0].object == 42
        assert restored.match("x", "r", None)[0].object == "true"

    def test_floats_roundtrip(self):
        graph = Graph([("x", "repro:score", 0.875)])
        restored = from_turtle(to_turtle(graph))
        assert restored.match("x", "repro:score", None)[0].object == 0.875

    @given(st.lists(st.tuples(names, names, literals), max_size=25))
    def test_roundtrip_property(self, triples):
        graph = Graph(triples)
        restored = from_turtle(to_turtle(graph))
        assert set(restored) == set(graph)


class TestParsing:
    def test_comments_and_blank_lines_ignored(self):
        text = "# a comment\n\nibm rdf:type Company .\n"
        graph = from_turtle(text)
        assert len(graph) == 1

    def test_missing_dot_rejected(self):
        with pytest.raises(SerializationError):
            from_turtle("a b c")

    def test_wrong_arity_rejected(self):
        with pytest.raises(SerializationError):
            from_turtle("a b .")
        with pytest.raises(SerializationError):
            from_turtle("a b c d .")

    def test_unterminated_string_rejected(self):
        with pytest.raises(SerializationError):
            from_turtle('a b "unterminated .')
