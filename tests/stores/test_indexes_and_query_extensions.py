"""Tests for relational hash indexes and SPARQL OPTIONAL/UNION."""

import pytest

from repro.stores.relational import Column, Table
from repro.stores.rdf.graph import Graph
from repro.stores.rdf.query import select, union


@pytest.fixture
def indexed_table():
    table = Table("events", [
        Column("kind", "str"), Column("value", "int"), Column("region", "str"),
    ])
    table.insert_many(
        {"kind": f"k{index % 5}", "value": index, "region": f"r{index % 3}"}
        for index in range(300)
    )
    table.create_index("kind")
    return table


class TestTableIndexes:
    def test_indexed_select_matches_scan(self, indexed_table):
        plain = Table("events", indexed_table.columns)
        plain.insert_many(dict(row) for row in indexed_table.rows)
        assert indexed_table.select(where={"kind": "k2"}) == plain.select(
            where={"kind": "k2"})

    def test_index_survives_inserts(self, indexed_table):
        indexed_table.insert({"kind": "k2", "value": 999, "region": "r0"})
        rows = indexed_table.select(where={"kind": "k2"})
        assert any(row["value"] == 999 for row in rows)

    def test_index_survives_updates(self, indexed_table):
        indexed_table.update({"kind": "k9"}, where={"value": 7})
        assert indexed_table.select(where={"kind": "k9"})[0]["value"] == 7
        assert all(row["value"] != 7
                   for row in indexed_table.select(where={"kind": "k2"}))

    def test_index_survives_deletes(self, indexed_table):
        indexed_table.delete(where={"kind": "k1"})
        assert indexed_table.select(where={"kind": "k1"}) == []

    def test_mixed_predicate_uses_index_then_filters(self, indexed_table):
        rows = indexed_table.select(where={"kind": "k1", "region": "r0"})
        assert rows
        assert all(row["kind"] == "k1" and row["region"] == "r0" for row in rows)

    def test_unknown_index_column_rejected(self, indexed_table):
        from repro.stores.relational import SchemaError

        with pytest.raises(SchemaError):
            indexed_table.create_index("missing")

    def test_callable_predicates_skip_index(self, indexed_table):
        rows = indexed_table.select(where=lambda row: row["kind"] == "k3")
        assert len(rows) == 60

    def test_indexed_columns_reported(self, indexed_table):
        assert indexed_table.indexed_columns() == {"kind"}

    def test_miss_returns_empty(self, indexed_table):
        assert indexed_table.select(where={"kind": "nope"}) == []


@pytest.fixture
def city_graph():
    return Graph([
        ("tokyo", "rdf:type", "City"),
        ("tokyo", "pop", 14),
        ("paris", "rdf:type", "City"),        # no population recorded
        ("osaka", "rdf:type", "City"),
        ("osaka", "pop", 2),
        ("japan", "rdf:type", "Country"),
        ("japan", "pop", 125),
    ])


class TestOptional:
    def test_optional_keeps_unmatched_solutions(self, city_graph):
        rows = select(city_graph, [("?x", "rdf:type", "City")],
                      optional=[("?x", "pop", "?p")])
        by_city = {row["?x"]: row.get("?p") for row in rows}
        assert by_city == {"tokyo": 14, "paris": None, "osaka": 2}

    def test_optional_does_not_multiply_required(self, city_graph):
        rows = select(city_graph, [("?x", "rdf:type", "City")],
                      optional=[("?x", "nickname", "?n")])
        assert len(rows) == 3

    def test_optional_with_filters_on_bound_values(self, city_graph):
        rows = select(
            city_graph, [("?x", "rdf:type", "City")],
            optional=[("?x", "pop", "?p")],
            filters=[lambda binding: binding.get("?p") is None
                     or binding["?p"] > 5],
        )
        assert {row["?x"] for row in rows} == {"tokyo", "paris"}

    def test_malformed_optional_rejected(self, city_graph):
        with pytest.raises(ValueError):
            select(city_graph, [("?x", "rdf:type", "City")],
                   optional=[("?x", "pop")])


class TestUnion:
    def test_union_of_types(self, city_graph):
        rows = union(city_graph,
                     [[("?x", "rdf:type", "City")],
                      [("?x", "rdf:type", "Country")]],
                     variables=["?x"])
        assert {row["?x"] for row in rows} == {"tokyo", "paris", "osaka", "japan"}

    def test_union_distinct_collapses_duplicates(self, city_graph):
        rows = union(city_graph,
                     [[("?x", "rdf:type", "City")],
                      [("?x", "pop", "?_ignored"), ("?x", "rdf:type", "City")]],
                     variables=["?x"])
        assert len(rows) == 3

    def test_union_without_distinct(self, city_graph):
        rows = union(city_graph,
                     [[("?x", "rdf:type", "City")],
                      [("?x", "rdf:type", "City")]],
                     variables=["?x"], distinct=False)
        assert len(rows) == 6

    def test_union_groups_may_bind_different_variables(self, city_graph):
        rows = union(city_graph,
                     [[("?city", "rdf:type", "City")],
                      [("?country", "rdf:type", "Country")]])
        assert any("?city" in row for row in rows)
        assert any("?country" in row for row in rows)


class TestSmoothing:
    def test_exponential_smoothing_basic(self):
        from repro.analytics.timeseries import exponential_smoothing

        assert exponential_smoothing([1, 2, 3, 4], 0.5) == [1.0, 1.5, 2.25, 3.125]
        assert exponential_smoothing([], 0.5) == []
        assert exponential_smoothing([7], 0.2) == [7.0]

    def test_alpha_one_is_identity(self):
        from repro.analytics.timeseries import exponential_smoothing

        assert exponential_smoothing([3, 1, 4], 1.0) == [3.0, 1.0, 4.0]

    def test_alpha_validated(self):
        from repro.analytics.timeseries import exponential_smoothing

        with pytest.raises(ValueError):
            exponential_smoothing([1], 0.0)

    def test_holt_tracks_linear_trend(self):
        from repro.analytics.timeseries import holt_forecast

        forecast = holt_forecast([1, 2, 3, 4, 5], horizon=3)
        assert forecast == [pytest.approx(6.0), pytest.approx(7.0),
                            pytest.approx(8.0)]

    def test_holt_adapts_to_trend_change(self):
        from repro.analytics.timeseries import holt_forecast, linear_forecast

        # Flat then sharply rising: Holt weights the recent trend,
        # a global regression underestimates.
        series = [10.0] * 10 + [10 + 2 * step for step in range(1, 11)]
        holt = holt_forecast(series, horizon=1)[0]
        global_fit = linear_forecast(series, horizon=1)[0]
        assert holt > global_fit

    def test_holt_validation(self):
        from repro.analytics.timeseries import holt_forecast

        with pytest.raises(ValueError):
            holt_forecast([1], horizon=1)
        with pytest.raises(ValueError):
            holt_forecast([1, 2], horizon=-1)
        with pytest.raises(ValueError):
            holt_forecast([1, 2], horizon=1, alpha=0.0)


class TestOptionalCornerCases:
    def test_filter_on_unbound_optional_variable_runs_last(self, city_graph):
        # The filter's only variable is bound by the OPTIONAL group, so
        # the planner can never push it into the required join; it must
        # run after OPTIONAL extension — exactly like the naive engine.
        filters = [lambda b: b.get("?p") == 14]
        for optimize in (True, False):
            rows = select(
                city_graph, [("?x", "rdf:type", "City")],
                optional=[("?x", "pop", "?p")],
                filters=filters, optimize=optimize,
            )
            assert [row["?x"] for row in rows] == ["tokyo"]

    def test_optional_group_sharing_no_variables_cross_joins(self, city_graph):
        # No shared variables: every required solution is extended by
        # every optional match (a cartesian product), none eliminated.
        rows = select(city_graph, [("?x", "rdf:type", "Country")],
                      optional=[("?c", "rdf:type", "City")])
        assert len(rows) == 3
        assert {row["?x"] for row in rows} == {"japan"}
        assert {row["?c"] for row in rows} == {"tokyo", "paris", "osaka"}

    def test_optional_patterns_share_bindings_consistently(self, city_graph):
        # Both optional patterns bind ?p: within one solution the value
        # must agree, so ?other can only be a subject with the same pop.
        rows = select(
            city_graph, [("?x", "rdf:type", "City")],
            optional=[("?x", "pop", "?p"), ("?other", "pop", "?p")],
        )
        by_city = {row["?x"]: row for row in rows}
        assert by_city["tokyo"]["?other"] == "tokyo"
        assert by_city["osaka"]["?p"] == 2
        # paris has no pop: the whole optional group fails together and
        # the bare solution survives with both variables unbound.
        assert "?p" not in by_city["paris"]
        assert "?other" not in by_city["paris"]
