"""Tests for confidence-weighted facts and confidence-propagating rules."""

import pytest
from hypothesis import given, strategies as st

from repro.stores.rdf.provenance import (
    ConfidenceGraph,
    ConfidenceRuleEngine,
    WeightedRule,
    godel_tnorm,
    product_tnorm,
)
from repro.stores.rdf.rules import Rule

confidences = st.floats(min_value=0.01, max_value=1.0)


class TestConfidenceGraph:
    def test_assert_and_read(self):
        store = ConfidenceGraph()
        store.assert_fact(("a", "p", "b"), 0.7, source="s1")
        assert ("a", "p", "b") in store
        assert store.confidence(("a", "p", "b")) == pytest.approx(0.7)
        assert store.sources(("a", "p", "b")) == {"s1"}

    def test_absent_fact_zero_confidence(self):
        assert ConfidenceGraph().confidence(("x", "y", "z")) == 0.0

    def test_corroboration_noisy_or(self):
        store = ConfidenceGraph()
        store.assert_fact(("a", "p", "b"), 0.8, source="s1")
        combined = store.assert_fact(("a", "p", "b"), 0.6, source="s2")
        assert combined == pytest.approx(1 - 0.2 * 0.4)
        assert store.sources(("a", "p", "b")) == {"s1", "s2"}

    def test_same_source_takes_max_not_or(self):
        store = ConfidenceGraph()
        store.assert_fact(("a", "p", "b"), 0.8, source="s1")
        combined = store.assert_fact(("a", "p", "b"), 0.6, source="s1")
        assert combined == pytest.approx(0.8)

    def test_upgrade_uses_max(self):
        store = ConfidenceGraph()
        store.assert_fact(("a", "p", "b"), 0.5, source="s1")
        store.upgrade_fact(("a", "p", "b"), 0.9, source="rule")
        assert store.confidence(("a", "p", "b")) == pytest.approx(0.9)
        store.upgrade_fact(("a", "p", "b"), 0.3, source="rule")
        assert store.confidence(("a", "p", "b")) == pytest.approx(0.9)

    def test_retract(self):
        store = ConfidenceGraph()
        store.assert_fact(("a", "p", "b"), 0.5)
        assert store.retract(("a", "p", "b"))
        assert not store.retract(("a", "p", "b"))
        assert len(store) == 0

    def test_match_with_threshold(self):
        store = ConfidenceGraph()
        store.assert_fact(("a", "p", "b"), 0.9)
        store.assert_fact(("c", "p", "d"), 0.2)
        matched = store.match(None, "p", None, min_confidence=0.5)
        assert [triple.subject for triple, _ in matched] == ["a"]
        assert len(store.facts_above(0.1)) == 2

    def test_confidence_validated(self):
        with pytest.raises(ValueError):
            ConfidenceGraph().assert_fact(("a", "p", "b"), 0.0)
        with pytest.raises(ValueError):
            ConfidenceGraph().assert_fact(("a", "p", "b"), 1.5)

    @given(st.lists(confidences, min_size=1, max_size=8))
    def test_corroboration_monotone_and_bounded(self, values):
        store = ConfidenceGraph()
        previous = 0.0
        for index, value in enumerate(values):
            combined = store.assert_fact(("a", "p", "b"), value,
                                         source=f"s{index}")
            assert previous - 1e-12 <= combined <= 1.0
            previous = combined


RULES = [
    WeightedRule(Rule([("?x", "trend", "rising"), ("?x", "type", "Company")],
                      [("?x", "outlook", "positive")], name="r1"), strength=0.9),
    WeightedRule(Rule([("?x", "outlook", "positive")],
                      [("?x", "recommend", "buy")], name="r2"), strength=0.8),
]


def seeded_store(trend_confidence=0.8, type_confidence=0.95):
    store = ConfidenceGraph()
    store.assert_fact(("ibm", "trend", "rising"), trend_confidence, "regression")
    store.assert_fact(("ibm", "type", "Company"), type_confidence, "dbpedia")
    return store


class TestConfidenceRuleEngine:
    def test_godel_propagation(self):
        store = seeded_store()
        ConfidenceRuleEngine(RULES).infer(store)
        assert store.confidence(("ibm", "outlook", "positive")) == pytest.approx(
            0.9 * min(0.8, 0.95))
        assert store.confidence(("ibm", "recommend", "buy")) == pytest.approx(
            0.8 * 0.9 * 0.8)

    def test_product_propagation(self):
        store = seeded_store()
        ConfidenceRuleEngine(RULES, tnorm=product_tnorm).infer(store)
        assert store.confidence(("ibm", "outlook", "positive")) == pytest.approx(
            0.9 * 0.8 * 0.95)

    def test_confidence_floor_blocks_weak_premises(self):
        store = seeded_store(trend_confidence=0.1)
        engine = ConfidenceRuleEngine(RULES, confidence_floor=0.3)
        engine.infer(store)
        assert ("ibm", "outlook", "positive") not in store

    def test_inferred_facts_carry_rule_provenance(self):
        store = seeded_store()
        ConfidenceRuleEngine(RULES).infer(store)
        assert store.sources(("ibm", "outlook", "positive")) == {"inferred:r1"}

    def test_returns_new_fact_count(self):
        store = seeded_store()
        assert ConfidenceRuleEngine(RULES).infer(store) == 2

    def test_idempotent(self):
        store = seeded_store()
        engine = ConfidenceRuleEngine(RULES)
        engine.infer(store)
        assert engine.infer(store) == 0

    def test_corroboration_strengthens_conclusions(self):
        """Using accuracy levels during inference: better inputs give
        better outputs."""
        weak = seeded_store(trend_confidence=0.5)
        strong = seeded_store(trend_confidence=0.5)
        strong.assert_fact(("ibm", "trend", "rising"), 0.7, "second-source")
        ConfidenceRuleEngine(RULES).infer(weak)
        ConfidenceRuleEngine(RULES).infer(strong)
        assert strong.confidence(("ibm", "recommend", "buy")) > weak.confidence(
            ("ibm", "recommend", "buy"))

    def test_cyclic_rules_terminate(self):
        rules = [
            WeightedRule(Rule([("?x", "p", "?y")], [("?y", "p", "?x")],
                              name="sym"), strength=0.9),
        ]
        store = ConfidenceGraph()
        store.assert_fact(("a", "p", "b"), 0.8)
        engine = ConfidenceRuleEngine(rules)
        engine.infer(store)
        # b-p-a derived at 0.72; re-deriving a-p-b at 0.648 < 0.8 stops.
        assert store.confidence(("b", "p", "a")) == pytest.approx(0.72)
        assert store.confidence(("a", "p", "b")) == pytest.approx(0.8)

    def test_guards_respected(self):
        rules = [WeightedRule(Rule(
            [("?x", "score", "?v")],
            [("?x", "grade", "high")],
            guards=[lambda binding: binding["?v"] > 5],
            name="g"), strength=1.0)]
        store = ConfidenceGraph()
        store.assert_fact(("a", "score", 9), 0.9)
        store.assert_fact(("b", "score", 2), 0.9)
        ConfidenceRuleEngine(rules).infer(store)
        assert ("a", "grade", "high") in store
        assert ("b", "grade", "high") not in store

    def test_strength_validated(self):
        with pytest.raises(ValueError):
            WeightedRule(RULES[0].rule, strength=0.0)
