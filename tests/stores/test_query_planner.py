"""The cost-based query planner: statistics, ordering, pushdown, top-k."""

import collections

import pytest
from hypothesis import given, settings, strategies as st

from repro.stores.rdf.graph import Graph
from repro.stores.rdf.plan import (
    bound_filter,
    build_plan,
    execute_plan,
    filter_variables,
)
from repro.stores.rdf.query import distinct_bindings, select, solve, union
from repro.stores.rdf.stats import BOUND


@pytest.fixture
def people():
    """Five typed people with names; exactly one employment edge."""
    graph = Graph()
    for index in range(5):
        graph.add((f"p{index}", "rdf:type", "Person"))
        graph.add((f"p{index}", "name", f"N{index}"))
    graph.add(("p1", "worksAt", "acme"))
    return graph


class TestStatistics:
    def test_counts_track_adds(self, people):
        stats = people.predicate_statistics()
        assert stats["rdf:type"].count == 5
        assert stats["rdf:type"].distinct_subjects == 5
        assert stats["rdf:type"].distinct_objects == 1
        assert stats["name"].distinct_objects == 5
        assert stats["worksAt"].count == 1

    def test_counts_track_removes(self, people):
        people.remove(("p0", "rdf:type", "Person"))
        people.remove(("p1", "worksAt", "acme"))
        stats = people.predicate_statistics()
        assert stats["rdf:type"].count == 4
        assert stats["rdf:type"].distinct_subjects == 4
        assert "worksAt" not in stats

    def test_duplicate_add_does_not_inflate(self, people):
        before = people.predicate_statistics()["rdf:type"].count
        assert not people.add(("p0", "rdf:type", "Person"))
        assert people.predicate_statistics()["rdf:type"].count == before

    def test_fanout(self, people):
        stats = people.predicate_statistics()["rdf:type"]
        assert stats.subject_fanout == pytest.approx(1.0)
        assert stats.object_fanout == pytest.approx(5.0)


class TestEstimateCardinality:
    def test_concrete_positions_use_index_counts(self, people):
        assert people.estimate_cardinality(None, "rdf:type", "Person") == 5.0
        assert people.estimate_cardinality(None, "worksAt", None) == 1.0
        assert people.estimate_cardinality("p0", None, None) == 2.0
        assert people.estimate_cardinality(None, None, None) == 11.0

    def test_missing_term_is_zero(self, people):
        assert people.estimate_cardinality(None, "nope", None) == 0.0
        assert people.estimate_cardinality("p0", "rdf:type", "City") == 0.0

    def test_bound_subject_discounts_by_distinct_subjects(self, people):
        # 5 rdf:type rows over 5 distinct subjects -> 1 row per binding.
        assert people.estimate_cardinality(
            BOUND, "rdf:type", "Person") == pytest.approx(1.0)

    def test_fully_concrete_is_membership(self, people):
        assert people.estimate_cardinality("p1", "worksAt", "acme") == 1.0
        assert people.estimate_cardinality("p2", "worksAt", "acme") == 0.0


class TestFilterVariables:
    def test_literal_lambda_is_detected(self):
        assert filter_variables(lambda b: b["?pop"] > 100) == {"?pop"}

    def test_nested_code_is_scanned(self):
        predicate = lambda b: any(b[name] == "x" for name in ("?a", "?b"))
        assert filter_variables(predicate) == {"?a", "?b"}

    def test_closure_is_unknowable(self):
        column = "?pop"

        def predicate(binding):
            return binding[column] > 100

        assert filter_variables(predicate) is None

    def test_bound_filter_declares(self):
        column = "?pop"
        predicate = bound_filter([column], lambda b: b[column] > 100)
        assert filter_variables(predicate) == {"?pop"}


class TestBuildPlan:
    def test_explain_is_stable(self, people):
        plan = build_plan(
            people,
            [("?p", "rdf:type", "Person"), ("?p", "worksAt", "?org")],
            filters=[lambda b: b["?org"] == "acme"],
        )
        assert plan.explain() == {
            "strategy": "greedy-selectivity",
            "steps": [
                {
                    "pattern": ["?p", "worksAt", "?org"],
                    "source_index": 1,
                    "estimated_rows": 1.0,
                    "bound_before": [],
                    "filters_pushed": [0],
                },
                {
                    "pattern": ["?p", "rdf:type", "Person"],
                    "source_index": 0,
                    "estimated_rows": 1.0,
                    "bound_before": ["?org", "?p"],
                    "filters_pushed": [],
                },
            ],
            "residual_filters": [],
        }

    def test_selective_pattern_runs_first(self, people):
        plan = build_plan(people, [
            ("?p", "rdf:type", "Person"),
            ("?p", "name", "?n"),
            ("?p", "worksAt", "?org"),
        ])
        assert plan.pattern_order()[0] == 2

    def test_undetectable_filter_stays_residual(self, people):
        # An opaque filter: reads through closed-over names only, so
        # the const scan finds nothing and pushdown must not happen.
        org = "acme"
        column = "?org"
        opaque = lambda b: b[column] == org  # noqa: E731
        plan = build_plan(people, [("?p", "worksAt", "?org")], [opaque])
        assert plan.residual_filters == (0,)
        assert plan.steps[0].filter_indexes == ()

    def test_describe_mentions_each_step(self, people):
        plan = build_plan(people, [("?p", "worksAt", "?org")])
        assert "worksAt" in plan.describe()

    def test_execute_plan_matches_naive_solve(self, people):
        patterns = [("?p", "rdf:type", "Person"), ("?p", "name", "?n")]
        plan = build_plan(people, patterns)
        planned = execute_plan(people, plan)
        naive = solve(people, patterns)
        key = lambda b: sorted(b.items())  # noqa: E731
        assert sorted(planned, key=key) == sorted(naive, key=key)


class TestSelectPlanned:
    def test_planned_equals_naive(self, people):
        patterns = [
            ("?p", "rdf:type", "Person"),
            ("?p", "name", "?n"),
            ("?p", "worksAt", "?org"),
        ]
        planned = select(people, patterns)
        naive = select(people, patterns, optimize=False)
        assert planned == naive == [{"?p": "p1", "?n": "N1", "?org": "acme"}]

    def test_pushed_filter_result_matches_naive(self, people):
        patterns = [("?p", "rdf:type", "Person"), ("?p", "name", "?n")]
        filters = [lambda b: b["?n"] in ("N2", "N3")]
        planned = select(people, patterns, filters=filters, order_by="?n")
        naive = select(people, patterns, filters=filters, order_by="?n",
                       optimize=False)
        assert planned == naive
        assert [b["?n"] for b in planned] == ["N2", "N3"]

    def test_topk_equals_sort_plus_slice(self):
        graph = Graph()
        for index in range(50):
            graph.add((f"s{index}", "score", (index * 7) % 50))
        full = select(graph, [("?s", "score", "?v")], order_by="?v",
                      descending=True, optimize=False)
        topk = select(graph, [("?s", "score", "?v")], order_by="?v",
                      descending=True, limit=5)
        assert topk == full[:5]
        bottomk = select(graph, [("?s", "score", "?v")], order_by="?v",
                         limit=3)
        assert bottomk == full[-3:][::-1]

    def test_order_by_mixes_bool_int_float(self):
        graph = Graph()
        graph.add(("a", "score", True))
        graph.add(("b", "score", 2))
        graph.add(("c", "score", 1.5))
        ordered = select(graph, [("?s", "score", "?v")], order_by="?v")
        assert [b["?s"] for b in ordered] == ["a", "c", "b"]

    def test_order_by_none_sorts_first(self):
        graph = Graph()
        graph.add(("a", "score", 3))
        graph.add(("b", "other", "x"))
        ordered = select(
            graph, [("?s", "?p", "?v")],
            optional=[("?s", "score", "?score")],
            order_by="?score",
        )
        assert ordered[0]["?s"] == "b"


class TestDistinctHelper:
    def test_distinct_bindings_keeps_first(self):
        bindings = [{"?x": 1}, {"?x": 2}, {"?x": 1}]
        assert distinct_bindings(bindings) == [{"?x": 1}, {"?x": 2}]

    def test_union_dedups_across_groups(self, people):
        result = union(people, [
            [("?p", "rdf:type", "Person")],
            [("?p", "name", "?n"), ("?p", "rdf:type", "Person")],
        ], variables=["?p"])
        assert sorted(b["?p"] for b in result) == [f"p{i}" for i in range(5)]


# -- property test: planner output == naive engine output -------------------

_terms = st.sampled_from(["a", "b", "c", 1, 2])
_subjects = st.sampled_from(["a", "b", "c"])
_predicates = st.sampled_from(["p", "q"])
_component = st.sampled_from(["?x", "?y", "?z", "a", "b", "p", "q", 1])


def _canonical(bindings):
    return collections.Counter(
        tuple(sorted((name, repr(value)) for name, value in binding.items()))
        for binding in bindings
    )


@settings(max_examples=200, deadline=None)
@given(
    triples=st.lists(st.tuples(_subjects, _predicates, _terms), max_size=12),
    patterns=st.lists(st.tuples(_component, _component, _component),
                      min_size=1, max_size=3),
)
def test_planner_is_equivalent_to_naive_engine(triples, patterns):
    graph = Graph(triples)
    planned = select(graph, patterns)
    naive = select(graph, patterns, optimize=False)
    assert _canonical(planned) == _canonical(naive)
