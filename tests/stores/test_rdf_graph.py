"""Tests for the triple store's graph and indexes."""

import pytest
from hypothesis import given, strategies as st

from repro.stores.rdf.graph import Graph, RDF, RDFS, Triple


@pytest.fixture
def graph():
    return Graph([
        ("ibm", "type", "Company"),
        ("ibm", "hq", "armonk"),
        ("acme", "type", "Company"),
        ("ann", "worksFor", "ibm"),
        ("ann", "age", 34),
    ])


class TestBasics:
    def test_len_and_iter(self, graph):
        assert len(graph) == 5
        assert all(isinstance(triple, Triple) for triple in graph)

    def test_contains_tuple_or_triple(self, graph):
        assert ("ibm", "type", "Company") in graph
        assert Triple("ibm", "type", "Company") in graph
        assert ("ibm", "type", "Bakery") not in graph

    def test_add_returns_newness(self, graph):
        assert graph.add(("new", "p", "o")) is True
        assert graph.add(("new", "p", "o")) is False
        assert len(graph) == 6

    def test_add_all_counts_new(self, graph):
        added = graph.add_all([("a", "p", 1), ("ibm", "type", "Company")])
        assert added == 1

    def test_remove(self, graph):
        assert graph.remove(("ann", "age", 34)) is True
        assert graph.remove(("ann", "age", 34)) is False
        assert len(graph) == 4
        assert graph.match("ann", "age", None) == []

    def test_numeric_literals(self, graph):
        assert graph.match("ann", "age", 34)
        assert not graph.match("ann", "age", "34")


class TestMatch:
    def test_fully_bound(self, graph):
        assert len(graph.match("ibm", "type", "Company")) == 1

    def test_subject_predicate(self, graph):
        assert {t.object for t in graph.match("ibm", "type", None)} == {"Company"}

    def test_predicate_object(self, graph):
        assert {t.subject for t in graph.match(None, "type", "Company")} == {"ibm", "acme"}

    def test_subject_object(self, graph):
        assert {t.predicate for t in graph.match("ann", None, "ibm")} == {"worksFor"}

    def test_subject_only(self, graph):
        assert len(graph.match("ibm", None, None)) == 2

    def test_predicate_only(self, graph):
        assert len(graph.match(None, "type", None)) == 2

    def test_object_only(self, graph):
        assert len(graph.match(None, None, "Company")) == 2

    def test_all_wildcards(self, graph):
        assert len(graph.match()) == 5

    def test_no_match(self, graph):
        assert graph.match("ghost", None, None) == []

    def test_helpers(self, graph):
        assert graph.objects("ibm", "type") == {"Company"}
        assert graph.subjects("type", "Company") == {"ibm", "acme"}
        assert "worksFor" in graph.predicates()


class TestIndexCoherence:
    """All three indexes must answer identically after arbitrary churn."""

    @given(st.lists(
        st.tuples(st.sampled_from("abcd"), st.sampled_from("pqr"),
                  st.sampled_from(["x", "y", 1, 2])),
        max_size=40,
    ), st.data())
    def test_match_consistent_after_removals(self, triples, data):
        graph = Graph()
        for triple in triples:
            graph.add(triple)
        present = list(graph)
        if present:
            doomed = data.draw(st.sampled_from(present))
            graph.remove(doomed)
        expected = set(graph)
        for triple in expected:
            assert graph.match(triple.subject, triple.predicate, None).count(triple) == 1
            assert graph.match(None, triple.predicate, triple.object).count(triple) == 1
            assert graph.match(triple.subject, None, triple.object).count(triple) == 1
        # Full scan equals the union of per-subject scans.
        by_subject = {t for s in {t.subject for t in expected}
                      for t in graph.match(s, None, None)}
        assert by_subject == expected


class TestPersistence:
    def test_to_from_list_roundtrip(self, graph):
        restored = Graph.from_list(graph.to_list())
        assert set(restored) == set(graph)

    def test_to_list_deterministic(self, graph):
        assert graph.to_list() == graph.copy().to_list()

    def test_copy_is_independent(self, graph):
        clone = graph.copy()
        clone.add(("extra", "p", "o"))
        assert len(clone) == len(graph) + 1


class TestNamespaces:
    def test_attribute_style(self):
        assert RDF.type == "rdf:type"
        assert RDFS.subClassOf == "rdfs:subClassOf"

    def test_call_style(self):
        assert RDFS("label") == "rdfs:label"
