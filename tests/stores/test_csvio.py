"""Tests for CSV reading/writing with type inference."""

from hypothesis import given, strategies as st

from repro.stores.csvio import read_csv, read_csv_text, write_csv, write_csv_text


class TestReadCsvText:
    def test_header_and_rows(self):
        header, rows = read_csv_text("a,b\n1,2\n3,4\n")
        assert header == ["a", "b"]
        assert rows == [[1, 2], [3, 4]]

    def test_type_inference(self):
        _, rows = read_csv_text("v\n1\n1.5\ntrue\nFALSE\nhello\n\n")
        assert rows == [[1], [1.5], [True], [False], ["hello"]]

    def test_empty_cell_is_none(self):
        _, rows = read_csv_text("a,b\n1,\n")
        assert rows == [[1, None]]

    def test_no_inference_mode(self):
        _, rows = read_csv_text("a\n1\n", infer_types=False)
        assert rows == [["1"]]

    def test_empty_text(self):
        assert read_csv_text("") == ([], [])

    def test_quoted_commas(self):
        header, rows = read_csv_text('name,desc\nwidget,"small, round"\n')
        assert rows == [["widget", "small, round"]]


class TestWriteCsvText:
    def test_roundtrip(self):
        header = ["name", "count", "ratio", "flag"]
        rows = [["alpha", 1, 2.5, True], ["beta", -3, 0.1, False]]
        parsed_header, parsed_rows = read_csv_text(write_csv_text(header, rows))
        assert parsed_header == header
        assert parsed_rows == rows

    def test_none_roundtrips_via_empty_field(self):
        text = write_csv_text(["a", "b"], [[None, 1]])
        _, rows = read_csv_text(text)
        assert rows == [[None, 1]]


class TestFiles:
    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "out" / "data.csv"
        write_csv(path, ["x", "y"], [[1, 2.0], [3, 4.5]])
        header, rows = read_csv(path)
        assert header == ["x", "y"]
        assert rows == [[1, 2.0], [3, 4.5]]


simple_cell = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.booleans(),
    st.text(alphabet="abcdefgh XYZ", max_size=10).filter(
        lambda s: s.strip() == s and s != ""
        and s.lower() not in ("true", "false") and not s.isdigit()
    ),
)


class TestPropertyBased:
    @given(st.lists(st.lists(simple_cell, min_size=2, max_size=2), max_size=15))
    def test_roundtrip_preserves_rows(self, rows):
        header = ["col_a", "col_b"]
        text = write_csv_text(header, rows)
        parsed_header, parsed_rows = read_csv_text(text)
        assert parsed_header == header
        assert parsed_rows == rows
