"""The StorageBackend contract suite, run against every backend.

Each parametrized case builds an empty store, drives it through the
same operation script, and asserts byte-for-byte agreement with the
reference in-memory :class:`Graph` — dumps, statistics, cardinality
estimates and version discipline.  A backend that passes here is safe
to drop behind the KB or a :class:`ShardedGraph` unchanged.
"""

import itertools

import pytest

from repro.stores.backends import (
    SqliteTripleStore,
    StorageBackend,
    canonical_triple_list,
)
from repro.stores.rdf.graph import Graph, Triple
from repro.stores.rdf.shard import ShardedGraph
from repro.stores.rdf.stats import BOUND

BACKENDS = {
    "memory": lambda tmp: Graph(),
    "sqlite-memory": lambda tmp: SqliteTripleStore(),
    "sqlite-file": lambda tmp: SqliteTripleStore(tmp / "contract.sqlite"),
    "sqlite-small-batches": lambda tmp: SqliteTripleStore(batch_size=3),
    "sharded-1": lambda tmp: ShardedGraph(shards=1),
    "sharded-4": lambda tmp: ShardedGraph(shards=4),
    "sharded-3-sqlite": lambda tmp: ShardedGraph(
        shards=3, backend_factory=lambda index: SqliteTripleStore()),
}

TRIPLES = [
    ("repro:alice", "rdf:type", "repro:Person"),
    ("repro:alice", "repro:age", 34),
    ("repro:alice", "repro:knows", "repro:bob"),
    ("repro:bob", "rdf:type", "repro:Person"),
    ("repro:bob", "repro:age", 34.5),
    ("repro:bob", "repro:active", True),
    ("repro:carol", "repro:age", 34),  # duplicate object value
    ("repro:carol", "repro:score", 0),
]


@pytest.fixture(params=sorted(BACKENDS), ids=sorted(BACKENDS))
def store(request, tmp_path):
    backend = BACKENDS[request.param](tmp_path)
    yield backend
    closer = getattr(backend, "close", None)
    if callable(closer):
        closer()


@pytest.fixture
def reference():
    graph = Graph()
    graph.add_all(TRIPLES)
    return graph


def test_satisfies_protocol(store):
    assert isinstance(store, StorageBackend)


def test_add_and_duplicates(store):
    assert store.add(TRIPLES[0]) is True
    assert store.add(TRIPLES[0]) is False
    assert len(store) == 1
    assert TRIPLES[0] in store


def test_numeric_collapsing_first_seen_wins(store):
    # 1 == 1.0 == True under Python equality; the first representation
    # stored is the one every later read sees.
    assert store.add(("s", "p", 1)) is True
    assert store.add(("s", "p", 1.0)) is False
    assert store.add(("s", "p", True)) is False
    assert len(store) == 1
    [triple] = store.match("s", "p", None)
    assert triple.object == 1 and type(triple.object) is int
    assert ("s", "p", True) in store


def test_dump_matches_reference_byte_for_byte(store, reference):
    store.add_all(TRIPLES)
    assert store.to_list() == reference.to_list()
    assert canonical_triple_list(store) == canonical_triple_list(reference)


def test_match_dispatch_matches_reference(store, reference):
    store.add_all(TRIPLES)
    probes = [
        (None, None, None),
        ("repro:alice", None, None),
        ("repro:alice", "repro:age", None),
        ("repro:alice", "repro:age", 34),
        (None, "repro:age", None),
        (None, "repro:age", 34),
        (None, None, 34),
        (None, None, "repro:bob"),
        ("repro:nobody", None, None),
        (None, "repro:nope", None),
        (None, None, "never-seen"),
    ]
    def order(triples):
        return sorted(triples, key=lambda t: (t.subject, t.predicate,
                                              type(t.object).__name__,
                                              str(t.object)))

    for probe in probes:
        assert order(store.match(*probe)) == order(reference.match(*probe)), \
            probe


def test_estimates_match_reference_bit_for_bit(store, reference):
    store.add_all(TRIPLES)
    subjects = [None, BOUND, "repro:alice", "repro:nobody"]
    predicates = [None, BOUND, "repro:age", "repro:nope"]
    objects = [None, BOUND, 34, "repro:Person", "never-seen"]
    for s, p, o in itertools.product(subjects, predicates, objects):
        assert store.estimate_cardinality(s, p, o) == \
            reference.estimate_cardinality(s, p, o), (s, p, o)


def test_predicate_statistics_match_reference(store, reference):
    store.add_all(TRIPLES)
    assert store.predicate_statistics() == reference.predicate_statistics()


def test_navigation_helpers(store, reference):
    store.add_all(TRIPLES)
    assert store.objects("repro:alice", "repro:age") == {34}
    assert store.subjects("repro:age", 34) == {"repro:alice", "repro:carol"}
    assert store.predicates() == reference.predicates()


def test_remove_and_clear(store):
    store.add_all(TRIPLES)
    assert store.remove(TRIPLES[1]) is True
    assert store.remove(TRIPLES[1]) is False
    assert store.discard(TRIPLES[2]) is True
    assert len(store) == len(TRIPLES) - 2
    store.clear()
    assert len(store) == 0
    assert store.to_list() == []
    assert store.estimate_cardinality(None, None, None) == 0.0


def test_version_monotonic_and_never_resets(store):
    v0 = store.version
    assert store.add(TRIPLES[0]) and store.version == v0 + 1
    store.add(TRIPLES[0])  # duplicate: no version bump
    assert store.version == v0 + 1
    added = store.add_all(TRIPLES[1:4])
    assert added == 3 and store.version == v0 + 4
    store.remove(TRIPLES[0])
    assert store.version == v0 + 5
    before_clear = store.version
    store.clear()
    assert store.version > before_clear
    store.add(TRIPLES[0])
    assert store.version > before_clear + 1


def test_add_many_reports_per_triple_newness(store):
    flags = store.add_many([TRIPLES[0], TRIPLES[0], TRIPLES[1]])
    assert flags == [True, False, True]


def test_iteration_covers_everything(store, reference):
    store.add_all(TRIPLES)
    assert set(store) == set(reference)
