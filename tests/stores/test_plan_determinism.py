"""Planner determinism on empty and sharded stores.

The ``explain()`` dict is asserted verbatim in tests and docs, so it
must be byte-stable: across runs, across empty stores, and — because
the sharded router keeps *global* statistics — across shard counts.
"""

from repro.stores.backends.sqlite import SqliteTripleStore
from repro.stores.rdf.graph import Graph
from repro.stores.rdf.plan import build_plan, build_sharded_plan
from repro.stores.rdf.query import RangeFilter
from repro.stores.rdf.shard import ShardedGraph

PATTERNS = [
    ("?s", "rdf:type", "repro:Item"),
    ("?s", "repro:score", "?v"),
    ("?s", "repro:owner", "?u"),
]


def test_explain_on_empty_graph_is_pinned():
    plan = build_plan(Graph(), PATTERNS)
    # Every estimate is 0.0 on an empty graph, so the greedy tie-break
    # (original pattern index) fully determines the order.
    assert plan.explain() == {
        "strategy": "greedy-selectivity",
        "steps": [
            {"pattern": ["?s", "rdf:type", "repro:Item"],
             "source_index": 0, "estimated_rows": 0.0,
             "bound_before": [], "filters_pushed": []},
            {"pattern": ["?s", "repro:score", "?v"],
             "source_index": 1, "estimated_rows": 0.0,
             "bound_before": ["?s"], "filters_pushed": []},
            {"pattern": ["?s", "repro:owner", "?u"],
             "source_index": 2, "estimated_rows": 0.0,
             "bound_before": ["?s", "?v"], "filters_pushed": []},
        ],
        "residual_filters": [],
    }


def test_empty_stores_agree_across_backends_and_shard_counts(tmp_path):
    reference = build_plan(Graph(), PATTERNS).explain()
    empties = [
        SqliteTripleStore(),
        ShardedGraph(shards=1),
        ShardedGraph(shards=4),
        ShardedGraph(shards=3,
                     backend_factory=lambda i: SqliteTripleStore()),
    ]
    for store in empties:
        assert build_plan(store, PATTERNS).explain() == reference, store
        assert store.estimate_cardinality(None, None, None) == 0.0
        close = getattr(store, "close", None)
        if close:
            close()


def test_inner_plan_byte_stable_across_shard_counts():
    triples = []
    for i in range(60):
        s = f"repro:item{i}"
        triples.append((s, "rdf:type", "repro:Item"))
        triples.append((s, "repro:score", float(i)))
        if i % 2 == 0:
            triples.append((s, "repro:owner", f"repro:user{i % 7}"))
    single = Graph()
    single.add_all(triples)
    reference = build_plan(single, PATTERNS,
                           [RangeFilter("?v", 10, 50)]).explain()
    for shards in (1, 2, 4, 9):
        sharded = ShardedGraph(shards=shards)
        sharded.add_all(triples)
        got = build_plan(sharded, PATTERNS,
                         [RangeFilter("?v", 10, 50)]).explain()
        assert got == reference, shards
        # The fan-out envelope differs (it reports the topology), but
        # its inner plan is the same bytes.
        envelope = build_sharded_plan(sharded, PATTERNS,
                                      [RangeFilter("?v", 10, 50)])
        assert envelope.explain()["plan"] == reference


def test_partially_empty_shards_stay_deterministic():
    # Two subjects land on a strict subset of 8 shards: most shards are
    # empty, and estimates must still match the single-store numbers.
    triples = [("repro:a", "repro:score", 1.0),
               ("repro:a", "rdf:type", "repro:Item"),
               ("repro:b", "repro:score", 2.0)]
    single = Graph()
    single.add_all(triples)
    sharded = ShardedGraph(shards=8)
    sharded.add_all(triples)
    assert build_plan(sharded, PATTERNS).explain() == \
        build_plan(single, PATTERNS).explain()
    # Scanning an empty shard contributes nothing but breaks nothing.
    rows = sharded.select([("?s", "repro:score", "?v")], order_by="?v")
    assert [r["?v"] for r in rows] == [1.0, 2.0]


def test_explain_with_unknown_terms_is_zero_not_error():
    sharded = ShardedGraph(shards=4)
    sharded.add(("repro:a", "repro:score", 1))
    assert sharded.estimate_cardinality("repro:missing", None, None) == 0.0
    assert sharded.estimate_cardinality(None, "repro:nope", None) == 0.0
    assert sharded.estimate_cardinality(None, None, "never") == 0.0
    plan = build_plan(sharded, [("?s", "repro:nope", "?v")])
    assert plan.explain()["steps"][0]["estimated_rows"] == 0.0
